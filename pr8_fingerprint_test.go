package dpkron_test

import (
	"path/filepath"
	"testing"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/extsort"
	"dpkron/internal/graph"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// PR 8 adds the mmap v2 layout and streaming generate-to-store. Both
// are pure plumbing changes: a graph loaded through a zero-copy
// mapping, and a graph that was sampled straight into spill files and
// encoded without ever materializing, must drive Algorithm 1 into the
// exact same released bits as the PR 2/PR 5 routes. These tests pin
// that across every new path.

// TestFingerprintV2Routes extends the PR 5 store pins to the v2
// layout: PutFormat(v2) + mmap Load, and in-place Convert, all release
// the identical historical fingerprints.
func TestFingerprintV2Routes(t *testing.T) {
	g := fpGraphK10(t)
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
	)

	routes := map[string]*graph.Graph{}

	// Route 1: the v2 byte-slice codec (full checksum verification).
	fromV2, err := dataset.Unmarshal(dataset.MarshalV2(g))
	if err != nil {
		t.Fatal(err)
	}
	routes["v2-binary"] = fromV2

	// Route 2: stored as v2 and loaded — an mmap-backed graph on unix.
	store, err := dataset.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := store.PutFormat(g, "fingerprint", "generated", 2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != accountant.DatasetID(g) {
		t.Fatalf("v2 store id %s != ledger fingerprint %s", meta.ID, accountant.DatasetID(g))
	}
	fromMmap, err := store.Load(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	routes["v2-mmap-load"] = fromMmap

	// Route 3: converted back to v1 in place (same id) and reloaded.
	if _, err := store.Convert(meta.ID, 1); err != nil {
		t.Fatal(err)
	}
	store2, err := dataset.Open(store.Dir()) // fresh handle: defeat the cache
	if err != nil {
		t.Fatal(err)
	}
	fromConverted, err := store2.Load(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	routes["v1-converted-load"] = fromConverted

	for label, got := range routes {
		if !g.Equal(got) {
			t.Errorf("%s: graph differs from the original", label)
			continue
		}
		acc := accountant.New(nil).WithLimit(dp.Budget{Eps: 0.5, Delta: 0.01})
		res, err := core.EstimateCtx(liveRun(t, 4), got, core.Options{
			Eps: 0.5, Delta: 0.01, Rng: randx.New(9), Accountant: acc,
		})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if fp := fpHashFloats(res.Init.A, res.Init.B, res.Init.C); fp != wantInit {
			t.Errorf("%s init fingerprint = %#x, want %#x (PR 2)", label, fp, wantInit)
		}
		if fp := fpHashFloats(res.Features.E, res.Features.H, res.Features.T, res.Features.Delta); fp != wantFeats {
			t.Errorf("%s features fingerprint = %#x, want %#x (PR 2)", label, fp, wantFeats)
		}
		if id := accountant.DatasetID(got); id != meta.ID {
			t.Errorf("%s: dataset id %s != %s", label, id, meta.ID)
		}
	}
}

// TestFingerprintStreamedGenerate pins the streaming samplers: for the
// PR 2 seed, StreamExactCtx's spilled edge set must hash to the exact
// graph fingerprint SampleExact pinned, and a full streaming
// generate-to-store must place a dataset whose mmap load reproduces
// the PR 2 release bits — proving the bounded-memory path changes no
// sampled bit anywhere in the pipeline.
func TestFingerprintStreamedGenerate(t *testing.T) {
	const wantGraph = uint64(0x6c10859be86b36ad) // PR 2 SampleExact pin
	m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		t.Fatal(err)
	}
	sorter, err := extsort.NewTemp(nil, 1<<12) // small chunks: force real spills
	if err != nil {
		t.Fatal(err)
	}
	defer sorter.RemoveAll()
	es, err := m.StreamExactCtx(liveRun(t, 4), randx.New(42), sorter)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	store, err := dataset.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := store.PutStream(es, "streamed", "generated")
	if err != nil {
		t.Fatal(err)
	}
	g, err := store.Load(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashGraph(g); got != wantGraph {
		t.Errorf("streamed graph fingerprint = %#x, want %#x (PR 2)", got, wantGraph)
	}
	if id := accountant.DatasetID(g); id != meta.ID {
		t.Errorf("streamed dataset id %s != recomputed %s", meta.ID, id)
	}

	// The in-memory sampler must agree that this is its graph.
	direct := m.SampleExactWorkers(randx.New(42), 4)
	if !direct.Equal(g) {
		t.Error("streamed store load differs from the in-memory sample")
	}
}

// TestFingerprintStreamedBallDropWorkerInvariance: the streamed
// ball-drop edge set is identical for every worker count and chunk
// size — the same invariance contract the in-memory sampler pins.
func TestFingerprintStreamedBallDropWorkerInvariance(t *testing.T) {
	m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, 14)
	if err != nil {
		t.Fatal(err)
	}
	const target = 12000
	want := uint64(0)
	for i, cfg := range []struct{ workers, chunk int }{
		{1, 1 << 20}, {4, 1 << 10}, {8, 257},
	} {
		sorter, err := extsort.NewTemp(nil, cfg.chunk)
		if err != nil {
			t.Fatal(err)
		}
		es, err := m.StreamBallDropNCtx(pipeline.New(nil, cfg.workers, nil), randx.New(11), target, sorter)
		if err != nil {
			t.Fatal(err)
		}
		store, err := dataset.Open(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatal(err)
		}
		meta, _, err := store.PutStream(es, "inv", "generated")
		if err != nil {
			t.Fatal(err)
		}
		g, err := store.Load(meta.ID)
		if err != nil {
			t.Fatal(err)
		}
		fp := fpHashGraph(g)
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Errorf("workers=%d chunk=%d: fingerprint %#x != %#x", cfg.workers, cfg.chunk, fp, want)
		}
		es.Close()
		sorter.RemoveAll()
	}
}
