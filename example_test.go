package dpkron_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dpkron"
)

// ExampleReadEdgeList parses the SNAP edge-list text format the paper's
// datasets ship in: '#' comments, one whitespace-separated pair per
// line; loops are dropped and duplicate edges merged.
func ExampleReadEdgeList() {
	data := `# toy triangle with a pendant node
0 1
1 2
2 0
2 3
`
	g, err := dpkron.ReadEdgeList(strings.NewReader(data), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", g.NumNodes())
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("triangles:", dpkron.Triangles(g))
	// Output:
	// nodes: 4
	// edges: 4
	// triangles: 1
}

// ExampleEstimatePrivate is the README quick start: a data owner runs
// the paper's Algorithm 1 on a sensitive graph and releases an
// (ε, δ)-differentially private SKG initiator. Here the sensitive graph
// is a synthetic stand-in sampled from a known model so the example is
// self-contained and deterministic.
func ExampleEstimatePrivate() {
	truth := dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}
	model, err := dpkron.NewModel(truth, 10) // 2^10 = 1024 nodes
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))

	res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	// res.Init is the private initiator Θ̃ — safe to publish under the
	// composed guarantee, as are res.Features and res.DegreeSeq.
	fmt.Println("guarantee:", res.Privacy)
	fmt.Println("kronecker power:", res.K)
	fmt.Println("mechanisms charged:", len(res.Charges))
	// Output:
	// guarantee: (0.2, 0.01)-DP
	// kronecker power: 10
	// mechanisms charged: 2
}

// ExampleOpenLedger is the privacy-budgeting workflow: a data owner
// gives a sensitive graph a total (ε, δ) allowance in a persistent
// ledger, then fits against it until the budget runs dry. Each fit is
// debited before it runs (Algorithm 1's charge schedule is known
// upfront), so the third request here is refused — the composed spend
// across releases, not any single release, is what the ledger bounds.
func ExampleOpenLedger() {
	dir, err := os.MkdirTemp("", "dpkron-ledger")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	model, _ := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 9)
	sensitive := model.Sample(dpkron.NewRand(1))

	led, err := dpkron.OpenLedger(filepath.Join(dir, "ledger.json"))
	if err != nil {
		log.Fatal(err)
	}
	ds := dpkron.DatasetID(sensitive)
	// Total allowance: (0.625, 0.02) — room for two (0.25, 0.01) fits.
	if err := led.SetBudget(ds, dpkron.Budget{Eps: 0.625, Delta: 0.02}); err != nil {
		log.Fatal(err)
	}

	for i := 1; i <= 3; i++ {
		// Debit first; a refusal means the mechanisms never run.
		if err := led.Spend(ds, dpkron.PlannedReceipt(0.25, 0.01)); err != nil {
			fmt.Printf("fit %d: refused, remaining %s\n", i, led.Remaining(ds))
			continue
		}
		res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
			Eps: 0.25, Delta: 0.01, Rng: dpkron.NewRand(uint64(i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fit %d: spent %s, remaining %s\n", i, res.Privacy, led.Remaining(ds))
	}
	// Output:
	// fit 1: spent (0.25, 0.01)-DP, remaining (0.375, 0.01)-DP
	// fit 2: spent (0.25, 0.01)-DP, remaining (0.125, 0)-DP
	// fit 3: refused, remaining (0.125, 0)-DP
}

// ExampleEstimatePrivateCtx runs Algorithm 1 under a pipeline Run: the
// context bounds the wall time (cancellation aborts with the context's
// error, never a perturbed result), the worker budget caps
// parallelism, and the released estimate is bit-identical to the
// blocking EstimatePrivate for the same seed.
func ExampleEstimatePrivateCtx() {
	model, err := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	run := dpkron.NewRun(ctx, 4, nil) // ctx, worker budget, no progress sink

	res, err := dpkron.EstimatePrivateCtx(run, sensitive, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err) // context.DeadlineExceeded if the minute ran out
	}

	blocking, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("guarantee:", res.Privacy)
	fmt.Println("identical to blocking call:", res.Init == blocking.Init)
	// Output:
	// guarantee: (0.2, 0.01)-DP
	// identical to blocking call: true
}

// ExampleProgressSink shows the stage/progress event stream: a sink
// passed to NewRun receives one event pair per pipeline stage (Frac 0
// on start, 1 on completion), which is how `dpkron -progress` and the
// `dpkron serve` job API surface live progress. Events arrive
// serialized — the sink needs no locking.
func ExampleProgressSink() {
	model, err := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 9)
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))

	var started []string
	sink := func(e dpkron.ProgressEvent) {
		if e.Frac == 0 { // stage start; e.Done() marks completion
			started = append(started, e.Stage)
		}
	}
	run := dpkron.NewRun(context.Background(), 2, sink)
	if _, err := dpkron.EstimatePrivateCtx(run, sensitive, dpkron.PrivateOptions{
		Eps: 0.5, Delta: 0.01, Rng: dpkron.NewRand(7),
	}); err != nil {
		log.Fatal(err)
	}
	for _, s := range started {
		fmt.Println(s)
	}
	// Output:
	// algorithm1/degree-release
	// algorithm1/feature-derivation
	// algorithm1/triangle-release
	// algorithm1/moment-fit
	// algorithm1/moment-fit/kronmom
}

// ExamplePrivateResult_Model closes the loop of the paper's workflow:
// the released initiator defines an SKG model from which anyone can
// sample synthetic graphs that mimic the sensitive original.
func ExamplePrivateResult_Model() {
	model, err := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))
	res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err)
	}

	synth := res.Model().Sample(dpkron.NewRand(3)) // post-processing: costs no privacy
	fmt.Println("synthetic nodes:", synth.NumNodes())
	fmt.Println("same node count as original:", synth.NumNodes() == sensitive.NumNodes())
	// Output:
	// synthetic nodes: 1024
	// same node count as original: true
}

// ExampleOpenStore is the register-once, query-many workflow: a
// sensitive graph is imported into the persistent dataset store a
// single time, and every subsequent fit loads it by its
// content-addressed id — no re-shipping or re-parsing of the edge
// list. The stored binary form is bit-identical to the text parse, so
// fixed-seed fits of the stored dataset reproduce fits of the source
// exactly.
func ExampleOpenStore() {
	dir, err := os.MkdirTemp("", "dpkron-store")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The sensitive graph, as it would arrive: edge-list text.
	model, _ := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 9)
	var edgeList strings.Builder
	if err := model.Sample(dpkron.NewRand(1)).WriteEdgeList(&edgeList); err != nil {
		log.Fatal(err)
	}

	// Import once...
	store, err := dpkron.OpenStore(filepath.Join(dir, "datasets"))
	if err != nil {
		log.Fatal(err)
	}
	meta, err := dpkron.ImportDataset(store, strings.NewReader(edgeList.String()), "example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imported nodes:", meta.Nodes)

	// ...fit twice by id. Each load decodes the same stored bytes, so
	// equal seeds give equal releases (and a ledger keyed by meta.ID
	// would meter both against one account).
	var inits []dpkron.Initiator
	for seed := uint64(1); seed <= 2; seed++ {
		g, err := store.Load(meta.ID)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{
			Eps: 0.25, Delta: 0.01, Rng: dpkron.NewRand(seed),
		})
		if err != nil {
			log.Fatal(err)
		}
		inits = append(inits, res.Init)
	}
	fmt.Println("fits completed:", len(inits))
	fmt.Println("store id stable:", meta.ID == dpkron.DatasetID(mustLoad(store, meta.ID)))
	// Output:
	// imported nodes: 512
	// fits completed: 2
	// store id stable: true
}

func mustLoad(s *dpkron.DatasetStore, id string) *dpkron.Graph {
	g, err := s.Load(id)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// ExampleOpenReleaseCache memoizes a private release: the first fit of
// a question (dataset, ε, δ, K, seed) computes and debits the ledger;
// re-asking the identical question is answered from the cache — pure
// post-processing of an already-released value, so it costs zero
// budget even though the ledger is exhausted.
func ExampleOpenReleaseCache() {
	dir, err := os.MkdirTemp("", "dpkron-releases")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	model, _ := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 9)
	sensitive := model.Sample(dpkron.NewRand(1))

	led, err := dpkron.OpenLedger(filepath.Join(dir, "ledger.json"))
	if err != nil {
		log.Fatal(err)
	}
	ds := dpkron.DatasetID(sensitive)
	// Allowance for exactly one (0.25, 0.01) fit.
	if err := led.SetBudget(ds, dpkron.Budget{Eps: 0.25, Delta: 0.01}); err != nil {
		log.Fatal(err)
	}
	cache, err := dpkron.OpenReleaseCache(filepath.Join(dir, "cache"))
	if err != nil {
		log.Fatal(err)
	}

	key := dpkron.ReleaseKeyFor(ds, 0.25, 0.01, 9, 7)
	for i := 1; i <= 2; i++ {
		if _, ok := cache.Get(key); ok {
			fmt.Printf("fit %d: served from cache (no budget spent)\n", i)
			continue
		}
		// Miss: debit first, then run the mechanisms and memoize.
		if err := led.Spend(ds, dpkron.PlannedReceipt(0.25, 0.01)); err != nil {
			log.Fatal(err)
		}
		res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
			Eps: 0.25, Delta: 0.01, K: 9, Rng: dpkron.NewRand(7),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cache.Put(key, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fit %d: computed, spent %s\n", i, res.Privacy)
	}
	fmt.Println("remaining:", led.Remaining(ds))
	// Output:
	// fit 1: computed, spent (0.25, 0.01)-DP
	// fit 2: served from cache (no budget spent)
	// remaining: (0, 0)-DP
}
