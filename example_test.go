package dpkron_test

import (
	"fmt"
	"log"
	"strings"

	"dpkron"
)

// ExampleReadEdgeList parses the SNAP edge-list text format the paper's
// datasets ship in: '#' comments, one whitespace-separated pair per
// line; loops are dropped and duplicate edges merged.
func ExampleReadEdgeList() {
	data := `# toy triangle with a pendant node
0 1
1 2
2 0
2 3
`
	g, err := dpkron.ReadEdgeList(strings.NewReader(data), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", g.NumNodes())
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("triangles:", dpkron.Triangles(g))
	// Output:
	// nodes: 4
	// edges: 4
	// triangles: 1
}

// ExampleEstimatePrivate is the README quick start: a data owner runs
// the paper's Algorithm 1 on a sensitive graph and releases an
// (ε, δ)-differentially private SKG initiator. Here the sensitive graph
// is a synthetic stand-in sampled from a known model so the example is
// self-contained and deterministic.
func ExampleEstimatePrivate() {
	truth := dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}
	model, err := dpkron.NewModel(truth, 10) // 2^10 = 1024 nodes
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))

	res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	// res.Init is the private initiator Θ̃ — safe to publish under the
	// composed guarantee, as are res.Features and res.DegreeSeq.
	fmt.Println("guarantee:", res.Privacy)
	fmt.Println("kronecker power:", res.K)
	fmt.Println("mechanisms charged:", len(res.Charges))
	// Output:
	// guarantee: (0.2, 0.01)-DP
	// kronecker power: 10
	// mechanisms charged: 2
}

// ExamplePrivateResult_Model closes the loop of the paper's workflow:
// the released initiator defines an SKG model from which anyone can
// sample synthetic graphs that mimic the sensitive original.
func ExamplePrivateResult_Model() {
	model, err := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))
	res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err)
	}

	synth := res.Model().Sample(dpkron.NewRand(3)) // post-processing: costs no privacy
	fmt.Println("synthetic nodes:", synth.NumNodes())
	fmt.Println("same node count as original:", synth.NumNodes() == sensitive.NumNodes())
	// Output:
	// synthetic nodes: 1024
	// same node count as original: true
}
