package dpkron_test

import (
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpkron/internal/dataset"
	"dpkron/internal/extsort"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// TestStreamingGenerateBoundedMemory is the out-of-core smoke test: a
// k=22 ball-drop sample (16.7M edges — the in-memory route would hold
// ~600 MB across the key slices and the CSR build) streamed into a
// store must keep peak heap growth under a small fixed budget,
// independent of the edge count. Skipped under -short; CI runs it as a
// dedicated step.
func TestStreamingGenerateBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming RSS smoke is minutes-scale; run without -short")
	}
	const (
		k      = 22
		target = 16 << 20 // edges
		// The budget covers the CSR offset array of 2^22 nodes (16 MB),
		// the spill chunks, sort scratch, and allocator slack — and is
		// ~10% of what materializing the sample would take.
		heapBudget = 192 << 20
	)
	m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, k)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	// Peak sampler: HeapInuse polled while the pipeline runs. Coarse but
	// honest — it sees every transient the pipeline ever holds at once.
	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak.Load() {
					peak.Store(ms.HeapInuse)
				}
			}
		}
	}()

	sorter, err := extsort.NewTemp(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sorter.RemoveAll()
	es, err := m.StreamBallDropNCtx(liveRun(t, 0), randx.New(22), target, sorter)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	store, err := dataset.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := store.PutStream(es, "rss-smoke", "generated")
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if meta.Edges != target {
		t.Fatalf("streamed %d edges, want %d", meta.Edges, target)
	}
	grew := int64(peak.Load()) - int64(base.HeapInuse)
	t.Logf("k=%d target=%d: peak heap growth %.1f MiB (budget %.0f MiB), stored %.1f MiB v2",
		k, target, float64(grew)/(1<<20), float64(heapBudget)/(1<<20), float64(meta.Bytes)/(1<<20))
	if grew > heapBudget {
		t.Errorf("peak heap grew %.1f MiB during streaming generate, budget %.0f MiB",
			float64(grew)/(1<<20), float64(heapBudget)/(1<<20))
	}
}
