// Package dpkron is a from-scratch Go implementation of the
// differentially private stochastic Kronecker graph (SKG) estimator of
// Mir and Wright ("A Differentially Private Estimator for the Stochastic
// Kronecker Graph Model", PAIS 2012), together with every substrate the
// paper builds on: the SKG model with exact and fast samplers, the
// Gleich–Owen KronMom moment estimator, the Leskovec–Faloutsos KronFit
// approximate MLE, Hay et al.'s private degree sequences, Nissim et
// al.'s smooth-sensitivity triangle counts, and the graph-statistics
// toolkit (hop plots, spectra, clustering) used in the paper's
// evaluation.
//
// # Quick start
//
//	g, _ := dpkron.ReadEdgeList(f, 0)
//	res, _ := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{
//		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(1),
//	})
//	fmt.Println("private initiator:", res.Init) // safe to publish
//	synth := res.Model().Sample(dpkron.NewRand(2)) // synthetic graph
//
// The released Result carries the private initiator Θ̃, the private
// feature counts, the noisy degree sequence and a per-mechanism privacy
// accounting (Result.Receipt); everything except Result.Triangles.Exact
// is safe to publish under the composed (ε, δ) guarantee.
//
// # Privacy budgeting
//
// The per-release guarantee composes across releases: fitting the same
// graph twice spends twice. A persistent Ledger (OpenLedger) bounds the
// cumulative spend per dataset — give a dataset a total (ε, δ)
// allowance, debit each fit's PlannedReceipt before running it, and the
// ledger refuses the debit once the allowance cannot cover it. See
// ExampleOpenLedger, and the Accountant type for in-process metering
// with pluggable composition policies.
//
// # Dataset store
//
// The register-once, query-many workflow the budgeting story implies
// has a home: a persistent, content-addressed DatasetStore (OpenStore,
// ImportDataset). A sensitive graph is imported a single time — from
// SNAP text, a gzipped stream, or a Matrix Market file, streamed
// straight into the graph builder — and stored in a compact checksummed
// binary CSR format whose load is bit-identical to parsing the original
// edge list and considerably faster. Every later interaction is by the
// dataset's id, which doubles as its ledger account: `dpkron fit -store
// DIR -in ds-...` on the command line, "dataset_id" in server fit
// requests. See ExampleOpenStore.
//
// # Release cache
//
// Differential privacy is closed under post-processing: once a release
// has been published, re-serving those exact bytes reveals nothing
// further, so only *distinct* questions should cost budget. A
// persistent ReleaseCache (OpenReleaseCache) memoizes each private fit
// under a canonical fingerprint of its question — dataset id, (ε, δ),
// Kronecker power, seed and the planned mechanism schedule — and
// answers repeats from storage with the original receipt, at zero
// budget and zero noise draws. Entries are checksummed; a damaged file
// is evicted and recomputed, never served. The server coalesces
// concurrent identical fits through a single-flight group (one job
// runs, everyone gets its result, the ledger is debited once), and the
// CLI takes the same directory via `fit -release-cache` and manages it
// with `dpkron cache list|info|rm`. See ExampleOpenReleaseCache.
//
// The experiment harness that regenerates the paper's Table 1 and
// Figures 1–4 lives in cmd/dpkron and the repository-root benchmarks.
//
// # Parallelism
//
// The hot paths — sampling, feature counting, the sensitivity scan and
// the estimators — shard across a bounded worker pool
// (internal/parallel). Sharding is deterministic: for a fixed seed,
// every result is bit-identical for every worker count, so seeded
// experiments stay exactly reproducible while using all cores. Options
// structs accept a Workers bound (<= 0 means runtime.GOMAXPROCS(0));
// plain entry points default to all cores. See README.md for the
// paper-to-code map and the engine's design rules.
//
// # Cancellation, deadlines and progress
//
// Every long-running entry point has a ...Ctx variant taking a *Run
// (NewRun / NewRunTimeout): a context.Context for cancellation and
// deadlines, a worker budget, and an optional ProgressSink receiving
// one event pair per pipeline stage. Cancellation only ever aborts —
// a cancelled Run makes the call return the context's error, never a
// perturbed result — and a Run that completes produces bits identical
// to the blocking entry point for the same seed. The `dpkron serve`
// command (internal/server) exposes the same pipeline as an HTTP/JSON
// job API with polling, stage progress, and cancellation.
//
// # Durability and crash recovery
//
// A crash between a ledger debit and the served release would strand
// spent budget. A Journal (OpenJournal) closes that window: the
// server appends every job transition to an append-only checksummed
// log — the admission record is fsynced, with the request and an
// idempotency token, before the ledger is touched — and on restart
// replays it, restoring finished jobs as pollable history and
// resuming interrupted private fits without a second debit
// (deterministic re-execution from the recorded seed lands the
// byte-identical release). The invariant: every debit is matched by a
// served release or an explicit journaled failure, never silence. A
// torn tail from a mid-write crash truncates to the last whole
// record; interior corruption is the typed error ErrJournalCorrupt.
// `dpkron serve -journal FILE` wires it up, and SIGTERM drains
// gracefully: admission refused with Retry-After, running jobs
// finished or cancelled into the journal, exit 0.
//
// # Out-of-core scale
//
// The dataset store holds graphs in two interchangeable binary
// layouts: the compact varint DPKG v1, and the mmap-friendly DPKG v2
// — fixed-width aligned CSR arrays behind a self-checksummed header —
// which a store Load opens in O(1) by mapping the file and serving
// the adjacency straight out of the page cache (internal/mmapfile;
// platforms without mmap decode the same bytes onto the heap).
// Generation scales the same way: `dpkron generate -store` and the
// server's store-and-omit-edges generate jobs stream sampled edges
// through a bounded-memory external sort-and-dedup (internal/extsort)
// into a one-pass v2 encoder, so peak residency is O(nodes), not
// O(edges). The streamed sampler consumes the same random streams as
// the in-memory one — for a fixed seed the stored dataset is
// bit-identical either way, down to its content-addressed id.
//
// # Observability
//
// The serving tier is fully instrumented, with zero dependencies: a
// MetricsRegistry (NewMetricsRegistry) of atomic counters, gauges and
// histograms rendered in the Prometheus text exposition format
// (MetricsHandler, GET /metrics), and structured request/job logging
// via log/slog (NewStructuredLogger). Handing a registry and logger
// to server.Options instruments every layer — HTTP routes (latency,
// status, in-flight), the job queue (submissions, per-stage wall
// clock, queue/running gauges), the privacy ledger (debits, refusals,
// remaining budget per dataset), the release cache, the journal's
// fsync latency, and the dataset store's load routes. Every request
// carries an X-Request-ID (echoed or generated) that threads through
// the access and admission logs; refused admissions (budget, queue,
// body cap, drain) are counted by reason and warn-logged, never
// silent. Observation never perturbs the observed: a nil registry and
// logger are true no-ops, and fixed-seed releases are bit-identical
// with or without instrumentation. `dpkron serve` flags: -metrics-addr,
// -pprof, -log-format, -log-level; GET /readyz reports drain state
// for load balancers, distinct from /healthz liveness.
//
// # Tracing and privacy audit
//
// On top of metrics and logs sits a dependency-free span tracer
// (NewTracer): each server job records a tree of timed spans —
// admission, journal append, ledger debit, release-cache lookup,
// dataset load, queue wait, and one span per algorithm1/* pipeline
// stage — and every privacy-budget debit or refusal lands on the tree
// as an event carrying the mechanism name, the (ε, δ) charged and the
// budget remaining, cross-referenced to the journaled receipt by its
// idempotency token. A job's trace therefore doubles as its
// privacy-audit timeline. The server joins W3C Trace Context: a valid
// incoming traceparent header is adopted and echoed, so the job's
// trace id is the caller's. Traces are retained in a bounded
// in-memory TraceStore (NewTraceStore, server.Options.Traces; evicted
// with job history) and exported three ways: GET /v1/jobs/{id}/trace
// (the TraceTree JSON), ?format=chrome (WriteChromeTrace, loadable in
// chrome://tracing and ui.perfetto.dev), and `dpkron job trace` (an
// ASCII waterfall). `dpkron audit <dataset>` needs no server: it
// replays the ledger's time-stamped receipts against the journal into
// a chronological spend report naming the job and request that paid.
// The observability discipline is unchanged: a nil tracer, span or
// store no-ops everywhere, and traced runs release bit-identical
// results.
package dpkron
