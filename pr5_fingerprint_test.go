package dpkron_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/randx"
)

// PR 5 introduces the persistent dataset store and its binary CSR
// codec. A stored graph must load bit-identically to parsing the
// original edge list — same CSR arrays, hence the same neighbour
// iteration order, hence the same released bits for any fixed seed.
// These tests pin that end to end against the PR 2 hashes (via
// pr3_fingerprint_test.go constants): text parse, binary round trip,
// and a store Put/Load cycle must all feed Algorithm 1 into the exact
// historical release.

func TestFingerprintStoredDatasetEstimate(t *testing.T) {
	g := fpGraphK10(t)
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
	)

	// Route 1: the graph as serialized edge-list text (how the paper's
	// datasets arrive).
	var text bytes.Buffer
	if err := g.WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	fromText, err := graph.ReadEdgeList(&text, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Route 2: the binary codec.
	fromBinary, err := dataset.Unmarshal(dataset.Marshal(g))
	if err != nil {
		t.Fatal(err)
	}

	// Route 3: a full store Put/Load cycle on disk.
	store, err := dataset.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := store.Put(g, "fingerprint", "generated")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != accountant.DatasetID(g) {
		t.Fatalf("store id %s != ledger fingerprint %s", meta.ID, accountant.DatasetID(g))
	}
	fromStore, err := store.Load(meta.ID)
	if err != nil {
		t.Fatal(err)
	}

	for label, got := range map[string]*graph.Graph{
		"text-parse":  fromText,
		"binary-load": fromBinary,
		"store-load":  fromStore,
	} {
		if !g.Equal(got) {
			t.Errorf("%s: graph differs from the original", label)
			continue
		}
		// The loaded graph drives the accounted Algorithm 1 with the
		// exact PR 2/PR 4 seeds and must release the pinned bits.
		acc := accountant.New(nil).WithLimit(dp.Budget{Eps: 0.5, Delta: 0.01})
		res, err := core.EstimateCtx(liveRun(t, 4), got, core.Options{
			Eps: 0.5, Delta: 0.01, Rng: randx.New(9), Accountant: acc,
		})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if fp := fpHashFloats(res.Init.A, res.Init.B, res.Init.C); fp != wantInit {
			t.Errorf("%s init fingerprint = %#x, want %#x (PR 2)", label, fp, wantInit)
		}
		if fp := fpHashFloats(res.Features.E, res.Features.H, res.Features.T, res.Features.Delta); fp != wantFeats {
			t.Errorf("%s features fingerprint = %#x, want %#x (PR 2)", label, fp, wantFeats)
		}
		// The content id survives every route, so ledger spend keyed by
		// it accrues to one account no matter how the graph was loaded.
		if id := accountant.DatasetID(got); id != meta.ID {
			t.Errorf("%s: dataset id %s != %s", label, id, meta.ID)
		}
	}
}

// TestFingerprintStreamingReadEdgeList pins the PR 5 scanner refactor:
// the streaming ReadEdgeList must produce the identical graph (and
// hence the identical sampler fingerprint input) as the historical
// slice-accumulating parser did, including header handling.
func TestFingerprintStreamingReadEdgeList(t *testing.T) {
	g := fpGraphK10(t)
	var text bytes.Buffer
	if err := g.WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	back, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	const wantGraph = uint64(0x6c10859be86b36ad) // PR 2 SampleExact pin
	if got := fpHashGraph(back); got != wantGraph {
		t.Errorf("streamed parse fingerprint = %#x, want %#x (PR 2)", got, wantGraph)
	}
}
