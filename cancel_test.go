package dpkron_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dpkron/internal/anf"
	"dpkron/internal/core"
	"dpkron/internal/experiments"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/linalg"
	"dpkron/internal/optimize"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// cancelledRun returns a Run whose context is already cancelled.
func cancelledRun(workers int) *pipeline.Run {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return pipeline.New(ctx, workers, nil)
}

// TestEveryCtxPathReturnsPromptlyWhenPreCancelled walks every ...Ctx
// entry point with a pre-cancelled context: each must return
// context.Canceled (never a result) well before the work could have
// completed.
func TestEveryCtxPathReturnsPromptlyWhenPreCancelled(t *testing.T) {
	m, _ := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	g := m.SampleExactWorkers(randx.New(42), 0)
	d, _ := experiments.Lookup("Synthetic")

	cases := []struct {
		name string
		call func(run *pipeline.Run) error
	}{
		{"skg.SampleExactCtx", func(r *pipeline.Run) error {
			_, err := m.SampleExactCtx(r, randx.New(1))
			return err
		}},
		{"skg.SampleBallDropNCtx", func(r *pipeline.Run) error {
			_, err := m.SampleBallDropNCtx(r, randx.New(1), 5000)
			return err
		}},
		{"skg.SampleCtx", func(r *pipeline.Run) error {
			_, err := m.SampleCtx(r, randx.New(1))
			return err
		}},
		{"stats.FeaturesOfCtx", func(r *pipeline.Run) error {
			_, err := stats.FeaturesOfCtx(r, g)
			return err
		}},
		{"stats.HopPlotCtx", func(r *pipeline.Run) error {
			_, err := stats.HopPlotCtx(r, g)
			return err
		}},
		{"stats.TrianglesCtx", func(r *pipeline.Run) error {
			_, err := stats.TrianglesCtx(r, g)
			return err
		}},
		{"anf.HopPlotCtx", func(r *pipeline.Run) error {
			_, err := anf.HopPlotCtx(r, g, anf.Options{Trials: 8, Rng: randx.New(1)})
			return err
		}},
		{"smoothsens.MaxCommonNeighborsCtx", func(r *pipeline.Run) error {
			_, err := smoothsens.MaxCommonNeighborsCtx(r, g)
			return err
		}},
		{"smoothsens.PrivateTrianglesCtx", func(r *pipeline.Run) error {
			_, err := smoothsens.PrivateTrianglesCtx(r, g, 0.2, 0.01, randx.New(1))
			return err
		}},
		{"linalg.ScreeValuesCtx", func(r *pipeline.Run) error {
			_, err := linalg.ScreeValuesCtx(r, g, 16, randx.New(1))
			return err
		}},
		{"linalg.NetworkValuesCtx", func(r *pipeline.Run) error {
			_, err := linalg.NetworkValuesCtx(r, g, randx.New(1))
			return err
		}},
		{"kronmom.FitCtx", func(r *pipeline.Run) error {
			_, err := kronmom.FitCtx(r, stats.FeaturesOf(g), 10, kronmom.Options{Rng: randx.New(1)})
			return err
		}},
		{"kronmom.FitGraphCtx", func(r *pipeline.Run) error {
			_, err := kronmom.FitGraphCtx(r, g, 10, kronmom.Options{Rng: randx.New(1)})
			return err
		}},
		{"kronfit.FitCtx", func(r *pipeline.Run) error {
			_, err := kronfit.FitCtx(r, g, kronfit.Options{K: 10, Rng: randx.New(1)})
			return err
		}},
		{"core.EstimateCtx", func(r *pipeline.Run) error {
			_, err := core.EstimateCtx(r, g, core.Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(1)})
			return err
		}},
		{"experiments.GenerateCtx", func(r *pipeline.Run) error {
			_, err := d.GenerateCtx(r)
			return err
		}},
		{"experiments.RunTable1DatasetsCtx", func(r *pipeline.Run) error {
			_, err := experiments.RunTable1DatasetsCtx(r, experiments.Registry()[:1], experiments.Table1Options{})
			return err
		}},
		{"experiments.RunFigureCtx", func(r *pipeline.Run) error {
			_, err := experiments.RunFigureCtx(r, d, experiments.FigureOptions{})
			return err
		}},
		{"experiments.EpsilonSweepCtx", func(r *pipeline.Run) error {
			_, err := experiments.EpsilonSweepCtx(r, g, 10, []float64{0.5}, 0.01, 1, 1)
			return err
		}},
		{"experiments.SmoothSensGrowthCtx", func(r *pipeline.Run) error {
			_, err := experiments.SmoothSensGrowthCtx(r, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, []int{8, 9}, 0.2, 0.01, 1)
			return err
		}},
		{"experiments.SmoothSensCompareCtx", func(r *pipeline.Run) error {
			_, err := experiments.SmoothSensCompareCtx(r, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, []int{8}, 0.2, 0.01, 1)
			return err
		}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			start := time.Now()
			err := tc.call(cancelledRun(workers))
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s (workers=%d): err = %v, want context.Canceled", tc.name, workers, err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("%s (workers=%d): took %v on a pre-cancelled context", tc.name, workers, elapsed)
			}
		}
	}
}

// TestMidRunCancellationViaSink cancels deterministically from inside
// the pipeline: the progress sink fires the cancel when a chosen stage
// event arrives, so the cancellation always lands mid-run.
func TestMidRunCancellationViaSink(t *testing.T) {
	m, _ := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	g := m.SampleExactWorkers(randx.New(42), 0)

	// Cancel as soon as the triangle-release stage starts: Algorithm 1
	// must abort before the moment fit ever begins.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stages []string
	run := pipeline.New(ctx, 2, func(e pipeline.Event) {
		stages = append(stages, e.Stage)
		if e.Stage == "algorithm1/triangle-release" && e.Frac == 0 {
			cancel()
		}
	})
	_, err := core.EstimateCtx(run, g, core.Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(3)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EstimateCtx err = %v, want context.Canceled", err)
	}
	joined := strings.Join(stages, ",")
	if !strings.Contains(joined, "algorithm1/degree-release") {
		t.Errorf("degree-release never started: %v", stages)
	}
	if strings.Contains(joined, "moment-fit/kronmom") {
		t.Errorf("moment fit ran after cancellation: %v", stages)
	}

	// Same shape for KronFit: cancel at the first per-iteration
	// progress event; the fit must not complete all its iterations.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	run2 := pipeline.New(ctx2, 1, func(e pipeline.Event) {
		if e.Stage == "kronfit" && e.Frac > 0 && e.Frac < 1 {
			cancel2()
		}
	})
	_, err = kronfit.FitCtx(run2, g, kronfit.Options{K: 10, Iters: 40, Rng: randx.New(5)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("kronfit.FitCtx err = %v, want context.Canceled", err)
	}
}

// TestNelderMeadCtxCancellation covers the optimizer directly: a
// context cancelled from inside the objective stops the descent.
func TestNelderMeadCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	f := func(x []float64) float64 {
		evals++
		if evals == 20 {
			cancel()
		}
		return x[0]*x[0] + x[1]*x[1]
	}
	_, err := optimize.NelderMeadCtx(ctx, f, []float64{5, 5}, optimize.NelderMeadOptions{MaxIter: 10000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if evals > 100 {
		t.Errorf("descent kept evaluating after cancel: %d evals", evals)
	}
	if _, err := optimize.GridSearchCtx(cancelledCtx(), f, []float64{0, 0}, []float64{1, 1}, 50); !errors.Is(err, context.Canceled) {
		t.Errorf("GridSearchCtx pre-cancelled err = %v", err)
	}
	if _, err := optimize.MultiStartCtx(cancelledCtx(), f, []float64{0, 0}, []float64{1, 1}, 2, 3,
		randx.New(1), optimize.NelderMeadOptions{}, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("MultiStartCtx pre-cancelled err = %v", err)
	}
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}
