package dpkron_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dpkron/internal/obs"
	"dpkron/internal/server"
	"dpkron/internal/trace"
)

// PR 10 threads a span tracer through every serving layer and turns
// each job's trace into its privacy-audit timeline. Tracing must
// never perturb the traced: a fit served by a fully traced server —
// trace store attached, on top of PR 9's full instrumentation — must
// release the exact PR 2 bits, and the trace it records must account
// for every stage and every ε/δ debit of that release.

// TestFingerprintTracedServer fits the PR 2 graph (eps=0.5,
// delta=0.01, k=10, seed=9) through a fully traced server, checks the
// released initiator and features against the PR 2 pins, and then
// audits the trace itself: one span per algorithm1/* stage and audit
// events whose summed ε/δ equal the job's receipt.
func TestFingerprintTracedServer(t *testing.T) {
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
	)
	g := fpGraphK10(t)
	var el strings.Builder
	if err := g.WriteEdgeList(&el); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	logger, err := obs.NewLogger(io.Discard, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{
		Workers:     4,
		MaxJobs:     2,
		MaxQueue:    8,
		Metrics:     reg,
		Logger:      logger,
		EnablePprof: true,
		Traces:      trace.NewStore(0),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(map[string]any{
		"method": "private", "eps": 0.5, "delta": 0.01,
		"k": 10, "seed": 9, "edgelist": el.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/fit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Header.Get("traceparent"), "00-") {
		t.Errorf("fit response carries no traceparent: %q", resp.Header.Get("traceparent"))
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit submit: status %d", resp.StatusCode)
	}

	var result struct {
		Initiator struct{ A, B, C float64 } `json:"initiator"`
		Features  *struct {
			E, H, T, Delta float64
		} `json:"features"`
		Receipt *struct {
			Total   struct{ Eps, Delta float64 } `json:"total"`
			Charges []json.RawMessage            `json:"charges"`
		} `json:"receipt"`
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		r2, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(r2.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if v.Status == "done" {
			if err := json.Unmarshal(v.Result, &result); err != nil {
				t.Fatal(err)
			}
			break
		}
		if v.Status == "failed" || v.Status == "cancelled" {
			t.Fatalf("fit job %s: %s (%s)", job.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fit job %s did not finish", job.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if fp := fpHashFloats(result.Initiator.A, result.Initiator.B, result.Initiator.C); fp != wantInit {
		t.Errorf("traced init fingerprint = %#x, want %#x (PR 2)", fp, wantInit)
	}
	if result.Features == nil {
		t.Fatal("fit result carries no features")
	}
	if fp := fpHashFloats(result.Features.E, result.Features.H, result.Features.T, result.Features.Delta); fp != wantFeats {
		t.Errorf("traced features fingerprint = %#x, want %#x (PR 2)", fp, wantFeats)
	}
	if result.Receipt == nil {
		t.Fatal("fit result carries no receipt")
	}

	// The trace accounts for the run: one span per algorithm1/* stage
	// of the private pipeline...
	tresp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", tresp.StatusCode)
	}
	var tree trace.Tree
	if err := json.NewDecoder(tresp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	stageCount := map[string]int{}
	var auditEps, auditDelta float64
	var auditEvents int
	tree.Walk(func(n *trace.Node, depth int) {
		if strings.HasPrefix(n.Name, "algorithm1/") {
			stageCount[n.Name]++
		}
		for _, e := range n.Events {
			if e.Name != "accountant-debit" {
				continue
			}
			auditEvents++
			eps, err1 := strconv.ParseFloat(e.Attrs["eps"], 64)
			del, err2 := strconv.ParseFloat(e.Attrs["delta"], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("audit event with unparsable budget: %v", e.Attrs)
			}
			auditEps += eps
			auditDelta += del
		}
	})
	for _, stage := range []string{
		"algorithm1/degree-release",
		"algorithm1/feature-derivation",
		"algorithm1/triangle-release",
		"algorithm1/moment-fit",
		"algorithm1/moment-fit/kronmom",
	} {
		if stageCount[stage] != 1 {
			t.Errorf("trace has %d spans for stage %q, want exactly 1", stageCount[stage], stage)
		}
	}

	// ...and one audit event per ledger debit, summing to the receipt.
	if auditEvents != len(result.Receipt.Charges) {
		t.Errorf("trace has %d accountant-debit events, receipt itemizes %d charges",
			auditEvents, len(result.Receipt.Charges))
	}
	if math.Abs(auditEps-result.Receipt.Total.Eps) > 1e-9 ||
		math.Abs(auditDelta-result.Receipt.Total.Delta) > 1e-9 {
		t.Errorf("audit events sum to (%g, %g); receipt total is (%g, %g)",
			auditEps, auditDelta, result.Receipt.Total.Eps, result.Receipt.Total.Delta)
	}
}
