// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 4.2), plus the extension studies and
// micro-benchmarks of the core kernels.
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark prints its regenerated rows/series once per
// process, so the bench run doubles as the reproduction harness:
//
//	BenchmarkTable1            — Table 1   (parameter comparison)
//	BenchmarkFigure1_CAGrQc    — Figure 1  (CA-GrQc, incl. expected-over-N curves)
//	BenchmarkFigure2_AS20      — Figure 2  (AS20, single realizations)
//	BenchmarkFigure3_CAHepTh   — Figure 3  (CA-HepTh, single realizations)
//	BenchmarkFigure4_Synthetic — Figure 4  (synthetic source)
//	BenchmarkEpsilonSweep      — privacy–utility across ε (§4.2 extension)
//	BenchmarkSmoothSensGrowth  — SS_Δ vs graph size (§5 future work)
//	BenchmarkSmoothSensCompare — SS_Δ: SKG vs G(n,p) (§5 future work)
//	BenchmarkDistNormAblation  — Gleich–Owen objective robustness (§3.4)
//	BenchmarkModelSelection    — N1=2 vs N1=3 sources (§3.3)
package dpkron_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpkron"
	"dpkron/internal/accountant"
	"dpkron/internal/anf"
	"dpkron/internal/core"
	"dpkron/internal/dataset"
	"dpkron/internal/degseq"
	"dpkron/internal/dp"
	"dpkron/internal/experiments"
	"dpkron/internal/extsort"
	"dpkron/internal/graph"
	"dpkron/internal/journal"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/obs"
	"dpkron/internal/randx"
	"dpkron/internal/release"
	"dpkron/internal/server"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
	"dpkron/internal/trace"
)

var printOnce sync.Map

// printResult emits experiment output exactly once per process so
// repeated benchmark iterations do not spam the log.
func printResult(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, text)
	}
}

// --- Table 1 ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Table1Options{Eps: 0.2, Delta: 0.01, Seed: 7}
		rows, err := experiments.RunTable1(opts)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Table 1", experiments.RenderTable1(rows, opts))
	}
}

// --- Figures 1–4 ---

func benchFigure(b *testing.B, dataset string, expectedRuns int) {
	b.Helper()
	d, err := experiments.Lookup(dataset)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(d, experiments.FigureOptions{
			Eps: 0.2, Delta: 0.01, Seed: 11, ExpectedRuns: expectedRuns,
		})
		if err != nil {
			b.Fatal(err)
		}
		printResult("Figure "+dataset, experiments.RenderFigure(res, 9))
	}
}

// BenchmarkFigure1_CAGrQc regenerates Figure 1, including the paper's
// "Expected" curves. The paper averages 100 realizations; 20 keeps the
// benchmark under a minute while the estimate of the mean is already
// tight (use cmd/dpkron figure -expected 100 for the full run).
func BenchmarkFigure1_CAGrQc(b *testing.B)    { benchFigure(b, "CA-GrQc-like", 20) }
func BenchmarkFigure2_AS20(b *testing.B)      { benchFigure(b, "AS20-like", 0) }
func BenchmarkFigure3_CAHepTh(b *testing.B)   { benchFigure(b, "CA-HepTh-like", 0) }
func BenchmarkFigure4_Synthetic(b *testing.B) { benchFigure(b, "Synthetic", 0) }

// --- Extension studies ---

func BenchmarkEpsilonSweep(b *testing.B) {
	d, err := experiments.Lookup("Synthetic")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EpsilonSweep(g, d.K,
			[]float64{0.05, 0.1, 0.2, 0.5, 1, 2}, 0.01, 5, 3)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Epsilon sweep (Synthetic)", experiments.RenderSweep(rows))
	}
}

func BenchmarkSmoothSensGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SmoothSensGrowth(
			skg.Initiator{A: 0.99, B: 0.45, C: 0.25},
			[]int{8, 9, 10, 11, 12, 13, 14}, 0.2, 0.01, 3)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Smooth sensitivity growth", experiments.RenderSSGrowth(rows))
	}
}

func BenchmarkDistNormAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DistNormAblation(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, 12, 21)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Dist/Norm ablation (k=12 synthetic)", experiments.RenderAblation(rows))
	}
}

// --- Serial vs parallel: the sharded engine at scale ---
//
// These benchmarks compare the worker-pool hot paths against their
// single-goroutine baselines on k >= 16 inputs (65k–262k nodes). The
// workers=1 case runs the identical sharded code on one goroutine, so
// the ratio isolates parallel speedup rather than algorithmic changes;
// outputs are bit-identical across worker counts by construction.
//
//	go test -bench 'SampleExact/|SampleBallDrop/|Features/' -benchtime 1x

var featureGraphCache sync.Map

// featureGraph returns a cached dense-ish ball-drop SKG sample at the
// given k, shared across sub-benchmarks so setup cost is paid once.
func featureGraph(b *testing.B, k, edges int) *dpkron.Graph {
	b.Helper()
	key := fmt.Sprintf("%d/%d", k, edges)
	if g, ok := featureGraphCache.Load(key); ok {
		return g.(*dpkron.Graph)
	}
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: k}
	g := m.SampleBallDropN(randx.New(99), edges)
	featureGraphCache.Store(key, g)
	return g
}

func BenchmarkSampleExact(b *testing.B) {
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 16}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=16/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := m.SampleExactWorkers(randx.New(uint64(i)+1), workers)
				if g.NumNodes() != 1<<16 {
					b.Fatal("bad sample")
				}
			}
		})
	}
}

func BenchmarkSampleBallDrop(b *testing.B) {
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 18}
	target := 1 << 21 // 2M edges on 262k nodes
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=18/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := m.SampleBallDropNWorkers(randx.New(uint64(i)+1), target, workers)
				if g.NumEdges() != target {
					b.Fatalf("placed %d edges, want %d", g.NumEdges(), target)
				}
			}
		})
	}
}

// BenchmarkFeatures measures the full matching-feature computation
// (edges, wedges, tripins, triangles) on a k=17 graph with 2M edges.
func BenchmarkFeatures(b *testing.B) {
	g := featureGraph(b, 17, 1<<21)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=17/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := stats.FeaturesOfWorkers(g, workers)
				if f.E == 0 {
					b.Fatal("bad features")
				}
			}
		})
	}
}

// BenchmarkHopPlotANFWorkers measures sketch propagation at k=16.
func BenchmarkHopPlotANFWorkers(b *testing.B) {
	g := featureGraph(b, 16, 1<<20)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("k=16/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				anf.HopPlot(g, anf.Options{Trials: 16, Rng: randx.New(5), Workers: workers})
			}
		})
	}
}

// --- Perf-trajectory benchmarks (scripts/bench.sh → BENCH_2.json) ---
//
// These three families track the hot paths optimized in PR 2
// (table-driven KronFit kernels, radix-sort graph construction, map-free
// ball dropping). scripts/bench.sh runs them and emits BENCH_2.json so
// later PRs can compare against the recorded trajectory.

// buildBenchBuilder returns a Builder pre-loaded with m random edge
// mentions (duplicates included) on 2^17 nodes, so the benchmark loop
// isolates Build (sort + dedupe + CSR fill).
func buildBenchBuilder(m int) *graph.Builder {
	n := 1 << 17
	rng := randx.New(uint64(m))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.IntN(n)
		v := rng.IntN(n)
		if u == v {
			v = (v + 1) % n
		}
		b.AddEdge(u, v)
	}
	return b
}

func BenchmarkGraphBuild(b *testing.B) {
	for _, m := range []int{100000, 1000000} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			builder := buildBenchBuilder(m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := builder.Build()
				if g.NumNodes() != 1<<17 {
					b.Fatal("bad build")
				}
			}
		})
	}
}

// BenchmarkKronFitMetropolis times one full gradient iteration of
// kronfit.Fit — dominated by the Metropolis warmup/sample swaps plus the
// per-edge gradient sums — on a single worker so the ratio tracks the
// arithmetic kernels rather than parallel speedup.
func BenchmarkKronFitMetropolis(b *testing.B) {
	for _, cfg := range []struct{ k, edges int }{{12, 1 << 15}, {14, 1 << 17}} {
		g := featureGraph(b, cfg.k, cfg.edges)
		b.Run(fmt.Sprintf("K=%d", cfg.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := kronfit.Fit(g, kronfit.Options{
					K: cfg.k, Iters: 1, Rng: randx.New(uint64(i) + 1), Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBallDropN times SampleBallDropNWorkers at fixed targets —
// drop generation plus duplicate elimination plus graph construction.
func BenchmarkBallDropN(b *testing.B) {
	for _, cfg := range []struct{ k, target int }{
		{16, 1 << 19}, {18, 1 << 20}, {20, 1 << 21},
	} {
		m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: cfg.k}
		b.Run(fmt.Sprintf("K=%d", cfg.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := m.SampleBallDropNWorkers(randx.New(uint64(i)+1), cfg.target, 0)
				if g.NumEdges() != cfg.target {
					b.Fatalf("placed %d edges, want %d", g.NumEdges(), cfg.target)
				}
			}
		})
	}
}

// --- Pipeline-overhead benchmarks (scripts/bench.sh → BENCH_3.json) ---
//
// Each pair runs the same workload through the historical blocking
// entry point ("plain") and through its ...Ctx variant under a live,
// cancellable-but-never-cancelled context ("ctx") — the real
// cancellation path, not the background fast path. PR 3's acceptance
// bound is ctx within 2% of plain; scripts/bench.sh computes the
// ratios into BENCH_3.json.

func BenchmarkPipelineOverhead(b *testing.B) {
	g := featureGraph(b, 16, 1<<20)
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 16}

	b.Run("features-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if f := stats.FeaturesOfWorkers(g, 1); f.E == 0 {
				b.Fatal("bad features")
			}
		}
	})
	b.Run("features-ctx", func(b *testing.B) {
		run := liveRun(b, 1)
		for i := 0; i < b.N; i++ {
			f, err := stats.FeaturesOfCtx(run, g)
			if err != nil || f.E == 0 {
				b.Fatal("bad features", err)
			}
		}
	})

	b.Run("balldrop-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g := m.SampleBallDropNWorkers(randx.New(uint64(i)+1), 1<<19, 1); g.NumEdges() != 1<<19 {
				b.Fatal("bad sample")
			}
		}
	})
	b.Run("balldrop-ctx", func(b *testing.B) {
		run := liveRun(b, 1)
		for i := 0; i < b.N; i++ {
			g, err := m.SampleBallDropNCtx(run, randx.New(uint64(i)+1), 1<<19)
			if err != nil || g.NumEdges() != 1<<19 {
				b.Fatal("bad sample", err)
			}
		}
	})

	kg := featureGraph(b, 12, 1<<15)
	b.Run("kronfit-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kronfit.Fit(kg, kronfit.Options{K: 12, Iters: 1, Rng: randx.New(uint64(i) + 1), Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kronfit-ctx", func(b *testing.B) {
		run := liveRun(b, 1)
		for i := 0; i < b.N; i++ {
			if _, err := kronfit.FitCtx(run, kg, kronfit.Options{K: 12, Iters: 1, Rng: randx.New(uint64(i) + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Mechanism-dispatch benchmarks (scripts/bench.sh → BENCH_4.json) ---
//
// Each pair runs one real release unit of the codebase directly
// ("direct": the historical dp.Laplace*/smoothsens path) and through
// the accounted mechanism handle ("accounted": charge recorded on a
// live accountant, then the identical draws). The pair granularity is
// the release the accountant actually meters — a whole degree-sequence
// vector, a whole triangle release — because that is where PR 4's
// ≤ 2% dispatch-overhead bound applies; scripts/bench.sh computes the
// ratios into BENCH_4.json's mechanism_dispatch section.

func BenchmarkMechanismDispatch(b *testing.B) {
	vals := make([]float64, 1<<12)
	for i := range vals {
		vals[i] = float64(i)
	}
	b.Run("laplacevec-n4096-direct", func(b *testing.B) {
		rng := randx.New(5)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := dp.LaplaceVec(vals, 2, 0.5, rng); len(out) != len(vals) {
				b.Fatal("bad release")
			}
		}
	})
	b.Run("laplacevec-n4096-accounted", func(b *testing.B) {
		rng := randx.New(5)
		acc := accountant.New(nil)
		mech := accountant.LaplaceVec{Sens: 2, Eps: 0.5}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := acc.Charge("bench/laplacevec", mech); err != nil {
				b.Fatal(err)
			}
			if out := mech.Apply(vals, rng); len(out) != len(vals) {
				b.Fatal("bad release")
			}
		}
	})

	dg := featureGraph(b, 12, 1<<15)
	b.Run("degseq-k12-direct", func(b *testing.B) {
		rng := randx.New(7)
		for i := 0; i < b.N; i++ {
			if out := degseq.Private(dg, 0.25, rng); len(out) != dg.NumNodes() {
				b.Fatal("bad release")
			}
		}
	})
	b.Run("degseq-k12-accounted", func(b *testing.B) {
		rng := randx.New(7)
		acc := accountant.New(nil)
		for i := 0; i < b.N; i++ {
			out, err := degseq.PrivateAcc(acc, dg, 0.25, rng)
			if err != nil || len(out) != dg.NumNodes() {
				b.Fatal("bad release", err)
			}
		}
	})

	// Both triangle legs run under the same live Run so the pair
	// isolates accounting overhead from the (separately benchmarked)
	// pipeline overhead. A k=8 release (~300 µs: sensitivity scan +
	// exact count + one draw) keeps each leg short enough that machine
	// drift between the paired legs stays below the ratio being
	// measured.
	tg := featureGraph(b, 8, 1<<11)
	b.Run("triangles-k8-direct", func(b *testing.B) {
		rng := randx.New(9)
		run := liveRun(b, 1)
		for i := 0; i < b.N; i++ {
			tri, err := smoothsens.PrivateTrianglesCtx(run, tg, 0.25, 0.01, rng)
			if err != nil || tri.Exact == 0 {
				b.Fatal("bad release", err)
			}
		}
	})
	b.Run("triangles-k8-accounted", func(b *testing.B) {
		rng := randx.New(9)
		acc := accountant.New(nil)
		run := liveRun(b, 1)
		for i := 0; i < b.N; i++ {
			tri, err := smoothsens.PrivateTrianglesAccCtx(run, acc, tg, 0.25, 0.01, rng)
			if err != nil || tri.Exact == 0 {
				b.Fatal("bad release", err)
			}
		}
	})
}

// --- Micro-benchmarks of the core kernels ---

func benchGraph(b *testing.B, k int) *dpkron.Graph {
	b.Helper()
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: k}
	return m.SampleExact(randx.New(1))
}

func BenchmarkSampleExactK11(b *testing.B) {
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 11}
	rng := randx.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := m.SampleExact(rng)
		if g.NumNodes() != 2048 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkSampleBallDropK14(b *testing.B) {
	m := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 14}
	rng := randx.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := m.SampleBallDrop(rng)
		if g.NumNodes() != 16384 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	g := benchGraph(b, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Triangles(g)
	}
}

func BenchmarkPrivateDegreeSequence(b *testing.B) {
	g := benchGraph(b, 12)
	rng := randx.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		degseq.Private(g, 0.1, rng)
	}
}

func BenchmarkSmoothSensitivity(b *testing.B) {
	g := benchGraph(b, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smoothsens.Smooth(g, 0.01)
	}
}

func BenchmarkMomentObjective(b *testing.B) {
	feats := stats.Features{E: 28980, H: 240000, T: 3.2e6, Delta: 48000}
	obj := kronmom.DefaultObjective()
	init := skg.Initiator{A: 0.99, B: 0.45, C: 0.25}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obj.Eval(feats, 13, init)
	}
}

func BenchmarkMomentFit(b *testing.B) {
	g := benchGraph(b, 12)
	feats := stats.FeaturesOf(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kronmom.Fit(feats, 12, kronmom.Options{Rng: randx.New(uint64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKronFitIteration(b *testing.B) {
	g := benchGraph(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kronfit.Fit(g, kronfit.Options{K: 10, Iters: 1, Rng: randx.New(uint64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrivateEstimateEndToEnd(b *testing.B) {
	g := benchGraph(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Estimate(g, core.Options{Eps: 0.2, Delta: 0.01, Rng: randx.New(uint64(i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHopPlotExact(b *testing.B) {
	g := benchGraph(b, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.HopPlot(g)
	}
}

func BenchmarkHopPlotANF(b *testing.B) {
	g := benchGraph(b, 13)
	rng := randx.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dpkron.ApproxHopPlot(g, 32, rng)
	}
}

func BenchmarkScreeValues(b *testing.B) {
	g := benchGraph(b, 12)
	rng := randx.New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dpkron.ScreeValues(g, 48, rng)
	}
}

// BenchmarkSmoothSensCompare contrasts SS_Δ on SKG samples against
// density-matched Erdős–Rényi graphs (the §5 comparison to Nissim et
// al.'s G(n,p) analysis).
func BenchmarkSmoothSensCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SmoothSensCompare(
			skg.Initiator{A: 0.99, B: 0.45, C: 0.25},
			[]int{8, 9, 10, 11, 12, 13}, 0.2, 0.01, 11)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Smooth sensitivity: SKG vs G(n,p)", experiments.RenderSSCompare(rows))
	}
}

// BenchmarkModelSelection regenerates the §3.3 model-selection study:
// a 2×2 moment fit applied to graphs from 2×2 and 3×3 initiators.
func BenchmarkModelSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ModelSelection(31)
		if err != nil {
			b.Fatal(err)
		}
		printResult("Model selection (N1=2 vs N1=3 source)", experiments.RenderModelSelection(rows))
	}
}

// --- Dataset-load benchmarks (scripts/bench.sh → BENCH_5.json) ---
//
// Each pair loads the same k=16..18 graph from SNAP edge-list text
// ("text": the streaming parser every pre-store fit paid on every run)
// and from the dataset store's binary CSR codec ("binary": what
// fit-by-dataset-id pays). Both decode from memory, so the ratio
// isolates parse cost from disk. scripts/bench.sh computes the
// binary_over_text ratios into BENCH_5.json's dataset_load section;
// the store's acceptance bar is binary measurably below text.

func BenchmarkDatasetLoad(b *testing.B) {
	for _, cfg := range []struct{ k, edges int }{
		{16, 1 << 19}, {17, 1 << 20}, {18, 1 << 21},
	} {
		g := featureGraph(b, cfg.k, cfg.edges)
		var text bytes.Buffer
		if err := g.WriteEdgeList(&text); err != nil {
			b.Fatal(err)
		}
		bin := dataset.Marshal(g)

		b.Run(fmt.Sprintf("K=%d-text", cfg.k), func(b *testing.B) {
			b.SetBytes(int64(text.Len()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()), 0)
				if err != nil || got.NumEdges() != g.NumEdges() {
					b.Fatal("bad parse", err)
				}
			}
		})
		b.Run(fmt.Sprintf("K=%d-binary", cfg.k), func(b *testing.B) {
			b.SetBytes(int64(len(bin)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := dataset.Unmarshal(bin)
				if err != nil || got.NumEdges() != g.NumEdges() {
					b.Fatal("bad decode", err)
				}
			}
		})
	}
}

// BenchmarkReleaseCache measures what the release cache buys: the
// K=16-cold leg is a full private fit (Algorithm 1 end to end, plus the
// memoizing Put a cache-enabled fit performs), the K=16-cached leg is
// what a repeat of the identical question costs — a cache Get plus the
// payload decode, zero mechanism work. scripts/bench.sh computes the
// cached_over_cold speedup into BENCH_6.json's release_cache section;
// the acceptance bar is cached throughput >= 20x cold at k=16.

func BenchmarkReleaseCache(b *testing.B) {
	g := featureGraph(b, 16, 1<<19)
	cache, err := release.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	key := release.KeyFor(ds, 0.5, 0.01, 16, 9, core.PlannedReceipt(0.5, 0.01))

	b.Run("K=16-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.Estimate(g, core.Options{Eps: 0.5, Delta: 0.01, K: 16, Rng: randx.New(9)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cache.Put(key, server.PrivateFitResult(res, ds)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("K=16-cached", func(b *testing.B) {
		if _, ok := cache.Get(key); !ok {
			b.Fatal("cold leg left no entry")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, ok := cache.Get(key)
			if !ok {
				b.Fatal("cache miss")
			}
			var fr server.FitResult
			if err := json.Unmarshal(e.Payload, &fr); err != nil {
				b.Fatal(err)
			}
			if fr.K != 16 {
				b.Fatalf("bad payload k=%d", fr.K)
			}
		}
	})
}

// BenchmarkJournalOverhead measures what crash durability costs on the
// serving path. Each op is one complete job lifecycle over the HTTP
// API — admission, a K=15 private fit by stored dataset id, completion
// — against a server with no journal (plain) and one journaling every
// transition, with fsynced admission and terminal records (journal).
// scripts/bench.sh computes journal_over_plain into BENCH_7.json's
// journal_overhead section; the acceptance bound is <= 1.02 — a job's
// durable records cost two fsyncs (a fixed handful of ms), which must
// disappear into a production-shaped fit of ~1 s.
func BenchmarkJournalOverhead(b *testing.B) {
	g := featureGraph(b, 15, 1<<19)
	store, err := dataset.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	meta, _, err := store.Put(g, "bench", "generated")
	if err != nil {
		b.Fatal(err)
	}

	lifecycle := func(b *testing.B, jnl *journal.Journal) {
		srv := server.New(server.Options{
			Workers: 1, MaxJobs: 1, MaxQueue: 4, MaxHistory: 64,
			Datasets: store, Journal: jnl,
		})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"method":"private","eps":0.4,"delta":0.01,"k":15,"seed":%d,"dataset_id":%q}`,
				i+1, meta.ID)
			resp, err := http.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var sub struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
				b.Fatalf("fit submit: %d %+v", resp.StatusCode, sub)
			}
			for {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
				if err != nil {
					b.Fatal(err)
				}
				var job struct {
					Status string `json:"status"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if job.Status == "done" {
					break
				}
				if job.Status == "failed" || job.Status == "cancelled" {
					b.Fatalf("job ended %s", job.Status)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}

	b.Run("K=15-plain", func(b *testing.B) { lifecycle(b, nil) })
	b.Run("K=15-journal", func(b *testing.B) {
		jnl, err := journal.Open(filepath.Join(b.TempDir(), "jobs.journal"))
		if err != nil {
			b.Fatal(err)
		}
		defer jnl.Close()
		lifecycle(b, jnl)
	})
}

// --- Out-of-core benchmarks (scripts/bench.sh → BENCH_8.json) ---
//
// MmapLoad pairs the cost of materializing a stored graph under the
// two DPKG layouts: "v1decode" reads the varint file and decodes the
// full CSR onto the heap (what every pre-v2 load paid), "v2open" maps
// the fixed-width file and serves the CSR straight out of the page
// cache — O(1) in the graph size. scripts/bench.sh computes the
// v1_over_v2 speedups into BENCH_8.json's mmap_load section; the PR 8
// acceptance bar is >= 10 at k=18.

func BenchmarkMmapLoad(b *testing.B) {
	for _, cfg := range []struct{ k, edges int }{
		{16, 1 << 19}, {18, 1 << 21}, {20, 1 << 22},
	} {
		g := featureGraph(b, cfg.k, cfg.edges)
		dir := b.TempDir()
		v1Path := filepath.Join(dir, "g.v1.dpkg")
		v2Path := filepath.Join(dir, "g.v2.dpkg")
		v1 := dataset.Marshal(g)
		v2 := dataset.MarshalV2(g)
		if err := os.WriteFile(v1Path, v1, 0o644); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(v2Path, v2, 0o644); err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("K=%d-v1decode", cfg.k), func(b *testing.B) {
			b.SetBytes(int64(len(v1)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := os.ReadFile(v1Path)
				if err != nil {
					b.Fatal(err)
				}
				got, err := dataset.Unmarshal(data)
				if err != nil || got.NumEdges() != g.NumEdges() {
					b.Fatal("bad decode", err)
				}
			}
		})
		b.Run(fmt.Sprintf("K=%d-v2open", cfg.k), func(b *testing.B) {
			b.SetBytes(int64(len(v2)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, _, err := dataset.OpenMapped(v2Path)
				if err != nil || got.NumEdges() != g.NumEdges() {
					b.Fatal("bad open", err)
				}
			}
			// Mappings are reclaimed by finalizer; collect them before the
			// next leg so they never pile up across a long benchtime.
			b.StopTimer()
			runtime.GC()
		})
	}
}

// BenchmarkStreamingGenerate pairs the two generate-to-store routes on
// identical sampling work: "inmem" materializes the full ball-drop
// sample as a CSR graph and then encodes it (the historical route),
// "streamed" spills sampled keys through the external sorter and
// writes the v2 file in one bounded-memory pass. Besides ns/op, each
// leg reports its peak heap growth ("heap-peak-bytes", measured by a
// HeapInuse sampler) — the number the streaming path exists to bound.
// scripts/bench.sh computes streamed_over_inmem heap ratios into
// BENCH_8.json's streaming_generate section; the PR 8 acceptance bar
// is <= 0.25 at k=20, with k=22/24 recorded as the out-of-core points.
func BenchmarkStreamingGenerate(b *testing.B) {
	for _, cfg := range []struct{ k, edges int }{
		{20, 1 << 23}, {22, 1 << 23}, {24, 1 << 24},
	} {
		m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, cfg.k)
		if err != nil {
			b.Fatal(err)
		}
		leg := func(b *testing.B, streamed bool) {
			st, err := dataset.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			var base runtime.MemStats
			runtime.ReadMemStats(&base)
			var peak atomic.Uint64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				var ms runtime.MemStats
				for {
					select {
					case <-stop:
						return
					case <-time.After(10 * time.Millisecond):
						runtime.ReadMemStats(&ms)
						if ms.HeapInuse > peak.Load() {
							peak.Store(ms.HeapInuse)
						}
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh seed per iteration: the store dedupes identical
				// content before writing, which would turn every iteration
				// after the first into a no-op.
				rng := randx.New(uint64(8000 + i))
				var meta dataset.Meta
				if streamed {
					sorter, err := extsort.NewTemp(nil, 0)
					if err != nil {
						b.Fatal(err)
					}
					es, err := m.StreamBallDropNCtx(liveRun(b, 0), rng, cfg.edges, sorter)
					if err != nil {
						b.Fatal(err)
					}
					meta, _, err = st.PutStream(es, "bench", "generated")
					if err != nil {
						b.Fatal(err)
					}
					es.Close()
					sorter.RemoveAll()
				} else {
					g := m.SampleBallDropNWorkers(rng, cfg.edges, 0)
					meta, _, err = st.PutFormat(g, "bench", "generated", 2)
					if err != nil {
						b.Fatal(err)
					}
				}
				if meta.Edges != cfg.edges {
					b.Fatalf("stored %d edges, want %d", meta.Edges, cfg.edges)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			grew := int64(peak.Load()) - int64(base.HeapInuse)
			if grew < 0 {
				grew = 0
			}
			b.ReportMetric(float64(grew), "heap-peak-bytes")
			runtime.GC()
		}
		b.Run(fmt.Sprintf("K=%d-inmem", cfg.k), func(b *testing.B) { leg(b, false) })
		b.Run(fmt.Sprintf("K=%d-streamed", cfg.k), func(b *testing.B) { leg(b, true) })
	}
}

// BenchmarkObsOverhead measures what full observability costs on the
// serving path. Each op is one complete job lifecycle over the HTTP
// API — admission, a K=15 private fit by stored dataset id, completion
// — against an uninstrumented server (plain) and one carrying the
// whole PR 9 telemetry surface: a metrics registry with every
// subsystem instrumented, a JSON logger at info, and pprof mounted
// (instrumented). scripts/bench.sh computes instrumented_over_plain
// into BENCH_9.json's obs_overhead section; the acceptance bound is
// <= 1.02 — atomic counters and one log record per request/job must
// disappear into a production-shaped fit.
func BenchmarkObsOverhead(b *testing.B) {
	g := featureGraph(b, 15, 1<<19)
	store, err := dataset.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	meta, _, err := store.Put(g, "bench", "generated")
	if err != nil {
		b.Fatal(err)
	}

	lifecycle := func(b *testing.B, instrumented bool) {
		opts := server.Options{
			Workers: 1, MaxJobs: 1, MaxQueue: 4, MaxHistory: 64,
			Datasets: store,
		}
		if instrumented {
			opts.Metrics = obs.NewRegistry()
			logger, err := obs.NewLogger(io.Discard, "json", "info")
			if err != nil {
				b.Fatal(err)
			}
			opts.Logger = logger
			opts.EnablePprof = true
		}
		srv := server.New(opts)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"method":"private","eps":0.4,"delta":0.01,"k":15,"seed":%d,"dataset_id":%q}`,
				i+1, meta.ID)
			resp, err := http.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var sub struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
				b.Fatalf("fit submit: %d %+v", resp.StatusCode, sub)
			}
			for {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
				if err != nil {
					b.Fatal(err)
				}
				var job struct {
					Status string `json:"status"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if job.Status == "done" {
					break
				}
				if job.Status == "failed" || job.Status == "cancelled" {
					b.Fatalf("job ended %s", job.Status)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}

	b.Run("K=15-plain", func(b *testing.B) { lifecycle(b, false) })
	b.Run("K=15-instrumented", func(b *testing.B) { lifecycle(b, true) })
}

// BenchmarkTraceOverhead measures what per-job span tracing costs on
// the serving path. Same production-shaped lifecycle as
// BenchmarkObsOverhead — one complete K=15 private fit over the HTTP
// API per op — against a plain server and one recording full span
// trees (stage spans, serving-layer spans, audit events) into a
// bounded trace store. scripts/bench.sh computes traced_over_plain
// into BENCH_10.json's trace_overhead section; the acceptance bound
// is <= 1.02 — a handful of span allocations per job must disappear
// into the fit.
func BenchmarkTraceOverhead(b *testing.B) {
	g := featureGraph(b, 15, 1<<19)
	store, err := dataset.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	meta, _, err := store.Put(g, "bench", "generated")
	if err != nil {
		b.Fatal(err)
	}

	lifecycle := func(b *testing.B, traced bool) {
		opts := server.Options{
			Workers: 1, MaxJobs: 1, MaxQueue: 4, MaxHistory: 64,
			Datasets: store,
		}
		if traced {
			opts.Traces = trace.NewStore(64)
		}
		srv := server.New(opts)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := fmt.Sprintf(`{"method":"private","eps":0.4,"delta":0.01,"k":15,"seed":%d,"dataset_id":%q}`,
				i+1, meta.ID)
			resp, err := http.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var sub struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
				b.Fatalf("fit submit: %d %+v", resp.StatusCode, sub)
			}
			for {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
				if err != nil {
					b.Fatal(err)
				}
				var job struct {
					Status string `json:"status"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if job.Status == "done" {
					break
				}
				if job.Status == "failed" || job.Status == "cancelled" {
					b.Fatalf("job ended %s", job.Status)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}

	b.Run("K=15-plain", func(b *testing.B) { lifecycle(b, false) })
	b.Run("K=15-traced", func(b *testing.B) { lifecycle(b, true) })
}
