package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dpkron/internal/accountant"
	"dpkron/internal/graph"
)

// TestCLITraceAuditEndToEnd drives the whole tracing/audit surface
// through the compiled binary: a traced, ledger-enforced, journaled
// server runs one private fit; `job wait -progress` streams its stage
// transitions, `job trace` renders the waterfall with its audit
// events, `-chrome` saves a loadable trace-event file, and — after a
// graceful drain — `audit` replays ledger + journal into the
// chronological spend report naming the job that paid.
func TestCLITraceAuditEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	run(t, bin, "generate", "-a", "0.95", "-b", "0.55", "-c", "0.3", "-k", "6", "-seed", "4", "-out", edge)
	data, err := os.ReadFile(edge)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(strings.NewReader(string(data)), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	ledger := filepath.Join(dir, "ledger.json")
	jnlPath := filepath.Join(dir, "journal.dpkj")
	run(t, bin, "budget", "set", "-ledger", ledger, "-dataset", ds, "-eps", "2", "-delta", "0.1")

	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-max-jobs", "1", "-workers", "2",
		"-ledger", ledger, "-journal", jnlPath, "-trace")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}
	defer stop()
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "listening on") {
			if i := strings.Index(line, "http://"); i >= 0 {
				base = strings.Fields(line[i:])[0]
				break
			}
		}
	}
	if base == "" {
		t.Fatal("serve banner with address not seen")
	}
	go io.Copy(io.Discard, stderr)

	body, _ := json.Marshal(map[string]any{
		"method": "private", "eps": 0.3, "delta": 0.01, "k": 6, "seed": 2,
		"edgelist": string(data),
	})
	resp, err := http.Post(base+"/v1/fit", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var submitted map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id, _ := submitted["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %v", submitted)
	}

	// wait -progress: terminal views retain per-stage state, so the
	// streamer prints at least the completed stages' done lines no
	// matter how polling interleaves with the run.
	out := run(t, bin, "job", "wait", "-server", base, "-id", id, "-progress", "-timeout", "2m")
	if !strings.Contains(out, "[stage] algorithm1/moment-fit done") {
		t.Fatalf("wait -progress did not stream stage transitions:\n%s", out)
	}
	if !strings.Contains(out, "status: done") {
		t.Fatalf("wait did not report completion:\n%s", out)
	}

	out = run(t, bin, "job", "trace", "-server", base, "-id", id)
	for _, want := range []string{
		"trace ", "algorithm1/degree-release", "algorithm1/moment-fit/kronmom",
		"ledger-debit", "accountant-debit", "admission", "queue-wait",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("job trace output missing %q:\n%s", want, out)
		}
	}

	chrome := filepath.Join(dir, "job.trace.json")
	run(t, bin, "job", "trace", "-server", base, "-id", id, "-chrome", chrome)
	ch, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var chromeFile struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ch, &chromeFile); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chromeFile.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// The build-info gauge is scrapeable alongside the other metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), `dpkron_build_info{version="devel"`) {
		t.Fatalf("metrics lack dpkron_build_info:\n%.2000s", metrics)
	}

	// Drain, then audit offline: the report names the job and request
	// that spent the budget, chronologically.
	stop()
	out = run(t, bin, "audit", ds, "-ledger", ledger, "-journal", jnlPath)
	for _, want := range []string{
		"dataset " + ds, "#1", "running total", "job " + id, "request ", "trace ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit output missing %q:\n%s", want, out)
		}
	}

	if out := run(t, bin, "version"); !strings.Contains(out, "dpkron devel") {
		t.Fatalf("version output = %q", out)
	}
	// -ldflags injection is what CI release builds use.
	bin2 := filepath.Join(t.TempDir(), "dpkron-versioned")
	build := exec.Command("go", "build", "-ldflags", "-X main.version=v9.9.9-test", "-o", bin2, ".")
	build.Env = os.Environ()
	if outb, err := build.CombinedOutput(); err != nil {
		t.Fatalf("versioned build failed: %v\n%s", err, outb)
	}
	if out := run(t, bin2, "version"); !strings.Contains(out, "dpkron v9.9.9-test") {
		t.Fatalf("versioned binary reports %q", out)
	}
}
