// dpkron job trace / dpkron audit — the client side of the tracing
// and privacy-audit surface:
//
//	dpkron job trace -server URL -id job-N [-chrome FILE] [-width N]
//	dpkron audit <dataset> -ledger FILE [-journal FILE]
//
// `job trace` fetches GET /v1/jobs/{id}/trace and renders the span
// tree as an ASCII waterfall (audit events as '!' marks), or saves
// the Chrome/Perfetto trace-event export for chrome://tracing and
// ui.perfetto.dev. `audit` needs no server: it replays a ledger's
// receipts (stamped with their debit time) against the journal's
// admission records into a chronological spend report — every ε/δ
// the dataset ever paid, which job and request charged it, and the
// running totals.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"dpkron/internal/accountant"
	"dpkron/internal/dp"
	"dpkron/internal/journal"
	"dpkron/internal/textplot"
	"dpkron/internal/trace"
)

// jobTrace fetches and renders one job's span tree. With chromePath
// it saves the trace-event export instead.
func jobTrace(base, id, chromePath string, width int) error {
	if chromePath != "" {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/trace?format=chrome")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return httpError(resp)
		}
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", chromePath)
		return nil
	}
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	var tree trace.Tree
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		return fmt.Errorf("decoding trace: %w", err)
	}
	fmt.Print(renderTrace(&tree, width))
	return nil
}

// renderTrace turns a span tree into the waterfall text: header,
// chart (one row per span, '!' marks where audit events landed), and
// the audit-event detail lines in chronological order.
func renderTrace(tree *trace.Tree, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", tree.TraceID)
	if tree.RemoteParent != "" {
		fmt.Fprintf(&b, " (client parent span %s)", tree.RemoteParent)
	}
	b.WriteByte('\n')
	if len(tree.Spans) == 0 {
		b.WriteString("(no spans)\n")
		return b.String()
	}
	t0 := tree.Spans[0].Start
	var spans []textplot.WaterfallSpan
	type auditLine struct {
		at   float64
		text string
	}
	var audits []auditLine
	tree.Walk(func(n *trace.Node, depth int) {
		ws := textplot.WaterfallSpan{
			Label: n.Name,
			Start: n.Start.Sub(t0).Seconds(),
			Dur:   n.Seconds,
			Depth: depth,
			Open:  n.Open,
		}
		for _, e := range n.Events {
			at := e.Time.Sub(t0).Seconds()
			ws.Marks = append(ws.Marks, at)
			audits = append(audits, auditLine{at, formatAuditEvent(e)})
		}
		spans = append(spans, ws)
	})
	b.WriteString(textplot.Waterfall(spans, textplot.WaterfallOptions{Width: width}))
	if len(audits) > 0 {
		sort.SliceStable(audits, func(i, j int) bool { return audits[i].at < audits[j].at })
		b.WriteString("\naudit events:\n")
		for _, a := range audits {
			fmt.Fprintf(&b, "  %s\n", a.text)
		}
	}
	return b.String()
}

// formatAuditEvent renders one span event as an audit line. Ledger
// and accountant debit/refusal events get their ε/δ spelled out; any
// other event falls back to name plus sorted attrs.
func formatAuditEvent(e trace.EventNode) string {
	switch e.Name {
	case "ledger-debit", "accountant-debit":
		return fmt.Sprintf("%-17s %-40s %-14s eps=%s delta=%s (remaining eps=%s delta=%s)",
			e.Name, e.Attrs["query"], e.Attrs["mechanism"],
			e.Attrs["eps"], e.Attrs["delta"], e.Attrs["remaining_eps"], e.Attrs["remaining_delta"])
	case "ledger-refusal", "accountant-refusal":
		return fmt.Sprintf("%-17s %s", e.Name, e.Attrs["error"])
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+e.Attrs[k])
	}
	return fmt.Sprintf("%-17s %s", e.Name, strings.Join(parts, " "))
}

// cmdAudit is `dpkron audit <dataset>`: the offline privacy-audit
// report. The ledger is the source of truth for what was spent (each
// receipt stamped with its debit time); the journal, when given,
// cross-references each spend token back to the job and originating
// request that caused it.
func cmdAudit(args []string) error {
	fs := newFlagSet("audit")
	ledgerPath := fs.String("ledger", "", "privacy-budget ledger file (required)")
	journalPath := fs.String("journal", "", "job journal file; links each debit to its job and request")
	ds := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		ds, args = args[0], args[1:]
	}
	if err := parse(fs, args); err != nil {
		return err
	}
	if ds == "" {
		return usagef(fs, "a dataset id is required (dpkron audit <dataset> -ledger FILE)")
	}
	if *ledgerPath == "" {
		return usagef(fs, "-ledger is required")
	}
	led, err := accountant.Open(*ledgerPath)
	if err != nil {
		return err
	}
	acct, ok := led.Account(ds)
	if !ok {
		return fmt.Errorf("ledger %s has no dataset %q", led.Path(), ds)
	}
	// Read the journal without locking it: an audit must not contend
	// with (or be refused by) a server holding the journal open, so it
	// decodes the bytes directly — the same tolerant decoder recovery
	// uses, stopping at a torn tail.
	byToken := map[string]journal.Record{}
	if *journalPath != "" {
		data, err := os.ReadFile(*journalPath)
		if err != nil {
			return err
		}
		recs, _, err := journal.Decode(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpkron audit: journal tail unreadable (%v); report covers the decodable prefix\n", err)
		}
		for _, rec := range recs {
			if rec.Token != "" {
				byToken[rec.Token] = rec
			}
		}
	}
	fmt.Printf("dataset %s\nbudget  %s\nspent   %s\nremaining %s\n\n", ds, acct.Budget, acct.Spent, acct.Remaining())
	if len(acct.Receipts) == 0 {
		fmt.Println("no spends recorded")
		return nil
	}
	// Receipts already land in ledger order; the Time stamp (PR 10+)
	// makes the chronology explicit. Older receipts without one sort
	// stably in place.
	receipts := append([]accountant.Receipt(nil), acct.Receipts...)
	sort.SliceStable(receipts, func(i, j int) bool {
		if receipts[i].Time == nil || receipts[j].Time == nil {
			return false
		}
		return receipts[i].Time.Before(*receipts[j].Time)
	})
	var running dp.Budget
	for i, r := range receipts {
		when := "(no timestamp)"
		if r.Time != nil {
			when = r.Time.UTC().Format("2006-01-02T15:04:05.000Z")
		}
		running = dp.Compose(running, r.Total)
		origin := ""
		if rec, ok := byToken[r.Token]; ok {
			origin = "  job " + rec.Job
			if rec.RequestID != "" {
				origin += "  request " + rec.RequestID
			}
			if rec.TraceID != "" {
				origin += "  trace " + rec.TraceID
			}
		}
		fmt.Printf("#%d  %s  %s  (running total %s)%s\n", i+1, when, r.Total, running, origin)
		for _, c := range r.Charges {
			fmt.Printf("      %-40s %-14s %s\n", c.Query, c.Mechanism, c.Budget())
		}
	}
	return nil
}
