package main

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"dpkron/internal/dataset"
	"dpkron/internal/graph"
	"dpkron/internal/pipeline"
)

// cmdDataset manages the persistent dataset store: `import` ingests a
// graph (SNAP text, gzip, Matrix Market or DPKG binary — sniffed) under
// its content-addressed id, `list`/`info` inspect the stored metadata
// and on-disk layout, `export` re-emits canonical edge-list text,
// `convert` rewrites a dataset between the compact v1 and mmap-ready
// v2 layouts in place, and `rm` deletes. The same -store directory
// drives `fit -store`/`stats -store` (where -in may name a stored id)
// and `serve -store` (fit-by-id over HTTP).
func cmdDataset(args []string) error {
	fs := newFlagSet("dataset")
	storeDir := fs.String("store", "", "dataset store directory (required)")
	in := fs.String("in", "", "input file, or - for stdin (import)")
	name := fs.String("name", "", "label for the imported dataset (import)")
	id := fs.String("id", "", "dataset id (required for info/export/convert/rm)")
	out := fs.String("out", "", "output file (export; default stdout)")
	format := fs.String("format", "", "on-disk layout: v1 (compact) or v2 (mmap-ready; import default v1, required for convert)")
	action := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		action, args = args[0], args[1:]
	}
	if err := parse(fs, args); err != nil {
		return err
	}
	switch action {
	case "import", "list", "info", "export", "convert", "rm":
	case "":
		return usagef(fs, "an action is required (import, list, info, export, convert or rm)")
	default:
		return usagef(fs, "unknown action %q (want import, list, info, export, convert or rm)", action)
	}
	if *storeDir == "" {
		return usagef(fs, "-store is required")
	}
	needID := action == "info" || action == "export" || action == "rm" || action == "convert"
	if needID && *id == "" {
		return usagef(fs, "-id is required for %s", action)
	}
	if action == "import" && *in == "" {
		return usagef(fs, "-in is required for import")
	}
	layout := 0
	switch strings.ToLower(*format) {
	case "":
	case "v1", "1":
		layout = 1
	case "v2", "2":
		layout = 2
	default:
		return usagef(fs, "unknown -format %q (want v1 or v2)", *format)
	}
	if action == "convert" && layout == 0 {
		return usagef(fs, "-format is required for convert")
	}
	st, err := dataset.Open(*storeDir)
	if err != nil {
		return err
	}
	switch action {
	case "import":
		r := os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		label := *name
		if label == "" && *in != "-" {
			label = *in
		}
		if layout == 0 {
			layout = 1
		}
		m, err := st.ImportReaderFormat(r, label, dataset.DecodeOptions{}, layout)
		if err != nil {
			return err
		}
		fmt.Printf("imported %s: %d nodes, %d edges (%s, v%d, %d bytes)\n",
			m.ID, m.Nodes, m.Edges, m.Source, max(m.Format, 1), m.Bytes)
	case "list":
		list, err := st.List()
		if err != nil {
			return err
		}
		if len(list) == 0 {
			fmt.Printf("store %s: no datasets (add one with `dpkron dataset import`)\n", st.Dir())
			return nil
		}
		for _, m := range list {
			fmt.Printf("%s  %9d nodes  %10d edges  %-9s  %s  %s\n",
				m.ID, m.Nodes, m.Edges, m.Source, m.Imported.Format("2006-01-02T15:04:05Z"), m.Name)
		}
	case "info":
		m, err := st.Meta(*id)
		if err != nil {
			return err
		}
		fmt.Printf("id:       %s\nname:     %s\nnodes:    %d\nedges:    %d\nsource:   %s\nimported: %s\n",
			m.ID, m.Name, m.Nodes, m.Edges, m.Source, m.Imported.Format("2006-01-02T15:04:05Z"))
		// The layout facts come from sniffing the live file, not the
		// sidecar, so a converted or hand-replaced graph reports what a
		// Load would actually see.
		fi, err := st.FileInfo(*id)
		if err != nil {
			return err
		}
		fmt.Printf("bytes:    %d\nformat:   v%d\nmmap:     %v\n", fi.Bytes, fi.Format, fi.Mmap)
	case "convert":
		m, err := st.Convert(*id, layout)
		if err != nil {
			return err
		}
		fmt.Printf("converted %s to v%d (%d bytes)\n", m.ID, m.Format, m.Bytes)
	case "export":
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := st.ExportEdgeList(*id, w); err != nil {
			return err
		}
		if *out != "" {
			fmt.Printf("wrote %s\n", *out)
		}
	case "rm":
		if err := st.Delete(*id); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", *id)
	}
	return nil
}

// loadGraph reads a graph for -in: a stored dataset id (when -store is
// set and holds it), a file path, or stdin ("-"). File and stdin input
// is format-sniffed — SNAP text, gzipped SNAP (.txt.gz), Matrix Market
// and DPKG binary all load transparently. The read runs on its own
// goroutine so a stalled producer (an upstream pipe that never closes)
// cannot outlive the run's -timeout deadline; on cancellation the
// goroutine is abandoned (the process is about to exit anyway).
func loadGraph(run *pipeline.Run, path, storeDir string) (*graph.Graph, error) {
	type loaded struct {
		g   *graph.Graph
		err error
	}
	ch := make(chan loaded, 1)
	go func() {
		g, err := loadGraphSync(path, storeDir)
		ch <- loaded{g, err}
	}()
	select {
	case l := <-ch:
		return l.g, l.err
	case <-run.Context().Done():
		return nil, run.Err()
	}
}

func loadGraphSync(path, storeDir string) (*graph.Graph, error) {
	if storeDir != "" {
		st, err := dataset.Open(storeDir)
		if err != nil {
			return nil, err
		}
		if st.Has(path) {
			return st.Load(path)
		}
		if strings.HasPrefix(path, "ds-") {
			if _, statErr := os.Stat(path); statErr != nil {
				return nil, fmt.Errorf("dataset %s not in store %s (and no such file): %w",
					path, storeDir, dataset.ErrNotFound)
			}
		}
	} else if strings.HasPrefix(path, "ds-") {
		if _, statErr := os.Stat(path); statErr != nil {
			return nil, errors.New("-in looks like a dataset id; pass -store DIR to resolve it")
		}
	}
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	g, _, err := dataset.DecodeGraph(r, dataset.DecodeOptions{})
	return g, err
}
