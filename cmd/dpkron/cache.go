package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"dpkron/internal/release"
	"dpkron/internal/server"
	"dpkron/internal/skg"
)

// printCachedFit renders a cache-served private fit in the same shape
// as a cold `dpkron fit`, so scripts parsing the output cannot tell the
// difference — except for the trailing release line, which records that
// the result was re-served and nothing was debited.
func printCachedFit(e *release.Entry, fr server.FitResult) {
	init := skg.Initiator{A: fr.Initiator.A, B: fr.Initiator.B, C: fr.Initiator.C}
	fmt.Printf("private initiator: %s  (k=%d, %s)\n", init, fr.K, *fr.Privacy)
	if f := fr.Features; f != nil {
		fmt.Printf("private features:  E=%.1f H=%.1f T=%.1f Delta=%.1f\n", f.E, f.H, f.T, f.Delta)
	}
	for _, c := range fr.Receipt.Charges {
		fmt.Printf("  budget: %-40s %s %s\n", c.Query, c.Mechanism, c.Budget())
	}
	fmt.Printf("  release: %s stored %s (cached; no budget spent)\n",
		e.Fingerprint, e.Stored.Format("2006-01-02T15:04:05Z"))
}

// cmdCache manages the release cache: `list` shows every memoized
// private fit (key and integrity metadata), `info` dumps one entry
// with its stored payload, and `rm` deletes — forcing the next
// identical fit to recompute with a fresh budget debit. The same -dir
// directory drives `fit -release-cache` and `serve -release-cache`.
func cmdCache(args []string) error {
	fs := newFlagSet("cache")
	dir := fs.String("dir", "", "release cache directory (required)")
	id := fs.String("id", "", "release fingerprint, rel-... (required for info/rm)")
	action := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		action, args = args[0], args[1:]
	}
	if err := parse(fs, args); err != nil {
		return err
	}
	switch action {
	case "list", "info", "rm":
	case "":
		return usagef(fs, "an action is required (list, info or rm)")
	default:
		return usagef(fs, "unknown action %q (want list, info or rm)", action)
	}
	if *dir == "" {
		return usagef(fs, "-dir is required")
	}
	if action != "list" && *id == "" {
		return usagef(fs, "-id is required for %s", action)
	}
	c, err := release.Open(*dir)
	if err != nil {
		return err
	}
	switch action {
	case "list":
		list, err := c.List()
		if err != nil {
			return err
		}
		if len(list) == 0 {
			fmt.Printf("cache %s: no releases (a private fit with -release-cache stores one)\n", c.Dir())
			return nil
		}
		for _, e := range list {
			fmt.Printf("%s  %s  eps=%g delta=%g k=%d seed=%d  %s  %d bytes\n",
				e.Fingerprint, e.Key.DatasetID, e.Key.Eps, e.Key.Delta, e.Key.K, e.Key.Seed,
				e.Stored.Format("2006-01-02T15:04:05Z"), e.Bytes)
		}
	case "info":
		e, err := c.Info(*id)
		if err != nil {
			return err
		}
		fmt.Printf("fingerprint: %s\ndataset:     %s\neps:         %g\ndelta:       %g\nk:           %d\nseed:        %d\npolicy:      %s\nmechanisms:  %s\nstored:      %s\nchecksum:    %s\nbytes:       %d\n",
			e.Fingerprint, e.Key.DatasetID, e.Key.Eps, e.Key.Delta, e.Key.K, e.Key.Seed,
			e.Key.Policy, e.Key.Mechanisms, e.Stored.Format("2006-01-02T15:04:05Z"), e.Checksum, e.Bytes)
		var pretty map[string]any
		if err := json.Unmarshal(e.Payload, &pretty); err == nil {
			b, _ := json.MarshalIndent(pretty, "", "  ")
			fmt.Printf("payload:\n%s\n", b)
		}
	case "rm":
		if err := c.Delete(*id); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", *id)
		fmt.Fprintln(os.Stderr, "note: the next identical fit recomputes and debits its ledger afresh")
	}
	return nil
}
