package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dpkron/internal/journal"
)

// serveProc wraps a `dpkron serve` subprocess: its base URL (parsed
// from the startup banner), the accumulated stderr, and its exit.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	mu   sync.Mutex
	errb bytes.Buffer
}

// startServe boots `dpkron serve` with the given extra flags on an
// ephemeral port and waits for the banner naming the bound address.
func startServe(t *testing.T, bin string, extra ...string) *serveProc {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	p := &serveProc{cmd: exec.Command(bin, args...)}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		p.mu.Lock()
		p.errb.WriteString(line + "\n")
		p.mu.Unlock()
		if i := strings.Index(line, "http://"); i >= 0 {
			p.base = strings.Fields(line[i:])[0]
			break
		}
	}
	if p.base == "" {
		t.Fatalf("serve banner with address not seen; stderr:\n%s", p.stderr())
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			p.mu.Lock()
			p.errb.WriteString(sc.Text() + "\n")
			p.mu.Unlock()
		}
	}()
	return p
}

func (p *serveProc) stderr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.errb.String()
}

// wait blocks until the process exits and returns its exit code.
func (p *serveProc) wait(t *testing.T) int {
	t.Helper()
	err := p.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	t.Fatalf("serve wait: %v", err)
	return -1
}

func postJSON(t *testing.T, url, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("POST %s: decoding response: %v", url, err)
	}
	return resp.StatusCode, out, resp.Header
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("GET %s: decoding response: %v", url, err)
	}
	return resp.StatusCode, out
}

// pollDone polls a job until it reaches a terminal state.
func pollDone(t *testing.T, base, id string, within time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		code, job := getJSON(t, base+"/v1/jobs/"+id)
		if code == http.StatusOK {
			if s := job["status"]; s == "done" || s == "failed" || s == "cancelled" {
				return job
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still not terminal after %s: %v", id, within, job)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// journalState decodes the journal file from outside the serving
// process (tolerating a torn tail mid-write) and returns the reduced
// state of one job, or nil if the job has no records yet.
func journalState(t *testing.T, path, job string) *journal.JobState {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	recs, _, _ := journal.Decode(data)
	for _, st := range journal.Reduce(recs) {
		if st.Job == job {
			return st
		}
	}
	return nil
}

// TestCLIServeCrashResume is the end-to-end durability proof: a serve
// process is SIGKILLed while a private fit is debited and running,
// restarted on the same state directory, and must resume the fit
// without a second debit and land the byte-identical release that an
// uninterrupted run produces.
func TestCLIServeCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	store := filepath.Join(dir, "store")

	// A graph big enough that the private fit takes O(1s): the window
	// between the journal's running record and the done record, inside
	// which the kill must land.
	run(t, bin, "generate", "-a", "0.99", "-b", "0.6", "-c", "0.35",
		"-k", "15", "-seed", "3", "-method", "balldrop", "-out", edge)
	out := run(t, bin, "dataset", "import", "-store", store, "-in", edge)
	dsID := strings.TrimSuffix(strings.Fields(out)[1], ":")

	fitBody := fmt.Sprintf(`{"method":"private","eps":0.4,"delta":0.01,"k":15,"seed":3,"dataset_id":%q}`, dsID)
	setBudget := func(ledger string) {
		run(t, bin, "budget", "set", "-ledger", ledger, "-dataset", dsID,
			"-eps", "0.45", "-delta", "0.05")
	}

	// Reference run: the same fit on a pristine state directory,
	// completed without interruption, pins the expected release.
	refLedger := filepath.Join(dir, "ref-ledger.json")
	setBudget(refLedger)
	ref := startServe(t, bin, "-ledger", refLedger,
		"-release-cache", filepath.Join(dir, "ref-cache"), "-store", store)
	code, sub, _ := postJSON(t, ref.base+"/v1/fit", fitBody)
	if code != http.StatusAccepted {
		t.Fatalf("reference fit: %d %v", code, sub)
	}
	refJob := pollDone(t, ref.base, sub["id"].(string), 60*time.Second)
	if refJob["status"] != "done" {
		t.Fatalf("reference fit ended %v: %v", refJob["status"], refJob)
	}
	wantResult := refJob["result"]
	ref.cmd.Process.Signal(os.Interrupt)
	ref.wait(t)

	// Crash run: same question against its own ledger/cache/journal.
	ledger := filepath.Join(dir, "ledger.json")
	cache := filepath.Join(dir, "cache")
	jpath := filepath.Join(dir, "jobs.journal")
	setBudget(ledger)
	serveArgs := []string{"-ledger", ledger, "-release-cache", cache,
		"-store", store, "-journal", jpath}
	p := startServe(t, bin, serveArgs...)
	code, sub, _ = postJSON(t, p.base+"/v1/fit", fitBody)
	if code != http.StatusAccepted {
		t.Fatalf("crash-run fit: %d %v", code, sub)
	}
	id := sub["id"].(string)

	// Kill -9 the instant the journal shows the fit running (its debit
	// is already in the ledger by then).
	killDeadline := time.Now().Add(30 * time.Second)
	for {
		st := journalState(t, jpath, id)
		if st != nil && st.State == journal.StateRunning {
			break
		}
		if st != nil && st.Terminal() {
			t.Fatalf("fit finished before the kill landed (state %s); needs a bigger graph", st.State)
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("journal never showed %s running", id)
		}
		time.Sleep(time.Millisecond)
	}
	p.cmd.Process.Signal(syscall.SIGKILL)
	p.cmd.Wait()

	// The journal must witness the interrupted state: debited and
	// running, no terminal record — a dangling debit only the resume
	// path can settle.
	st := journalState(t, jpath, id)
	if st == nil || st.Terminal() || !st.Debited {
		t.Fatalf("post-kill journal state: %+v, want debited and non-terminal", st)
	}

	// Restart on the same state directory: replay resumes the fit,
	// re-issuing its debit under the journaled idempotent token.
	p2 := startServe(t, bin, serveArgs...)
	job := pollDone(t, p2.base, id, 60*time.Second)
	if job["status"] != "done" {
		t.Fatalf("resumed fit ended %v: %v", job["status"], job)
	}

	// Byte-identical release: deterministic re-execution from the
	// journaled seed reproduces exactly the uninterrupted run's result.
	if !reflect.DeepEqual(job["result"], wantResult) {
		t.Errorf("resumed result differs from uninterrupted run:\nresumed: %v\nwant:    %v",
			job["result"], wantResult)
	}

	// No second debit: exactly one receipt, with (0.05, 0.04) left of
	// the (0.45, 0.05) allowance after the single (0.4, 0.01) spend.
	code, acct := getJSON(t, p2.base+"/v1/budget/"+dsID)
	if code != http.StatusOK {
		t.Fatalf("budget after resume: %d %v", code, acct)
	}
	if n := acct["receipts"].(float64); n != 1 {
		t.Fatalf("%v receipts after crash + resume, want exactly 1", n)
	}
	if rem := acct["remaining"].(map[string]any); math.Abs(rem["eps"].(float64)-0.05) > 1e-9 {
		t.Errorf("remaining eps = %v, want 0.05", rem["eps"])
	}

	// The identical question is now a cache hit at zero budget even
	// though the remaining allowance cannot cover a fresh fit.
	code, hit, _ := postJSON(t, p2.base+"/v1/fit", fitBody)
	if code != http.StatusOK {
		t.Fatalf("post-resume identical fit: %d %v", code, hit)
	}
	if res, ok := hit["result"].(map[string]any); !ok || res["cached"] != true {
		t.Fatalf("post-resume identical fit not served from cache: %v", hit)
	}
	if _, acct := getJSON(t, p2.base+"/v1/budget/"+dsID); acct["receipts"].(float64) != 1 {
		t.Fatalf("cache hit debited the ledger: %v", acct)
	}

	p2.cmd.Process.Signal(os.Interrupt)
	if exit := p2.wait(t); exit != 0 {
		t.Fatalf("serve exited %d after SIGINT, want 0\n%s", exit, p2.stderr())
	}
}

// TestCLIServeDrainExitsZero: SIGTERM starts a graceful drain — new
// work refused with 503 + Retry-After while reads stay up — then the
// drain deadline cancels the straggler, its terminal state reaches
// the journal, and the process exits 0.
func TestCLIServeDrainExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.journal")
	p := startServe(t, bin, "-journal", jpath, "-drain-timeout", "2s",
		"-max-jobs", "1", "-workers", "1")

	// A generate that cannot finish within the drain deadline.
	code, sub, _ := postJSON(t, p.base+"/v1/generate",
		`{"a":0.99,"b":0.55,"c":0.35,"k":16,"seed":5,"method":"exact","omit_edges":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("long generate: %d %v", code, sub)
	}
	longID := sub["id"].(string)

	p.cmd.Process.Signal(syscall.SIGTERM)

	// Drain mode: admission refused with Retry-After, reads still
	// served. The signal needs a moment to propagate, so poll for the
	// first 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, hdr := postJSON(t, p.base+"/v1/generate", `{"a":0.9,"b":0.5,"c":0.3,"k":5,"seed":1}`)
		if code == http.StatusServiceUnavailable {
			if ra := hdr.Get("Retry-After"); ra != "10" {
				t.Errorf("drain 503 Retry-After = %q, want \"10\"", ra)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never refused admission (last status %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, job := getJSON(t, p.base+"/v1/jobs/"+longID); code != http.StatusOK {
		t.Errorf("read during drain: %d %v", code, job)
	}

	if exit := p.wait(t); exit != 0 {
		t.Fatalf("serve exited %d after SIGTERM, want 0\n%s", exit, p.stderr())
	}

	// The straggler's cancellation reached the journal before exit: a
	// restart on the same file answers for it.
	p2 := startServe(t, bin, "-journal", jpath)
	if code, job := getJSON(t, p2.base+"/v1/jobs/"+longID); code != http.StatusOK || job["status"] != "cancelled" {
		t.Fatalf("replayed long job: %d %v, want cancelled", code, job)
	}
	p2.cmd.Process.Signal(os.Interrupt)
	if exit := p2.wait(t); exit != 0 {
		t.Fatalf("restarted serve exited %d, want 0\n%s", exit, p2.stderr())
	}
}

// TestCLIJobCommands drives the `dpkron job` subcommand end to end
// against a live server: list, show, wait (success and failure exit
// codes) and cancel.
func TestCLIJobCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	p := startServe(t, bin, "-max-jobs", "1", "-workers", "1")

	code, sub, _ := postJSON(t, p.base+"/v1/generate", `{"a":0.9,"b":0.5,"c":0.3,"k":7,"seed":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("generate: %d %v", code, sub)
	}
	id := sub["id"].(string)

	// wait blocks until done and prints the result.
	out := run(t, bin, "job", "wait", "-server", p.base, "-id", id)
	if !strings.Contains(out, "status: done") || !strings.Contains(out, `"nodes"`) {
		t.Fatalf("job wait output:\n%s", out)
	}

	out = run(t, bin, "job", "list", "-server", p.base)
	if !strings.Contains(out, id) || !strings.Contains(out, "done") {
		t.Fatalf("job list output:\n%s", out)
	}
	out = run(t, bin, "job", "show", "-server", p.base, "-id", id)
	if !strings.Contains(out, "job:    "+id) || !strings.Contains(out, "status: done") {
		t.Fatalf("job show output:\n%s", out)
	}

	// Cancel a long job; waiting on it exits 1 and names the state.
	code, sub, _ = postJSON(t, p.base+"/v1/generate",
		`{"a":0.99,"b":0.55,"c":0.35,"k":16,"seed":5,"method":"exact","omit_edges":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("long generate: %d %v", code, sub)
	}
	longID := sub["id"].(string)
	out = run(t, bin, "job", "cancel", "-server", p.base, "-id", longID)
	if !strings.Contains(out, longID) {
		t.Fatalf("job cancel output:\n%s", out)
	}
	ec, out := exitCode(t, bin, "", "job", "wait", "-server", p.base, "-id", longID)
	if ec != 1 || !strings.Contains(out, "cancelled") {
		t.Fatalf("job wait on cancelled: exit %d\n%s", ec, out)
	}

	// Usage contract.
	for _, args := range [][]string{
		{"job"},                                      // missing action
		{"job", "bogus", "-server", p.base},          // unknown action
		{"job", "show", "-server", p.base},           // missing -id
		{"job", "wait", "-server", p.base},           // missing -id
		{"job", "cancel", "-server", p.base},         // missing -id
		{"job", "list", "-server", p.base, "-bogus"}, // unknown flag
	} {
		if ec, out := exitCode(t, bin, "", args...); ec != 2 {
			t.Errorf("dpkron %v: exit %d, want 2\n%s", args, ec, out)
		}
	}

	// Unknown job id is a permanent error, not a retry loop.
	ec, out = exitCode(t, bin, "", "job", "show", "-server", p.base, "-id", "job-999")
	if ec != 1 || !strings.Contains(out, "unknown job") {
		t.Fatalf("job show unknown id: exit %d\n%s", ec, out)
	}

	p.cmd.Process.Signal(os.Interrupt)
	p.wait(t)
}

// TestJobWaitBackoffHonorsRetryAfter exercises the wait loop's
// back-pressure handling in-process: the server answers 429 with a
// 1-second Retry-After twice, then reports the job done. The wait
// must respect the server's pacing (≥2s total) and still succeed.
func TestJobWaitBackoffHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	refusals := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if refusals < 2 {
			refusals++
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		fmt.Fprint(w, `{"id":"job-1","kind":"generate","status":"done","result":{"nodes":128}}`)
	}))
	defer ts.Close()

	start := time.Now()
	if err := jobWait(ts.URL, "job-1", 30*time.Second, false); err != nil {
		t.Fatalf("jobWait: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("wait finished in %s; two Retry-After: 1 refusals demand ≥2s", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if refusals != 2 {
		t.Errorf("refusals = %d, want 2", refusals)
	}
}
