package main

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "dpkron")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dpkron %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)

	// datasets lists the registry.
	out := run(t, bin, "datasets")
	for _, want := range []string{"CA-GrQc-like", "AS20-like", "CA-HepTh-like", "Synthetic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("datasets output missing %q:\n%s", want, out)
		}
	}

	// generate -> stats -> fit round trip on a small graph.
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	out = run(t, bin, "generate", "-a", "0.99", "-b", "0.55", "-c", "0.35",
		"-k", "9", "-seed", "3", "-out", edge)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("generate output: %s", out)
	}

	out = run(t, bin, "stats", "-in", edge)
	for _, want := range []string{"nodes: 512", "edges:", "triangles:", "effective diameter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}

	out = run(t, bin, "fit", "-in", edge, "-method", "mom", "-k", "9")
	if !strings.Contains(out, "KronMom initiator:") {
		t.Fatalf("mom fit output: %s", out)
	}

	out = run(t, bin, "fit", "-in", edge, "-method", "private", "-eps", "1", "-delta", "0.05")
	for _, want := range []string{"private initiator:", "(1, 0.05)-DP", "budget:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("private fit output missing %q:\n%s", want, out)
		}
	}

	out = run(t, bin, "fit", "-in", edge, "-method", "mle", "-k", "9")
	if !strings.Contains(out, "KronFit initiator:") {
		t.Fatalf("mle fit output: %s", out)
	}

	// ssgrowth prints the growth table.
	out = run(t, bin, "ssgrowth", "-kmin", "6", "-kmax", "8")
	if !strings.Contains(out, "SS_beta") {
		t.Fatalf("ssgrowth output: %s", out)
	}

	// sscompare prints the comparison table.
	out = run(t, bin, "sscompare", "-kmin", "6", "-kmax", "7")
	if !strings.Contains(out, "SS(er)") {
		t.Fatalf("sscompare output: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"fit"},                         // missing -in
		{"stats"},                       // missing -in
		{"fit", "-in", "/nonexistent"},  // unreadable input
		{"figure", "-dataset", "bogus"}, // unknown dataset
		{"nonsense"},                    // unknown command
	} {
		cmd := exec.Command(bin, args...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("dpkron %v: expected failure, got:\n%s", args, out)
		}
	}
}

// exitCode runs the binary and returns its exit status plus combined
// output (-1 when it cannot be determined).
func exitCode(t *testing.T, bin string, stdin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("dpkron %v: %v\n%s", args, err, out)
	return -1, ""
}

// TestCLIUsageExitCodes: flag-parse errors and missing required flags
// exit 2 with usage text; runtime failures exit 1.
func TestCLIUsageExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	for _, tc := range []struct {
		args []string
		want int
	}{
		{[]string{"fit"}, 2},                             // missing -in
		{[]string{"stats"}, 2},                           // missing -in
		{[]string{"fit", "-bogusflag"}, 2},               // unknown flag
		{[]string{"generate", "-k", "notanint"}, 2},      // malformed value
		{[]string{"nonsense"}, 2},                        // unknown command
		{[]string{"fit", "-in", "/nonexistent"}, 1},      // runtime error
		{[]string{"figure", "-dataset", "bogus"}, 1},     // runtime error
		{[]string{"fit", "-in", "-", "-method", "x"}, 2}, // bad enum value
		// The shared ε/δ flag contract: every subcommand rejects
		// non-positive/NaN eps and delta outside [0, 1) uniformly, at
		// flag level (exit 2), via dp.Budget.Validate.
		{[]string{"fit", "-in", "-", "-eps", "-1"}, 2},
		{[]string{"fit", "-in", "-", "-eps", "NaN"}, 2},
		{[]string{"fit", "-in", "-", "-delta", "1.5"}, 2},
		{[]string{"fit", "-in", "-", "-method", "mom", "-eps", "0"}, 2},
		{[]string{"table1", "-eps", "0"}, 2},
		{[]string{"figure", "-delta", "-0.1"}, 2},
		{[]string{"sweep", "-delta", "2"}, 2},
		{[]string{"ssgrowth", "-eps", "-3"}, 2},
		{[]string{"sscompare", "-delta", "1"}, 2},
		{[]string{"budget", "set", "-ledger", "/tmp/x.json", "-dataset", "d", "-eps", "-1"}, 2},
		{[]string{"budget", "bogus", "-ledger", "/tmp/x.json"}, 2},
		{[]string{"budget", "show"}, 2}, // missing -ledger
	} {
		code, out := exitCode(t, bin, "0 1\n", tc.args...)
		if code != tc.want {
			t.Errorf("dpkron %v: exit %d, want %d\n%s", tc.args, code, tc.want, out)
		}
		if tc.want == 2 && !strings.Contains(out, "Usage") && !strings.Contains(out, "-workers") && !strings.Contains(out, "commands:") {
			t.Errorf("dpkron %v: exit-2 output lacks usage text:\n%s", tc.args, out)
		}
	}
}

// TestCLIStdinAndPipelineFlags covers -in -, -progress, and -timeout.
func TestCLIStdinAndPipelineFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)

	// A small deterministic edge list on stdin.
	gen := run(t, bin, "generate", "-a", "0.95", "-b", "0.5", "-c", "0.3", "-k", "7", "-seed", "2")

	code, out := exitCode(t, bin, gen, "stats", "-in", "-")
	if code != 0 || !strings.Contains(out, "nodes: 128") {
		t.Fatalf("stats -in -: exit %d\n%s", code, out)
	}

	code, out = exitCode(t, bin, gen, "fit", "-in", "-", "-method", "mom", "-k", "7", "-progress")
	if code != 0 {
		t.Fatalf("fit -in - -progress: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "[stage] features ...") || !strings.Contains(out, "[stage] kronmom done") {
		t.Errorf("fit -progress missing stage lines:\n%s", out)
	}
	if !strings.Contains(out, "KronMom initiator:") {
		t.Errorf("fit -in - lost its result:\n%s", out)
	}

	// An unmeetable timeout aborts with the context error and exit 1.
	code, out = exitCode(t, bin, "", "table1", "-timeout", "1ms")
	if code != 1 || !strings.Contains(out, "context deadline exceeded") {
		t.Errorf("table1 -timeout 1ms: exit %d, want 1 with deadline error\n%s", code, out)
	}
}

// TestCLIBudgetWorkflow walks the ledger lifecycle end to end: set a
// budget, fit against it until exhaustion, observe the refusal, show
// the spend, reset, and fit again.
func TestCLIBudgetWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	ledger := filepath.Join(dir, "ledger.json")
	run(t, bin, "generate", "-a", "0.95", "-b", "0.5", "-c", "0.3", "-k", "8", "-seed", "2", "-out", edge)

	// Default-deny: fitting against a ledger with no configured budget
	// is refused (exit 1, not a crash) and names the fingerprint id.
	code, out := exitCode(t, bin, "", "fit", "-in", edge, "-ledger", ledger, "-eps", "0.2", "-delta", "0.01")
	if code != 1 || !strings.Contains(out, "budget exhausted") || !strings.Contains(out, "ds-") {
		t.Fatalf("unbudgeted ledger fit: exit %d\n%s", code, out)
	}

	// Budget for exactly two (0.2, 0.01) fits under dataset "mygraph".
	out = run(t, bin, "budget", "set", "-ledger", ledger, "-dataset", "mygraph", "-eps", "0.45", "-delta", "0.05")
	if !strings.Contains(out, "budget set to (0.45, 0.05)-DP") {
		t.Fatalf("budget set output: %s", out)
	}
	for i := 0; i < 2; i++ {
		out = run(t, bin, "fit", "-in", edge, "-ledger", ledger, "-dataset", "mygraph",
			"-eps", "0.2", "-delta", "0.01", "-progress")
		if !strings.Contains(out, "ledger: dataset mygraph, remaining") {
			t.Fatalf("fit %d output lacks ledger line:\n%s", i, out)
		}
		// The -progress summary reports the receipt total.
		if !strings.Contains(out, "[budget] spent (0.2, 0.01)-DP across 2 mechanism charges") {
			t.Fatalf("fit %d output lacks budget summary:\n%s", i, out)
		}
	}

	// Third fit: remaining (0.05, 0.03) cannot cover (0.2, 0.01).
	code, out = exitCode(t, bin, "", "fit", "-in", edge, "-ledger", ledger, "-dataset", "mygraph",
		"-eps", "0.2", "-delta", "0.01")
	if code != 1 || !strings.Contains(out, "budget exhausted") {
		t.Fatalf("over-budget fit: exit %d\n%s", code, out)
	}

	// show reports the account; reset reopens it.
	out = run(t, bin, "budget", "show", "-ledger", ledger, "-dataset", "mygraph")
	if !strings.Contains(out, "spent (0.4, 0.02)-DP") || !strings.Contains(out, "receipts 2") {
		t.Fatalf("budget show output: %s", out)
	}
	run(t, bin, "budget", "reset", "-ledger", ledger, "-dataset", "mygraph")
	out = run(t, bin, "fit", "-in", edge, "-ledger", ledger, "-dataset", "mygraph",
		"-eps", "0.2", "-delta", "0.01")
	if !strings.Contains(out, "private initiator:") {
		t.Fatalf("post-reset fit output: %s", out)
	}
}

// TestCLIServeEndToEnd boots the real service, submits a generate job
// over HTTP, polls it to completion, and exercises cancel.
func TestCLIServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-max-jobs", "1", "-workers", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()

	// The serve banner names the bound address.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			base = strings.Fields(line[i:])[0]
			break
		}
	}
	if base == "" {
		t.Fatalf("serve banner with address not seen")
	}
	go io.Copy(io.Discard, stderr)

	post := func(path, body string) map[string]any {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	get := func(path string) map[string]any {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	submitted := post("/v1/generate", `{"a":0.9,"b":0.5,"c":0.3,"k":7,"seed":2}`)
	id, _ := submitted["id"].(string)
	if id == "" {
		t.Fatalf("no job id: %v", submitted)
	}
	deadline := time.Now().Add(60 * time.Second)
	var job map[string]any
	for {
		job = get("/v1/jobs/" + id)
		if s := job["status"]; s == "done" || s == "failed" || s == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %v", job)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job["status"] != "done" {
		t.Fatalf("job ended %v: %v", job["status"], job)
	}
	result := job["result"].(map[string]any)
	if result["nodes"].(float64) != 128 {
		t.Errorf("nodes = %v, want 128", result["nodes"])
	}

	// Cancel flow: submit a long job, delete it, observe cancelled.
	long := post("/v1/generate", `{"a":0.99,"b":0.55,"c":0.35,"k":13,"seed":5,"method":"exact","omit_edges":true}`)
	longID := long["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+longID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		job = get("/v1/jobs/" + longID)
		if job["status"] == "cancelled" {
			break
		}
		if s := job["status"]; s == "done" || s == "failed" {
			t.Fatalf("long job ended %v, want cancelled", s)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: %v", job)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCLIDatasetWorkflow walks the store lifecycle end to end:
// generate an edge list, import it (plain and gzipped), list/info,
// fit and stats by stored id, export, and remove.
func TestCLIDatasetWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	store := filepath.Join(dir, "store")
	run(t, bin, "generate", "-a", "0.95", "-b", "0.5", "-c", "0.3", "-k", "8", "-seed", "2", "-out", edge)

	// Import; the printed id is the content fingerprint.
	out := run(t, bin, "dataset", "import", "-store", store, "-in", edge, "-name", "toy")
	if !strings.Contains(out, "imported ds-") {
		t.Fatalf("import output: %s", out)
	}
	id := strings.TrimSuffix(strings.Fields(out)[1], ":")
	if !strings.HasPrefix(id, "ds-") {
		t.Fatalf("no dataset id in output: %s", out)
	}

	// A gzipped copy of the same list imports to the same id (content-
	// addressed), exercising transparent gzip on the import path.
	gzPath := filepath.Join(dir, "g.txt.gz")
	raw, err := os.ReadFile(edge)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, bin, "dataset", "import", "-store", store, "-in", gzPath)
	if !strings.Contains(out, id) {
		t.Fatalf("gzip import produced a different id:\n%s\nwant %s", out, id)
	}

	// list and info show the dataset.
	out = run(t, bin, "dataset", "list", "-store", store)
	if !strings.Contains(out, id) || !strings.Contains(out, "toy") {
		t.Fatalf("list output: %s", out)
	}
	out = run(t, bin, "dataset", "info", "-store", store, "-id", id)
	if !strings.Contains(out, "nodes:    256") || !strings.Contains(out, "source:   snap") {
		t.Fatalf("info output: %s", out)
	}

	// stats and fit accept the stored id via -store; the stats must
	// agree with reading the original file (bit-identical load).
	fromFile := run(t, bin, "stats", "-in", edge)
	fromStore := run(t, bin, "stats", "-in", id, "-store", store)
	if fromFile != fromStore {
		t.Fatalf("stats differ between file and store:\n--- file\n%s--- store\n%s", fromFile, fromStore)
	}
	out = run(t, bin, "fit", "-in", id, "-store", store, "-method", "mom", "-k", "8")
	if !strings.Contains(out, "KronMom initiator:") {
		t.Fatalf("fit by id output: %s", out)
	}

	// Stats on the gzipped file directly (transparent gzip in loadGraph).
	if gzStats := run(t, bin, "stats", "-in", gzPath); gzStats != fromFile {
		t.Fatalf("gzipped stats differ:\n%s", gzStats)
	}

	// export reproduces a graph with the same fingerprint.
	exported := filepath.Join(dir, "export.txt")
	run(t, bin, "dataset", "export", "-store", store, "-id", id, "-out", exported)
	out = run(t, bin, "dataset", "import", "-store", store, "-in", exported)
	if !strings.Contains(out, id) {
		t.Fatalf("exported list re-imports to a different id:\n%s", out)
	}

	// rm removes it; subsequent info fails (exit 1).
	run(t, bin, "dataset", "rm", "-store", store, "-id", id)
	if code, _ := exitCode(t, bin, "", "dataset", "info", "-store", store, "-id", id); code != 1 {
		t.Fatalf("info after rm: exit %d, want 1", code)
	}
}

// TestCLIDatasetUsageErrors: the dataset subcommand obeys the shared
// exit-2 usage contract.
func TestCLIDatasetUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"dataset"},                               // missing action
		{"dataset", "bogus", "-store", "/tmp/s"},  // unknown action
		{"dataset", "list"},                       // missing -store
		{"dataset", "import", "-store", "/tmp/s"}, // missing -in
		{"dataset", "info", "-store", "/tmp/s"},   // missing -id
		{"dataset", "rm", "-store", "/tmp/s"},     // missing -id
	} {
		code, out := exitCode(t, bin, "", args...)
		if code != 2 {
			t.Errorf("dpkron %v: exit %d, want 2\n%s", args, code, out)
		}
	}
	// An id-shaped -in without -store is a runtime error with guidance.
	code, out := exitCode(t, bin, "", "fit", "-in", "ds-0011223344556677")
	if code != 1 || !strings.Contains(out, "-store") {
		t.Errorf("fit by id without -store: exit %d\n%s", code, out)
	}
}

// TestCLIServeWithStore boots the service with a store and walks
// upload → fit-by-id over HTTP, sharing the store with the CLI.
func TestCLIServeWithStore(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	edge := filepath.Join(dir, "g.txt")
	run(t, bin, "generate", "-a", "0.95", "-b", "0.5", "-c", "0.3", "-k", "8", "-seed", "2", "-out", edge)
	out := run(t, bin, "dataset", "import", "-store", store, "-in", edge)
	id := strings.TrimSuffix(strings.Fields(out)[1], ":")

	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-max-jobs", "1", "-workers", "1", "-store", store)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			base = strings.Fields(line[i:])[0]
			break
		}
	}
	if base == "" {
		t.Fatal("serve banner with address not seen")
	}
	go io.Copy(io.Discard, stderr)

	// The CLI-imported dataset is visible over HTTP...
	resp, err := http.Get(base + "/v1/datasets/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || meta["id"] != id {
		t.Fatalf("GET dataset: %d %v", resp.StatusCode, meta)
	}

	// ...and fittable by id.
	resp, err = http.Post(base+"/v1/fit", "application/json",
		strings.NewReader(`{"method":"mom","k":8,"dataset_id":"`+id+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit by id: %d %v", resp.StatusCode, submitted)
	}
	jobID := submitted["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var job map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if s := job["status"]; s == "done" {
			break
		} else if s == "failed" || s == "cancelled" {
			t.Fatalf("fit by id ended %v: %v", s, job)
		}
		if time.Now().After(deadline) {
			t.Fatal("fit by id stuck")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCLICacheWorkflow drives the release cache end to end: a cold
// private fit memoizes its release, the identical fit is re-served
// without touching the ledger, `cache list|info|rm` manage the entries,
// and removal restores the recompute-and-debit behavior.
func TestCLICacheWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	ledger := filepath.Join(dir, "ledger.json")
	cache := filepath.Join(dir, "cache")
	run(t, bin, "generate", "-a", "0.95", "-b", "0.5", "-c", "0.3", "-k", "8", "-seed", "2", "-out", edge)

	// Budget for exactly one (0.2, 0.01) fit.
	run(t, bin, "budget", "set", "-ledger", ledger, "-dataset", "mygraph", "-eps", "0.2", "-delta", "0.01")

	// Cold fit: debits the ledger and stores the release.
	fitArgs := []string{"fit", "-in", edge, "-ledger", ledger, "-dataset", "mygraph",
		"-eps", "0.2", "-delta", "0.01", "-seed", "5", "-release-cache", cache}
	cold := run(t, bin, fitArgs...)
	if !strings.Contains(cold, "private initiator:") || strings.Contains(cold, "cached") {
		t.Fatalf("cold fit output: %s", cold)
	}

	// The identical question again: served from cache at zero budget,
	// even though the ledger is now exhausted. The initiator line is
	// byte-identical to the cold fit's.
	hit := run(t, bin, fitArgs...)
	if !strings.Contains(hit, "(cached; no budget spent)") || !strings.Contains(hit, "release: rel-") {
		t.Fatalf("cache hit output lacks cached marker:\n%s", hit)
	}
	initLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "private initiator:") {
				return line
			}
		}
		t.Fatalf("no initiator line in:\n%s", out)
		return ""
	}
	if initLine(cold) != initLine(hit) {
		t.Fatalf("cached initiator differs:\ncold: %s\nhit:  %s", initLine(cold), initLine(hit))
	}
	out := run(t, bin, "budget", "show", "-ledger", ledger, "-dataset", "mygraph")
	if !strings.Contains(out, "receipts 1") {
		t.Fatalf("cache hit debited the ledger:\n%s", out)
	}

	// A different question (new seed) is a miss and needs budget.
	code, out := exitCode(t, bin, "", append(fitArgs[:len(fitArgs):len(fitArgs)], "-seed", "6")...)
	if code != 1 || !strings.Contains(out, "budget exhausted") {
		t.Fatalf("different-seed fit: exit %d\n%s", code, out)
	}

	// cache list names the entry; grab its fingerprint.
	out = run(t, bin, "cache", "list", "-dir", cache)
	if !strings.Contains(out, "rel-") || !strings.Contains(out, "eps=0.2") {
		t.Fatalf("cache list output: %s", out)
	}
	rel := strings.Fields(out)[0]
	if !strings.HasPrefix(rel, "rel-") {
		t.Fatalf("cache list first field %q is not a fingerprint:\n%s", rel, out)
	}

	out = run(t, bin, "cache", "info", "-dir", cache, "-id", rel)
	for _, want := range []string{"fingerprint: " + rel, "eps:         0.2", "seed:        5", "payload:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cache info missing %q:\n%s", want, out)
		}
	}

	// rm forgets the release; the identical fit is a miss again and is
	// refused by the exhausted ledger.
	out = run(t, bin, "cache", "rm", "-dir", cache, "-id", rel)
	if !strings.Contains(out, "removed "+rel) {
		t.Fatalf("cache rm output: %s", out)
	}
	code, out = exitCode(t, bin, "", fitArgs...)
	if code != 1 || !strings.Contains(out, "budget exhausted") {
		t.Fatalf("post-rm fit: exit %d\n%s", code, out)
	}

	// Usage errors exit 2.
	for _, args := range [][]string{
		{"cache"},                                  // missing action
		{"cache", "frobnicate", "-dir", cache},     // unknown action
		{"cache", "list"},                          // missing -dir
		{"cache", "info", "-dir", cache},           // missing -id
		{"cache", "rm", "-dir", cache, "-id", rel}, // already removed -> exit 1
	} {
		code, out := exitCode(t, bin, "", args...)
		want := 2
		if len(args) > 1 && args[1] == "rm" {
			want = 1
		}
		if code != want {
			t.Fatalf("dpkron %v: exit %d, want %d\n%s", args, code, want, out)
		}
	}
}
