package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "dpkron")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build failed: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dpkron %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)

	// datasets lists the registry.
	out := run(t, bin, "datasets")
	for _, want := range []string{"CA-GrQc-like", "AS20-like", "CA-HepTh-like", "Synthetic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("datasets output missing %q:\n%s", want, out)
		}
	}

	// generate -> stats -> fit round trip on a small graph.
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	out = run(t, bin, "generate", "-a", "0.99", "-b", "0.55", "-c", "0.35",
		"-k", "9", "-seed", "3", "-out", edge)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("generate output: %s", out)
	}

	out = run(t, bin, "stats", "-in", edge)
	for _, want := range []string{"nodes: 512", "edges:", "triangles:", "effective diameter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}

	out = run(t, bin, "fit", "-in", edge, "-method", "mom", "-k", "9")
	if !strings.Contains(out, "KronMom initiator:") {
		t.Fatalf("mom fit output: %s", out)
	}

	out = run(t, bin, "fit", "-in", edge, "-method", "private", "-eps", "1", "-delta", "0.05")
	for _, want := range []string{"private initiator:", "(1, 0.05)-DP", "budget:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("private fit output missing %q:\n%s", want, out)
		}
	}

	out = run(t, bin, "fit", "-in", edge, "-method", "mle", "-k", "9")
	if !strings.Contains(out, "KronFit initiator:") {
		t.Fatalf("mle fit output: %s", out)
	}

	// ssgrowth prints the growth table.
	out = run(t, bin, "ssgrowth", "-kmin", "6", "-kmax", "8")
	if !strings.Contains(out, "SS_beta") {
		t.Fatalf("ssgrowth output: %s", out)
	}

	// sscompare prints the comparison table.
	out = run(t, bin, "sscompare", "-kmin", "6", "-kmax", "7")
	if !strings.Contains(out, "SS(er)") {
		t.Fatalf("sscompare output: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"fit"},                         // missing -in
		{"stats"},                       // missing -in
		{"fit", "-in", "/nonexistent"},  // unreadable input
		{"figure", "-dataset", "bogus"}, // unknown dataset
		{"nonsense"},                    // unknown command
	} {
		cmd := exec.Command(bin, args...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("dpkron %v: expected failure, got:\n%s", args, out)
		}
	}
}
