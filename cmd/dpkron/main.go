// Command dpkron is the CLI for the differentially private stochastic
// Kronecker graph estimator. It regenerates the paper's experiments and
// provides the end-user workflow: fit (private or baseline), generate
// synthetic graphs, inspect statistics, and run the estimation service.
//
// Usage:
//
//	dpkron table1  [-eps E] [-delta D] [-seed S]
//	dpkron figure  -dataset NAME [-expected N] [-csv FILE] [-plot]
//	dpkron fit     -in FILE|-|ID [-store DIR] [-method private|mom|mle] [-eps E] [-delta D] [-k K] [-release-cache DIR]
//	dpkron generate -a A -b B -c C -k K [-out FILE | -store DIR [-name S]] [-method exact|balldrop]
//	dpkron stats   -in FILE|-|ID [-store DIR]
//	dpkron sweep   [-dataset NAME] [-trials N]
//	dpkron ssgrowth [-kmin K] [-kmax K]
//	dpkron sscompare [-kmin K] [-kmax K]
//	dpkron serve   [-addr HOST:PORT] [-max-jobs N] [-ledger FILE] [-store DIR] [-release-cache DIR] [-journal FILE] [-trace] [-drain-timeout D] [-metrics-addr HOST:PORT] [-pprof] [-log-format text|json] [-log-level L]
//	dpkron job     <list|show|wait|trace|cancel> -server URL [-id ID] [-v] [-progress] [-chrome FILE]
//	dpkron audit   <dataset> -ledger FILE [-journal FILE]
//	dpkron budget  <show|set|reset> -ledger FILE [-dataset ID] [-eps E] [-delta D]
//	dpkron dataset <import|list|info|export|convert|rm> -store DIR [-in FILE|-] [-id ID] [-name S] [-out FILE] [-format v1|v2]
//	dpkron cache   <list|info|rm> -dir DIR [-id ID]
//	dpkron datasets
//
// Every long-running command accepts the shared pipeline flags:
// -workers bounds parallelism (results are identical for any value),
// -timeout aborts the run after a duration, and -progress streams
// pipeline stage events to stderr. Commands reading -in accept "-" for
// stdin, transparently gunzip (.txt.gz), and — given -store — resolve
// stored dataset ids. Flag errors and missing required flags exit with
// status 2 after printing usage; runtime failures exit 1.
//
// serve with -journal records every job transition in a durable,
// checksummed log: a crashed server restarted on the same journal
// resumes interrupted private fits without spending budget twice, and
// SIGINT/SIGTERM drains gracefully — new work is refused with 503 +
// Retry-After while running jobs get -drain-timeout to finish (then
// are cancelled, journaled, and the process exits 0).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/experiments"
	"dpkron/internal/extsort"
	"dpkron/internal/graph"
	"dpkron/internal/journal"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/obs"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/release"
	"dpkron/internal/server"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
	"dpkron/internal/textplot"
	"dpkron/internal/trace"
)

// version identifies the build; release builds overwrite it with
//
//	go build -ldflags "-X main.version=v1.2.3"
//
// and it surfaces in `dpkron version` and the server's
// dpkron_build_info metric.
var version = "devel"

// errUsage marks a user error that has already been reported together
// with usage text; main turns it into exit status 2.
var errUsage = errors.New("usage error")

// usagef reports a usage problem on stderr, prints the command's flag
// defaults, and returns errUsage.
func usagef(fs *flag.FlagSet, format string, args ...any) error {
	fmt.Fprintf(os.Stderr, "dpkron %s: %s\n", fs.Name(), fmt.Sprintf(format, args...))
	fs.Usage()
	return errUsage
}

// parse runs fs.Parse with ContinueOnError semantics mapped onto the
// command error contract: -h/-help exits 0, malformed flags exit 2.
func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		// flag already printed the error and usage.
		return errUsage
	}
	return nil
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// pipeFlags registers the shared pipeline flags: worker budget, wall
// deadline, and stage-progress rendering.
type pipeFlags struct {
	workers  *int
	timeout  *time.Duration
	progress *bool
}

func addPipeFlags(fs *flag.FlagSet) pipeFlags {
	return pipeFlags{
		workers: fs.Int("workers", runtime.GOMAXPROCS(0),
			"goroutines for parallel sampling/counting/fitting (results are worker-count invariant)"),
		timeout: fs.Duration("timeout", 0,
			"abort the command after this duration (e.g. 90s, 5m; 0 = no limit)"),
		progress: fs.Bool("progress", false,
			"print pipeline stage progress lines to stderr"),
	}
}

// logFlags are the structured-logging flags shared by serve and fit.
type logFlags struct {
	format *string
	level  *string
}

// addLogFlags registers -log-format and -log-level. serve defaults to
// info (operators want the request/job stream); fit defaults to warn
// so the command's stdout/stderr contract is unchanged unless asked.
func addLogFlags(fs *flag.FlagSet, defaultLevel string) logFlags {
	return logFlags{
		format: fs.String("log-format", "text", "structured log format: text | json"),
		level:  fs.String("log-level", defaultLevel, "log verbosity: debug | info | warn | error"),
	}
}

// logger builds the slog.Logger the flags describe, writing to stderr.
func (l logFlags) logger(fs *flag.FlagSet) (*slog.Logger, error) {
	lg, err := obs.NewLogger(os.Stderr, *l.format, *l.level)
	if err != nil {
		return nil, usagef(fs, "%v", err)
	}
	return lg, nil
}

// validateBudget enforces the shared ε/δ flag contract uniformly
// across subcommands through dp.Budget.Validate: ε must be positive
// and finite, δ in [0, 1). Violations exit 2 with usage text, like any
// other flag error, instead of surfacing as a runtime failure deep
// inside the run.
func validateBudget(fs *flag.FlagSet, eps, delta float64) error {
	if err := (dp.Budget{Eps: eps, Delta: delta}).Validate(); err != nil {
		return usagef(fs, "%v", err)
	}
	return nil
}

// newRun materializes the pipeline Run for a command: a context that
// dies on SIGINT/SIGTERM and after -timeout, the -workers budget, and
// the -progress sink.
func (p pipeFlags) newRun() (*pipeline.Run, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	var sink pipeline.Sink
	if *p.progress {
		sink = progressSink(os.Stderr)
	}
	run, cancel := pipeline.WithTimeout(ctx, *p.timeout, *p.workers, sink)
	return run, func() {
		cancel()
		stop()
	}
}

// progressSink renders stage events as stderr lines: start and done
// for every stage, plus intermediate fractions in >= 25% steps. The
// throttle state is dropped when a stage completes (and capped as a
// backstop) so a long-lived `serve -progress` process, whose stage
// keys carry unique job-id prefixes, does not grow without bound.
func progressSink(w io.Writer) pipeline.Sink {
	last := map[string]float64{}
	return func(e pipeline.Event) {
		switch {
		case e.Frac <= 0:
			fmt.Fprintf(w, "[stage] %s ...\n", e.Stage)
		case e.Frac >= 1:
			delete(last, e.Stage)
			fmt.Fprintf(w, "[stage] %s done\n", e.Stage)
		case e.Frac-last[e.Stage] >= 0.25:
			if len(last) >= 1024 { // stages that never complete (cancelled jobs)
				clear(last)
			}
			last[e.Stage] = e.Frac
			fmt.Fprintf(w, "[stage] %s %3.0f%%\n", e.Stage, e.Frac*100)
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "figure":
		err = cmdFigure(args)
	case "fit":
		err = cmdFit(args)
	case "generate":
		err = cmdGenerate(args)
	case "stats":
		err = cmdStats(args)
	case "sweep":
		err = cmdSweep(args)
	case "ssgrowth":
		err = cmdSSGrowth(args)
	case "sscompare":
		err = cmdSSCompare(args)
	case "serve":
		err = cmdServe(args)
	case "job":
		err = cmdJob(args)
	case "audit":
		err = cmdAudit(args)
	case "budget":
		err = cmdBudget(args)
	case "dataset":
		err = cmdDataset(args)
	case "cache":
		err = cmdCache(args)
	case "datasets":
		err = cmdDatasets(args)
	case "version":
		fmt.Printf("dpkron %s (%s, %s/%s)\n", version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dpkron: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	switch {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "dpkron %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `dpkron — differentially private Kronecker graph estimation

commands:
  table1     regenerate the paper's Table 1 (three estimators, four graphs)
  figure     regenerate a figure (five statistics panels for one dataset)
  fit        estimate initiator parameters for an edge-list graph
  generate   sample a synthetic SKG (to an edge list, or streamed into a store)
  stats      print the matching features and summary statistics of a graph
  sweep      privacy-utility sweep over epsilon
  ssgrowth   smooth sensitivity of triangles vs graph size
  sscompare  smooth sensitivity: SKG vs density-matched G(n,p)
  serve      run the HTTP/JSON estimation job service
  job        list, show, wait for, trace or cancel jobs on a running server
  audit      chronological privacy-spend report for a dataset (ledger + journal)
  budget     show, set or reset a privacy-budget ledger
  dataset    import, list, inspect, export, convert or remove stored datasets
  cache      list, inspect or remove cached private-fit releases
  datasets   list the built-in evaluation datasets
  version    print the build version

shared flags (all long-running commands):
  -workers N     parallelism bound (results identical for any N)
  -timeout D     abort after duration D (e.g. 90s, 5m)
  -progress      print pipeline stage progress to stderr
`)
}

func cmdTable1(args []string) error {
	fs := newFlagSet("table1")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 7, "random seed")
	iters := fs.Int("kronfit-iters", 60, "KronFit gradient iterations")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if err := validateBudget(fs, *eps, *delta); err != nil {
		return err
	}
	run, cancel := pf.newRun()
	defer cancel()
	opts := experiments.Table1Options{Eps: *eps, Delta: *delta, Seed: *seed, KronFitIters: *iters, Workers: *pf.workers}
	rows, err := experiments.RunTable1Ctx(run, opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(rows, opts))
	return nil
}

func cmdFigure(args []string) error {
	fs := newFlagSet("figure")
	name := fs.String("dataset", "CA-GrQc-like", "dataset name (see `dpkron datasets`)")
	expected := fs.Int("expected", 0, "realizations for expected curves (paper: 100)")
	csvPath := fs.String("csv", "", "write full series to CSV file")
	plot := fs.Bool("plot", false, "render ASCII log-log plots")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 11, "random seed")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if err := validateBudget(fs, *eps, *delta); err != nil {
		return err
	}
	d, err := experiments.Lookup(*name)
	if err != nil {
		return err
	}
	run, cancel := pf.newRun()
	defer cancel()
	res, err := experiments.RunFigureCtx(run, d, experiments.FigureOptions{
		Eps: *eps, Delta: *delta, Seed: *seed, ExpectedRuns: *expected, Workers: *pf.workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFigure(res, 10))
	if *plot {
		for _, panel := range experiments.PanelNames {
			fmt.Printf("\n== %s (log-log) ==\n", panel)
			var series []textplot.Series
			add := func(label string, s experiments.Series) {
				series = append(series, textplot.Series{Name: label, X: s.X, Y: s.Y})
			}
			add("Original", res.Original.Panel(panel))
			for _, n := range experiments.EstimatorNames {
				add(n, res.Single[n].Panel(panel))
			}
			logX := panel != "hop plot"
			fmt.Print(textplot.Render(series, textplot.Options{LogX: logX, LogY: true}))
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}

func cmdFit(args []string) error {
	fs := newFlagSet("fit")
	in := fs.String("in", "", "edge-list file, - for stdin, or a stored dataset id with -store (required)")
	method := fs.String("method", "private", "private | mom | mle")
	eps := fs.Float64("eps", 0.2, "total epsilon (private)")
	delta := fs.Float64("delta", 0.01, "delta (private)")
	k := fs.Int("k", 0, "Kronecker power (0 = infer)")
	seed := fs.Uint64("seed", 1, "random seed")
	ledgerPath := fs.String("ledger", "", "privacy-budget ledger file; private fits are debited against it")
	dataset := fs.String("dataset", "", "ledger dataset id (default: content fingerprint of the input graph)")
	storeDir := fs.String("store", "", "dataset store directory; lets -in name a stored dataset id")
	relCacheDir := fs.String("release-cache", "",
		"release cache directory; an identical earlier private fit is re-served from it at zero budget and zero compute, and new fits are memoized")
	lf := addLogFlags(fs, "warn") // warn by default: fit's stdout/stderr contract is unchanged
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	logger, err := lf.logger(fs)
	if err != nil {
		return err
	}
	if *in == "" {
		return usagef(fs, "-in is required")
	}
	if err := validateBudget(fs, *eps, *delta); err != nil {
		return err
	}
	run, cancel := pf.newRun()
	defer cancel()
	g, err := loadGraph(run, *in, *storeDir)
	if err != nil {
		return err
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "fit starting",
		slog.String("method", strings.ToLower(*method)), slog.Float64("eps", *eps),
		slog.Float64("delta", *delta), slog.Int("k", *k), slog.Uint64("seed", *seed),
		slog.Int("nodes", g.NumNodes()), slog.Int("edges", g.NumEdges()))
	fitStart := time.Now()
	defer func() {
		logger.LogAttrs(context.Background(), slog.LevelInfo, "fit finished",
			slog.Duration("duration", time.Since(fitStart)))
	}()
	rng := randx.New(*seed)
	switch strings.ToLower(*method) {
	case "private":
		// Release cache: the question is keyed before any budget is
		// debited or noise drawn, so a hit costs nothing — the rng above
		// is never touched, mirroring the refusal-draws-no-noise
		// guarantee of the accountant.
		var rc *release.Cache
		var relKey release.Key
		if *relCacheDir != "" {
			if rc, err = release.Open(*relCacheDir); err != nil {
				return err
			}
			kk := *k
			if kk <= 0 {
				kk = kronmom.KForNodes(g.NumNodes())
			}
			relKey = release.KeyFor(accountant.DatasetID(g), *eps, *delta, kk, *seed, core.PlannedReceipt(*eps, *delta))
			if e, ok := rc.Get(relKey); ok {
				var fr server.FitResult
				if err := json.Unmarshal(e.Payload, &fr); err == nil && fr.Privacy != nil && fr.Receipt != nil {
					printCachedFit(e, fr)
					return nil
				}
			}
		}
		// Ledger enforcement mirrors the server: debit the full
		// requested budget up front (Algorithm 1's schedule is
		// data-independent), run under an accountant capped at exactly
		// that debit, and never refund — a failed run may already have
		// drawn noise.
		var led *accountant.Ledger
		ds := *dataset
		if *ledgerPath != "" {
			if led, err = accountant.Open(*ledgerPath); err != nil {
				return err
			}
			if ds == "" {
				ds = accountant.DatasetID(g)
			}
			if err := led.Spend(ds, core.PlannedReceipt(*eps, *delta)); err != nil {
				return err
			}
		}
		acc := accountant.New(nil).WithLimit(dp.Budget{Eps: *eps, Delta: *delta})
		res, err := core.EstimateCtx(run, g, core.Options{Eps: *eps, Delta: *delta, K: *k, Rng: rng, Accountant: acc})
		if err != nil {
			return err
		}
		if rc != nil {
			// Memoize the released result (the server's payload shape, so
			// CLI and server fits share entries). Best-effort: a failed
			// write costs future hits, not this run.
			if _, err := rc.Put(relKey, server.PrivateFitResult(res, ds)); err != nil {
				fmt.Fprintf(os.Stderr, "dpkron fit: caching release: %v\n", err)
			}
		}
		fmt.Printf("private initiator: %s  (k=%d, %s)\n", res.Init, res.K, res.Privacy)
		fmt.Printf("private features:  E=%.1f H=%.1f T=%.1f Delta=%.1f\n",
			res.Features.E, res.Features.H, res.Features.T, res.Features.Delta)
		for _, c := range res.Charges {
			fmt.Printf("  budget: %-40s %s %s\n", c.Query, c.Mechanism, c.Budget())
		}
		if led != nil {
			fmt.Printf("  ledger: dataset %s, remaining %s\n", ds, led.Remaining(ds))
		}
		if *pf.progress {
			fmt.Fprintf(os.Stderr, "[budget] spent %s across %d mechanism charges\n",
				res.Receipt.Total, len(res.Receipt.Charges))
		}
	case "mom":
		res, err := kronmom.FitGraphCtx(run, g, *k, kronmom.Options{Rng: rng})
		if err != nil {
			return err
		}
		fmt.Printf("KronMom initiator: %s  (k=%d, objective=%.3g)\n", res.Init, res.K, res.Objective)
	case "mle":
		res, err := kronfit.FitCtx(run, g, kronfit.Options{K: *k, Rng: rng})
		if err != nil {
			return err
		}
		fmt.Printf("KronFit initiator: %s  (k=%d, ll=%.1f)\n", res.Init, res.K, res.LogLikelihood)
	default:
		return usagef(fs, "unknown method %q", *method)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := newFlagSet("generate")
	a := fs.Float64("a", 0.99, "initiator a")
	b := fs.Float64("b", 0.45, "initiator b")
	c := fs.Float64("c", 0.25, "initiator c")
	k := fs.Int("k", 10, "Kronecker power")
	out := fs.String("out", "", "output edge-list file (default stdout)")
	method := fs.String("method", "auto", "exact | balldrop | auto")
	seed := fs.Uint64("seed", 1, "random seed")
	storeDir := fs.String("store", "", "stream the sample into this dataset store (bounded memory, mmap-ready v2 file) instead of writing an edge list")
	name := fs.String("name", "", "label for the stored dataset (with -store)")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	m, err := skg.NewModel(skg.Initiator{A: *a, B: *b, C: *c}, *k)
	if err != nil {
		return err
	}
	run, cancel := pf.newRun()
	defer cancel()
	rng := randx.New(*seed)
	if *storeDir != "" {
		// Generate-to-store streams the sampled edges through an external
		// sort straight into the store's v2 encoder: the edge set never
		// materializes in memory, so k is bounded by disk, not RAM. The
		// stored graph is bit-identical to the in-memory sampler's output
		// for the same seed.
		if *out != "" {
			return usagef(fs, "-out and -store are mutually exclusive (use `dpkron dataset export` to get an edge list from the store)")
		}
		st, err := dataset.Open(*storeDir)
		if err != nil {
			return err
		}
		sorter, err := extsort.NewTemp(nil, 0)
		if err != nil {
			return err
		}
		defer sorter.RemoveAll()
		var es *skg.EdgeStream
		switch strings.ToLower(*method) {
		case "exact":
			es, err = m.StreamExactCtx(run, rng, sorter)
		case "balldrop":
			es, err = m.StreamBallDropCtx(run, rng, sorter)
		case "auto":
			es, err = m.StreamCtx(run, rng, sorter)
		default:
			return usagef(fs, "unknown method %q", *method)
		}
		if err != nil {
			return err
		}
		defer es.Close()
		meta, created, err := st.PutStream(es, *name, "generated")
		if err != nil {
			return err
		}
		verb := "stored"
		if !created {
			verb = "already stored as"
		}
		fmt.Printf("%s %s: %d nodes, %d edges (v%d, %d bytes)\n",
			verb, meta.ID, meta.Nodes, meta.Edges, meta.Format, meta.Bytes)
		return nil
	}
	var g *graph.Graph
	switch strings.ToLower(*method) {
	case "exact":
		g, err = m.SampleExactCtx(run, rng)
	case "balldrop":
		g, err = m.SampleBallDropCtx(run, rng)
	case "auto":
		g, err = m.SampleCtx(run, rng)
	default:
		return usagef(fs, "unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
	}
	return nil
}

func cmdStats(args []string) error {
	fs := newFlagSet("stats")
	in := fs.String("in", "", "edge-list file, - for stdin, or a stored dataset id with -store (required)")
	storeDir := fs.String("store", "", "dataset store directory; lets -in name a stored dataset id")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef(fs, "-in is required")
	}
	run, cancel := pf.newRun()
	defer cancel()
	g, err := loadGraph(run, *in, *storeDir)
	if err != nil {
		return err
	}
	f, err := stats.FeaturesOfCtx(run, g)
	if err != nil {
		return err
	}
	fmt.Printf("nodes: %d\nedges: %.0f\nhairpins (wedges): %.0f\ntripins (3-stars): %.0f\ntriangles: %.0f\n",
		g.NumNodes(), f.E, f.H, f.T, f.Delta)
	fmt.Printf("global clustering: %.4f\nmax degree: %d\n", stats.GlobalClustering(g), g.MaxDegree())
	hop, err := stats.HopPlotCtx(run, g)
	if err != nil {
		return err
	}
	fmt.Printf("effective diameter (90%%): %.2f\n", stats.EffectiveDiameter(hop, 0.9))
	_, sizes := stats.ConnectedComponents(g)
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("components: %d (largest %d)\n", len(sizes), largest)
	return nil
}

func cmdSweep(args []string) error {
	fs := newFlagSet("sweep")
	name := fs.String("dataset", "Synthetic", "dataset name")
	trials := fs.Int("trials", 5, "trials per epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 3, "random seed")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	// The sweep's epsilons are fixed; only -delta needs the shared check.
	if err := validateBudget(fs, 1, *delta); err != nil {
		return err
	}
	d, err := experiments.Lookup(*name)
	if err != nil {
		return err
	}
	run, cancel := pf.newRun()
	defer cancel()
	g, err := d.GenerateCtx(run)
	if err != nil {
		return err
	}
	rows, err := experiments.EpsilonSweepCtx(run, g, d.K,
		[]float64{0.05, 0.1, 0.2, 0.5, 1, 2}, *delta, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s (n=%d, m=%d)\n", d.Name, g.NumNodes(), g.NumEdges())
	fmt.Print(experiments.RenderSweep(rows))
	return nil
}

func cmdSSGrowth(args []string) error {
	fs := newFlagSet("ssgrowth")
	kmin := fs.Int("kmin", 8, "smallest k")
	kmax := fs.Int("kmax", 13, "largest k")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 3, "random seed")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if err := validateBudget(fs, *eps, *delta); err != nil {
		return err
	}
	var ks []int
	for k := *kmin; k <= *kmax; k++ {
		ks = append(ks, k)
	}
	run, cancel := pf.newRun()
	defer cancel()
	rows, err := experiments.SmoothSensGrowthCtx(run, skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, ks, *eps, *delta, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSSGrowth(rows))
	return nil
}

func cmdSSCompare(args []string) error {
	fs := newFlagSet("sscompare")
	kmin := fs.Int("kmin", 8, "smallest k")
	kmax := fs.Int("kmax", 13, "largest k")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 11, "random seed")
	pf := addPipeFlags(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if err := validateBudget(fs, *eps, *delta); err != nil {
		return err
	}
	var ks []int
	for k := *kmin; k <= *kmax; k++ {
		ks = append(ks, k)
	}
	run, cancel := pf.newRun()
	defer cancel()
	rows, err := experiments.SmoothSensCompareCtx(run, skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, ks, *eps, *delta, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSSCompare(rows))
	return nil
}

func cmdServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	maxJobs := fs.Int("max-jobs", 2, "concurrently running jobs (worker budget is split across them)")
	maxQueue := fs.Int("max-queue", 32, "bound on admitted unfinished jobs (429 beyond it)")
	maxHistory := fs.Int("max-history", 256, "finished jobs retained for polling before eviction")
	ledgerPath := fs.String("ledger", "", "privacy-budget ledger file; enables per-dataset enforcement of private fits")
	storeDir := fs.String("store", "", "dataset store directory; enables /v1/datasets and fit-by-dataset-id")
	releaseCache := fs.String("release-cache", "",
		"release cache directory; identical private fits coalesce and repeats are re-served at zero budget")
	journalPath := fs.String("journal", "",
		"job journal file; makes jobs durable across crashes (resume without a second debit) and restarts")
	traceJobs := fs.Bool("trace", false,
		"record per-job span traces (GET /v1/jobs/{id}/trace, `dpkron job trace`); bounded in-memory retention")
	traceMax := fs.Int("trace-max", 0,
		"with -trace, traces retained in memory (0 = default 512; evicted with job history)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"on SIGINT/SIGTERM, how long running jobs may finish before being cancelled")
	metricsAddr := fs.String("metrics-addr", "",
		"additionally serve /metrics (and -pprof profiles) on this separate listener, off the request path")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	lf := addLogFlags(fs, "info")
	pf := addPipeFlags(fs) // -workers, -timeout (server lifetime), -progress (job event log)
	if err := parse(fs, args); err != nil {
		return err
	}
	logger, err := lf.logger(fs)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	// Build identity as a constant-1 gauge: `dpkron_build_info{version,
	// go_version} 1` is the standard join key for "which build is this
	// fleet running" dashboards.
	reg.GaugeVec("dpkron_build_info", "Build metadata of the running dpkron binary; constant 1.",
		"version", "go_version").With(version, runtime.Version()).Set(1)
	opts := server.Options{
		Workers: *pf.workers, MaxJobs: *maxJobs, MaxQueue: *maxQueue, MaxHistory: *maxHistory,
		Metrics: reg, Logger: logger, EnablePprof: *enablePprof,
	}
	if *traceJobs {
		opts.Traces = trace.NewStore(*traceMax)
		fmt.Fprintln(os.Stderr, "dpkron serve: per-job tracing on (GET /v1/jobs/{id}/trace)")
	}
	if *ledgerPath != "" {
		led, err := accountant.Open(*ledgerPath)
		if err != nil {
			return err
		}
		opts.Ledger = led
		fmt.Fprintf(os.Stderr, "dpkron serve: enforcing privacy budgets from %s\n", led.Path())
	}
	if *storeDir != "" {
		st, err := dataset.Open(*storeDir)
		if err != nil {
			return err
		}
		opts.Datasets = st
		fmt.Fprintf(os.Stderr, "dpkron serve: serving datasets from %s\n", st.Dir())
	}
	if *releaseCache != "" {
		rc, err := release.Open(*releaseCache)
		if err != nil {
			return err
		}
		opts.Releases = rc
		fmt.Fprintf(os.Stderr, "dpkron serve: caching private-fit releases in %s\n", rc.Dir())
	}
	if *journalPath != "" {
		jnl, err := journal.Open(*journalPath)
		if err != nil {
			return err
		}
		defer jnl.Close()
		opts.Journal = jnl
		fmt.Fprintf(os.Stderr, "dpkron serve: journaling jobs to %s\n", jnl.Path())
	}
	if *pf.progress {
		// Event streams are serialized per job but concurrent across
		// jobs; one mutex keeps the shared stderr renderer safe.
		var mu sync.Mutex
		sink := progressSink(os.Stderr)
		opts.EventLog = func(jobID string, e pipeline.Event) {
			mu.Lock()
			defer mu.Unlock()
			sink(pipeline.Event{Stage: jobID + "/" + e.Stage, Frac: e.Frac})
		}
	}
	srv := server.New(opts)
	defer srv.Close()
	// Listen before serving so -addr :0 (ephemeral port) reports the
	// real address — which also makes the command end-to-end testable.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}

	if *metricsAddr != "" {
		// Telemetry on its own listener: scrapes and profiles stay
		// reachable (and firewallable) independently of request traffic.
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", reg.Handler())
		if *enablePprof {
			mmux.HandleFunc("GET /debug/pprof/", pprof.Index)
			mmux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
			mmux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
			mmux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
			mmux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		}
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		metricsSrv := &http.Server{Handler: mmux, ReadHeaderTimeout: 10 * time.Second}
		defer metricsSrv.Close()
		fmt.Fprintf(os.Stderr, "dpkron serve: metrics on http://%s/metrics\n", mln.Addr())
		go func() { _ = metricsSrv.Serve(mln) }()
	}

	// -timeout bounds the server's lifetime (useful for smoke tests and
	// batch drivers); SIGINT/SIGTERM always shut down gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pf.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *pf.timeout)
		defer cancel()
	}
	errCh := make(chan error, 1)
	fmt.Fprintf(os.Stderr, "dpkron serve: listening on http://%s (max-jobs=%d, workers=%d)\n",
		ln.Addr(), *maxJobs, *pf.workers)
	go func() {
		errCh <- httpSrv.Serve(ln)
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		// Graceful drain: refuse new work (503 + Retry-After) while
		// serving reads and letting running jobs finish; past the
		// deadline, cancel stragglers so their terminal states land in
		// the journal before the process exits. A drained exit is a
		// success (status 0) — the journal holds no silent debits.
		fmt.Fprintf(os.Stderr, "dpkron serve: draining (up to %s)\n", *drainTimeout)
		srv.StartDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		srv.Drain(drainCtx)
		cancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "dpkron serve: drained, shutting down")
		return nil
	}
}

// cmdBudget manages privacy-budget ledgers: `dpkron budget show` lists
// accounts (budget, spent, remaining, receipts), `set` configures a
// dataset's allowance, and `reset` zeroes its spend. The same ledger
// file drives `fit -ledger` and `serve -ledger` enforcement.
func cmdBudget(args []string) error {
	fs := newFlagSet("budget")
	ledgerPath := fs.String("ledger", "", "ledger file (required)")
	dataset := fs.String("dataset", "", "dataset id (required for set/reset; filters show)")
	eps := fs.Float64("eps", 0, "total epsilon allowance (set)")
	delta := fs.Float64("delta", 0, "total delta allowance (set)")
	action := "show"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		action, args = args[0], args[1:]
	}
	if err := parse(fs, args); err != nil {
		return err
	}
	switch action {
	case "show", "set", "reset":
	default:
		return usagef(fs, "unknown action %q (want show, set or reset)", action)
	}
	if *ledgerPath == "" {
		return usagef(fs, "-ledger is required")
	}
	if action != "show" && *dataset == "" {
		return usagef(fs, "-dataset is required for %s", action)
	}
	if action == "set" {
		if err := validateBudget(fs, *eps, *delta); err != nil {
			return err
		}
	}
	led, err := accountant.Open(*ledgerPath)
	if err != nil {
		return err
	}
	switch action {
	case "set":
		if err := led.SetBudget(*dataset, dp.Budget{Eps: *eps, Delta: *delta}); err != nil {
			return err
		}
		fmt.Printf("dataset %s: budget set to %s\n", *dataset, dp.Budget{Eps: *eps, Delta: *delta})
	case "reset":
		if err := led.Reset(*dataset); err != nil {
			return err
		}
		fmt.Printf("dataset %s: spend reset\n", *dataset)
	case "show":
		ids := led.Datasets()
		if *dataset != "" {
			ids = []string{*dataset}
		}
		if len(ids) == 0 {
			fmt.Printf("ledger %s: no datasets (configure one with `dpkron budget set`)\n", led.Path())
			return nil
		}
		for _, id := range ids {
			acct, ok := led.Account(id)
			if !ok {
				return fmt.Errorf("unknown dataset %q", id)
			}
			fmt.Printf("dataset %s  budget %s  spent %s  remaining %s  receipts %d\n",
				id, acct.Budget, acct.Spent, acct.Remaining(), len(acct.Receipts))
		}
	}
	return nil
}

func cmdDatasets(args []string) error {
	for _, d := range experiments.Registry() {
		fmt.Printf("%-14s k=%d seed=%d generator=%s (stands in for N=%d E=%d)\n",
			d.Name, d.K, d.Seed, d.Source, d.PaperN, d.PaperE)
	}
	return nil
}
