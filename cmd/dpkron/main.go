// Command dpkron is the CLI for the differentially private stochastic
// Kronecker graph estimator. It regenerates the paper's experiments and
// provides the end-user workflow: fit (private or baseline), generate
// synthetic graphs, and inspect statistics.
//
// Usage:
//
//	dpkron table1  [-eps E] [-delta D] [-seed S]
//	dpkron figure  -dataset NAME [-expected N] [-csv FILE] [-plot]
//	dpkron fit     -in FILE [-method private|mom|mle] [-eps E] [-delta D] [-k K]
//	dpkron generate -a A -b B -c C -k K [-out FILE] [-method exact|balldrop]
//	dpkron stats   -in FILE
//	dpkron sweep   [-dataset NAME] [-trials N]
//	dpkron ssgrowth [-kmin K] [-kmax K]
//	dpkron datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"dpkron/internal/core"
	"dpkron/internal/experiments"
	"dpkron/internal/graph"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
	"dpkron/internal/textplot"
)

// workersFlag registers the shared -workers flag: every command shards
// its hot paths across this many goroutines. Results are identical for
// any value; the flag only bounds parallelism.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for parallel sampling/counting/fitting (results are worker-count invariant)")
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "figure":
		err = cmdFigure(args)
	case "fit":
		err = cmdFit(args)
	case "generate":
		err = cmdGenerate(args)
	case "stats":
		err = cmdStats(args)
	case "sweep":
		err = cmdSweep(args)
	case "ssgrowth":
		err = cmdSSGrowth(args)
	case "sscompare":
		err = cmdSSCompare(args)
	case "datasets":
		err = cmdDatasets(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dpkron: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpkron %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `dpkron — differentially private Kronecker graph estimation

commands:
  table1     regenerate the paper's Table 1 (three estimators, four graphs)
  figure     regenerate a figure (five statistics panels for one dataset)
  fit        estimate initiator parameters for an edge-list graph
  generate   sample a synthetic SKG
  stats      print the matching features and summary statistics of a graph
  sweep      privacy-utility sweep over epsilon
  ssgrowth   smooth sensitivity of triangles vs graph size
  sscompare  smooth sensitivity: SKG vs density-matched G(n,p)
  datasets   list the built-in evaluation datasets
`)
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 7, "random seed")
	iters := fs.Int("kronfit-iters", 60, "KronFit gradient iterations")
	workers := workersFlag(fs)
	fs.Parse(args)
	opts := experiments.Table1Options{Eps: *eps, Delta: *delta, Seed: *seed, KronFitIters: *iters, Workers: *workers}
	rows, err := experiments.RunTable1(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(rows, opts))
	return nil
}

func cmdFigure(args []string) error {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	name := fs.String("dataset", "CA-GrQc-like", "dataset name (see `dpkron datasets`)")
	expected := fs.Int("expected", 0, "realizations for expected curves (paper: 100)")
	csvPath := fs.String("csv", "", "write full series to CSV file")
	plot := fs.Bool("plot", false, "render ASCII log-log plots")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 11, "random seed")
	workers := workersFlag(fs)
	fs.Parse(args)
	d, err := experiments.Lookup(*name)
	if err != nil {
		return err
	}
	res, err := experiments.RunFigure(d, experiments.FigureOptions{
		Eps: *eps, Delta: *delta, Seed: *seed, ExpectedRuns: *expected, Workers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFigure(res, 10))
	if *plot {
		for _, panel := range experiments.PanelNames {
			fmt.Printf("\n== %s (log-log) ==\n", panel)
			var series []textplot.Series
			add := func(label string, s experiments.Series) {
				series = append(series, textplot.Series{Name: label, X: s.X, Y: s.Y})
			}
			add("Original", res.Original.Panel(panel))
			for _, n := range experiments.EstimatorNames {
				add(n, res.Single[n].Panel(panel))
			}
			logX := panel != "hop plot"
			fmt.Print(textplot.Render(series, textplot.Options{LogX: logX, LogY: true}))
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteCSV(f, res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f, 0)
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	in := fs.String("in", "", "edge-list file (required)")
	method := fs.String("method", "private", "private | mom | mle")
	eps := fs.Float64("eps", 0.2, "total epsilon (private)")
	delta := fs.Float64("delta", 0.01, "delta (private)")
	k := fs.Int("k", 0, "Kronecker power (0 = infer)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := workersFlag(fs)
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	rng := randx.New(*seed)
	switch strings.ToLower(*method) {
	case "private":
		res, err := core.Estimate(g, core.Options{Eps: *eps, Delta: *delta, K: *k, Rng: rng, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Printf("private initiator: %s  (k=%d, %s)\n", res.Init, res.K, res.Privacy)
		fmt.Printf("private features:  E=%.1f H=%.1f T=%.1f Delta=%.1f\n",
			res.Features.E, res.Features.H, res.Features.T, res.Features.Delta)
		for _, c := range res.Charges {
			fmt.Printf("  budget: %-40s %s\n", c.Label, c.Budget)
		}
	case "mom":
		res, err := kronmom.FitGraph(g, *k, kronmom.Options{Rng: rng, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Printf("KronMom initiator: %s  (k=%d, objective=%.3g)\n", res.Init, res.K, res.Objective)
	case "mle":
		res, err := kronfit.Fit(g, kronfit.Options{K: *k, Rng: rng, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Printf("KronFit initiator: %s  (k=%d, ll=%.1f)\n", res.Init, res.K, res.LogLikelihood)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	a := fs.Float64("a", 0.99, "initiator a")
	b := fs.Float64("b", 0.45, "initiator b")
	c := fs.Float64("c", 0.25, "initiator c")
	k := fs.Int("k", 10, "Kronecker power")
	out := fs.String("out", "", "output edge-list file (default stdout)")
	method := fs.String("method", "auto", "exact | balldrop | auto")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := workersFlag(fs)
	fs.Parse(args)
	m, err := skg.NewModel(skg.Initiator{A: *a, B: *b, C: *c}, *k)
	if err != nil {
		return err
	}
	rng := randx.New(*seed)
	var g *graph.Graph
	switch strings.ToLower(*method) {
	case "exact":
		g = m.SampleExactWorkers(rng, *workers)
	case "balldrop":
		g = m.SampleBallDropWorkers(rng, *workers)
	default:
		g = m.SampleWorkers(rng, *workers)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "edge-list file (required)")
	workers := workersFlag(fs)
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	f := stats.FeaturesOfWorkers(g, *workers)
	fmt.Printf("nodes: %d\nedges: %.0f\nhairpins (wedges): %.0f\ntripins (3-stars): %.0f\ntriangles: %.0f\n",
		g.NumNodes(), f.E, f.H, f.T, f.Delta)
	fmt.Printf("global clustering: %.4f\nmax degree: %d\n", stats.GlobalClustering(g), g.MaxDegree())
	hop := stats.HopPlotWorkers(g, *workers)
	fmt.Printf("effective diameter (90%%): %.2f\n", stats.EffectiveDiameter(hop, 0.9))
	_, sizes := stats.ConnectedComponents(g)
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("components: %d (largest %d)\n", len(sizes), largest)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	name := fs.String("dataset", "Synthetic", "dataset name")
	trials := fs.Int("trials", 5, "trials per epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 3, "random seed")
	workers := workersFlag(fs)
	fs.Parse(args)
	d, err := experiments.Lookup(*name)
	if err != nil {
		return err
	}
	g := d.GenerateWorkers(*workers)
	rows, err := experiments.EpsilonSweepWorkers(g, d.K,
		[]float64{0.05, 0.1, 0.2, 0.5, 1, 2}, *delta, *trials, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s (n=%d, m=%d)\n", d.Name, g.NumNodes(), g.NumEdges())
	fmt.Print(experiments.RenderSweep(rows))
	return nil
}

func cmdSSGrowth(args []string) error {
	fs := flag.NewFlagSet("ssgrowth", flag.ExitOnError)
	kmin := fs.Int("kmin", 8, "smallest k")
	kmax := fs.Int("kmax", 13, "largest k")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 3, "random seed")
	fs.Parse(args)
	var ks []int
	for k := *kmin; k <= *kmax; k++ {
		ks = append(ks, k)
	}
	rows, err := experiments.SmoothSensGrowth(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, ks, *eps, *delta, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSSGrowth(rows))
	return nil
}

func cmdSSCompare(args []string) error {
	fs := flag.NewFlagSet("sscompare", flag.ExitOnError)
	kmin := fs.Int("kmin", 8, "smallest k")
	kmax := fs.Int("kmax", 13, "largest k")
	eps := fs.Float64("eps", 0.2, "total epsilon")
	delta := fs.Float64("delta", 0.01, "delta")
	seed := fs.Uint64("seed", 11, "random seed")
	fs.Parse(args)
	var ks []int
	for k := *kmin; k <= *kmax; k++ {
		ks = append(ks, k)
	}
	rows, err := experiments.SmoothSensCompare(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, ks, *eps, *delta, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSSCompare(rows))
	return nil
}

func cmdDatasets(args []string) error {
	for _, d := range experiments.Registry() {
		fmt.Printf("%-14s k=%d seed=%d generator=%s (stands in for N=%d E=%d)\n",
			d.Name, d.K, d.Seed, d.Source, d.PaperN, d.PaperE)
	}
	return nil
}
