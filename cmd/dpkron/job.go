// dpkron job — client-side job management against a running
// `dpkron serve` instance:
//
//	dpkron job list   -server URL
//	dpkron job show   -server URL -id job-N
//	dpkron job wait   -server URL -id job-N [-timeout D] [-progress]
//	dpkron job trace  -server URL -id job-N [-chrome FILE] [-width N]
//	dpkron job cancel -server URL -id job-N
//
// `wait` polls with jittered exponential backoff and honors the
// server's Retry-After header on 429 (budget or queue pressure) and
// 503 (draining for shutdown) responses, so a fleet of waiting
// clients neither hammers a busy server nor synchronizes its retries;
// with -progress it streams the job's stage transitions to stderr as
// they appear in the polled views. `trace` renders the job's span
// tree (see trace.go).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// jobView mirrors the server's job representation (internal/server
// `view`); Result stays raw so `show` and `wait` can print it as the
// server sent it.
type jobView struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Status string          `json:"status"`
	Stages []stageView     `json:"stages,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// stageView mirrors the server's StageProgress: one pipeline stage's
// latest fraction and, once complete, its wall-clock duration.
type stageView struct {
	Stage   string  `json:"stage"`
	Frac    float64 `json:"frac"`
	Seconds float64 `json:"seconds,omitempty"`
}

func cmdJob(args []string) error {
	fs := newFlagSet("job")
	serverURL := fs.String("server", "http://127.0.0.1:8080", "base URL of a running `dpkron serve`")
	id := fs.String("id", "", "job id (required for show, wait and cancel)")
	timeout := fs.Duration("timeout", 10*time.Minute, "wait: give up after this long")
	verbose := fs.Bool("v", false, "show: also print per-stage progress and timings")
	progress := fs.Bool("progress", false, "wait: stream stage-progress transitions to stderr while polling")
	chrome := fs.String("chrome", "", "trace: write the Chrome/Perfetto trace-event export to this file instead of rendering")
	width := fs.Int("width", 48, "trace: waterfall bar-area width in columns")
	action := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		action, args = args[0], args[1:]
	}
	if err := parse(fs, args); err != nil {
		return err
	}
	switch action {
	case "list", "show", "wait", "trace", "cancel":
	case "":
		return usagef(fs, "an action is required (list, show, wait, trace or cancel)")
	default:
		return usagef(fs, "unknown action %q (want list, show, wait, trace or cancel)", action)
	}
	if action != "list" && *id == "" {
		return usagef(fs, "-id is required for %s", action)
	}
	base := strings.TrimSuffix(*serverURL, "/")
	switch action {
	case "list":
		return jobList(base)
	case "show":
		v, err := jobGet(base, *id)
		if err != nil {
			return err
		}
		printJobVerbose(os.Stdout, v, *verbose)
		return nil
	case "trace":
		return jobTrace(base, *id, *chrome, *width)
	case "cancel":
		return jobCancel(base, *id)
	default: // wait
		return jobWait(base, *id, *timeout, *progress)
	}
}

func jobList(base string) error {
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	var out struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decoding job list: %w", err)
	}
	if len(out.Jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	for _, v := range out.Jobs {
		line := fmt.Sprintf("%-10s %-12s %s", v.ID, v.Status, v.Kind)
		if v.Error != "" {
			line += "  (" + v.Error + ")"
		}
		fmt.Println(line)
	}
	return nil
}

func jobGet(base, id string) (*jobView, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("decoding job: %w", err)
	}
	return &v, nil
}

func jobCancel(base, id string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return httpError(resp)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return fmt.Errorf("decoding cancel response: %w", err)
	}
	fmt.Printf("%s: %s\n", v.ID, v.Status)
	return nil
}

// jobWait polls until the job reaches a terminal state. Transient
// trouble — connection refused (the server may be mid-restart,
// replaying its journal), 429 back-pressure, 503 drain — is retried
// with jittered exponential backoff, capped and reset on success; a
// Retry-After header overrides the computed delay. With progress set,
// stage transitions observed between polls stream to stderr in the
// shared [stage] format.
func jobWait(base, id string, timeout time.Duration, progress bool) error {
	deadline := time.Now().Add(timeout)
	delay := 50 * time.Millisecond
	const maxDelay = 5 * time.Second
	var stream *stageStreamer
	if progress {
		stream = newStageStreamer(os.Stderr)
	}
	for {
		v, retryAfter, err := jobGetRetryable(base, id)
		if err != nil {
			return err
		}
		if v != nil {
			stream.observe(v.Stages)
			switch v.Status {
			case "done":
				printJob(os.Stdout, v, false)
				return nil
			case "failed", "cancelled":
				printJob(os.Stderr, v, false)
				return fmt.Errorf("job %s %s", v.ID, v.Status)
			}
			// Pending or running: poll again, gently.
			delay = 50 * time.Millisecond
		} else {
			delay = min(2*delay, maxDelay)
		}
		sleep := jitter(delay)
		if retryAfter > 0 {
			sleep = retryAfter
		}
		if time.Now().Add(sleep).After(deadline) {
			return fmt.Errorf("timed out after %s waiting for job %s", timeout, id)
		}
		time.Sleep(sleep)
	}
}

// stageStreamer turns successive polled stage views into the CLI's
// [stage] transition lines: first sight announces the stage, coarse
// (>= 25%) fraction steps report progress, completion reports the
// stage's wall-clock seconds. Polls that skip intermediate states
// print only what the latest view shows — the stream is a digest,
// not a replay. A nil streamer ignores everything.
type stageStreamer struct {
	w    io.Writer
	last map[string]float64 // last printed frac; >= 1 means done printed
}

func newStageStreamer(w io.Writer) *stageStreamer {
	return &stageStreamer{w: w, last: map[string]float64{}}
}

func (s *stageStreamer) observe(stages []stageView) {
	if s == nil {
		return
	}
	for _, st := range stages {
		prev, seen := s.last[st.Stage]
		switch {
		case prev >= 1:
			// already reported done
		case st.Frac >= 1:
			if !seen {
				fmt.Fprintf(s.w, "[stage] %s ...\n", st.Stage)
			}
			if st.Seconds > 0 {
				fmt.Fprintf(s.w, "[stage] %s done (%.3fs)\n", st.Stage, st.Seconds)
			} else {
				fmt.Fprintf(s.w, "[stage] %s done\n", st.Stage)
			}
			s.last[st.Stage] = 1
		case !seen:
			fmt.Fprintf(s.w, "[stage] %s ...\n", st.Stage)
			s.last[st.Stage] = 0
			if st.Frac >= 0.25 {
				fmt.Fprintf(s.w, "[stage] %s %3.0f%%\n", st.Stage, st.Frac*100)
				s.last[st.Stage] = st.Frac
			}
		case st.Frac-prev >= 0.25:
			fmt.Fprintf(s.w, "[stage] %s %3.0f%%\n", st.Stage, st.Frac*100)
			s.last[st.Stage] = st.Frac
		}
	}
}

// jobGetRetryable fetches a job view, distinguishing retryable
// conditions (nil view, nil error, optional Retry-After duration)
// from permanent failures.
func jobGetRetryable(base, id string) (*jobView, time.Duration, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		// Connection-level failure: the server may be restarting.
		return nil, 0, nil
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return nil, 0, fmt.Errorf("decoding job: %w", err)
		}
		return &v, 0, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return nil, parseRetryAfter(resp.Header.Get("Retry-After")), nil
	default:
		return nil, 0, httpError(resp)
	}
}

// parseRetryAfter reads the delay-seconds form of a Retry-After
// header (the only form this server emits); anything else yields 0,
// meaning "use the computed backoff".
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// jitter spreads a delay uniformly over [d/2, d) so independent
// clients waiting on the same server decorrelate their retries.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + rand.N(d/2)
}

// printJobVerbose is `job show`'s renderer: the standard job block,
// with per-stage progress and wall-clock timings when -v is set.
func printJobVerbose(w *os.File, v *jobView, verbose bool) {
	fmt.Fprintf(w, "job:    %s\nkind:   %s\nstatus: %s\n", v.ID, v.Kind, v.Status)
	if verbose {
		for _, st := range v.Stages {
			line := fmt.Sprintf("stage:  %-28s %5.1f%%", st.Stage, st.Frac*100)
			if st.Seconds > 0 {
				line += fmt.Sprintf("  %.3fs", st.Seconds)
			}
			fmt.Fprintln(w, line)
		}
	}
	printJobTail(w, v, true)
}

func printJob(w *os.File, v *jobView, withResult bool) {
	fmt.Fprintf(w, "job:    %s\nkind:   %s\nstatus: %s\n", v.ID, v.Kind, v.Status)
	printJobTail(w, v, withResult)
}

// printJobTail renders the error and result lines shared by the plain
// and verbose job renderers.
func printJobTail(w *os.File, v *jobView, withResult bool) {
	if v.Error != "" {
		fmt.Fprintf(w, "error:  %s\n", v.Error)
	}
	if len(v.Result) > 0 {
		var buf bytes.Buffer
		if json.Indent(&buf, v.Result, "", "  ") == nil {
			fmt.Fprintf(w, "result: %s\n", buf.String())
		} else {
			fmt.Fprintf(w, "result: %s\n", v.Result)
		}
	} else if withResult && v.Status == "done" {
		fmt.Fprintln(w, "result: (not retained)")
	}
}

func httpError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	if body.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d", resp.StatusCode)
}
