// Coauthorship: the paper's motivating scenario on the CA-GrQc-like
// dataset — a co-authorship network curator wants to let researchers
// study degree structure, connectivity and clustering without exposing
// who collaborated with whom.
//
// The example compares all three estimators of the paper's Table 1 on
// the same graph and reports the five descriptive statistics of the
// figure panels for the original versus each synthetic graph.
//
//	go run ./examples/coauthorship
package main

import (
	"fmt"
	"log"

	"dpkron"
)

func main() {
	// Deterministic stand-in for SNAP CA-GrQc (see DESIGN.md): an SKG
	// sample at the paper's published KronMom parameters, k=12 here to
	// keep the example fast (the benchmarks run the full k=13).
	gen, err := dpkron.NewModel(dpkron.Initiator{A: 1.0, B: 0.4674, C: 0.2790}, 12)
	if err != nil {
		log.Fatal(err)
	}
	original := gen.Sample(dpkron.NewRand(1001))
	fmt.Printf("co-authorship stand-in: %d nodes, %d edges\n\n",
		original.NumNodes(), original.NumEdges())

	// Fit the three estimators of Table 1.
	mle, err := dpkron.FitMLE(original, dpkron.MLEOptions{K: 12, Iters: 40, Rng: dpkron.NewRand(2)})
	if err != nil {
		log.Fatal(err)
	}
	mom, err := dpkron.FitMoment(original, 12, dpkron.MomentOptions{Rng: dpkron.NewRand(3)})
	if err != nil {
		log.Fatal(err)
	}
	priv, err := dpkron.EstimatePrivate(original, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(4),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimates (a/b/c):")
	fmt.Printf("  KronFit  %s\n", mle.Init)
	fmt.Printf("  KronMom  %s\n", mom.Init)
	fmt.Printf("  Private  %s   <- safe to publish under %s\n\n", priv.Init, priv.Privacy)

	// Sample one synthetic graph per estimator and compare statistics.
	models := []struct {
		name string
		init dpkron.Initiator
	}{
		{"KronFit", mle.Init},
		{"KronMom", mom.Init},
		{"Private", priv.Init},
	}
	type row struct {
		name                  string
		edges, tris           float64
		effDiam               float64
		clustering, maxDegree float64
	}
	summarize := func(name string, g *dpkron.Graph) row {
		f := dpkron.FeaturesOf(g)
		hop := dpkron.HopPlot(g)
		// Effective diameter at 90% of reachable pairs.
		target := 0.9 * float64(hop[len(hop)-1])
		eff := 0.0
		for h, v := range hop {
			if float64(v) >= target {
				eff = float64(h)
				break
			}
		}
		globalCC := 0.0
		if f.H > 0 {
			globalCC = 3 * f.Delta / f.H
		}
		return row{name, f.E, f.Delta, eff, globalCC, float64(g.MaxDegree())}
	}
	rows := []row{summarize("Original", original)}
	for i, m := range models {
		model, err := dpkron.NewModel(m.init, 12)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, summarize(m.name, model.Sample(dpkron.NewRand(uint64(10+i)))))
	}
	fmt.Printf("%-10s %9s %10s %8s %10s %8s\n",
		"graph", "edges", "triangles", "effDiam", "transit.", "maxDeg")
	for _, r := range rows {
		fmt.Printf("%-10s %9.0f %10.0f %8.0f %10.4f %8.0f\n",
			r.name, r.edges, r.tris, r.effDiam, r.clustering, r.maxDegree)
	}
	fmt.Println("\nThe Private row should track KronMom closely: that is the paper's headline result.")
}
