// Privacysweep: quantifies the privacy–utility trade-off of the paper's
// Algorithm 1. For a range of ε it reports how far the private estimate
// lands from the non-private KronMom estimate of the same graph and how
// accurate the released features are — the practical question a data
// owner asks before choosing ε ("meaningful values of ε", §4.2).
//
//	go run ./examples/privacysweep
package main

import (
	"fmt"
	"log"
	"math"

	"dpkron"
)

func main() {
	// Sensitive graph: 4096-node SKG sample in the paper's triangle-rich
	// operating regime.
	model, err := dpkron.NewModel(dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}, 12)
	if err != nil {
		log.Fatal(err)
	}
	g := model.Sample(dpkron.NewRand(1))
	exact := dpkron.FeaturesOf(g)
	fmt.Printf("graph: %d nodes, %.0f edges, %.0f triangles\n\n",
		g.NumNodes(), exact.E, exact.Delta)

	base, err := dpkron.FitMoment(g, 12, dpkron.MomentOptions{Rng: dpkron.NewRand(2)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-private KronMom: %s\n\n", base.Init)

	const trials = 5
	fmt.Printf("%-8s %-22s %-14s %-14s\n", "eps", "mean private (a/b/c)", "param dist", "edge rel err")
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.5, 1.0, 2.0} {
		var sa, sb, sc, dist, edgeErr float64
		for trial := 0; trial < trials; trial++ {
			res, err := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{
				Eps: eps, Delta: 0.01, Rng: dpkron.NewRand(uint64(100*trial) + uint64(eps*1000)),
			})
			if err != nil {
				log.Fatal(err)
			}
			sa += res.Init.A
			sb += res.Init.B
			sc += res.Init.C
			dist += math.Max(math.Abs(res.Init.A-base.Init.A),
				math.Max(math.Abs(res.Init.B-base.Init.B), math.Abs(res.Init.C-base.Init.C)))
			edgeErr += math.Abs(res.Features.E-exact.E) / exact.E
		}
		f := float64(trials)
		fmt.Printf("%-8.2f %.3f/%.3f/%.3f      %-14.4f %-14.4f\n",
			eps, sa/f, sb/f, sc/f, dist/f, edgeErr/f)
	}
	fmt.Println("\nAt eps >= 0.2 the private estimate is within a few hundredths of the")
	fmt.Println("non-private one — the regime the paper calls 'meaningful values of eps'.")
}
