// Recovery: the paper's synthetic experiment (Table 1, last row) as a
// parameter-recovery study. A graph is generated from known SKG
// parameters and all three estimators — KronFit (approximate MLE),
// KronMom (moment matching) and Private (Algorithm 1) — try to recover
// them. When the modelling assumption holds exactly, everything should
// land near the truth.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"dpkron"
)

func main() {
	truth := dpkron.Initiator{A: 0.99, B: 0.45, C: 0.25}
	const k = 12 // 4096 nodes (the paper uses 2^14; this keeps the example snappy)
	model, err := dpkron.NewModel(truth, k)
	if err != nil {
		log.Fatal(err)
	}
	g := model.Sample(dpkron.NewRand(7))
	fmt.Printf("source: SKG(%s), k=%d -> %d nodes, %d edges\n\n",
		truth, k, g.NumNodes(), g.NumEdges())

	mle, err := dpkron.FitMLE(g, dpkron.MLEOptions{K: k, Rng: dpkron.NewRand(1)})
	if err != nil {
		log.Fatal(err)
	}
	mom, err := dpkron.FitMoment(g, k, dpkron.MomentOptions{Rng: dpkron.NewRand(2)})
	if err != nil {
		log.Fatal(err)
	}
	priv, err := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(3),
	})
	if err != nil {
		log.Fatal(err)
	}

	rows := []struct {
		name string
		init dpkron.Initiator
	}{
		{"truth", truth},
		{"KronFit", mle.Init},
		{"KronMom", mom.Init},
		{"Private", priv.Init},
	}
	fmt.Printf("%-10s %8s %8s %8s\n", "estimator", "a", "b", "c")
	for _, r := range rows {
		fmt.Printf("%-10s %8.4f %8.4f %8.4f\n", r.name, r.init.A, r.init.B, r.init.C)
	}

	// How well does each estimate reproduce the observed features?
	fmt.Printf("\n%-10s %9s %10s %10s %10s\n", "model", "E[edges]", "E[wedges]", "E[3stars]", "E[tri]")
	obs := dpkron.FeaturesOf(g)
	fmt.Printf("%-10s %9.0f %10.0f %10.0f %10.0f\n", "observed", obs.E, obs.H, obs.T, obs.Delta)
	for _, r := range rows[1:] {
		m, err := dpkron.NewModel(r.init, k)
		if err != nil {
			log.Fatal(err)
		}
		ef := m.ExpectedFeatures()
		fmt.Printf("%-10s %9.0f %10.0f %10.0f %10.0f\n", r.name, ef.E, ef.H, ef.T, ef.Delta)
	}
	fmt.Println("\nAll three estimators recover the generating parameters when the")
	fmt.Println("modelling assumption is true — Table 1's synthetic row.")
}
