// Quickstart: the end-to-end private release workflow in ~40 lines.
//
// A data owner holds a sensitive graph. They run the paper's Algorithm 1
// to obtain a differentially private SKG initiator, publish it, and any
// analyst can then sample synthetic graphs that mimic the original.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dpkron"
)

func main() {
	// The sensitive graph: here, a synthetic stand-in sampled from a
	// known SKG so we can see how well the pipeline recovers it. The
	// parameters give a graph with a few thousand triangles — the
	// regime the paper evaluates, where the private triangle count
	// carries signal (see EXPERIMENTS.md for the low-triangle case).
	truth := dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}
	model, err := dpkron.NewModel(truth, 12) // 4096 nodes
	if err != nil {
		log.Fatal(err)
	}
	sensitive := model.Sample(dpkron.NewRand(1))
	fmt.Printf("sensitive graph: %d nodes, %d edges, %d triangles\n",
		sensitive.NumNodes(), sensitive.NumEdges(), dpkron.Triangles(sensitive))

	// Data owner: one call releases an (eps, delta)-DP estimator.
	res, err := dpkron.EstimatePrivate(sensitive, dpkron.PrivateOptions{
		Eps:   0.2,
		Delta: 0.01,
		Rng:   dpkron.NewRand(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released initiator: %s under %s\n", res.Init, res.Privacy)
	fmt.Printf("generating truth:   %s\n", truth)

	// Analyst: sample a synthetic graph from the published model and
	// compute statistics that never touch the sensitive data.
	synth := res.Model().Sample(dpkron.NewRand(3))
	fs, fo := dpkron.FeaturesOf(synth), dpkron.FeaturesOf(sensitive)
	fmt.Printf("\n%-12s %12s %12s\n", "feature", "original", "synthetic")
	fmt.Printf("%-12s %12.0f %12.0f\n", "edges", fo.E, fs.E)
	fmt.Printf("%-12s %12.0f %12.0f\n", "hairpins", fo.H, fs.H)
	fmt.Printf("%-12s %12.0f %12.0f\n", "tripins", fo.T, fs.T)
	fmt.Printf("%-12s %12.0f %12.0f\n", "triangles", fo.Delta, fs.Delta)
}
