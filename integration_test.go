package dpkron_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"dpkron"
	"dpkron/internal/degseq"
	"dpkron/internal/dp"
	"dpkron/internal/experiments"
	"dpkron/internal/kronmom"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// TestPipelineRoundTrip exercises the full paper workflow: sample →
// privately estimate → publish → regenerate → compare statistics.
func TestPipelineRoundTrip(t *testing.T) {
	// k=12 keeps the triangle count (~2500) well above the smooth-
	// sensitivity noise scale (~840 at ε/2=0.1), the regime the paper
	// evaluates; at k=11 the triangle term is noise-dominated.
	truth := dpkron.Initiator{A: 0.99, B: 0.55, C: 0.35}
	model, err := dpkron.NewModel(truth, 12)
	if err != nil {
		t.Fatal(err)
	}
	original := model.Sample(dpkron.NewRand(1))
	res, err := dpkron.EstimatePrivate(original, dpkron.PrivateOptions{
		Eps: 0.2, Delta: 0.01, Rng: dpkron.NewRand(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Average feature counts over several synthetic samples.
	var e, h, d float64
	const runs = 10
	for i := 0; i < runs; i++ {
		f := dpkron.FeaturesOf(res.Model().Sample(dpkron.NewRand(uint64(10 + i))))
		e += f.E
		h += f.H
		d += f.Delta
	}
	orig := dpkron.FeaturesOf(original)
	if rel := math.Abs(e/runs-orig.E) / orig.E; rel > 0.25 {
		t.Errorf("synthetic edges off by %.0f%%", rel*100)
	}
	if rel := math.Abs(h/runs-orig.H) / orig.H; rel > 0.4 {
		t.Errorf("synthetic hairpins off by %.0f%%", rel*100)
	}
	if rel := math.Abs(d/runs-orig.Delta) / orig.Delta; rel > 0.6 {
		t.Errorf("synthetic triangles off by %.0f%%", rel*100)
	}
}

// TestWriteReadEstimateStable runs the estimator on a graph serialized
// through the edge-list format, confirming I/O does not perturb results.
func TestWriteReadEstimateStable(t *testing.T) {
	model, _ := dpkron.NewModel(dpkron.Initiator{A: 0.9, B: 0.5, C: 0.3}, 9)
	g := model.Sample(dpkron.NewRand(3))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dpkron.ReadEdgeList(&buf, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{Eps: 1, Delta: 0.05, Rng: dpkron.NewRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dpkron.EstimatePrivate(back, dpkron.PrivateOptions{Eps: 1, Delta: 0.05, Rng: dpkron.NewRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Init != b.Init {
		t.Fatalf("estimates diverged after IO round trip: %v vs %v", a.Init, b.Init)
	}
}

// TestQuickObjectiveSymmetricUnderSwap: the SKG distribution is
// invariant under swapping a and c (relabelling initiator nodes), so the
// moment objective must be too.
func TestQuickObjectiveSymmetricUnderSwap(t *testing.T) {
	obs := stats.Features{E: 5000, H: 60000, T: 400000, Delta: 800}
	obj := kronmom.DefaultObjective()
	f := func(ar, br, cr uint16) bool {
		a := float64(ar) / 65535
		b := float64(br) / 65535
		c := float64(cr) / 65535
		v1 := obj.Eval(obs, 10, skg.Initiator{A: a, B: b, C: c})
		v2 := obj.Eval(obs, 10, skg.Initiator{A: c, B: b, C: a})
		return math.Abs(v1-v2) <= 1e-9*(1+math.Abs(v1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTriadicClosurePreservesAndAdds checks the densification pass used
// by the dataset stand-ins.
func TestTriadicClosurePreservesAndAdds(t *testing.T) {
	m := skg.Model{Init: skg.Initiator{A: 0.95, B: 0.5, C: 0.3}, K: 9}
	g := m.SampleExact(randx.New(4))
	before := stats.Triangles(g)
	dens := experiments.TriadicClosure(g, 500, randx.New(5))
	if dens.NumEdges() != g.NumEdges()+500 {
		t.Fatalf("edges: %d -> %d, want +500", g.NumEdges(), dens.NumEdges())
	}
	// Every original edge must survive.
	g.ForEachEdge(func(u, v int) {
		if !dens.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost", u, v)
		}
	})
	after := stats.Triangles(dens)
	if after <= before {
		t.Fatalf("triangles did not increase: %d -> %d", before, after)
	}
	// Closure edges close wedges, so triangles must grow at least one
	// per added edge.
	if after-before < 500 {
		t.Fatalf("closure added %d triangles for 500 wedge-closing edges", after-before)
	}
	if err := dens.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPrivacyBudgetNeverUnderReported: whatever options are used, the
// reported budget equals what the mechanisms spent.
func TestPrivacyBudgetNeverUnderReported(t *testing.T) {
	model, _ := dpkron.NewModel(dpkron.Initiator{A: 0.9, B: 0.5, C: 0.2}, 8)
	g := model.Sample(dpkron.NewRand(5))
	for _, eps := range []float64{0.1, 0.5, 2} {
		res, err := dpkron.EstimatePrivate(g, dpkron.PrivateOptions{Eps: eps, Delta: 0.02, Rng: dpkron.NewRand(6)})
		if err != nil {
			t.Fatal(err)
		}
		var sum dpkron.Budget
		for _, c := range res.Charges {
			sum = dp.Compose(sum, c.Budget())
		}
		if math.Abs(sum.Eps-res.Privacy.Eps) > 1e-12 || math.Abs(sum.Delta-res.Privacy.Delta) > 1e-12 {
			t.Fatalf("itemized %v != total %v", sum, res.Privacy)
		}
		if math.Abs(res.Privacy.Eps-eps) > 1e-12 {
			t.Fatalf("reported eps %v != requested %v", res.Privacy.Eps, eps)
		}
	}
}

// TestDegreeFeatureErrorShrinksWithGraphSize: the relative error of the
// private degree-derived edge count should decrease with n at fixed ε
// (the concentration the paper relies on).
func TestDegreeFeatureErrorShrinksWithGraphSize(t *testing.T) {
	init := skg.Initiator{A: 0.99, B: 0.55, C: 0.35}
	relErrAt := func(k int) float64 {
		m := skg.Model{Init: init, K: k}
		g := m.Sample(randx.New(uint64(k)))
		exact := float64(g.NumEdges())
		var total float64
		const trials = 20
		for i := 0; i < trials; i++ {
			d := degseq.Private(g, 0.1, randx.New(uint64(1000*k+i)))
			f := stats.FeaturesFromDegrees(d)
			total += math.Abs(f.E-exact) / exact
		}
		return total / trials
	}
	small, large := relErrAt(8), relErrAt(12)
	if large >= small {
		t.Fatalf("edge rel err did not shrink with size: k=8 %v vs k=12 %v", small, large)
	}
}

// TestSmoothSensCaps: on the complete graph, LS and SS hit the n-2 cap.
func TestSmoothSensCaps(t *testing.T) {
	g := dpkron.FromEdges(8, nil)
	_ = g
	kn := completeGraph(10)
	if ls := smoothsens.LocalSensitivity(kn); ls != 8 {
		t.Fatalf("LS(K10) = %v, want 8", ls)
	}
	if ss := smoothsens.Smooth(kn, 0.5); math.Abs(ss-8) > 1e-12 {
		t.Fatalf("SS(K10) = %v, want 8 (capped)", ss)
	}
}

func completeGraph(n int) *dpkron.Graph {
	b := dpkron.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
