package dpkron_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/dp"
	"dpkron/internal/randx"
	"dpkron/internal/release"
	"dpkron/internal/server"
)

// PR 6 adds the release cache: private fits are memoized under a
// canonical fingerprint of the question and repeats are served from
// storage. Caching is pure post-processing, so it must be invisible in
// the released bits — a cold fit with the cache enabled releases
// exactly what PR 5 released (the PR 2 pins), and a cache hit returns
// those same bytes back, modulo the explicit cached/release markers.
// These tests pin both directions through the real HTTP server, plus
// the PR 4-style guarantee that serving a hit consumes no randomness.

// pr6FitBody is the fit request that reproduces the PR 2 pinned
// release: fpGraphK10 as edge-list text with the historical seeds.
func pr6FitBody(t *testing.T) []byte {
	t.Helper()
	var text bytes.Buffer
	if err := fpGraphK10(t).WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(map[string]any{
		"method": "private", "eps": 0.5, "delta": 0.01, "k": 10, "seed": 9,
		"edgelist": text.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func pr6Post(t *testing.T, base string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/fit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, view
}

// pr6Await polls a job to completion and returns its result object.
func pr6Await(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch job["status"] {
		case "done":
			return job["result"].(map[string]any)
		case "failed", "cancelled":
			t.Fatalf("job %s ended %v: %v", id, job["status"], job)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pr6CheckPins hashes the released initiator and features out of a fit
// result JSON object against the PR 2 constants. Go's JSON float
// encoding is shortest-round-trip, so decoding recovers the exact
// float64 bits the server released.
func pr6CheckPins(t *testing.T, label string, res map[string]any) {
	t.Helper()
	const (
		wantInit  = uint64(0x1c23d17293445957)
		wantFeats = uint64(0x297d918e6156a3fb)
	)
	init := res["initiator"].(map[string]any)
	if got := fpHashFloats(init["a"].(float64), init["b"].(float64), init["c"].(float64)); got != wantInit {
		t.Errorf("%s init fingerprint = %#x, want %#x (PR 2)", label, got, wantInit)
	}
	f := res["features"].(map[string]any)
	if got := fpHashFloats(f["e"].(float64), f["h"].(float64), f["t"].(float64), f["delta"].(float64)); got != wantFeats {
		t.Errorf("%s features fingerprint = %#x, want %#x (PR 2)", label, got, wantFeats)
	}
}

// pr6Strip drops the cache markers (and the ledger-dependent remaining
// field) and re-marshals canonically for byte comparison.
func pr6Strip(t *testing.T, res map[string]any) []byte {
	t.Helper()
	clean := make(map[string]any, len(res))
	for k, v := range res {
		if k == "cached" || k == "release" || k == "remaining" {
			continue
		}
		clean[k] = v
	}
	b, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFingerprintCachedFitRelease(t *testing.T) {
	cache, err := release.Open(filepath.Join(t.TempDir(), "rel"))
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Workers: 4, MaxJobs: 2, Releases: cache})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := pr6FitBody(t)

	// Cold fit with the cache enabled: byte-identical to PR 5 — the
	// memoization must not perturb the released bits.
	code, sub := pr6Post(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("cold fit: %d %v", code, sub)
	}
	cold := pr6Await(t, ts.URL, sub["id"].(string))
	pr6CheckPins(t, "cold", cold)
	if _, ok := cold["cached"]; ok {
		t.Fatalf("cold fit carries a cached marker: %v", cold)
	}

	// The identical question again: answered synchronously from the
	// cache, pinned bits intact, payload byte-identical to the cold
	// release modulo the explicit markers.
	code, view := pr6Post(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("cache hit: %d %v", code, view)
	}
	hit, ok := view["result"].(map[string]any)
	if !ok {
		t.Fatalf("cache hit view has no result: %v", view)
	}
	if hit["cached"] != true {
		t.Fatalf("hit result not marked cached: %v", hit)
	}
	pr6CheckPins(t, "hit", hit)
	if c, h := pr6Strip(t, cold), pr6Strip(t, hit); !bytes.Equal(c, h) {
		t.Errorf("hit differs from cold release:\ncold: %s\nhit:  %s", c, h)
	}

	// The stored entry round-trips the release bytes through disk: a
	// fresh cache handle (empty LRU, forced disk read) must serve a
	// payload whose decoded bits still pin.
	fresh, err := release.Open(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	g := fpGraphK10(t)
	key := release.KeyFor(accountant.DatasetID(g), 0.5, 0.01, 10, 9, core.PlannedReceipt(0.5, 0.01))
	e, ok := fresh.Get(key)
	if !ok {
		t.Fatal("release not on disk under the canonical key")
	}
	var stored map[string]any
	if err := json.Unmarshal(e.Payload, &stored); err != nil {
		t.Fatal(err)
	}
	pr6CheckPins(t, "disk", stored)
	if hit["release"] != e.Fingerprint {
		t.Errorf("hit release id %v != stored fingerprint %s", hit["release"], e.Fingerprint)
	}
}

// TestFingerprintCacheHitDrawsNoNoise is the PR 4 refusal pattern for
// cache hits: serving a memoized release consumes no randomness — the
// rng is not even an input to the hit path — so a later cold run with
// the same rng instance still produces the pinned bits.
func TestFingerprintCacheHitDrawsNoNoise(t *testing.T) {
	g := fpGraphK10(t)
	cache, err := release.Open(filepath.Join(t.TempDir(), "rel"))
	if err != nil {
		t.Fatal(err)
	}
	key := release.KeyFor(accountant.DatasetID(g), 0.5, 0.01, 10, 9, core.PlannedReceipt(0.5, 0.01))

	// Memoize the question's release with an independent rng.
	coldRes, err := core.EstimateCtx(liveRun(t, 4), g, core.Options{
		Eps: 0.5, Delta: 0.01, Rng: randx.New(9),
		Accountant: accountant.New(nil).WithLimit(dp.Budget{Eps: 0.5, Delta: 0.01}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Put(key, server.PrivateFitResult(coldRes, accountant.DatasetID(g))); err != nil {
		t.Fatal(err)
	}

	// Serve the hit while holding the rng a cold fit would use.
	rng := randx.New(9)
	e, ok := cache.Get(key)
	if !ok {
		t.Fatal("memoized release missed")
	}
	var fr server.FitResult
	if err := json.Unmarshal(e.Payload, &fr); err != nil {
		t.Fatal(err)
	}
	const wantInit = uint64(0x1c23d17293445957)
	if got := fpHashFloats(fr.Initiator.A, fr.Initiator.B, fr.Initiator.C); got != wantInit {
		t.Errorf("served init fingerprint = %#x, want %#x (PR 2)", got, wantInit)
	}
	// The rng, untouched by the hit, still yields the pinned release.
	res, err := core.EstimateCtx(liveRun(t, 4), g, core.Options{Eps: 0.5, Delta: 0.01, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if got := fpHashFloats(res.Init.A, res.Init.B, res.Init.C); got != wantInit {
		t.Errorf("post-hit fingerprint = %#x, want %#x (hit consumed randomness)", got, wantInit)
	}
}
