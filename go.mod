module dpkron

go 1.22
