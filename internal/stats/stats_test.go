package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dpkron/internal/graph"
)

func randomGraph(n int, p float64, seed uint64) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, seed*2654435761+1))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// --- brute-force oracles ---

func bruteTriangles(g *graph.Graph) int64 {
	n := g.NumNodes()
	var t int64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if g.HasEdge(u, v) && g.HasEdge(v, w) && g.HasEdge(u, w) {
					t++
				}
			}
		}
	}
	return t
}

func bruteWedges(g *graph.Graph) int64 {
	n := g.NumNodes()
	var h int64
	for c := 0; c < n; c++ { // centre
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if u != c && v != c && g.HasEdge(c, u) && g.HasEdge(c, v) {
					h++
				}
			}
		}
	}
	return h
}

func bruteTripins(g *graph.Graph) int64 {
	n := g.NumNodes()
	var t int64
	for c := 0; c < n; c++ {
		d := int64(g.Degree(c))
		t += d * (d - 1) * (d - 2) / 6
	}
	return t
}

func bruteHopPlot(g *graph.Graph) []int64 {
	n := g.NumNodes()
	const inf = 1 << 30
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else if g.HasEdge(i, j) {
				d[i][j] = 1
			} else {
				d[i][j] = inf
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	maxd := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d[i][j] < inf && d[i][j] > maxd {
				maxd = d[i][j]
			}
		}
	}
	out := make([]int64, maxd+1)
	for h := 0; h <= maxd; h++ {
		var c int64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][j] <= h {
					c++
				}
			}
		}
		out[h] = c
	}
	return out
}

// --- tests ---

func TestTrianglesKnownGraphs(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int64
	}{
		{graph.Complete(4), 4},
		{graph.Complete(5), 10},
		{graph.Complete(6), 20},
		{graph.Cycle(5), 0},
		{graph.Cycle(3), 1},
		{graph.Star(10), 0},
		{graph.Path(6), 0},
		{graph.Empty(7), 0},
	}
	for i, c := range cases {
		if got := Triangles(c.g); got != c.want {
			t.Errorf("case %d: Triangles = %d, want %d", i, got, c.want)
		}
	}
}

func TestTrianglesVsBrute(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(25, 0.3, seed)
		if got, want := Triangles(g), bruteTriangles(g); got != want {
			t.Fatalf("seed %d: Triangles = %d, brute = %d", seed, got, want)
		}
	}
}

func TestWedgesVsBrute(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(20, 0.3, seed)
		if got, want := Wedges(g), bruteWedges(g); got != want {
			t.Fatalf("seed %d: Wedges = %d, brute = %d", seed, got, want)
		}
	}
}

func TestTripinsVsBrute(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(20, 0.4, seed)
		if got, want := Tripins(g), bruteTripins(g); got != want {
			t.Fatalf("seed %d: Tripins = %d, brute = %d", seed, got, want)
		}
	}
}

func TestTrianglesPerNodeSum(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(30, 0.25, seed)
		per := TrianglesPerNode(g)
		var sum int64
		for _, c := range per {
			sum += c
		}
		if sum != 3*Triangles(g) {
			t.Fatalf("seed %d: per-node sum %d != 3*total %d", seed, sum, 3*Triangles(g))
		}
	}
}

func TestTrianglesPerNodeK4(t *testing.T) {
	per := TrianglesPerNode(graph.Complete(4))
	for v, c := range per {
		if c != 3 {
			t.Fatalf("K4 node %d participates in %d triangles, want 3", v, c)
		}
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}})
	if got := CommonNeighbors(g, 0, 1); got != 2 {
		t.Fatalf("CommonNeighbors(0,1) = %d, want 2", got)
	}
	if got := CommonNeighbors(g, 2, 3); got != 2 {
		t.Fatalf("CommonNeighbors(2,3) = %d, want 2", got)
	}
	if got := CommonNeighbors(g, 0, 4); got != 0 {
		t.Fatalf("CommonNeighbors(0,4) = %d, want 0", got)
	}
	if got := CommonNeighbors(g, 2, 4); got != 1 {
		t.Fatalf("CommonNeighbors(2,4) = %d, want 1", got)
	}
}

func TestLocalClusteringTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	cc := LocalClustering(g)
	want := []float64{1.0 / 3, 1, 1, 0}
	for v := range want {
		if math.Abs(cc[v]-want[v]) > 1e-12 {
			t.Fatalf("cc[%d] = %v, want %v", v, cc[v], want[v])
		}
	}
}

func TestGlobalClustering(t *testing.T) {
	if got := GlobalClustering(graph.Complete(5)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("K5 transitivity = %v, want 1", got)
	}
	if got := GlobalClustering(graph.Star(6)); got != 0 {
		t.Fatalf("star transitivity = %v, want 0", got)
	}
	if got := GlobalClustering(graph.Empty(4)); got != 0 {
		t.Fatalf("empty transitivity = %v, want 0", got)
	}
}

func TestFeaturesOfMatchesParts(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	f := FeaturesOf(g)
	if f.E != float64(g.NumEdges()) || f.H != float64(Wedges(g)) ||
		f.T != float64(Tripins(g)) || f.Delta != float64(Triangles(g)) {
		t.Fatal("FeaturesOf disagrees with individual counters")
	}
}

func TestFeaturesFromDegreesMatchesExactOnIntegers(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(40, 0.15, seed)
		d := g.Degrees()
		df := make([]float64, len(d))
		for i, x := range d {
			df[i] = float64(x)
		}
		f := FeaturesFromDegrees(df)
		if math.Abs(f.E-float64(g.NumEdges())) > 1e-9 {
			t.Fatalf("E mismatch: %v vs %d", f.E, g.NumEdges())
		}
		if math.Abs(f.H-float64(Wedges(g))) > 1e-9 {
			t.Fatalf("H mismatch: %v vs %d", f.H, Wedges(g))
		}
		if math.Abs(f.T-float64(Tripins(g))) > 1e-9 {
			t.Fatalf("T mismatch: %v vs %d", f.T, Tripins(g))
		}
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := graph.Star(5) // one node of degree 4, four of degree 1
	dd := DegreeDistribution(g)
	if len(dd) != 2 || dd[0].Degree != 1 || dd[0].Value != 4 || dd[1].Degree != 4 || dd[1].Value != 1 {
		t.Fatalf("DegreeDistribution(star) = %+v", dd)
	}
}

func TestClusteringByDegree(t *testing.T) {
	// Triangle + pendant: degrees are 3 (node 0), 2, 2, 1.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	pts := ClusteringByDegree(g)
	byDeg := map[int]DegreePoint{}
	for _, p := range pts {
		byDeg[p.Degree] = p
	}
	if p := byDeg[2]; p.Count != 2 || math.Abs(p.Value-1) > 1e-12 {
		t.Fatalf("degree-2 point = %+v", p)
	}
	if p := byDeg[3]; p.Count != 1 || math.Abs(p.Value-1.0/3) > 1e-12 {
		t.Fatalf("degree-3 point = %+v", p)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := graph.FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	labels, sizes := ConnectedComponents(g)
	if len(sizes) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("components = %d, want 4 (sizes %v)", len(sizes), sizes)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("nodes 0,1,2 not in one component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("nodes 3,4 mislabelled")
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Fatalf("component sizes sum to %d, want 7", total)
	}
}

func TestHopPlotPath(t *testing.T) {
	g := graph.Path(4)
	hop := HopPlot(g)
	// Distances on a path of 4: pairs at distance 0:4, 1:6, 2:4, 3:2 (ordered).
	want := []int64{4, 10, 14, 16}
	if len(hop) != len(want) {
		t.Fatalf("hop plot = %v, want %v", hop, want)
	}
	for i := range want {
		if hop[i] != want[i] {
			t.Fatalf("hop plot = %v, want %v", hop, want)
		}
	}
}

func TestHopPlotVsBrute(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(18, 0.2, seed)
		got, want := HopPlot(g), bruteHopPlot(g)
		if len(got) != len(want) {
			t.Fatalf("seed %d: hop %v vs brute %v", seed, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: hop %v vs brute %v", seed, got, want)
			}
		}
	}
}

func TestHopPlotDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}}) // two isolated nodes
	hop := HopPlot(g)
	if hop[0] != 4 {
		t.Fatalf("hop[0] = %d, want 4", hop[0])
	}
	if hop[len(hop)-1] != 6 { // 4 self + 2 ordered pairs of the edge
		t.Fatalf("hop final = %d, want 6", hop[len(hop)-1])
	}
}

func TestEffectiveDiameter(t *testing.T) {
	hop := []int64{4, 10, 14, 16}
	d := EffectiveDiameter(hop, 0.9)
	// target = 14.4, between h=2 (14) and h=3 (16) -> 2 + 0.4/2 = 2.2
	if math.Abs(d-2.2) > 1e-12 {
		t.Fatalf("EffectiveDiameter = %v, want 2.2", d)
	}
	if EffectiveDiameter(nil, 0.9) != 0 {
		t.Fatal("empty hop plot should give 0")
	}
}

func TestQuickTriangleInvariantUnderRelabel(t *testing.T) {
	// Triangle count is invariant under node relabelling.
	f := func(seed uint64) bool {
		g := randomGraph(16, 0.3, seed%1000)
		perm := rand.New(rand.NewPCG(seed, 99)).Perm(16)
		b := graph.NewBuilder(16)
		g.ForEachEdge(func(u, v int) { b.AddEdge(perm[u], perm[v]) })
		return Triangles(g) == Triangles(b.Build())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickHopPlotMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(20, 0.15, seed%1000)
		hop := HopPlot(g)
		for i := 1; i < len(hop); i++ {
			if hop[i] < hop[i-1] {
				return false
			}
		}
		n := int64(g.NumNodes())
		return len(hop) > 0 && hop[0] == n && hop[len(hop)-1] <= n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
