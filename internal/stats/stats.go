// Package stats computes the graph statistics used throughout the paper:
// the four matching features (edges, hairpins, tripins, triangles) of
// Gleich–Owen moment estimation, and the five descriptive statistics of
// the experimental section (degree distribution, hop plot, scree plot
// inputs, clustering coefficient by degree). All counters are exact;
// see package anf for the sketch-based hop plot approximation.
//
// The feature counters and the exact hop plot are vertex-decomposable
// (Gleich–Owen's observation that the matching moments are sums of
// per-vertex terms), so each has a Workers variant that shards the
// vertex range across the parallel worker pool; the plain entry points
// run on all cores. Counts are integers, so the parallel reductions are
// exact and identical for every worker count.
package stats

import (
	"sort"

	"dpkron/internal/graph"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
)

// Features holds the four matching statistics of the observed graph in
// Gleich–Owen notation: E edges, H hairpins (2-stars/wedges), T tripins
// (3-stars) and Delta triangles. Values are float64 because the private
// versions derived from noisy degree sequences are not integral.
type Features struct {
	E     float64 // number of edges
	H     float64 // number of hairpins (wedges)
	T     float64 // number of tripins (3-stars)
	Delta float64 // number of triangles
}

// FeaturesOf computes the exact feature vector of g on all cores.
func FeaturesOf(g *graph.Graph) Features {
	return FeaturesOfWorkers(g, 0)
}

// FeaturesOfWorkers computes the exact feature vector of g on up to
// workers goroutines (<= 0 selects runtime.GOMAXPROCS(0)). The result
// is identical for every worker count.
func FeaturesOfWorkers(g *graph.Graph, workers int) Features {
	f, _ := FeaturesOfCtx(pipeline.New(nil, workers, nil), g)
	return f
}

// FeaturesOfCtx is FeaturesOf under a pipeline Run: each counter's
// vertex fan-out checks the context between shards, and a "features"
// stage event pair is emitted. A run that is never cancelled computes
// the exact FeaturesOf vector; a cancelled run returns run.Err().
func FeaturesOfCtx(run *pipeline.Run, g *graph.Graph) (Features, error) {
	done := run.Stage("features")
	wedges, err := WedgesCtx(run, g)
	if err != nil {
		return Features{}, err
	}
	tripins, err := TripinsCtx(run, g)
	if err != nil {
		return Features{}, err
	}
	tri, err := TrianglesCtx(run, g)
	if err != nil {
		return Features{}, err
	}
	done()
	return Features{
		E:     float64(g.NumEdges()),
		H:     float64(wedges),
		T:     float64(tripins),
		Delta: float64(tri),
	}, nil
}

// FeaturesFromDegrees computes the three degree-derived features from a
// (possibly noisy, non-integral) degree sequence, exactly as Fact 4.6 in
// the paper: E = ½Σdᵢ, H = ½Σdᵢ(dᵢ−1), T = ⅙Σdᵢ(dᵢ−1)(dᵢ−2).
// Delta is left zero; it is supplied by the smooth-sensitivity mechanism.
func FeaturesFromDegrees(d []float64) Features {
	var e, h, t float64
	for _, x := range d {
		e += x
		h += x * (x - 1)
		t += x * (x - 1) * (x - 2)
	}
	return Features{E: e / 2, H: h / 2, T: t / 6}
}

// Wedges returns the number of hairpins (paths of length two, also
// called 2-stars or wedges): Σ_v C(d_v, 2).
func Wedges(g *graph.Graph) int64 { return WedgesWorkers(g, 0) }

// WedgesWorkers is Wedges sharded over vertex ranges.
func WedgesWorkers(g *graph.Graph, workers int) int64 {
	v, _ := WedgesCtx(pipeline.New(nil, workers, nil), g)
	return v
}

// WedgesCtx is Wedges under a pipeline Run.
func WedgesCtx(run *pipeline.Run, g *graph.Graph) (int64, error) {
	return parallel.SumInt64Ctx(run.Context(), run.Workers(), g.NumNodes(), func(lo, hi int) int64 {
		var total int64
		for v := lo; v < hi; v++ {
			d := int64(g.Degree(v))
			total += d * (d - 1) / 2
		}
		return total
	})
}

// Tripins returns the number of 3-stars: Σ_v C(d_v, 3).
func Tripins(g *graph.Graph) int64 { return TripinsWorkers(g, 0) }

// TripinsWorkers is Tripins sharded over vertex ranges.
func TripinsWorkers(g *graph.Graph, workers int) int64 {
	v, _ := TripinsCtx(pipeline.New(nil, workers, nil), g)
	return v
}

// TripinsCtx is Tripins under a pipeline Run.
func TripinsCtx(run *pipeline.Run, g *graph.Graph) (int64, error) {
	return parallel.SumInt64Ctx(run.Context(), run.Workers(), g.NumNodes(), func(lo, hi int) int64 {
		var total int64
		for v := lo; v < hi; v++ {
			d := int64(g.Degree(v))
			total += d * (d - 1) * (d - 2) / 6
		}
		return total
	})
}

// Triangles returns the exact number of triangles in g using the
// forward algorithm over sorted adjacency lists: every triangle
// u < v < w is counted once at its smallest vertex pair.
func Triangles(g *graph.Graph) int64 { return TrianglesWorkers(g, 0) }

// TrianglesWorkers is Triangles sharded over vertex ranges: each shard
// counts the triangles anchored at its smallest-vertex range, so shard
// totals are disjoint and their sum is exact.
func TrianglesWorkers(g *graph.Graph, workers int) int64 {
	v, _ := TrianglesCtx(pipeline.New(nil, workers, nil), g)
	return v
}

// TrianglesCtx is Triangles under a pipeline Run.
func TrianglesCtx(run *pipeline.Run, g *graph.Graph) (int64, error) {
	return parallel.SumInt64Ctx(run.Context(), run.Workers(), g.NumNodes(), func(lo, hi int) int64 {
		var total int64
		for u := lo; u < hi; u++ {
			nu := g.Neighbors(u)
			for i, v := range nu {
				if int(v) <= u {
					continue
				}
				// Count common neighbours w of u and v with w > v.
				total += countCommonAbove(nu[i+1:], g.Neighbors(int(v)), v)
			}
		}
		return total
	})
}

// countCommonAbove counts elements present in both sorted lists a and b
// that are strictly greater than lim. a is assumed already restricted to
// values > lim by the caller slicing; b is scanned past lim first.
func countCommonAbove(a, b []int32, lim int32) int64 {
	j := sort.Search(len(b), func(i int) bool { return b[i] > lim })
	b = b[j:]
	var count int64
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] < b[k]:
			i++
		case a[i] > b[k]:
			k++
		default:
			count++
			i++
			k++
		}
	}
	return count
}

// TrianglesPerNode returns, for every node, the number of triangles it
// participates in. Summing the result counts each triangle three times.
func TrianglesPerNode(g *graph.Graph) []int64 { return TrianglesPerNodeWorkers(g, 0) }

// TrianglesPerNodeWorkers is TrianglesPerNode sharded over vertex
// ranges. A triangle anchored in one shard credits nodes that may
// belong to other shards, so each worker accumulates into a private
// counter array (no atomics on the hot loop) and the arrays are summed
// afterwards; integer addition commutes, so the result is identical
// for every worker count.
func TrianglesPerNodeWorkers(g *graph.Graph, workers int) []int64 {
	n := g.NumNodes()
	w := parallel.Normalize(workers)
	blocks := parallel.Blocks(n, parallel.DefaultShards)
	if w > len(blocks) {
		w = len(blocks)
	}
	parts := make([][]int64, w)
	for i := range parts {
		parts[i] = make([]int64, n)
	}
	parallel.RunIndexed(w, len(blocks), func(worker, sh int) {
		per := parts[worker]
		for u := blocks[sh].Lo; u < blocks[sh].Hi; u++ {
			nu := g.Neighbors(u)
			for i, v := range nu {
				if int(v) <= u {
					continue
				}
				// For each common neighbour w > v of u and v, credit all three.
				forEachCommonAbove(nu[i+1:], g.Neighbors(int(v)), v, func(w int32) {
					per[u]++
					per[v]++
					per[w]++
				})
			}
		}
	})
	per := parts[0]
	for _, p := range parts[1:] {
		for v := range per {
			per[v] += p[v]
		}
	}
	return per
}

func forEachCommonAbove(a, b []int32, lim int32, fn func(int32)) {
	j := sort.Search(len(b), func(i int) bool { return b[i] > lim })
	b = b[j:]
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] < b[k]:
			i++
		case a[i] > b[k]:
			k++
		default:
			fn(a[i])
			i++
			k++
		}
	}
}

// CommonNeighbors returns |N(u) ∩ N(v)| for two distinct nodes.
func CommonNeighbors(g *graph.Graph, u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count := 0
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] < b[k]:
			i++
		case a[i] > b[k]:
			k++
		default:
			count++
			i++
			k++
		}
	}
	return count
}

// LocalClustering returns the local clustering coefficient of every node:
// c_v = 2·tri(v) / (d_v (d_v − 1)), defined as 0 for d_v < 2.
func LocalClustering(g *graph.Graph) []float64 {
	tri := TrianglesPerNode(g)
	out := make([]float64, g.NumNodes())
	for v := range out {
		d := g.Degree(v)
		if d >= 2 {
			out[v] = 2 * float64(tri[v]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// DegreePoint is one point of a per-degree aggregated series.
type DegreePoint struct {
	Degree int
	Value  float64
	Count  int // number of nodes with this degree
}

// ClusteringByDegree returns the average local clustering coefficient as
// a function of node degree (the paper's Figure panel (e)), over degrees
// that occur in the graph with d >= 1, sorted ascending by degree.
func ClusteringByDegree(g *graph.Graph) []DegreePoint {
	cc := LocalClustering(g)
	sum := map[int]float64{}
	cnt := map[int]int{}
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(v)
		if d < 1 {
			continue
		}
		sum[d] += cc[v]
		cnt[d]++
	}
	return aggregate(sum, cnt)
}

// DegreeDistribution returns (degree, count-of-nodes) pairs sorted by
// degree ascending, skipping degree 0 to match the paper's log–log plots.
func DegreeDistribution(g *graph.Graph) []DegreePoint {
	cnt := map[int]int{}
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(v); d >= 1 {
			cnt[d]++
		}
	}
	out := make([]DegreePoint, 0, len(cnt))
	for d, c := range cnt {
		out = append(out, DegreePoint{Degree: d, Value: float64(c), Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

func aggregate(sum map[int]float64, cnt map[int]int) []DegreePoint {
	out := make([]DegreePoint, 0, len(sum))
	for d, s := range sum {
		out = append(out, DegreePoint{Degree: d, Value: s / float64(cnt[d]), Count: cnt[d]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// GlobalClustering returns the transitivity 3Δ/H, or 0 when H = 0.
func GlobalClustering(g *graph.Graph) float64 {
	h := Wedges(g)
	if h == 0 {
		return 0
	}
	return 3 * float64(Triangles(g)) / float64(h)
}

// ConnectedComponents labels each node with a component id in [0, #comps)
// and returns the labels together with the component sizes.
func ConnectedComponents(g *graph.Graph) (labels []int, sizes []int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		id := len(sizes)
		labels[s] = id
		size := 1
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(int(u)) {
				if labels[w] < 0 {
					labels[w] = id
					size++
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// HopPlot returns the exact hop plot of g: element h is the number of
// ordered node pairs (u, v), including u = v, with shortest-path distance
// at most h. The slice extends to the graph's effective diameter, i.e.
// until the count stops growing. Computed by a BFS from every node in
// O(n·(n+m)) time; use package anf for large graphs.
func HopPlot(g *graph.Graph) []int64 { return HopPlotWorkers(g, 0) }

// HopPlotWorkers is HopPlot with the per-source BFS sweep sharded over
// source-node blocks; each worker reuses private BFS scratch and
// accumulates its own distance histogram, and the integer histograms
// are summed afterwards, so the result is identical for every worker
// count.
func HopPlotWorkers(g *graph.Graph, workers int) []int64 {
	hop, _ := HopPlotCtx(pipeline.New(nil, workers, nil), g)
	return hop
}

// HopPlotCtx is HopPlot under a pipeline Run: the per-source BFS sweep
// checks the context between source blocks and a "hop-plot" stage event
// pair is emitted. A run that is never cancelled computes the exact
// HopPlot; a cancelled run returns run.Err().
func HopPlotCtx(run *pipeline.Run, g *graph.Graph) ([]int64, error) {
	done := run.Stage("hop-plot")
	n := g.NumNodes()
	w := run.Workers()
	blocks := parallel.Blocks(n, parallel.DefaultShards)
	if w > len(blocks) {
		w = len(blocks)
	}
	type scratch struct {
		pairsAt []int64 // pairsAt[h] = ordered pairs at distance exactly h
		dist    []int32
		queue   []int32
	}
	parts := make([]scratch, w)
	for i := range parts {
		parts[i] = scratch{dist: make([]int32, n), queue: make([]int32, 0, n)}
	}
	err := parallel.RunIndexedCtx(run.Context(), w, len(blocks), func(worker, sh int) {
		sc := &parts[worker]
		dist, queue := sc.dist, sc.queue
		for s := blocks[sh].Lo; s < blocks[sh].Hi; s++ {
			for i := range dist {
				dist[i] = -1
			}
			dist[s] = 0
			queue = append(queue[:0], int32(s))
			grow(&sc.pairsAt, 0)
			sc.pairsAt[0]++
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				du := dist[u]
				for _, w := range g.Neighbors(int(u)) {
					if dist[w] < 0 {
						dist[w] = du + 1
						grow(&sc.pairsAt, int(du+1))
						sc.pairsAt[du+1]++
						queue = append(queue, w)
					}
				}
			}
		}
		sc.queue = queue
	})
	if err != nil {
		return nil, err
	}
	var pairsAt []int64
	for _, p := range parts {
		grow(&pairsAt, len(p.pairsAt)-1)
		for h, c := range p.pairsAt {
			pairsAt[h] += c
		}
	}
	// Cumulative sum.
	out := make([]int64, len(pairsAt))
	var acc int64
	for h, c := range pairsAt {
		acc += c
		out[h] = acc
	}
	done()
	return out, nil
}

func grow(s *[]int64, idx int) {
	for len(*s) <= idx {
		*s = append(*s, 0)
	}
}

// EffectiveDiameter returns the smallest h at which the hop plot reaches
// the given fraction (e.g. 0.9) of its final value, linearly
// interpolated as in SNAP. hop must be a cumulative hop plot.
func EffectiveDiameter(hop []int64, fraction float64) float64 {
	if len(hop) == 0 {
		return 0
	}
	target := fraction * float64(hop[len(hop)-1])
	for h, v := range hop {
		if float64(v) >= target {
			if h == 0 {
				return 0
			}
			prev := float64(hop[h-1])
			return float64(h-1) + (target-prev)/(float64(v)-prev)
		}
	}
	return float64(len(hop) - 1)
}
