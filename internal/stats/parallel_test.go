package stats

import (
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
)

// statGraph builds a moderately dense deterministic test graph with
// hubs, so triangle and wedge work is unevenly distributed across the
// vertex range (the case parallel sharding must get right).
func statGraph(n int, seed uint64) *graph.Graph {
	rng := randx.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		// Preferential-style wiring toward low ids.
		for t := 0; t < 6; t++ {
			v := rng.IntN(u + 1)
			if v != u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestFeatureCountsWorkerInvariant(t *testing.T) {
	g := statGraph(2000, 3)
	base := FeaturesOfWorkers(g, 1)
	if base.Delta == 0 || base.H == 0 {
		t.Fatal("degenerate test graph")
	}
	for _, workers := range []int{2, 4, 8} {
		got := FeaturesOfWorkers(g, workers)
		if got != base {
			t.Fatalf("workers=%d: features %+v != %+v", workers, got, base)
		}
	}
	if FeaturesOf(g) != base {
		t.Fatal("FeaturesOf differs from FeaturesOfWorkers")
	}
}

func TestTrianglesPerNodeWorkerInvariant(t *testing.T) {
	g := statGraph(1200, 5)
	base := TrianglesPerNodeWorkers(g, 1)
	for _, workers := range []int{4, 8} {
		got := TrianglesPerNodeWorkers(g, workers)
		for v := range got {
			if got[v] != base[v] {
				t.Fatalf("workers=%d: node %d count %d != %d", workers, v, got[v], base[v])
			}
		}
	}
	// Cross-check: the per-node counts triple-count each triangle.
	var sum int64
	for _, c := range base {
		sum += c
	}
	if sum != 3*Triangles(g) {
		t.Fatalf("per-node sum %d != 3×%d", sum, Triangles(g))
	}
}

func TestHopPlotWorkerInvariant(t *testing.T) {
	g := statGraph(600, 7)
	base := HopPlotWorkers(g, 1)
	if len(base) < 2 {
		t.Fatal("degenerate hop plot")
	}
	for _, workers := range []int{2, 4, 8} {
		got := HopPlotWorkers(g, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: hop plot length %d != %d", workers, len(got), len(base))
		}
		for h := range got {
			if got[h] != base[h] {
				t.Fatalf("workers=%d: hop %d count %d != %d", workers, h, got[h], base[h])
			}
		}
	}
}

func TestHopPlotWorkersEmptyGraph(t *testing.T) {
	if got := HopPlotWorkers(graph.Empty(0), 8); len(got) != 0 {
		t.Fatalf("empty graph hop plot = %v", got)
	}
	got := HopPlotWorkers(graph.Empty(4), 8)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("isolated nodes hop plot = %v, want [4]", got)
	}
}
