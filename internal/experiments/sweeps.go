package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"dpkron/internal/core"
	"dpkron/internal/graph"
	"dpkron/internal/kronmom"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// SweepRow is one ε point of the privacy–utility sweep: how far the
// private estimate lands from the non-private KronMom estimate on the
// same graph, averaged over trials.
type SweepRow struct {
	Eps            float64
	MeanParamDiff  float64 // mean over trials of MaxAbsDiff(private, kronmom)
	MeanFeatureErr float64 // mean relative L1 error of private features
}

// EpsilonSweep measures utility as a function of ε on the given graph,
// on all cores (EpsilonSweepWorkers with workers = 0).
func EpsilonSweep(g *graph.Graph, k int, epsilons []float64, delta float64, trials int, seed uint64) ([]SweepRow, error) {
	return EpsilonSweepWorkers(g, k, epsilons, delta, trials, seed, 0)
}

// EpsilonSweepWorkers runs the sweep's (ε, trial) grid concurrently on
// up to workers goroutines (<= 0 selects runtime.GOMAXPROCS(0)). Every
// trial seeds its own generator from (seed, ε, trial) and the per-ε
// averages reduce trials in index order, so the rows are identical for
// every worker count.
func EpsilonSweepWorkers(g *graph.Graph, k int, epsilons []float64, delta float64, trials int, seed uint64, workers int) ([]SweepRow, error) {
	return EpsilonSweepCtx(pipeline.New(nil, workers, nil), g, k, epsilons, delta, trials, seed)
}

// EpsilonSweepCtx is EpsilonSweep under a pipeline Run: the (ε, trial)
// cell fan-out checks the context between cells, each cell's estimate
// checks it internally, and a "sweep" stage reports the completed-cell
// fraction. A run that is never cancelled computes the exact
// EpsilonSweepWorkers rows; a cancelled run returns run.Err().
func EpsilonSweepCtx(run *pipeline.Run, g *graph.Graph, k int, epsilons []float64, delta float64, trials int, seed uint64) ([]SweepRow, error) {
	done := run.Stage("sweep")
	base, err := kronmom.FitGraphCtx(run, g, k, kronmom.Options{Rng: randx.New(seed)})
	if err != nil {
		return nil, err
	}
	exact, err := stats.FeaturesOfCtx(run, g)
	if err != nil {
		return nil, err
	}
	type cell struct {
		pd, fe float64
		err    error
	}
	cells := make([]cell, len(epsilons)*trials)
	// The grid almost always has at least as many cells as workers, so
	// the budget goes to the cell level: each Estimate runs
	// single-goroutine rather than multiplying the two fan-outs.
	var completed atomic.Int64
	if err := parallel.RunCtx(run.Context(), run.Workers(), len(cells), func(i int) {
		eps := epsilons[i/trials]
		t := i % trials
		res, err := core.EstimateCtx(pipeline.New(run.Context(), 1, nil), g, core.Options{
			Eps: eps, Delta: delta, K: k,
			Rng: randx.New(seed + uint64(t)*7919 + uint64(math.Float64bits(eps))),
		})
		if err != nil {
			cells[i].err = err
			return
		}
		cells[i] = cell{pd: MaxAbsDiff(res.Init, base.Init), fe: relL1(res.Features, exact)}
		run.Progress("sweep", float64(completed.Add(1))/float64(len(cells)))
	}); err != nil {
		return nil, err
	}
	var rows []SweepRow
	for e := range epsilons {
		var pd, fe float64
		for t := 0; t < trials; t++ {
			c := cells[e*trials+t]
			if c.err != nil {
				return nil, c.err
			}
			pd += c.pd
			fe += c.fe
		}
		rows = append(rows, SweepRow{
			Eps:            epsilons[e],
			MeanParamDiff:  pd / float64(trials),
			MeanFeatureErr: fe / float64(trials),
		})
	}
	done()
	return rows, nil
}

func relL1(got, want stats.Features) float64 {
	total := 0.0
	n := 0
	for _, p := range [][2]float64{{got.E, want.E}, {got.H, want.H}, {got.T, want.T}, {got.Delta, want.Delta}} {
		if math.Abs(p[1]) > 1e-9 {
			total += math.Abs(p[0]-p[1]) / math.Abs(p[1])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// RenderSweep formats sweep rows.
func RenderSweep(rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s  %-18s  %-18s\n", "eps", "param diff vs mom", "feature rel err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.3f  %-18.4f  %-18.4f\n", r.Eps, r.MeanParamDiff, r.MeanFeatureErr)
	}
	return b.String()
}

// SSGrowthRow is one k point of the smooth-sensitivity growth study
// (the paper's §5 preliminary observation that SS_Δ grows slowly with
// graph size in the SKG model).
type SSGrowthRow struct {
	K               int
	N               int
	Edges           int
	Triangles       int64
	LocalSens       float64
	SmoothSen       float64
	NoiseOverSignal float64 // (2·SS/ε) / Δ, the relative noise magnitude
}

// SmoothSensGrowth samples one SKG per k and reports how the smooth
// sensitivity of the triangle count scales.
func SmoothSensGrowth(init skg.Initiator, ks []int, eps, delta float64, seed uint64) ([]SSGrowthRow, error) {
	return SmoothSensGrowthCtx(pipeline.Background(), init, ks, eps, delta, seed)
}

// SmoothSensGrowthCtx is SmoothSensGrowth under a pipeline Run: the
// context is checked between k points (and inside each sample and
// scan), and an "ss-growth" stage reports per-k progress. A run that is
// never cancelled computes the exact SmoothSensGrowth rows.
func SmoothSensGrowthCtx(run *pipeline.Run, init skg.Initiator, ks []int, eps, delta float64, seed uint64) ([]SSGrowthRow, error) {
	done := run.Stage("ss-growth")
	beta := smoothsens.BetaFor(eps/2, delta)
	var rows []SSGrowthRow
	for i, k := range ks {
		if err := run.Err(); err != nil {
			return nil, err
		}
		run.Progress("ss-growth", float64(i)/float64(len(ks)))
		m, err := skg.NewModel(init, k)
		if err != nil {
			return nil, err
		}
		g, err := m.SampleCtx(run, randx.New(seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		tri, err := stats.TrianglesCtx(run, g)
		if err != nil {
			return nil, err
		}
		lsInt, err := smoothsens.MaxCommonNeighborsCtx(run, g)
		if err != nil {
			return nil, err
		}
		ls := float64(lsInt)
		ss, err := smoothsens.SmoothCtx(run, g, beta)
		if err != nil {
			return nil, err
		}
		row := SSGrowthRow{
			K: k, N: g.NumNodes(), Edges: g.NumEdges(),
			Triangles: tri, LocalSens: ls, SmoothSen: ss,
		}
		if tri > 0 {
			row.NoiseOverSignal = (2 * ss / (eps / 2)) / float64(tri)
		}
		rows = append(rows, row)
	}
	done()
	return rows, nil
}

// RenderSSGrowth formats growth rows.
func RenderSSGrowth(rows []SSGrowthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-8s %-9s %-11s %-9s %-10s %-12s\n",
		"k", "n", "edges", "triangles", "LS", "SS_beta", "noise/Delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-8d %-9d %-11d %-9.0f %-10.2f %-12.4f\n",
			r.K, r.N, r.Edges, r.Triangles, r.LocalSens, r.SmoothSen, r.NoiseOverSignal)
	}
	return b.String()
}

// AblationRow is one Dist×Norm combination's recovery error on the
// synthetic dataset (Gleich–Owen's robustness comparison, which led
// them — and the paper — to DistSq/NormF²).
type AblationRow struct {
	Dist    kronmom.Dist
	Norm    kronmom.Norm
	Err     float64 // MaxAbsDiff(fit, truth)
	ObjName string
}

// DistNormAblation fits every objective variant on a synthetic SKG with
// known parameters.
func DistNormAblation(truth skg.Initiator, k int, seed uint64) ([]AblationRow, error) {
	m, err := skg.NewModel(truth, k)
	if err != nil {
		return nil, err
	}
	g := m.Sample(randx.New(seed))
	feats := stats.FeaturesOf(g)
	var rows []AblationRow
	for _, d := range []kronmom.Dist{kronmom.DistSq, kronmom.DistAbs} {
		for _, n := range []kronmom.Norm{kronmom.NormF, kronmom.NormF2, kronmom.NormE, kronmom.NormE2} {
			est, err := kronmom.Fit(feats, k, kronmom.Options{
				Objective: kronmom.Objective{Dist: d, Norm: n, Features: kronmom.AllFeatures()},
				Rng:       randx.New(seed + 99),
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Dist: d, Norm: n,
				Err:     MaxAbsDiff(est.Init, truth.Canonical()),
				ObjName: d.String() + "/" + n.String(),
			})
		}
	}
	return rows, nil
}

// RenderAblation formats ablation rows.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s  %-10s\n", "objective", "max |err|")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s  %-10.4f\n", r.ObjName, r.Err)
	}
	return b.String()
}
