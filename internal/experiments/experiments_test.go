package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dpkron/internal/skg"
)

func TestRegistryWellFormed(t *testing.T) {
	reg := Registry()
	if len(reg) != 4 {
		t.Fatalf("registry has %d datasets, want 4", len(reg))
	}
	names := map[string]bool{}
	for _, d := range reg {
		if err := d.Source.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.K < 10 || d.K > 14 {
			t.Errorf("%s: K = %d out of the paper's range", d.Name, d.K)
		}
		if names[d.Name] {
			t.Errorf("duplicate dataset name %s", d.Name)
		}
		names[d.Name] = true
	}
	if !names["Synthetic"] || !names["CA-GrQc-like"] {
		t.Fatal("expected datasets missing")
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("Synthetic")
	if err != nil || d.Name != "Synthetic" {
		t.Fatalf("Lookup failed: %v %v", d, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestDatasetGenerateDeterministic(t *testing.T) {
	// Use a scaled-down copy so the test stays fast.
	d := Dataset{Name: "small", Source: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 8, Seed: 5}
	g1 := d.Generate()
	g2 := d.Generate()
	if !g1.Equal(g2) {
		t.Fatal("Generate is not deterministic")
	}
	if g1.NumNodes() != 256 {
		t.Fatalf("nodes = %d", g1.NumNodes())
	}
}

func smallDataset() Dataset {
	return Dataset{
		Name:         "small-synth",
		Source:       skg.Initiator{A: 0.99, B: 0.45, C: 0.25},
		K:            9,
		Seed:         55,
		PaperKronFit: skg.Initiator{A: 0.95, B: 0.47, C: 0.25},
		PaperKronMom: skg.Initiator{A: 0.99, B: 0.54, C: 0.24},
		PaperPrivate: skg.Initiator{A: 0.99, B: 0.53, C: 0.25},
		TrueInit:     true,
	}
}

func TestRunTable1RowShape(t *testing.T) {
	d := smallDataset()
	g := d.Generate()
	row, err := RunTable1Row(d, g, Table1Options{KronFitIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's structural claim: the private estimate stays close to
	// the non-private moment estimate.
	if diff := MaxAbsDiff(row.Private, row.KronMom); diff > 0.25 {
		t.Errorf("Private %v vs KronMom %v: diff %v", row.Private, row.KronMom, diff)
	}
	// And on a true SKG, the moment estimate recovers the generator.
	if diff := MaxAbsDiff(row.KronMom, d.Source); diff > 0.15 {
		t.Errorf("KronMom %v vs truth %v: diff %v", row.KronMom, d.Source, diff)
	}
	for _, init := range []skg.Initiator{row.KronFit, row.KronMom, row.Private} {
		if err := init.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	d := smallDataset()
	rows := []Table1Row{{
		Dataset: d, N: 512, E: 1000,
		KronFit: skg.Initiator{A: 0.9, B: 0.5, C: 0.2},
		KronMom: skg.Initiator{A: 0.99, B: 0.45, C: 0.25},
		Private: skg.Initiator{A: 0.98, B: 0.46, C: 0.24},
	}}
	out := RenderTable1(rows, Table1Options{})
	for _, want := range []string{"small-synth", "KronMom", "0.9900", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigureSmall(t *testing.T) {
	d := smallDataset()
	res, err := RunFigure(d, FigureOptions{ExpectedRuns: 3, KronFitIters: 10, ScreeRank: 12, ExactHopPlot: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range PanelNames {
		if len(res.Original.Panel(panel).X) == 0 {
			t.Errorf("original panel %q empty", panel)
		}
		for _, name := range EstimatorNames {
			if len(res.Single[name].Panel(panel).X) == 0 {
				t.Errorf("single %s panel %q empty", name, panel)
			}
			if len(res.Expected[name].Panel(panel).X) == 0 {
				t.Errorf("expected %s panel %q empty", name, panel)
			}
		}
	}
	// Edge counts of the synthetic graphs should be within 2x of the
	// original (the estimators are fitted to it).
	origEdges := res.Original.DegreeDist
	_ = origEdges
	text := RenderFigure(res, 8)
	for _, want := range []string{"hop plot", "degree distribution", "scree", "network value", "clustering", "Original", "E[KronMom]"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure render missing %q", want)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "panel,series,x,y\n") {
		t.Fatal("CSV header missing")
	}
	if strings.Count(buf.String(), "\n") < 50 {
		t.Fatalf("CSV suspiciously short:\n%s", buf.String())
	}
}

func TestEpsilonSweepMonotoneTrend(t *testing.T) {
	d := smallDataset()
	g := d.Generate()
	rows, err := EpsilonSweep(g, d.K, []float64{0.05, 0.5, 5}, 0.01, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More budget, less error (allow slack between adjacent points but
	// the ends must order correctly).
	if rows[0].MeanFeatureErr <= rows[2].MeanFeatureErr {
		t.Errorf("feature error did not shrink with eps: %+v", rows)
	}
	out := RenderSweep(rows)
	if !strings.Contains(out, "eps") {
		t.Fatal("sweep render missing header")
	}
}

func TestSmoothSensGrowth(t *testing.T) {
	rows, err := SmoothSensGrowth(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, []int{6, 7, 8, 9}, 0.2, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.N != 1<<r.K {
			t.Errorf("row %d: n mismatch", i)
		}
		if r.SmoothSen < r.LocalSens {
			t.Errorf("row %d: SS < LS", i)
		}
	}
	// The paper's observation: noise/signal shrinks as the graph grows.
	if rows[0].NoiseOverSignal <= rows[len(rows)-1].NoiseOverSignal {
		t.Errorf("noise/signal did not shrink with size: %+v", rows)
	}
	out := RenderSSGrowth(rows)
	if !strings.Contains(out, "SS_beta") {
		t.Fatal("render missing header")
	}
}

func TestDistNormAblation(t *testing.T) {
	rows, err := DistNormAblation(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, 9, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// The recommended DistSq/NormF2 must be among the reasonable ones.
	var sqF2 float64 = math.NaN()
	best := math.Inf(1)
	for _, r := range rows {
		if r.ObjName == "DistSq/NormF2" {
			sqF2 = r.Err
		}
		if r.Err < best {
			best = r.Err
		}
	}
	if math.IsNaN(sqF2) {
		t.Fatal("DistSq/NormF2 row missing")
	}
	if sqF2 > best+0.2 {
		t.Errorf("DistSq/NormF2 err %v far from best %v", sqF2, best)
	}
	out := RenderAblation(rows)
	if !strings.Contains(out, "DistAbs/NormE2") {
		t.Fatal("render missing variant")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	x := skg.Initiator{A: 1, B: 0.5, C: 0}
	y := skg.Initiator{A: 0.9, B: 0.8, C: 0.05}
	if got := MaxAbsDiff(x, y); math.Abs(got-0.3) > 1e-15 {
		t.Fatalf("MaxAbsDiff = %v, want 0.3", got)
	}
}

func TestSampleIndices(t *testing.T) {
	idx := sampleIndices(100, 5)
	if len(idx) != 5 || idx[0] != 0 || idx[4] != 99 {
		t.Fatalf("sampleIndices = %v", idx)
	}
	idx = sampleIndices(3, 10)
	if len(idx) != 3 {
		t.Fatalf("sampleIndices small = %v", idx)
	}
}

func TestLogRanks(t *testing.T) {
	r := logRanks(1000, 10)
	if len(r) == 0 || r[0] != 0 || r[len(r)-1] != 999 {
		t.Fatalf("logRanks = %v", r)
	}
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			t.Fatalf("logRanks not increasing: %v", r)
		}
	}
}

func TestSmoothSensCompare(t *testing.T) {
	rows, err := SmoothSensCompare(skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, []int{7, 8, 9}, 0.2, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.N != 1<<r.K {
			t.Errorf("row %d: n mismatch", i)
		}
		if r.SSSkg < r.LSSkg || r.SSEr < r.LSEr {
			t.Errorf("row %d: smooth sensitivity below local", i)
		}
		// The SKG's heavy-tailed structure yields larger local
		// sensitivity than the degree-homogeneous ER graph of the same
		// density (hubs share many neighbours).
		if r.LSSkg < r.LSEr {
			t.Logf("row %d: LS(skg)=%v < LS(er)=%v (unusual but possible)", i, r.LSSkg, r.LSEr)
		}
	}
	out := RenderSSCompare(rows)
	if !strings.Contains(out, "SS(er)") {
		t.Fatal("render missing header")
	}
}

func TestModelSelection(t *testing.T) {
	rows, err := ModelSelection(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].SourceN1 != 2 || rows[1].SourceN1 != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// The control (true 2x2 source) must fit essentially perfectly.
	if rows[0].RelErrE > 0.02 || rows[0].RelErrH > 0.05 {
		t.Errorf("control fit poor: %+v", rows[0])
	}
	// The paper's Section 3.3 claim: a 2x2 fit still matches the
	// feature counts of a 3x3-generated graph reasonably well.
	if rows[1].RelErrE > 0.25 || rows[1].RelErrH > 0.4 {
		t.Errorf("3x3-source fit unexpectedly poor: %+v", rows[1])
	}
	out := RenderModelSelection(rows)
	if !strings.Contains(out, "sourceN1") {
		t.Fatal("render missing header")
	}
}
