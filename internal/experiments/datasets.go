// Package experiments regenerates the paper's evaluation: Table 1
// (parameter comparison across KronFit, KronMom and the private
// Algorithm 1) and Figures 1–4 (five graph statistics overlaid for the
// original graph and synthetic graphs from each estimator), plus the
// extension studies (ε sweep, smooth-sensitivity growth, Dist/Norm
// ablation).
//
// Because the environment is offline, the SNAP datasets are replaced by
// deterministic synthetic stand-ins sampled from the SKG model using the
// paper's published KronMom parameters as generators (see DESIGN.md,
// "Substitutions"). The paper's experimental claims are relative —
// Private ≈ KronMom on the same input, and synthetic samples mimic the
// input's statistics — so they remain checkable on the stand-ins, with
// the added benefit that ground truth is known.
package experiments

import (
	"fmt"

	"dpkron/internal/graph"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// Dataset describes one evaluation graph: the paper's real network it
// stands in for, the SKG parameters used to generate the stand-in, and
// the paper's Table 1 reference estimates.
type Dataset struct {
	Name string
	// Generator of the stand-in graph.
	Source skg.Initiator
	K      int
	Seed   uint64
	// ClosureEdges is the number of triadic-closure edges added on top
	// of the SKG sample. Pure SKG samples are triangle-poor, while the
	// real networks the paper evaluated are triangle-dense (real
	// CA-HepTh has ~28k triangles); the closure pass restores the
	// edge/triangle scale of the originals so the private triangle
	// mechanism operates in the same signal-to-noise regime as in the
	// paper. It also reproduces the clustering-coefficient mismatch the
	// paper reports for the co-authorship graphs in its figure panels
	// (e). Zero for the synthetic dataset, which the paper itself
	// generates as a pure SKG.
	ClosureEdges int
	// Paper-reported size of the real network.
	PaperN, PaperE int
	// Paper's Table 1 estimates (reference values for EXPERIMENTS.md).
	PaperKronFit skg.Initiator
	PaperKronMom skg.Initiator
	PaperPrivate skg.Initiator
	// TrueInit marks datasets whose generator *is* the object to
	// recover (the paper's synthetic row).
	TrueInit bool
}

// Registry lists the four evaluation graphs of the paper in Table 1 /
// Figure order: CA-GrQc (Fig 1), AS20 (Fig 2), CA-HepTh (Fig 3),
// synthetic (Fig 4).
func Registry() []Dataset {
	return []Dataset{
		{
			Name:   "CA-GrQc-like",
			Source: skg.Initiator{A: 1.0, B: 0.4674, C: 0.2790},
			K:      13,
			Seed:   1001,
			// Raises the stand-in's edge count to the real CA-GrQc's
			// 28,980 and its triangle count to collaboration scale.
			ClosureEdges: 13697,
			PaperN:       5242, PaperE: 28980,
			PaperKronFit: skg.Initiator{A: 0.999, B: 0.245, C: 0.691},
			PaperKronMom: skg.Initiator{A: 1.000, B: 0.4674, C: 0.2790},
			PaperPrivate: skg.Initiator{A: 1.000, B: 0.4618, C: 0.2930},
		},
		{
			Name:         "AS20-like",
			Source:       skg.Initiator{A: 1.0, B: 0.6300, C: 0.0},
			K:            13,
			Seed:         1002,
			ClosureEdges: 6368,
			PaperN:       6474, PaperE: 26467,
			PaperKronFit: skg.Initiator{A: 0.987, B: 0.571, C: 0.049},
			PaperKronMom: skg.Initiator{A: 1.000, B: 0.6300, C: 0.000},
			PaperPrivate: skg.Initiator{A: 1.000, B: 0.6286, C: 0.000},
		},
		{
			Name:         "CA-HepTh-like",
			Source:       skg.Initiator{A: 1.0, B: 0.4012, C: 0.3789},
			K:            14,
			Seed:         1003,
			ClosureEdges: 24445,
			PaperN:       9877, PaperE: 51971,
			PaperKronFit: skg.Initiator{A: 0.999, B: 0.271, C: 0.587},
			PaperKronMom: skg.Initiator{A: 1.000, B: 0.4012, C: 0.3789},
			PaperPrivate: skg.Initiator{A: 1.000, B: 0.4048, C: 0.3720},
		},
		{
			Name:   "Synthetic",
			Source: skg.Initiator{A: 0.99, B: 0.45, C: 0.25},
			K:      14,
			Seed:   1004,
			PaperN: 16384, PaperE: 0, // the paper generates it, size follows from the model
			PaperKronFit: skg.Initiator{A: 0.9523, B: 0.4743, C: 0.2493},
			PaperKronMom: skg.Initiator{A: 0.9894, B: 0.5396, C: 0.2388},
			PaperPrivate: skg.Initiator{A: 0.9924, B: 0.5343, C: 0.2466},
			TrueInit:     true,
		},
	}
}

// Lookup returns the dataset with the given name.
func Lookup(name string) (Dataset, error) {
	for _, d := range Registry() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("experiments: unknown dataset %q", name)
}

// Generate materializes the stand-in graph deterministically: exact
// per-pair SKG sampling with the dataset's fixed seed, followed by the
// triadic-closure pass when configured. It runs on all cores.
func (d Dataset) Generate() *graph.Graph { return d.GenerateWorkers(0) }

// GenerateWorkers is Generate with an explicit worker bound for the
// exact sampler; the graph is identical for every worker count.
func (d Dataset) GenerateWorkers(workers int) *graph.Graph {
	g, _ := d.GenerateCtx(pipeline.New(nil, workers, nil))
	return g
}

// GenerateCtx is Generate under a pipeline Run: the exact sampler
// checks the context between shards and a "dataset" stage event pair is
// emitted. A run that is never cancelled materializes the exact
// Generate graph; a cancelled run returns run.Err().
func (d Dataset) GenerateCtx(run *pipeline.Run) (*graph.Graph, error) {
	done := run.Stage("dataset/" + d.Name)
	m := skg.Model{Init: d.Source, K: d.K}
	g, err := m.SampleExactCtx(run, randx.New(d.Seed))
	if err != nil {
		return nil, err
	}
	if d.ClosureEdges > 0 {
		if err := run.Err(); err != nil {
			return nil, err
		}
		g = TriadicClosure(g, d.ClosureEdges, randx.New(d.Seed^0xabcdef))
	}
	done()
	return g, nil
}

// TriadicClosure adds up to extra distinct wedge-closing edges: a wedge
// centre is drawn with probability proportional to its wedge count, two
// of its neighbours are joined. This densifies triangles the way
// collaboration networks are dense — through common collaborators.
func TriadicClosure(g *graph.Graph, extra int, rng *randx.Rand) *graph.Graph {
	n := g.NumNodes()
	// Cumulative wedge counts for weighted centre sampling.
	cum := make([]float64, n+1)
	for v := 0; v < n; v++ {
		d := float64(g.Degree(v))
		cum[v+1] = cum[v] + d*(d-1)/2
	}
	total := cum[n]
	if total == 0 || extra <= 0 {
		return g
	}
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, g.NumEdges()+extra)
	g.ForEachEdge(func(u, v int) {
		b.AddEdge(u, v)
		seen[int64(u)<<32|int64(v)] = struct{}{}
	})
	added := 0
	for attempts := 0; added < extra && attempts < 100*extra+1000; attempts++ {
		// Sample a wedge centre proportionally to wedge count.
		x := rng.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] <= x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c := lo
		nb := g.Neighbors(c)
		if len(nb) < 2 {
			continue
		}
		i := rng.IntN(len(nb))
		j := rng.IntN(len(nb) - 1)
		if j >= i {
			j++
		}
		u, v := int(nb[i]), int(nb[j])
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		added++
	}
	return b.Build()
}

// Model returns the generating model of the stand-in.
func (d Dataset) Model() skg.Model { return skg.Model{Init: d.Source, K: d.K} }
