package experiments

import (
	"fmt"
	"io"
	"strings"
)

// RenderFigure produces a compact textual rendition of a figure: per
// panel, the overlaid series sampled at a handful of points — enough to
// compare curve shapes across estimators, which is what the paper's
// figures communicate.
func RenderFigure(res *FigureResult, maxPoints int) string {
	if maxPoints <= 0 {
		maxPoints = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure: %s (k=%d, n=%d)\n", res.Dataset.Name, res.Dataset.K, 1<<res.Dataset.K)
	fmt.Fprintf(&b, "estimates:")
	for _, name := range EstimatorNames {
		fmt.Fprintf(&b, "  %s=%s", name, triple(res.Estimates[name]))
	}
	fmt.Fprintln(&b)
	for _, panel := range PanelNames {
		fmt.Fprintf(&b, "\n(%s)\n", panel)
		writeSeries(&b, "Original", res.Original.Panel(panel), maxPoints)
		for _, name := range EstimatorNames {
			writeSeries(&b, name, res.Single[name].Panel(panel), maxPoints)
		}
		if res.Expected != nil {
			for _, name := range EstimatorNames {
				writeSeries(&b, "E["+name+"]", res.Expected[name].Panel(panel), maxPoints)
			}
		}
	}
	return b.String()
}

func writeSeries(w io.Writer, label string, s Series, maxPoints int) {
	fmt.Fprintf(w, "  %-12s", label)
	n := len(s.X)
	if n == 0 {
		fmt.Fprintln(w, " (empty)")
		return
	}
	idxs := sampleIndices(n, maxPoints)
	for _, i := range idxs {
		fmt.Fprintf(w, " (%.3g, %.3g)", s.X[i], s.Y[i])
	}
	fmt.Fprintln(w)
}

// sampleIndices picks up to count indices spread across [0, n),
// always including the first and last.
func sampleIndices(n, count int) []int {
	if n <= count {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, count)
	for i := range out {
		out[i] = i * (n - 1) / (count - 1)
	}
	return out
}

// WriteCSV emits a figure as CSV rows: panel, series, x, y.
func WriteCSV(w io.Writer, res *FigureResult) error {
	if _, err := fmt.Fprintln(w, "panel,series,x,y"); err != nil {
		return err
	}
	emit := func(panel, series string, s Series) error {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g\n", panel, series, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, panel := range PanelNames {
		if err := emit(panel, "Original", res.Original.Panel(panel)); err != nil {
			return err
		}
		for _, name := range EstimatorNames {
			if err := emit(panel, name, res.Single[name].Panel(panel)); err != nil {
				return err
			}
		}
		if res.Expected != nil {
			for _, name := range EstimatorNames {
				if err := emit(panel, "Expected-"+name, res.Expected[name].Panel(panel)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
