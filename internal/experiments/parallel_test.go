package experiments

import (
	"testing"

	"dpkron/internal/skg"
)

// smallRegistry is a scaled-down two-dataset registry so the concurrent
// table harness is exercised without the full k=13–14 generation cost.
func smallRegistry() []Dataset {
	return []Dataset{
		{
			Name:   "tiny-a",
			Source: skg.Initiator{A: 0.99, B: 0.45, C: 0.25},
			K:      8, Seed: 21, TrueInit: true,
		},
		{
			Name:   "tiny-b",
			Source: skg.Initiator{A: 0.95, B: 0.55, C: 0.2},
			K:      8, Seed: 22, TrueInit: true,
		},
	}
}

func TestRunTable1DatasetsWorkerInvariant(t *testing.T) {
	opts := func(workers int) Table1Options {
		return Table1Options{KronFitIters: 3, Workers: workers}
	}
	base, err := RunTable1Datasets(smallRegistry(), opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 || base[0].Dataset.Name != "tiny-a" {
		t.Fatalf("rows out of order: %+v", base)
	}
	for _, workers := range []int{2, 8} {
		got, err := RunTable1Datasets(smallRegistry(), opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i].KronFit != base[i].KronFit ||
				got[i].KronMom != base[i].KronMom ||
				got[i].Private != base[i].Private {
				t.Fatalf("workers=%d row %d: %+v != %+v", workers, i, got[i], base[i])
			}
		}
	}
}

func TestEpsilonSweepWorkerInvariant(t *testing.T) {
	d := smallDataset()
	g := d.Generate()
	base, err := EpsilonSweepWorkers(g, d.K, []float64{0.1, 1}, 0.01, 2, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EpsilonSweepWorkers(g, d.K, []float64{0.1, 1}, 0.01, 2, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], base[i])
		}
	}
}
