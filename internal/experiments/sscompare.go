package experiments

import (
	"fmt"
	"strings"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// SSCompareRow contrasts the smooth sensitivity of the triangle count on
// an SKG sample against a G(n, p) Erdős–Rényi graph of matched size and
// density — the comparison §5 of the paper proposes: Nissim et al.
// analyzed SS_Δ on G(n, p); the paper asks how it behaves on SKGs.
type SSCompareRow struct {
	K      int
	N      int
	Edges  int
	LSSkg  float64
	LSEr   float64
	SSSkg  float64
	SSEr   float64
	TriSkg int64
	TriEr  int64
}

// SmoothSensCompare samples, for each k, one SKG and one G(n, p) with p
// matched to the SKG's realized density, and reports LS and SS_β of the
// triangle count on both.
func SmoothSensCompare(init skg.Initiator, ks []int, eps, delta float64, seed uint64) ([]SSCompareRow, error) {
	beta := smoothsens.BetaFor(eps/2, delta)
	var rows []SSCompareRow
	for _, k := range ks {
		m, err := skg.NewModel(init, k)
		if err != nil {
			return nil, err
		}
		g := m.Sample(randx.New(seed + uint64(k)))
		n := g.NumNodes()
		p := float64(2*g.NumEdges()) / (float64(n) * float64(n-1))
		er := graph.Gnp(n, p, randx.New(seed+uint64(k)+500))
		rows = append(rows, SSCompareRow{
			K: k, N: n, Edges: g.NumEdges(),
			LSSkg:  smoothsens.LocalSensitivity(g),
			LSEr:   smoothsens.LocalSensitivity(er),
			SSSkg:  smoothsens.Smooth(g, beta),
			SSEr:   smoothsens.Smooth(er, beta),
			TriSkg: stats.Triangles(g),
			TriEr:  stats.Triangles(er),
		})
	}
	return rows, nil
}

// RenderSSCompare formats comparison rows.
func RenderSSCompare(rows []SSCompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-8s %-9s %-8s %-8s %-10s %-10s %-9s %-9s\n",
		"k", "n", "edges", "LS(skg)", "LS(er)", "SS(skg)", "SS(er)", "tri(skg)", "tri(er)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-8d %-9d %-8.0f %-8.0f %-10.2f %-10.2f %-9d %-9d\n",
			r.K, r.N, r.Edges, r.LSSkg, r.LSEr, r.SSSkg, r.SSEr, r.TriSkg, r.TriEr)
	}
	return b.String()
}
