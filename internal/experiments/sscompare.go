package experiments

import (
	"fmt"
	"strings"

	"dpkron/internal/graph"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/smoothsens"
	"dpkron/internal/stats"
)

// SSCompareRow contrasts the smooth sensitivity of the triangle count on
// an SKG sample against a G(n, p) Erdős–Rényi graph of matched size and
// density — the comparison §5 of the paper proposes: Nissim et al.
// analyzed SS_Δ on G(n, p); the paper asks how it behaves on SKGs.
type SSCompareRow struct {
	K      int
	N      int
	Edges  int
	LSSkg  float64
	LSEr   float64
	SSSkg  float64
	SSEr   float64
	TriSkg int64
	TriEr  int64
}

// SmoothSensCompare samples, for each k, one SKG and one G(n, p) with p
// matched to the SKG's realized density, and reports LS and SS_β of the
// triangle count on both.
func SmoothSensCompare(init skg.Initiator, ks []int, eps, delta float64, seed uint64) ([]SSCompareRow, error) {
	return SmoothSensCompareCtx(pipeline.Background(), init, ks, eps, delta, seed)
}

// SmoothSensCompareCtx is SmoothSensCompare under a pipeline Run: the
// context is checked between k points and inside each sample and scan,
// and an "ss-compare" stage reports per-k progress. A run that is never
// cancelled computes the exact SmoothSensCompare rows.
func SmoothSensCompareCtx(run *pipeline.Run, init skg.Initiator, ks []int, eps, delta float64, seed uint64) ([]SSCompareRow, error) {
	done := run.Stage("ss-compare")
	beta := smoothsens.BetaFor(eps/2, delta)
	var rows []SSCompareRow
	for i, k := range ks {
		if err := run.Err(); err != nil {
			return nil, err
		}
		run.Progress("ss-compare", float64(i)/float64(len(ks)))
		m, err := skg.NewModel(init, k)
		if err != nil {
			return nil, err
		}
		g, err := m.SampleCtx(run, randx.New(seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		n := g.NumNodes()
		p := float64(2*g.NumEdges()) / (float64(n) * float64(n-1))
		er := graph.Gnp(n, p, randx.New(seed+uint64(k)+500))
		row := SSCompareRow{K: k, N: n, Edges: g.NumEdges()}
		for _, side := range []struct {
			graph *graph.Graph
			ls    *float64
			ss    *float64
			tri   *int64
		}{
			{g, &row.LSSkg, &row.SSSkg, &row.TriSkg},
			{er, &row.LSEr, &row.SSEr, &row.TriEr},
		} {
			ls, err := smoothsens.MaxCommonNeighborsCtx(run, side.graph)
			if err != nil {
				return nil, err
			}
			*side.ls = float64(ls)
			if *side.ss, err = smoothsens.SmoothCtx(run, side.graph, beta); err != nil {
				return nil, err
			}
			if *side.tri, err = stats.TrianglesCtx(run, side.graph); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	done()
	return rows, nil
}

// RenderSSCompare formats comparison rows.
func RenderSSCompare(rows []SSCompareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-8s %-9s %-8s %-8s %-10s %-10s %-9s %-9s\n",
		"k", "n", "edges", "LS(skg)", "LS(er)", "SS(skg)", "SS(er)", "tri(skg)", "tri(er)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-8d %-9d %-8.0f %-8.0f %-10.2f %-10.2f %-9d %-9d\n",
			r.K, r.N, r.Edges, r.LSSkg, r.LSEr, r.SSSkg, r.SSEr, r.TriSkg, r.TriEr)
	}
	return b.String()
}
