package experiments

import (
	"fmt"
	"math"
	"strings"

	"dpkron/internal/kronmom"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
)

// ModelSelRow reports how well a 2×2 KronMom fit reproduces the features
// of a graph generated from a *larger* initiator — the paper's §3.3
// justification for fixing N1 = 2 ("having N1 > 2 does not accrue a
// significant advantage as far as matching of some statistics is
// concerned").
type ModelSelRow struct {
	SourceN1 int
	Nodes    int
	Fit      skg.Initiator
	// RelErr per feature of the 2×2 fit's expected counts against the
	// observed counts of the N1-generated graph.
	RelErrE, RelErrH, RelErrT, RelErrDelta float64
}

// ModelSelection generates one graph per source initiator (2×2 truth and
// a 3×3 initiator) and fits the 2×2 moment estimator to both.
func ModelSelection(seed uint64) ([]ModelSelRow, error) {
	var rows []ModelSelRow

	// Source 1: a true 2×2 SKG (control).
	binary := skg.Model{Init: skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, K: 11}
	g2 := binary.SampleExact(randx.New(seed))
	row, err := fit2x2Row(2, g2.NumNodes(), stats.FeaturesOf(g2), 11, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)

	// Source 2: a 3×3 initiator at a comparable node count (3^7 = 2187).
	theta3 := [][]float64{
		{0.98, 0.58, 0.22},
		{0.58, 0.45, 0.34},
		{0.22, 0.34, 0.52},
	}
	gm, err := skg.NewGeneralModel(theta3, 7)
	if err != nil {
		return nil, err
	}
	g3 := gm.SampleExact(randx.New(seed + 1))
	// Fit a 2×2 model on 2^11 = 2048 ≈ 2187 slots.
	row, err = fit2x2Row(3, g3.NumNodes(), stats.FeaturesOf(g3), 11, seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

func fit2x2Row(srcN1, nodes int, obs stats.Features, k int, seed uint64) (ModelSelRow, error) {
	est, err := kronmom.Fit(obs, k, kronmom.Options{Rng: randx.New(seed + 77)})
	if err != nil {
		return ModelSelRow{}, err
	}
	exp := skg.Model{Init: est.Init, K: k}.ExpectedFeatures()
	rel := func(e, o float64) float64 {
		if math.Abs(o) < 1e-9 {
			return 0
		}
		return math.Abs(e-o) / math.Abs(o)
	}
	return ModelSelRow{
		SourceN1:    srcN1,
		Nodes:       nodes,
		Fit:         est.Init,
		RelErrE:     rel(exp.E, obs.E),
		RelErrH:     rel(exp.H, obs.H),
		RelErrT:     rel(exp.T, obs.T),
		RelErrDelta: rel(exp.Delta, obs.Delta),
	}, nil
}

// RenderModelSelection formats the study.
func RenderModelSelection(rows []ModelSelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-7s %-22s %-8s %-8s %-8s %-8s\n",
		"sourceN1", "nodes", "2x2 fit (a/b/c)", "errE", "errH", "errT", "errTri")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9d %-7d %-22s %-8.4f %-8.4f %-8.4f %-8.4f\n",
			r.SourceN1, r.Nodes, triple(r.Fit), r.RelErrE, r.RelErrH, r.RelErrT, r.RelErrDelta)
	}
	return b.String()
}
