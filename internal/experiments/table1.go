package experiments

import (
	"fmt"
	"strings"

	"dpkron/internal/core"
	"dpkron/internal/graph"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// Table1Options configures the Table 1 regeneration. The paper's caption
// says (ε, δ) = (0.2, 0.01); the body text of §4.2 mentions (0.2, 0.1).
// The caption values are the defaults.
type Table1Options struct {
	Eps   float64 // default 0.2
	Delta float64 // default 0.01
	Seed  uint64  // default 7
	// KronFitIters overrides the MLE iteration budget (default 60).
	KronFitIters int
	// Workers bounds the goroutines used across the table: the four
	// dataset rows run concurrently and each row's estimators shard
	// their own hot loops. <= 0 selects runtime.GOMAXPROCS(0); the
	// rendered table is identical for every worker count.
	Workers int
}

func (o *Table1Options) fill() {
	if o.Eps == 0 {
		o.Eps = 0.2
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.KronFitIters == 0 {
		o.KronFitIters = 60
	}
}

// Table1Row is one dataset's comparison of the three estimators.
type Table1Row struct {
	Dataset Dataset
	N, E    int // stand-in size
	KronFit skg.Initiator
	KronMom skg.Initiator
	Private skg.Initiator
}

// RunTable1Row computes one row on the given (already generated) graph.
func RunTable1Row(d Dataset, g *graph.Graph, opts Table1Options) (Table1Row, error) {
	opts.fill()
	return RunTable1RowCtx(pipeline.New(nil, opts.Workers, nil), d, g, opts)
}

// RunTable1RowCtx is RunTable1Row under a pipeline Run: the three
// estimators run under run's context and worker budget (opts.Workers is
// ignored), each emitting its stage events under a "table1/<dataset>"
// prefix.
func RunTable1RowCtx(run *pipeline.Run, d Dataset, g *graph.Graph, opts Table1Options) (Table1Row, error) {
	opts.fill()
	rng := randx.New(opts.Seed ^ d.Seed)
	sub := run.Sub("table1/" + d.Name)

	kf, err := kronfit.FitCtx(sub, g, kronfit.Options{K: d.K, Iters: opts.KronFitIters, Rng: rng.Split()})
	if err != nil {
		return Table1Row{}, fmt.Errorf("kronfit on %s: %w", d.Name, err)
	}
	km, err := kronmom.FitGraphCtx(sub, g, d.K, kronmom.Options{Rng: rng.Split()})
	if err != nil {
		return Table1Row{}, fmt.Errorf("kronmom on %s: %w", d.Name, err)
	}
	pr, err := core.EstimateCtx(sub, g, core.Options{
		Eps: opts.Eps, Delta: opts.Delta, K: d.K, Rng: rng.Split(),
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("private on %s: %w", d.Name, err)
	}
	return Table1Row{
		Dataset: d,
		N:       g.NumNodes(),
		E:       g.NumEdges(),
		KronFit: kf.Init,
		KronMom: km.Init,
		Private: pr.Init,
	}, nil
}

// RunTable1 regenerates the full table over the dataset registry.
func RunTable1(opts Table1Options) ([]Table1Row, error) {
	return RunTable1Datasets(Registry(), opts)
}

// RunTable1Ctx is RunTable1 under a pipeline Run.
func RunTable1Ctx(run *pipeline.Run, opts Table1Options) ([]Table1Row, error) {
	return RunTable1DatasetsCtx(run, Registry(), opts)
}

// RunTable1Datasets computes one table row per dataset. The rows are
// independent (each derives its randomness from its dataset seed), so
// they run concurrently with the worker budget divided between the
// row fan-out and each row's internal sharding; results keep dataset
// order and are identical for every worker count.
func RunTable1Datasets(reg []Dataset, opts Table1Options) ([]Table1Row, error) {
	return RunTable1DatasetsCtx(pipeline.New(nil, opts.Workers, nil), reg, opts)
}

// RunTable1DatasetsCtx is RunTable1Datasets under a pipeline Run: the
// row fan-out checks the context between datasets and each row's
// estimators check it internally (opts.Workers is ignored in favour of
// run's budget). A run that is never cancelled renders the exact
// RunTable1Datasets rows; a cancelled run returns run.Err().
func RunTable1DatasetsCtx(run *pipeline.Run, reg []Dataset, opts Table1Options) ([]Table1Row, error) {
	w := run.Workers()
	rowWorkers := 1
	if len(reg) > 0 && w/len(reg) > 1 {
		rowWorkers = w / len(reg)
	}
	rows := make([]Table1Row, len(reg))
	errs := make([]error, len(reg))
	if err := parallel.RunCtx(run.Context(), w, len(reg), func(i int) {
		// The per-row budget travels via the Run (RunTable1RowCtx
		// ignores opts.Workers).
		rowRun := run.WithWorkers(rowWorkers)
		g, err := reg[i].GenerateCtx(rowRun)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i], errs[i] = RunTable1RowCtx(rowRun, reg[i], g, opts)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderTable1 formats rows side by side with the paper's values.
func RenderTable1(rows []Table1Row, opts Table1Options) string {
	opts.fill()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: parameter estimates (a, b, c), eps=%g delta=%g\n", opts.Eps, opts.Delta)
	fmt.Fprintf(&b, "%-14s %-11s  %-22s  %-22s  %-22s\n", "network", "N/E", "KronFit", "KronMom", "Private")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-11s  %-22s  %-22s  %-22s\n",
			r.Dataset.Name,
			fmt.Sprintf("%d/%d", r.N, r.E),
			triple(r.KronFit), triple(r.KronMom), triple(r.Private))
		fmt.Fprintf(&b, "%-14s %-11s  %-22s  %-22s  %-22s\n",
			"  (paper)", "",
			triple(r.Dataset.PaperKronFit), triple(r.Dataset.PaperKronMom), triple(r.Dataset.PaperPrivate))
	}
	return b.String()
}

func triple(i skg.Initiator) string {
	return fmt.Sprintf("%.4f/%.4f/%.4f", i.A, i.B, i.C)
}

// MaxAbsDiff returns the largest absolute componentwise difference
// between two initiators — the comparison metric used in EXPERIMENTS.md.
func MaxAbsDiff(x, y skg.Initiator) float64 {
	m := abs(x.A - y.A)
	if d := abs(x.B - y.B); d > m {
		m = d
	}
	if d := abs(x.C - y.C); d > m {
		m = d
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
