package experiments

import (
	"fmt"
	"math"
	"sort"

	"dpkron/internal/anf"
	"dpkron/internal/core"
	"dpkron/internal/graph"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/linalg"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
)

// Series is one plotted curve: paired X/Y samples.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// GraphStats bundles the five statistics of the paper's figure panels
// for one graph: (a) hop plot, (b) degree distribution, (c) scree plot,
// (d) network values, (e) average clustering coefficient by degree.
type GraphStats struct {
	HopPlot    Series
	DegreeDist Series
	Scree      Series
	NetValues  Series
	Clustering Series
}

// FigureOptions configures a figure regeneration.
type FigureOptions struct {
	Eps   float64 // default 0.2
	Delta float64 // default 0.01
	Seed  uint64  // default 11
	// ExpectedRuns averages statistics over this many synthetic
	// realizations per estimator (the paper's "Expected" curves in
	// Figure 1). 0 disables the expected curves.
	ExpectedRuns int
	// ScreeRank is the number of leading singular values (default 48).
	ScreeRank int
	// ANFTrials controls hop-plot sketch accuracy (default 32).
	ANFTrials int
	// KronFitIters overrides the MLE iteration budget (default 60).
	KronFitIters int
	// ExactHopPlot forces all-source BFS instead of ANF sketches for
	// single realizations (slower, exact).
	ExactHopPlot bool
	// Workers bounds the goroutines used across the figure: the
	// expected-curve realizations run concurrently and every sampler,
	// counter and estimator shards its own hot loops. <= 0 selects
	// runtime.GOMAXPROCS(0); the figure is identical for every worker
	// count.
	Workers int
}

func (o *FigureOptions) fill() {
	if o.Eps == 0 {
		o.Eps = 0.2
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	if o.ScreeRank == 0 {
		o.ScreeRank = 48
	}
	if o.ANFTrials == 0 {
		o.ANFTrials = 32
	}
	if o.KronFitIters == 0 {
		o.KronFitIters = 60
	}
}

// FigureResult is one regenerated figure: the original graph's
// statistics overlaid with one synthetic realization per estimator and,
// optionally, expected statistics over many realizations.
type FigureResult struct {
	Dataset   Dataset
	Estimates map[string]skg.Initiator // estimator name -> fitted initiator
	Original  GraphStats
	Single    map[string]GraphStats // one realization per estimator
	Expected  map[string]GraphStats // averaged over ExpectedRuns (may be nil)
}

// EstimatorNames orders the estimators as in the paper's legends.
var EstimatorNames = []string{"KronFit", "KronMom", "Private"}

// RunFigure regenerates one figure for the dataset.
func RunFigure(d Dataset, opts FigureOptions) (*FigureResult, error) {
	opts.fill()
	return RunFigureCtx(pipeline.New(nil, opts.Workers, nil), d, opts)
}

// RunFigureCtx is RunFigure under a pipeline Run: the dataset
// generation, the three estimator fits, every statistics pass and the
// expected-curve fan-out all run under run's context and worker budget
// (opts.Workers is ignored), emitting their stage events under a
// "figure/<dataset>" prefix. A run that is never cancelled regenerates
// the exact RunFigure result for the same options; a cancelled run
// returns run.Err().
func RunFigureCtx(run *pipeline.Run, d Dataset, opts FigureOptions) (*FigureResult, error) {
	opts.fill()
	fig := run.Sub("figure/" + d.Name)
	rng := randx.New(opts.Seed ^ d.Seed)
	g, err := d.GenerateCtx(fig)
	if err != nil {
		return nil, err
	}

	// Fit the three estimators.
	kf, err := kronfit.FitCtx(fig, g, kronfit.Options{K: d.K, Iters: opts.KronFitIters, Rng: rng.Split()})
	if err != nil {
		return nil, fmt.Errorf("kronfit: %w", err)
	}
	km, err := kronmom.FitGraphCtx(fig, g, d.K, kronmom.Options{Rng: rng.Split()})
	if err != nil {
		return nil, fmt.Errorf("kronmom: %w", err)
	}
	pr, err := core.EstimateCtx(fig, g, core.Options{Eps: opts.Eps, Delta: opts.Delta, K: d.K, Rng: rng.Split()})
	if err != nil {
		return nil, fmt.Errorf("private: %w", err)
	}
	estimates := map[string]skg.Initiator{
		"KronFit": kf.Init,
		"KronMom": km.Init,
		"Private": pr.Init,
	}

	orig, err := computeStatsCtx(fig, g, opts, rng.Split())
	if err != nil {
		return nil, err
	}
	res := &FigureResult{
		Dataset:   d,
		Estimates: estimates,
		Original:  orig,
		Single:    map[string]GraphStats{},
	}
	for _, name := range EstimatorNames {
		m := skg.Model{Init: estimates[name], K: d.K}
		synth, err := m.SampleBallDropCtx(fig, rng.Split())
		if err != nil {
			return nil, err
		}
		res.Single[name], err = computeStatsCtx(fig, synth, opts, rng.Split())
		if err != nil {
			return nil, err
		}
	}
	if opts.ExpectedRuns > 0 {
		res.Expected = map[string]GraphStats{}
		// The worker budget moves to the realization level here: the
		// runs fan out across the pool while each run's sampler and
		// statistics stay single-goroutine, so the total stays within
		// the run budget instead of multiplying the two levels.
		for _, name := range EstimatorNames {
			m := skg.Model{Init: estimates[name], K: d.K}
			// Every realization gets its pair of streams derived serially
			// up front, then the runs execute concurrently; averageStats
			// consumes them in run order, so the expected curves are
			// identical for every worker count.
			type runRngs struct{ sample, stats *randx.Rand }
			rngs := make([]runRngs, opts.ExpectedRuns)
			for r := range rngs {
				rngs[r] = runRngs{sample: rng.Split(), stats: rng.Split()}
			}
			all := make([]GraphStats, opts.ExpectedRuns)
			errs := make([]error, opts.ExpectedRuns)
			// The realizations report no per-run stage events (they would
			// interleave meaninglessly); the fan-out itself is one stage.
			doneExp := fig.Stage("expected/" + name)
			runSolo := pipeline.New(run.Context(), 1, nil)
			if err := parallel.RunCtx(run.Context(), run.Workers(), opts.ExpectedRuns, func(r int) {
				synth, err := m.SampleBallDropCtx(runSolo, rngs[r].sample)
				if err != nil {
					errs[r] = err
					return
				}
				all[r], errs[r] = computeStatsCtx(runSolo, synth, opts, rngs[r].stats)
			}); err != nil {
				return nil, err
			}
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			res.Expected[name] = averageStats(all)
			doneExp()
		}
	}
	return res, nil
}

// computeStatsCtx computes the five panel statistics of one graph under
// a pipeline Run.
func computeStatsCtx(run *pipeline.Run, g *graph.Graph, opts FigureOptions, rng *randx.Rand) (GraphStats, error) {
	var hop Series
	if opts.ExactHopPlot {
		exact, err := stats.HopPlotCtx(run, g)
		if err != nil {
			return GraphStats{}, err
		}
		hop = Series{Name: "hop plot"}
		for h, v := range exact {
			hop.X = append(hop.X, float64(h))
			hop.Y = append(hop.Y, float64(v))
		}
	} else {
		approx, err := anf.HopPlotCtx(run, g, anf.Options{Trials: opts.ANFTrials, Rng: rng.Split()})
		if err != nil {
			return GraphStats{}, err
		}
		hop = Series{Name: "hop plot"}
		for h, v := range approx {
			hop.X = append(hop.X, float64(h))
			hop.Y = append(hop.Y, v)
		}
	}

	dd := stats.DegreeDistribution(g)
	deg := Series{Name: "degree distribution"}
	for _, p := range dd {
		deg.X = append(deg.X, float64(p.Degree))
		deg.Y = append(deg.Y, p.Value)
	}

	sv, err := linalg.ScreeValuesCtx(run, g, opts.ScreeRank, rng.Split())
	if err != nil {
		return GraphStats{}, err
	}
	scree := Series{Name: "scree"}
	for i, v := range sv {
		scree.X = append(scree.X, float64(i+1))
		scree.Y = append(scree.Y, v)
	}

	nv, err := linalg.NetworkValuesCtx(run, g, rng.Split())
	if err != nil {
		return GraphStats{}, err
	}
	// Downsample network values to ~64 log-spaced ranks to keep the
	// series printable; the paper's panel is a log–log curve.
	net := Series{Name: "network value"}
	for _, idx := range logRanks(len(nv), 64) {
		net.X = append(net.X, float64(idx+1))
		net.Y = append(net.Y, nv[idx])
	}

	if err := run.Err(); err != nil {
		return GraphStats{}, err
	}
	cc := stats.ClusteringByDegree(g)
	clust := Series{Name: "clustering"}
	for _, p := range cc {
		clust.X = append(clust.X, float64(p.Degree))
		clust.Y = append(clust.Y, p.Value)
	}

	return GraphStats{HopPlot: hop, DegreeDist: deg, Scree: scree, NetValues: net, Clustering: clust}, nil
}

// logRanks returns up to count distinct indices in [0, n) spaced
// logarithmically.
func logRanks(n, count int) []int {
	if n == 0 {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for i := 0; i < count; i++ {
		f := math.Pow(float64(n), float64(i)/float64(count-1))
		idx := int(f) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// averageStats averages series across runs. Series are aligned on X:
// for integer-X series (hop, degree, scree, rank) values are averaged
// per X, treating missing entries as absent (mean over runs that have
// the X).
func averageStats(runs []GraphStats) GraphStats {
	pick := func(f func(GraphStats) Series, name string) Series {
		sum := map[float64]float64{}
		cnt := map[float64]int{}
		for _, r := range runs {
			s := f(r)
			for i := range s.X {
				sum[s.X[i]] += s.Y[i]
				cnt[s.X[i]]++
			}
		}
		xs := make([]float64, 0, len(sum))
		for x := range sum {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		out := Series{Name: name}
		for _, x := range xs {
			out.X = append(out.X, x)
			out.Y = append(out.Y, sum[x]/float64(cnt[x]))
		}
		return out
	}
	return GraphStats{
		HopPlot:    pick(func(g GraphStats) Series { return g.HopPlot }, "hop plot (expected)"),
		DegreeDist: pick(func(g GraphStats) Series { return g.DegreeDist }, "degree distribution (expected)"),
		Scree:      pick(func(g GraphStats) Series { return g.Scree }, "scree (expected)"),
		NetValues:  pick(func(g GraphStats) Series { return g.NetValues }, "network value (expected)"),
		Clustering: pick(func(g GraphStats) Series { return g.Clustering }, "clustering (expected)"),
	}
}

// PanelNames orders the five panels as in the paper.
var PanelNames = []string{"hop plot", "degree distribution", "scree", "network value", "clustering"}

// Panel extracts a panel by name.
func (gs GraphStats) Panel(name string) Series {
	switch name {
	case "hop plot":
		return gs.HopPlot
	case "degree distribution":
		return gs.DegreeDist
	case "scree":
		return gs.Scree
	case "network value":
		return gs.NetValues
	case "clustering":
		return gs.Clustering
	}
	return Series{}
}
