// Package pipeline carries the cross-cutting execution context of the
// module's long-running paths: a context.Context for cancellation and
// deadlines, a resolved worker budget, and an optional stage/progress
// event sink.
//
// A single *Run is threaded from an entry point (core.EstimateCtx, the
// samplers, the experiment drivers, an HTTP job in internal/server)
// down through every parallel stage. The contract every consumer obeys:
//
//   - Cancellation only ever *aborts* — a cancelled Run makes the
//     callee return its Context's error, never a perturbed result. For
//     a Run that is never cancelled, results are bit-identical to the
//     historical blocking entry points for the same seed and worker
//     count (checks happen between shards and iterations, off the hot
//     loops, and consume no randomness).
//   - The worker budget is resolved once (Workers() > 0 always) and is
//     the single source of goroutine bounds below the entry point;
//     per-call Options.Workers fields are ignored by ...Ctx variants.
//   - Events are emitted from orchestrating code only and serialized
//     through one mutex, so a Sink needs no locking of its own.
package pipeline

import (
	"context"
	"sync"
	"time"

	"dpkron/internal/parallel"
)

// Event is one progress notification. Stage is a slash-separated path
// ("algorithm1/degree-release"); Frac is the completed fraction of that
// stage: 0 on start, 1 on completion, intermediate values for stages
// that report incremental progress.
type Event struct {
	Stage string
	Frac  float64
}

// Done reports whether the event marks stage completion.
func (e Event) Done() bool { return e.Frac >= 1 }

// Sink receives progress events. Calls are serialized by the Run, in
// emission order; a Sink must not block for long (it runs on the
// pipeline's goroutines) and must not call back into the pipeline.
type Sink func(Event)

// Run is the execution context threaded through the pipeline. The zero
// value is not usable; construct with New (or use a nil *Run, which
// behaves as a background run on all cores with no sink).
type Run struct {
	ctx     context.Context
	workers int
	sink    Sink
	mu      *sync.Mutex // shared by Sub/WithWorkers derivatives
	prefix  string
}

// New returns a Run over ctx (nil means context.Background()) with the
// given worker budget (<= 0 selects all cores) and optional sink.
func New(ctx context.Context, workers int, sink Sink) *Run {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &Run{ctx: ctx, workers: parallel.Normalize(workers), sink: sink}
	if sink != nil {
		r.mu = &sync.Mutex{}
	}
	return r
}

// Background returns a never-cancelled Run on all cores with no sink —
// the execution context of the historical blocking entry points.
func Background() *Run { return New(nil, 0, nil) }

// WithTimeout returns a Run whose context is parent (nil means
// context.Background()) bounded by d when d > 0, together with the
// cancel function releasing the deadline's resources. With d <= 0 no
// deadline is attached and the cancel function is a no-op.
func WithTimeout(parent context.Context, d time.Duration, workers int, sink Sink) (*Run, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if d <= 0 {
		return New(parent, workers, sink), func() {}
	}
	ctx, cancel := context.WithTimeout(parent, d)
	return New(ctx, workers, sink), cancel
}

// Context returns the Run's context; context.Background() for a nil Run.
func (r *Run) Context() context.Context {
	if r == nil {
		return context.Background()
	}
	return r.ctx
}

// Err returns the context's error: nil while the Run is live,
// context.Canceled or context.DeadlineExceeded once it is not.
func (r *Run) Err() error {
	if r == nil {
		return nil
	}
	return r.ctx.Err()
}

// Workers returns the resolved worker budget (always >= 1).
func (r *Run) Workers() int {
	if r == nil {
		return parallel.Normalize(0)
	}
	return r.workers
}

// WithWorkers returns a Run sharing this Run's context, sink and stage
// prefix with a different worker budget (<= 0 selects all cores). Used
// by drivers that move the budget between fan-out levels.
func (r *Run) WithWorkers(n int) *Run {
	if r == nil {
		return New(nil, n, nil)
	}
	cp := *r
	cp.workers = parallel.Normalize(n)
	return &cp
}

// Sub returns a Run that prefixes every emitted stage with stage + "/",
// so nested pipelines (e.g. the moment fit inside Algorithm 1) report
// hierarchical stage paths. Context and worker budget are shared.
func (r *Run) Sub(stage string) *Run {
	if r == nil || r.sink == nil {
		return r
	}
	cp := *r
	cp.prefix = r.prefix + stage + "/"
	return &cp
}

func (r *Run) emit(stage string, frac float64) {
	if r == nil || r.sink == nil {
		return
	}
	r.mu.Lock()
	r.sink(Event{Stage: r.prefix + stage, Frac: frac})
	r.mu.Unlock()
}

// Stage emits the start event (Frac 0) for the named stage and returns
// a function emitting its completion event (Frac 1). Typical use:
//
//	done := run.Stage("triangle-release")
//	... work ...
//	done()
func (r *Run) Stage(name string) func() {
	r.emit(name, 0)
	return func() { r.emit(name, 1) }
}

// Progress emits an intermediate progress event for the named stage;
// frac is clamped into [0, 1].
func (r *Run) Progress(name string, frac float64) {
	if r == nil || r.sink == nil {
		return
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r.emit(name, frac)
}
