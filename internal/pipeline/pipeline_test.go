package pipeline

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestNilRunBehavesAsBackground(t *testing.T) {
	var r *Run
	if r.Err() != nil {
		t.Errorf("nil run Err = %v", r.Err())
	}
	if r.Context() == nil {
		t.Error("nil run has nil context")
	}
	if r.Workers() < 1 {
		t.Errorf("nil run workers = %d", r.Workers())
	}
	// Emission paths must not panic on a nil run.
	done := r.Stage("x")
	done()
	r.Progress("x", 0.5)
	if sub := r.Sub("p"); sub != nil {
		t.Errorf("nil run Sub = %v, want nil", sub)
	}
	if w := r.WithWorkers(3); w.Workers() != 3 {
		t.Errorf("nil run WithWorkers(3).Workers() = %d", w.Workers())
	}
}

func TestNewNormalizesWorkers(t *testing.T) {
	if got := New(nil, 0, nil).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := New(nil, 5, nil).Workers(); got != 5 {
		t.Errorf("workers(5) = %d", got)
	}
	if got := New(nil, -2, nil).Workers(); got < 1 {
		t.Errorf("workers(-2) = %d", got)
	}
}

func TestStageAndProgressEvents(t *testing.T) {
	var got []Event
	r := New(nil, 1, func(e Event) { got = append(got, e) })
	done := r.Stage("fit")
	r.Progress("fit", 0.5)
	r.Progress("fit", -3) // clamped to 0
	r.Progress("fit", 7)  // clamped to 1
	done()
	want := []Event{{"fit", 0}, {"fit", 0.5}, {"fit", 0}, {"fit", 1}, {"fit", 1}}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
	if !got[len(got)-1].Done() {
		t.Error("final event should report Done")
	}
}

func TestSubPrefixesStages(t *testing.T) {
	var got []string
	r := New(nil, 1, func(e Event) { got = append(got, e.Stage) })
	inner := r.Sub("algorithm1").Sub("moment-fit")
	inner.Stage("kronmom")()
	if len(got) != 2 || got[0] != "algorithm1/moment-fit/kronmom" {
		t.Fatalf("stages = %v", got)
	}
	// A sink-less run's Sub is a no-op passthrough.
	if q := New(nil, 1, nil); q.Sub("x") != q {
		t.Error("Sub on sink-less run should return the same run")
	}
}

func TestSinkSerializedAcrossGoroutines(t *testing.T) {
	count := 0
	r := New(nil, 4, func(Event) { count++ }) // data race here would trip -race
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Progress("p", 0.5)
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Errorf("sink saw %d events, want 800", count)
	}
}

func TestWithWorkersSharesContextAndSink(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events int
	r := New(ctx, 4, func(Event) { events++ })
	w := r.WithWorkers(1)
	if w.Workers() != 1 {
		t.Errorf("WithWorkers(1).Workers() = %d", w.Workers())
	}
	if w.Context() != ctx {
		t.Error("WithWorkers must share the context")
	}
	w.Progress("p", 0.25)
	if events != 1 {
		t.Error("WithWorkers must share the sink")
	}
	cancel()
	if w.Err() == nil || r.Err() == nil {
		t.Error("cancellation must propagate to both runs")
	}
}

func TestWithTimeout(t *testing.T) {
	r, cancel := WithTimeout(nil, time.Nanosecond, 1, nil)
	defer cancel()
	deadline, ok := r.Context().Deadline()
	if !ok {
		t.Fatal("no deadline attached")
	}
	if time.Until(deadline) > time.Second {
		t.Errorf("deadline %v too far out", deadline)
	}
	// Zero timeout means no deadline.
	r2, cancel2 := WithTimeout(nil, 0, 1, nil)
	defer cancel2()
	if _, ok := r2.Context().Deadline(); ok {
		t.Error("unexpected deadline for d = 0")
	}
}
