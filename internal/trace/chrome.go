package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry in the Chrome/Perfetto trace-event JSON
// format (the `chrome://tracing` / ui.perfetto.dev import format):
// "X" complete events carry a start timestamp and duration, "i"
// instant events mark points in time. Timestamps and durations are
// microseconds.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChrome renders a trace tree as Chrome trace-event JSON,
// loadable in chrome://tracing or ui.perfetto.dev. Every span becomes
// a complete ("X") event and every span event an instant ("i") event;
// span attributes and the span id travel in args. Nil-safe: a nil
// tree writes an empty but valid trace file.
func WriteChrome(w io.Writer, tr *Tree) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if tr != nil {
		file.OtherData = map[string]string{"trace_id": tr.TraceID}
		if tr.RemoteParent != "" {
			file.OtherData["remote_parent"] = tr.RemoteParent
		}
	}
	tr.Walk(func(n *Node, depth int) {
		args := map[string]string{"span_id": n.SpanID}
		for k, v := range n.Attrs {
			args[k] = v
		}
		ev := chromeEvent{
			Name:  n.Name,
			Cat:   "dpkron",
			Phase: "X",
			TS:    n.Start.UnixMicro(),
			Dur:   int64(n.Seconds * 1e6),
			PID:   1,
			TID:   1,
			Args:  args,
		}
		if ev.Dur < 1 {
			// chrome://tracing drops zero-width slices; clamp to 1µs so
			// every span stays visible.
			ev.Dur = 1
		}
		file.TraceEvents = append(file.TraceEvents, ev)
		for _, e := range n.Events {
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name:  e.Name,
				Cat:   "dpkron",
				Phase: "i",
				TS:    e.Time.UnixMicro(),
				PID:   1,
				TID:   1,
				Scope: "t",
				Args:  e.Attrs,
			})
		}
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}
