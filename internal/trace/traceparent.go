package trace

import (
	"crypto/rand"
	"encoding/hex"
)

// Context is a W3C Trace Context identity: the pieces of a
// traceparent header this server consumes and echoes.
type Context struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
	Flags   byte   // bit 0: sampled
}

// Valid reports whether the context carries well-formed, non-zero
// trace and span ids.
func (c Context) Valid() bool {
	return hexID(c.TraceID, 32) && hexID(c.SpanID, 16)
}

// Traceparent renders the context as a version-00 traceparent header
// value: "00-<trace-id>-<parent-id>-<flags>".
func (c Context) Traceparent() string {
	const hexdigits = "0123456789abcdef"
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = append(b, c.TraceID...)
	b = append(b, '-')
	b = append(b, c.SpanID...)
	b = append(b, '-', hexdigits[c.Flags>>4], hexdigits[c.Flags&0xf])
	return string(b)
}

// ParseTraceparent parses a traceparent header per the W3C Trace
// Context spec: `version "-" trace-id "-" parent-id "-" flags`, all
// lowercase hex, with version ff forbidden and all-zero ids invalid.
// Future versions (> 00) are accepted if their first four fields
// parse, ignoring any trailing data. It never panics, whatever the
// input; ok is false for anything malformed.
func ParseTraceparent(h string) (c Context, ok bool) {
	if len(h) < 55 {
		return Context{}, false
	}
	if !hexID(h[0:2], 2) || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Context{}, false
	}
	version := h[0:2]
	if version == "ff" {
		return Context{}, false
	}
	if version == "00" && len(h) != 55 {
		return Context{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return Context{}, false
	}
	c = Context{TraceID: h[3:35], SpanID: h[36:52]}
	if !c.Valid() || !hexID(h[53:55], 2) {
		return Context{}, false
	}
	c.Flags = byte(unhex(h[53])<<4 | unhex(h[54]))
	return c, true
}

// NewTraceID draws a fresh random 32-hex-digit trace id from the
// OS entropy pool — never from the seeded generators, so tracing
// cannot perturb estimation.
func NewTraceID() string { return randomHex(16) }

// NewSpanID draws a fresh random 16-hex-digit span id for outgoing
// trace contexts generated outside any tracer.
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failure is unrecoverable; fall back to a fixed
		// non-zero id rather than panicking in a serving path.
		for i := range b {
			b[i] = 0xab
		}
	}
	return hex.EncodeToString(b)
}

// hexID reports whether s is exactly n lowercase hex digits and, for
// id-sized fields, not all zero.
func hexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	if n >= 16 && zero {
		return false
	}
	return true
}

func unhex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	default:
		return int(c-'a') + 10
	}
}
