package trace

import (
	"strings"
	"testing"
)

const (
	tpTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	tpSpan  = "00f067aa0ba902b7"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-" + tpTrace + "-" + tpSpan + "-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"canonical", valid, true},
		{"unsampled", "00-" + tpTrace + "-" + tpSpan + "-00", true},
		{"future version", "cc-" + tpTrace + "-" + tpSpan + "-01", true},
		{"future version with trailing", "cc-" + tpTrace + "-" + tpSpan + "-01-extra", true},
		{"empty", "", false},
		{"short", valid[:54], false},
		{"version ff", "ff-" + tpTrace + "-" + tpSpan + "-01", false},
		{"version 00 with trailing", valid + "-extra", false},
		{"future version bad separator", "cc-" + tpTrace + "-" + tpSpan + "-01x", false},
		{"uppercase hex", "00-" + strings.ToUpper(tpTrace) + "-" + tpSpan + "-01", false},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + tpSpan + "-01", false},
		{"all-zero span id", "00-" + tpTrace + "-" + strings.Repeat("0", 16) + "-01", false},
		{"bad separators", "00_" + tpTrace + "_" + tpSpan + "_01", false},
		{"non-hex flags", "00-" + tpTrace + "-" + tpSpan + "-zz", false},
		{"non-hex version", "zz-" + tpTrace + "-" + tpSpan + "-01", false},
	}
	for _, c := range cases {
		ctx, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", c.name, c.in, ok, c.ok)
			continue
		}
		if ok && (ctx.TraceID != tpTrace || ctx.SpanID != tpSpan) {
			t.Errorf("%s: parsed %+v", c.name, ctx)
		}
	}
	ctx, _ := ParseTraceparent(valid)
	if ctx.Flags != 1 {
		t.Fatalf("flags = %#x, want 1", ctx.Flags)
	}
	if got := ctx.Traceparent(); got != valid {
		t.Fatalf("round trip = %q, want %q", got, valid)
	}
}

func TestContextValid(t *testing.T) {
	if (Context{}).Valid() {
		t.Fatalf("zero context reported valid")
	}
	if !(Context{TraceID: tpTrace, SpanID: tpSpan}).Valid() {
		t.Fatalf("well-formed context reported invalid")
	}
	if (Context{TraceID: tpTrace[:31] + "G", SpanID: tpSpan}).Valid() {
		t.Fatalf("non-hex trace id reported valid")
	}
}

func TestNewIDsAreWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		id := NewTraceID()
		if !hexID(id, 32) {
			t.Fatalf("NewTraceID() = %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
		if sp := NewSpanID(); !hexID(sp, 16) {
			t.Fatalf("NewSpanID() = %q", sp)
		}
	}
}

// FuzzParseTraceparent asserts the two properties the middleware
// depends on: hostile headers never panic the parser, and anything it
// accepts re-renders (for version 00) to the exact input — so the
// echoed header is byte-identical to what the client sent.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-" + tpTrace + "-" + tpSpan + "-01")
	f.Add("ff-" + tpTrace + "-" + tpSpan + "-01")
	f.Add("cc-" + tpTrace + "-" + tpSpan + "-01-suffix")
	f.Add(strings.Repeat("0", 55))
	f.Add("")
	f.Add("00-00-00-00")
	f.Fuzz(func(t *testing.T, h string) {
		ctx, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		if !ctx.Valid() {
			t.Fatalf("parser accepted invalid context %+v from %q", ctx, h)
		}
		if strings.HasPrefix(h, "00-") && ctx.Traceparent() != h {
			t.Fatalf("version-00 round trip: %q -> %q", h, ctx.Traceparent())
		}
		if _, ok2 := ParseTraceparent(ctx.Traceparent()); !ok2 {
			t.Fatalf("re-rendered header %q does not re-parse", ctx.Traceparent())
		}
	})
}
