package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a fully deterministic trace: fixed clock, and a
// fixed trace id adopted from an incoming traceparent so no random id
// leaks into the golden file.
func goldenTracer() *Tracer {
	tr := New(Context{TraceID: tpTrace, SpanID: tpSpan, Flags: 1}).WithClock(fixedClock())
	root := tr.Start(nil, "fit/private", String("request_id", "req-golden"), String("dataset", "ds-test"))
	adm := root.Child("admission")
	adm.Child("journal-append").End()
	deb := adm.Child("ledger-debit", String("dataset", "ds-test"))
	deb.Event("ledger-debit", Float("eps", 0.5), Float("delta", 0.01))
	deb.End()
	adm.End()
	run := root.Child("run", Int("workers", 4))
	ss := tr.StageSpans(run, Int("workers", 4))
	ss.Observe("algorithm1/degree-release", 0)
	run.Event("accountant-debit",
		String("mechanism", "laplace-vec"),
		Float("eps", 0.25), Float("delta", 0))
	ss.Observe("algorithm1/degree-release", 1)
	ss.Observe("algorithm1/moment-fit", 0)
	ss.Observe("algorithm1/moment-fit/kronmom", 0)
	ss.Observe("algorithm1/moment-fit/kronmom", 1)
	ss.Observe("algorithm1/moment-fit", 1)
	run.End()
	root.End()
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTracer().Tree()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file; run `go test ./internal/trace -run Golden -update` if intended.\ngot:\n%s", buf.String())
	}
}

func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTracer().Tree()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    int64             `json:"ts"`
			Dur   int64             `json:"dur"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.OtherData["trace_id"] != tpTrace || file.DisplayTimeUnit != "ms" {
		t.Fatalf("otherData = %+v", file.OtherData)
	}
	var complete, instant int
	for _, e := range file.TraceEvents {
		switch e.Phase {
		case "X":
			complete++
			if e.Dur < 1 {
				t.Fatalf("complete event %q has zero duration", e.Name)
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	// 7 spans (root, admission, journal-append, ledger-debit, run, two
	// top stages) + the nested kronmom stage = 8; 2 instant events.
	if complete != 8 || instant != 2 {
		t.Fatalf("complete=%d instant=%d, want 8 and 2", complete, instant)
	}
	// Nil tree still writes a valid, empty file.
	buf.Reset()
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("nil-tree export invalid: %v", err)
	}
}
