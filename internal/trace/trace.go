// Package trace is a dependency-free span tracer for the serving tier.
//
// A Tracer records one tree of timed spans — for this repository,
// one tree per served job — and renders it as a JSON span tree
// (Tree), a Chrome/Perfetto trace-event file (WriteChrome), or an
// ASCII waterfall (via internal/textplot in the CLI). Span events
// carry string attributes, which the server uses to attach the
// privacy-audit timeline: every accountant debit or refusal becomes
// an event recording mechanism name, ε/δ charged, and remaining
// budget, so a job's trace doubles as the auditable account of where
// its privacy budget went.
//
// The package follows the repository's observability discipline:
//
//   - A nil *Tracer and a nil *Span are valid receivers everywhere
//     and every method on them is a no-op, so instrumented code never
//     branches on "is tracing on".
//   - Observation never perturbs the observed: span ids come from a
//     per-tracer counter and trace ids from crypto/rand (or the
//     caller's traceparent), never from the seeded generators that
//     drive estimation, so enabling tracing cannot move a single
//     sampled bit.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attr is one string key/value attribute on a span or event.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// Float builds a float attribute with full round-trip precision, so
// ε/δ recorded on audit events compare exactly against receipts.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%.17g", v)} }

// Tracer records one span tree. Create with New; a nil Tracer is a
// valid no-op. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	traceID string // 32 lowercase hex digits
	remote  string // parent span id from an incoming traceparent, "" if local root
	now     func() time.Time
	nextID  uint64
	spans   []*Span // in start order
}

// New builds a Tracer. A well-formed ctx.TraceID is adopted (so the
// tracer joins the caller's trace, or the id the middleware already
// echoed); a well-formed ctx.SpanID is additionally recorded as the
// remote parent. Anything else gets a fresh random trace id. New
// never draws from seeded randomness.
func New(ctx Context) *Tracer {
	t := &Tracer{now: time.Now}
	if hexID(ctx.TraceID, 32) {
		t.traceID = ctx.TraceID
		if hexID(ctx.SpanID, 16) {
			t.remote = ctx.SpanID
		}
	} else {
		t.traceID = NewTraceID()
	}
	return t
}

// WithClock replaces the tracer's clock (golden tests only). Returns
// the receiver for chaining; no-op on nil.
func (t *Tracer) WithClock(now func() time.Time) *Tracer {
	if t == nil || now == nil {
		return t
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
	return t
}

// TraceID returns the 32-hex-digit trace id, or "" on a nil tracer.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Start opens a new span under parent (nil parent = a root-level
// span) and returns it. On a nil tracer it returns nil, which is
// itself a valid no-op span.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{
		t:     t,
		id:    t.nextID,
		name:  name,
		start: t.now(),
		attrs: append([]Attr(nil), attrs...),
	}
	if parent != nil && parent.t == t {
		s.parent = parent.id
	}
	t.spans = append(t.spans, s)
	return s
}

// Span is one timed operation inside a trace. The zero of use is a
// nil *Span: every method no-ops, so callers thread spans through
// without nil checks.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64 // 0 = root-level
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
	events []spanEvent
}

type spanEvent struct {
	name  string
	time  time.Time
	attrs []Attr
}

// Child opens a sub-span. Nil-safe: a nil span returns a nil child.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(s, name, attrs...)
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.t.mu.Unlock()
}

// Event records a timestamped point event on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.events = append(s.events, spanEvent{name: name, time: s.t.now(), attrs: append([]Attr(nil), attrs...)})
	s.t.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = s.t.now()
	}
	s.t.mu.Unlock()
}

// Tree is the JSON form of a trace: the span forest plus identity,
// as served by GET /v1/jobs/{id}/trace.
type Tree struct {
	TraceID      string  `json:"trace_id"`
	RemoteParent string  `json:"remote_parent,omitempty"`
	Spans        []*Node `json:"spans"`
}

// Node is one span in a Tree. Seconds is the span duration; for a
// span still open at snapshot time it measures up to the snapshot and
// Open is true.
type Node struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	Start    time.Time         `json:"start"`
	Seconds  float64           `json:"seconds"`
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []EventNode       `json:"events,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// EventNode is one point event in a Tree.
type EventNode struct {
	Name  string            `json:"name"`
	Time  time.Time         `json:"time"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tree snapshots the tracer into its JSON form. Safe to call while
// spans are still being recorded; open spans report duration up to
// the snapshot instant. Returns nil on a nil tracer.
func (t *Tracer) Tree() *Tree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	nodes := make(map[uint64]*Node, len(t.spans))
	tree := &Tree{TraceID: t.traceID, RemoteParent: t.remote}
	for _, s := range t.spans {
		n := &Node{
			Name:   s.name,
			SpanID: fmt.Sprintf("%016x", s.id),
			Start:  s.start,
			Attrs:  attrMap(s.attrs),
		}
		end := s.end
		if end.IsZero() {
			end = now
			n.Open = true
		}
		if d := end.Sub(s.start); d > 0 {
			n.Seconds = d.Seconds()
		}
		for _, e := range s.events {
			n.Events = append(n.Events, EventNode{Name: e.name, Time: e.time, Attrs: attrMap(e.attrs)})
		}
		nodes[s.id] = n
		if p, ok := nodes[s.parent]; s.parent != 0 && ok {
			p.Children = append(p.Children, n)
		} else {
			tree.Spans = append(tree.Spans, n)
		}
	}
	return tree
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Walk visits every node of the tree depth-first in start order,
// calling fn with the node and its depth. Nil-safe.
func (tr *Tree) Walk(fn func(n *Node, depth int)) {
	if tr == nil {
		return
	}
	var rec func(ns []*Node, depth int)
	rec = func(ns []*Node, depth int) {
		for _, n := range ns {
			fn(n, depth)
			rec(n.Children, depth+1)
		}
	}
	rec(tr.Spans, 0)
}

// StageSpans adapts the pipeline's stage-progress event stream into
// spans: a fraction ≤ 0 (or the first sighting of a stage) opens a
// span, a fraction ≥ 1 closes it. Nesting follows the slash-path
// convention of pipeline.Run.Sub — a stage whose name extends an open
// stage's name with "/" becomes its child, so "algorithm1/moment-fit"
// parents "algorithm1/moment-fit/kronmom".
type StageSpans struct {
	t      *Tracer
	parent *Span
	attrs  []Attr
	mu     sync.Mutex
	open   map[string]*Span
}

// StageSpans builds a stage adapter rooted at parent; attrs are
// stamped on every stage span (the server records the worker count
// here). Nil-safe: a nil tracer yields a nil adapter whose Observe
// and Close no-op.
func (t *Tracer) StageSpans(parent *Span, attrs ...Attr) *StageSpans {
	if t == nil {
		return nil
	}
	return &StageSpans{t: t, parent: parent, attrs: attrs, open: make(map[string]*Span)}
}

// Observe feeds one pipeline event (stage path, progress fraction).
func (ss *StageSpans) Observe(stage string, frac float64) {
	if ss == nil || stage == "" {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sp, seen := ss.open[stage]
	if !seen && frac < 1 {
		parent := ss.parent
		// Deepest open stage whose path prefixes this one is the parent.
		best := -1
		for path, open := range ss.open {
			if len(path) > best && len(stage) > len(path) && stage[:len(path)+1] == path+"/" {
				best = len(path)
				parent = open
			}
		}
		ss.open[stage] = ss.t.Start(parent, stage, ss.attrs...)
		return
	}
	if frac >= 1 && seen {
		sp.End()
		delete(ss.open, stage)
	}
}

// Close ends any stage spans left open (failed or cancelled runs).
func (ss *StageSpans) Close() {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	// Deterministic close order for stable snapshots.
	paths := make([]string, 0, len(ss.open))
	for p := range ss.open {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		ss.open[p].End()
		delete(ss.open, p)
	}
}
