package trace

import "sync"

// Store is a bounded in-memory map from job id to tracer. The server
// puts a job's tracer at admission and drops it when the job is
// evicted from history, so trace retention tracks job retention; the
// store's own cap is a backstop that evicts the oldest entry when
// exceeded, bounding memory even if a caller forgets to Drop.
type Store struct {
	mu    sync.Mutex
	max   int
	byID  map[string]*Tracer
	order []string
}

// DefaultStoreSize bounds a Store built with NewStore(0).
const DefaultStoreSize = 512

// NewStore builds a Store retaining at most max traces (0 means
// DefaultStoreSize).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultStoreSize
	}
	return &Store{max: max, byID: make(map[string]*Tracer)}
}

// Put records id's tracer, evicting the oldest entry when the store
// is full. Nil-safe: a nil store or nil tracer is a no-op.
func (st *Store) Put(id string, t *Tracer) {
	if st == nil || t == nil || id == "" {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		st.order = append(st.order, id)
	}
	st.byID[id] = t
	for len(st.order) > st.max {
		delete(st.byID, st.order[0])
		st.order = st.order[1:]
	}
}

// Get returns the tracer recorded for id.
func (st *Store) Get(id string) (*Tracer, bool) {
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.byID[id]
	return t, ok
}

// Drop forgets id's trace (job-history eviction).
func (st *Store) Drop(id string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[id]; !ok {
		return
	}
	delete(st.byID, id)
	for i, v := range st.order {
		if v == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// Len reports the number of retained traces.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}
