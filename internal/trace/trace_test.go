package trace

import (
	"sync"
	"testing"
	"time"
)

// fixedClock yields deterministic, strictly increasing timestamps.
func fixedClock() func() time.Time {
	t := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	if got := tr.TraceID(); got != "" {
		t.Fatalf("nil tracer TraceID = %q", got)
	}
	sp := tr.Start(nil, "root")
	if sp != nil {
		t.Fatalf("nil tracer Start returned non-nil span")
	}
	// Every method on the nil span must be a no-op, not a panic.
	sp.SetAttr(String("k", "v"))
	sp.Event("e", Int("n", 1))
	child := sp.Child("child")
	if child != nil {
		t.Fatalf("nil span Child returned non-nil")
	}
	sp.End()
	if tr.Tree() != nil {
		t.Fatalf("nil tracer Tree returned non-nil")
	}
	ss := tr.StageSpans(nil)
	if ss != nil {
		t.Fatalf("nil tracer StageSpans returned non-nil")
	}
	ss.Observe("stage", 0)
	ss.Close()
	tr.WithClock(time.Now)
}

func TestSpanTree(t *testing.T) {
	tr := New(Context{}).WithClock(fixedClock())
	if !hexID(tr.TraceID(), 32) {
		t.Fatalf("generated trace id %q is not 32 hex digits", tr.TraceID())
	}
	root := tr.Start(nil, "job", String("kind", "fit/private"))
	adm := root.Child("admission")
	adm.Child("ledger-debit").End()
	adm.End()
	run := root.Child("run", Int("workers", 4))
	run.Event("audit", Float("eps", 0.25))
	run.End()
	root.End()

	tree := tr.Tree()
	if len(tree.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(tree.Spans))
	}
	r := tree.Spans[0]
	if r.Name != "job" || r.Attrs["kind"] != "fit/private" || r.Open {
		t.Fatalf("root span = %+v", r)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "admission" || r.Children[1].Name != "run" {
		t.Fatalf("root children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "ledger-debit" {
		t.Fatalf("admission children = %+v", r.Children[0].Children)
	}
	ev := r.Children[1].Events
	if len(ev) != 1 || ev[0].Name != "audit" || ev[0].Attrs["eps"] != "0.25" {
		t.Fatalf("run events = %+v", ev)
	}
	if r.Seconds <= 0 {
		t.Fatalf("root span has no duration: %v", r.Seconds)
	}
	var count int
	tree.Walk(func(n *Node, depth int) { count++ })
	if count != 4 {
		t.Fatalf("Walk visited %d nodes, want 4", count)
	}
}

func TestTracerAdoptsIncomingContext(t *testing.T) {
	in := Context{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "00f067aa0ba902b7", Flags: 1}
	tr := New(in)
	if tr.TraceID() != in.TraceID {
		t.Fatalf("tracer did not adopt incoming trace id: %q", tr.TraceID())
	}
	tree := tr.Tree()
	if tree.RemoteParent != in.SpanID {
		t.Fatalf("remote parent = %q, want %q", tree.RemoteParent, in.SpanID)
	}
}

func TestOpenSpanSnapshot(t *testing.T) {
	tr := New(Context{}).WithClock(fixedClock())
	sp := tr.Start(nil, "running")
	tree := tr.Tree()
	if !tree.Spans[0].Open || tree.Spans[0].Seconds <= 0 {
		t.Fatalf("open span snapshot = %+v", tree.Spans[0])
	}
	sp.End()
	sp.End() // second End keeps the first end time
	secs := tr.Tree().Spans[0].Seconds
	if tr.Tree().Spans[0].Seconds != secs {
		t.Fatalf("End not idempotent")
	}
}

func TestStageSpansNesting(t *testing.T) {
	tr := New(Context{}).WithClock(fixedClock())
	root := tr.Start(nil, "run")
	ss := tr.StageSpans(root, Int("workers", 3))
	// The serving pipeline's real stage order, including the nested
	// moment-fit/kronmom pair.
	ss.Observe("algorithm1/degree-release", 0)
	ss.Observe("algorithm1/degree-release", 1)
	ss.Observe("algorithm1/moment-fit", 0)
	ss.Observe("algorithm1/moment-fit/kronmom", 0)
	ss.Observe("algorithm1/moment-fit/kronmom", 0.5)
	ss.Observe("algorithm1/moment-fit/kronmom", 1)
	ss.Observe("algorithm1/moment-fit", 1)
	root.End()

	r := tr.Tree().Spans[0]
	if len(r.Children) != 2 {
		t.Fatalf("want 2 stage spans under run, got %d", len(r.Children))
	}
	mf := r.Children[1]
	if mf.Name != "algorithm1/moment-fit" || len(mf.Children) != 1 ||
		mf.Children[0].Name != "algorithm1/moment-fit/kronmom" {
		t.Fatalf("moment-fit subtree = %+v", mf)
	}
	if mf.Attrs["workers"] != "3" {
		t.Fatalf("stage span missing worker attr: %+v", mf.Attrs)
	}
	if mf.Open || mf.Children[0].Open {
		t.Fatalf("stage spans not closed")
	}
}

func TestStageSpansCloseEndsOpen(t *testing.T) {
	tr := New(Context{})
	ss := tr.StageSpans(nil)
	ss.Observe("a", 0)
	ss.Observe("a/b", 0)
	ss.Close()
	for _, n := range tr.Tree().Spans {
		if n.Open {
			t.Fatalf("span %q left open after Close", n.Name)
		}
	}
	// A done event for an unseen stage must not open anything.
	ss.Observe("never-started", 1)
	if len(tr.Tree().Spans) != 1 {
		t.Fatalf("unexpected span count %d", len(tr.Tree().Spans))
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := New(Context{})
	root := tr.Start(nil, "root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.Child("work")
				sp.Event("tick", Int("j", j))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	tree := tr.Tree()
	if len(tree.Spans[0].Children) != 8*50 {
		t.Fatalf("lost spans under concurrency: %d", len(tree.Spans[0].Children))
	}
}

func TestStoreBoundsAndDrop(t *testing.T) {
	st := NewStore(2)
	a, b, c := New(Context{}), New(Context{}), New(Context{})
	st.Put("job-1", a)
	st.Put("job-2", b)
	st.Put("job-3", c) // evicts job-1
	if st.Len() != 2 {
		t.Fatalf("store len = %d, want 2", st.Len())
	}
	if _, ok := st.Get("job-1"); ok {
		t.Fatalf("oldest trace not evicted")
	}
	if got, ok := st.Get("job-3"); !ok || got != c {
		t.Fatalf("job-3 missing after put")
	}
	st.Drop("job-2")
	if _, ok := st.Get("job-2"); ok {
		t.Fatalf("Drop did not remove trace")
	}
	st.Drop("job-2") // idempotent
	// Re-putting an existing id must not duplicate its order entry.
	st.Put("job-3", c)
	st.Put("job-4", a)
	if st.Len() != 2 {
		t.Fatalf("store len after re-put = %d, want 2", st.Len())
	}
	// Nil store no-ops.
	var nilStore *Store
	nilStore.Put("x", a)
	nilStore.Drop("x")
	if _, ok := nilStore.Get("x"); ok || nilStore.Len() != 0 {
		t.Fatalf("nil store misbehaved")
	}
}
