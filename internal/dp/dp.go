// Package dp provides the differential privacy primitives the paper
// builds on: the Laplace mechanism calibrated to global sensitivity
// (Dwork et al., Theorem 4.5 in the paper), (ε, δ) privacy budgets, and
// sequential composition (Dwork–Lei, Theorem 4.9). The graph-specific
// mechanisms live in packages degseq (private degree sequences) and
// smoothsens (private triangle counts).
package dp

import (
	"fmt"
	"math"

	"dpkron/internal/randx"
)

// Budget is an (ε, δ) differential privacy guarantee. δ = 0 is pure
// ε-differential privacy.
type Budget struct {
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta"`
}

// Validate checks ε > 0 (finite) and δ ∈ [0, 1).
func (b Budget) Validate() error {
	if math.IsNaN(b.Eps) || math.IsInf(b.Eps, 0) || b.Eps <= 0 {
		return fmt.Errorf("dp: epsilon must be positive and finite, got %v", b.Eps)
	}
	if math.IsNaN(b.Delta) || b.Delta < 0 || b.Delta >= 1 {
		return fmt.Errorf("dp: delta must be in [0, 1), got %v", b.Delta)
	}
	return nil
}

// String formats the budget as (ε, δ).
func (b Budget) String() string { return fmt.Sprintf("(%g, %g)-DP", b.Eps, b.Delta) }

// Compose returns the sequential composition of budgets: ε and δ add
// (Theorem 4.9 of the paper).
func Compose(parts ...Budget) Budget {
	var total Budget
	for _, p := range parts {
		total.Eps += p.Eps
		total.Delta += p.Delta
	}
	return total
}

// Laplace perturbs value with noise calibrated to the given L1 global
// sensitivity: value + Lap(sensitivity/ε). With sensitivity the true
// global sensitivity of the query, the release is (ε, 0)-DP
// (Theorem 4.5). It panics if sensitivity < 0 or ε <= 0.
func Laplace(value, sensitivity, eps float64, rng *randx.Rand) float64 {
	checkParams(sensitivity, eps)
	return value + rng.Laplace(sensitivity/eps)
}

// LaplaceVec perturbs a vector query with i.i.d. Laplace noise of scale
// sensitivity/ε, where sensitivity is the L1 global sensitivity of the
// whole vector. The input is not modified.
func LaplaceVec(values []float64, sensitivity, eps float64, rng *randx.Rand) []float64 {
	checkParams(sensitivity, eps)
	out := make([]float64, len(values))
	scale := sensitivity / eps
	for i, v := range values {
		out[i] = v + rng.Laplace(scale)
	}
	return out
}

func checkParams(sensitivity, eps float64) {
	if sensitivity < 0 || math.IsNaN(sensitivity) {
		panic(fmt.Sprintf("dp: negative sensitivity %v", sensitivity))
	}
	if eps <= 0 || math.IsNaN(eps) {
		panic(fmt.Sprintf("dp: non-positive epsilon %v", eps))
	}
}
