package dp

import "fmt"

// KEdge converts a 1-edge differential privacy guarantee into the
// corresponding k-edge guarantee via group privacy / the composition
// theorem, as in Hay et al. and §4.1 of the paper: an algorithm that is
// (ε, δ)-DP for single-edge neighbours is (kε, kδ)-DP for graphs
// differing in at most k edges (and node attributes counted within the
// k-edge budget). This is the paper's "weak form of node privacy": a
// node of degree d is protected at level (dε, dδ).
func KEdge(b Budget, k int) Budget {
	if k < 1 {
		panic(fmt.Sprintf("dp: k-edge requires k >= 1, got %d", k))
	}
	return Budget{Eps: float64(k) * b.Eps, Delta: float64(k) * b.Delta}
}

// NodeGuarantee returns the k-edge guarantee protecting a node of the
// given degree: toggling all of its incident edges is a degree-sized
// edge-set change.
func NodeGuarantee(b Budget, degree int) Budget {
	if degree < 1 {
		return Budget{}
	}
	return KEdge(b, degree)
}
