package dp

import (
	"math"
	"testing"
	"testing/quick"

	"dpkron/internal/randx"
)

func TestBudgetValidate(t *testing.T) {
	valid := []Budget{{0.1, 0}, {1, 0.01}, {10, 0.5}}
	for _, b := range valid {
		if err := b.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", b, err)
		}
	}
	invalid := []Budget{{0, 0}, {-1, 0}, {1, -0.1}, {1, 1}, {math.NaN(), 0}, {1, math.NaN()}, {math.Inf(1), 0}}
	for _, b := range invalid {
		if err := b.Validate(); err == nil {
			t.Errorf("%v: expected error", b)
		}
	}
}

func TestCompose(t *testing.T) {
	got := Compose(Budget{0.1, 0.01}, Budget{0.1, 0.01}, Budget{0.3, 0})
	if math.Abs(got.Eps-0.5) > 1e-15 || math.Abs(got.Delta-0.02) > 1e-15 {
		t.Fatalf("Compose = %v", got)
	}
	if z := Compose(); z.Eps != 0 || z.Delta != 0 {
		t.Fatal("empty composition should be zero")
	}
}

func TestLaplaceUnbiased(t *testing.T) {
	rng := randx.New(1)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Laplace(10, 2, 0.5, rng)
	}
	mean := sum / n
	// scale = 4, sd = 4√2 ≈ 5.66, se of mean ≈ 0.018
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Laplace mechanism mean = %v, want ~10", mean)
	}
}

func TestLaplaceScaleMatchesSensitivityOverEps(t *testing.T) {
	rng := randx.New(2)
	const n = 200000
	var sumAbs float64
	for i := 0; i < n; i++ {
		sumAbs += math.Abs(Laplace(0, 3, 1.5, rng))
	}
	// E|Lap(b)| = b = 3/1.5 = 2.
	if got := sumAbs / n; math.Abs(got-2) > 0.03 {
		t.Fatalf("mean |noise| = %v, want 2", got)
	}
}

func TestLaplaceVec(t *testing.T) {
	rng := randx.New(3)
	in := []float64{1, 2, 3}
	out := LaplaceVec(in, 1, 1000, rng) // tiny noise
	if len(out) != 3 {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if math.Abs(out[i]-in[i]) > 0.5 {
			t.Fatalf("out[%d] = %v, want near %v", i, out[i], in[i])
		}
	}
	// Input untouched.
	if in[0] != 1 || in[1] != 2 || in[2] != 3 {
		t.Fatal("input was modified")
	}
}

func TestLaplacePanics(t *testing.T) {
	rng := randx.New(4)
	for _, f := range []func(){
		func() { Laplace(0, -1, 1, rng) },
		func() { Laplace(0, 1, 0, rng) },
		func() { LaplaceVec(nil, 1, -2, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickComposeAdds(t *testing.T) {
	f := func(e1, e2, d1, d2 uint16) bool {
		a := Budget{float64(e1) / 1000, float64(d1) / 200000}
		b := Budget{float64(e2) / 1000, float64(d2) / 200000}
		got := Compose(a, b)
		return math.Abs(got.Eps-(a.Eps+b.Eps)) < 1e-12 &&
			math.Abs(got.Delta-(a.Delta+b.Delta)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The defining property of the Laplace mechanism: for outputs o and
// neighbouring values x, x' with |x - x'| <= sensitivity, the density
// ratio is bounded by exp(ε). Verified empirically via histogram ratio.
func TestLaplaceDensityRatio(t *testing.T) {
	rng := randx.New(9)
	const n = 400000
	eps := 0.5
	sens := 1.0
	// Values from two neighbouring databases.
	histA := map[int]int{}
	histB := map[int]int{}
	bucket := func(x float64) int { return int(math.Floor(x)) }
	for i := 0; i < n; i++ {
		histA[bucket(Laplace(0, sens, eps, rng))]++
		histB[bucket(Laplace(1, sens, eps, rng))]++
	}
	bound := math.Exp(eps) * 1.25 // slack for sampling error
	for b, ca := range histA {
		cb := histB[b]
		if ca < 500 || cb < 500 {
			continue // skip noisy tails
		}
		ratio := float64(ca) / float64(cb)
		if ratio > bound || 1/ratio > bound {
			t.Fatalf("bucket %d: ratio %v exceeds e^eps bound %v", b, ratio, bound)
		}
	}
}
