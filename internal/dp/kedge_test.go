package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKEdge(t *testing.T) {
	b := Budget{Eps: 0.2, Delta: 0.01}
	got := KEdge(b, 5)
	if math.Abs(got.Eps-1.0) > 1e-15 || math.Abs(got.Delta-0.05) > 1e-15 {
		t.Fatalf("KEdge = %v", got)
	}
	if KEdge(b, 1) != b {
		t.Fatal("KEdge(b, 1) must be identity")
	}
}

func TestKEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	KEdge(Budget{Eps: 1}, 0)
}

func TestNodeGuarantee(t *testing.T) {
	b := Budget{Eps: 0.1, Delta: 0.001}
	got := NodeGuarantee(b, 10)
	if math.Abs(got.Eps-1.0) > 1e-12 || math.Abs(got.Delta-0.01) > 1e-12 {
		t.Fatalf("NodeGuarantee = %v", got)
	}
	if z := NodeGuarantee(b, 0); z.Eps != 0 || z.Delta != 0 {
		t.Fatal("isolated node needs no budget")
	}
}

func TestQuickKEdgeLinear(t *testing.T) {
	f := func(e uint16, k8 uint8) bool {
		k := 1 + int(k8%20)
		b := Budget{Eps: float64(e) / 1000}
		got := KEdge(b, k)
		return math.Abs(got.Eps-float64(k)*b.Eps) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
