// Package accountant turns every noise draw in the module into an
// auditable, charged transaction. The paper's guarantee is per-release:
// one run of Algorithm 1 spends (ε, δ) once, composed sequentially
// across its degree-sequence and triangle-count queries (Theorem 4.9).
// A service fielding many fits against the same graph has no guarantee
// at all unless something tracks cumulative spend — that something is
// this package.
//
// The pieces:
//
//   - A Mechanism describes one calibrated noise primitive (Laplace,
//     vector Laplace, smooth-sensitivity Laplace or Cauchy) and can
//     state its privacy price before it runs.
//   - An Accountant records Mechanism applications as Charges, composes
//     them under a pluggable Policy (sequential or advanced
//     composition), and can refuse charges beyond a configured limit.
//   - A Ledger (ledger.go) persists per-dataset budgets across
//     processes and refuses spends once a dataset's budget is
//     exhausted.
//
// Charging is pure bookkeeping layered over the existing seeded randx
// streams: a mechanism's Apply draws exactly the noise the direct
// dp.Laplace / dp.LaplaceVec calls drew before this package existed, so
// fixed-seed outputs are bit-identical whether or not an accountant is
// attached (pinned by the fingerprint tests at the repo root).
package accountant

import (
	"fmt"
	"sync"
	"time"

	"dpkron/internal/dp"
	"dpkron/internal/randx"
)

// Charge is one recorded mechanism invocation: which query was
// answered, by which mechanism, at what calibration, for what price.
// Charges are safe to release: data-dependent calibration quantities
// (the realized smooth sensitivity, the noise scale derived from it)
// are deliberately absent — only public parameters appear.
type Charge struct {
	// Query names the released quantity ("algorithm1/degree-sequence").
	Query string `json:"query"`
	// Mechanism is the noise primitive applied ("laplace",
	// "laplace-vec", "smooth-laplace", "smooth-cauchy").
	Mechanism string `json:"mechanism"`
	// Sensitivity is the global L1 sensitivity the noise was calibrated
	// to. Zero for smooth-sensitivity mechanisms, whose calibration is
	// data-dependent and therefore not released; Beta carries their
	// public smoothing parameter instead.
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// Beta is the smoothing parameter β of a smooth-sensitivity
	// mechanism (public: derived from ε and δ alone).
	Beta float64 `json:"beta,omitempty"`
	// Eps and Delta are the (ε, δ) this application spent.
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta,omitempty"`
}

// Budget returns the (ε, δ) price of the charge.
func (c Charge) Budget() dp.Budget { return dp.Budget{Eps: c.Eps, Delta: c.Delta} }

// Mechanism is a calibrated noise primitive that can state its privacy
// price before it runs. Concrete mechanisms additionally provide an
// Apply method drawing the actual noise; the split lets an Accountant
// (or Ledger) refuse the charge before any noise is consumed from the
// random stream.
type Mechanism interface {
	// Charge is the receipt entry one application records for query.
	Charge(query string) Charge
}

// Laplace is the scalar Laplace mechanism: value + Lap(Sens/Eps),
// (Eps, 0)-DP when Sens is the query's global L1 sensitivity
// (Theorem 4.5 of the paper).
type Laplace struct {
	Sens, Eps float64
}

// Charge implements Mechanism.
func (m Laplace) Charge(query string) Charge {
	return Charge{Query: query, Mechanism: "laplace", Sensitivity: m.Sens, Eps: m.Eps}
}

// Apply perturbs value, drawing one Laplace variate from rng. The
// draw is identical to dp.Laplace with the same parameters.
func (m Laplace) Apply(value float64, rng *randx.Rand) float64 {
	return dp.Laplace(value, m.Sens, m.Eps, rng)
}

// LaplaceVec is the vector Laplace mechanism: i.i.d. Lap(Sens/Eps)
// noise on every coordinate, (Eps, 0)-DP when Sens is the L1 global
// sensitivity of the whole vector.
type LaplaceVec struct {
	Sens, Eps float64
}

// Charge implements Mechanism.
func (m LaplaceVec) Charge(query string) Charge {
	return Charge{Query: query, Mechanism: "laplace-vec", Sensitivity: m.Sens, Eps: m.Eps}
}

// Apply perturbs values (the input is not modified), drawing len(values)
// Laplace variates from rng, identically to dp.LaplaceVec.
func (m LaplaceVec) Apply(values []float64, rng *randx.Rand) []float64 {
	return dp.LaplaceVec(values, m.Sens, m.Eps, rng)
}

// SmoothLaplace is the Nissim–Raskhodnikova–Smith smooth-sensitivity
// Laplace mechanism: value + 2·SmoothSens/Eps · Lap(1), (Eps, Delta)-DP
// when SmoothSens is the β-smooth sensitivity at β = Beta =
// Eps/(2·ln(2/Delta)) (Theorem 4.8 of the paper). SmoothSens is
// data-dependent and never appears in the charge; Beta does.
type SmoothLaplace struct {
	SmoothSens, Beta, Eps, Delta float64
}

// Charge implements Mechanism.
func (m SmoothLaplace) Charge(query string) Charge {
	return Charge{Query: query, Mechanism: "smooth-laplace", Beta: m.Beta, Eps: m.Eps, Delta: m.Delta}
}

// Scale is the Laplace scale applied: 2·SmoothSens/Eps. Sensitive
// (depends on the graph through SmoothSens); not for release.
func (m SmoothLaplace) Scale() float64 { return 2 * m.SmoothSens / m.Eps }

// Apply perturbs value, drawing one Laplace variate from rng.
func (m SmoothLaplace) Apply(value float64, rng *randx.Rand) float64 {
	return value + rng.Laplace(m.Scale())
}

// SmoothCauchy is the pure-ε smooth-sensitivity mechanism: standard
// Cauchy noise scaled by 6·SmoothSens/Eps is (Eps, 0)-DP when
// SmoothSens is the β-smooth sensitivity at β = Beta = Eps/6 (the
// Cauchy density ∝ 1/(1+z²) is (ε/6, ε/6)-admissible in the sense of
// Nissim et al.). Heavier-tailed than SmoothLaplace, but the guarantee
// needs no δ.
type SmoothCauchy struct {
	SmoothSens, Beta, Eps float64
}

// Charge implements Mechanism.
func (m SmoothCauchy) Charge(query string) Charge {
	return Charge{Query: query, Mechanism: "smooth-cauchy", Beta: m.Beta, Eps: m.Eps}
}

// Scale is the Cauchy scale applied: 6·SmoothSens/Eps. Sensitive; not
// for release.
func (m SmoothCauchy) Scale() float64 { return 6 * m.SmoothSens / m.Eps }

// Apply perturbs value, drawing one Cauchy variate from rng.
func (m SmoothCauchy) Apply(value float64, rng *randx.Rand) float64 {
	return value + rng.Cauchy(m.Scale())
}

// Receipt is the machine-readable record of a sequence of charges: the
// itemized list plus the composed total under the stated policy. It is
// attached to every estimation result and appended to ledgers.
type Receipt struct {
	Policy  string    `json:"policy"`
	Total   dp.Budget `json:"total"`
	Charges []Charge  `json:"charges,omitempty"`
	// Token, when set, makes the ledger debit idempotent: a second
	// SpendToken with the same token on the same dataset is a no-op.
	// The server uses the job id, so a crash between the debit and the
	// journal record cannot double-charge on replay. Receipts attached
	// to estimation results carry no token.
	Token string `json:"token,omitempty"`
	// Time, when set, records when the ledger accepted this spend. The
	// Ledger stamps it at debit time; it feeds the chronological audit
	// report (`dpkron audit`) and never participates in release keying
	// (release.KeyFor reads only the charge parameters and policy).
	Time *time.Time `json:"time,omitempty"`
}

// Accountant records mechanism charges, composes them under a Policy,
// and optionally refuses charges beyond a limit. All methods are safe
// for concurrent use, and all are no-ops on a nil *Accountant (nil
// records nothing and allows everything), so plumbing an optional
// accountant through call sites needs no branching.
type Accountant struct {
	mu       sync.Mutex
	policy   Policy
	limit    *dp.Budget
	observer Observer
	charges  []Charge
}

// Observer receives every Charge decision an accountant makes: the
// attempted charge, the budget remaining under the limit after the
// decision (post-charge on success, unchanged on refusal; zero when
// no limit is set), and the refusal error (nil on success). The
// server uses this to record each debit/refusal on the job's trace as
// a privacy-audit event. Observers run outside the accountant's lock,
// after the decision is final, so they may call back into the
// accountant; they must not themselves charge.
type Observer func(c Charge, remaining dp.Budget, err error)

// New returns an Accountant composing under policy (nil selects
// Sequential) with no spending limit.
func New(policy Policy) *Accountant {
	if policy == nil {
		policy = Sequential{}
	}
	return &Accountant{policy: policy}
}

// WithLimit sets a hard budget and returns the accountant: a Charge
// whose composed total would exceed it is refused with an
// *ExhaustedError. Call before the first charge.
func (a *Accountant) WithLimit(b dp.Budget) *Accountant {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.limit = &b
	return a
}

// WithObserver sets the charge observer and returns the accountant.
// Call before the first charge, like WithLimit.
func (a *Accountant) WithObserver(fn Observer) *Accountant {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observer = fn
	return a
}

// Charge records one application of mechanism m against query. When a
// limit is set and the new composed total would exceed it, the charge
// is refused — nothing is recorded and the caller must not run the
// mechanism (mechanisms separate Charge from Apply precisely so the
// refusal happens before noise is drawn).
func (a *Accountant) Charge(query string, m Mechanism) error {
	if a == nil {
		return nil
	}
	c := m.Charge(query)
	if err := c.Budget().Validate(); err != nil {
		return fmt.Errorf("accountant: invalid charge for %q: %w", query, err)
	}
	rem, observer, err := a.charge(c)
	if observer != nil {
		observer(c, rem, err)
	}
	return err
}

// charge is the locked decision core of Charge; it returns the
// remaining budget after the decision and the observer to notify.
func (a *Accountant) charge(c Charge) (dp.Budget, Observer, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit != nil {
		total := a.policyLocked().Compose(append(a.charges, c))
		if total.Eps > a.limit.Eps+budgetSlack || total.Delta > a.limit.Delta+budgetSlack {
			spent := a.policyLocked().Compose(a.charges)
			return remaining(*a.limit, spent), a.observer, &ExhaustedError{
				Query:     c.Query,
				Requested: c.Budget(),
				Spent:     spent,
				Limit:     *a.limit,
			}
		}
	}
	a.charges = append(a.charges, c)
	var rem dp.Budget
	if a.limit != nil {
		rem = remaining(*a.limit, a.policyLocked().Compose(a.charges))
	}
	return rem, a.observer, nil
}

// budgetSlack absorbs float rounding when comparing composed spends to
// budgets (0.1 summed ten times overshoots 1.0 by ~1e-16); budgets are
// O(1) quantities, so an absolute tolerance is appropriate.
const budgetSlack = 1e-9

func (a *Accountant) policyLocked() Policy {
	if a.policy == nil {
		return Sequential{}
	}
	return a.policy
}

// Len returns the number of recorded charges. Use with ReceiptSince to
// extract the receipt of one release when an accountant serves several.
func (a *Accountant) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.charges)
}

// Total returns the composed budget of everything charged so far.
func (a *Accountant) Total() dp.Budget {
	if a == nil {
		return dp.Budget{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.policyLocked().Compose(a.charges)
}

// Remaining returns the budget left under the limit (zero-limit
// semantics when no limit is set: ok reports whether a limit exists).
func (a *Accountant) Remaining() (b dp.Budget, ok bool) {
	if a == nil {
		return dp.Budget{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit == nil {
		return dp.Budget{}, false
	}
	spent := a.policyLocked().Compose(a.charges)
	return remaining(*a.limit, spent), true
}

// Charges returns a copy of the recorded charges in order.
func (a *Accountant) Charges() []Charge {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Charge(nil), a.charges...)
}

// Receipt returns the itemized receipt of everything charged so far.
func (a *Accountant) Receipt() Receipt { return a.ReceiptSince(0) }

// ReceiptSince returns the receipt covering the charges recorded at
// index from onward (from a prior Len call): the per-release receipt
// when one accountant serves several *sequential* releases. The
// composed total covers only those charges. Index ranges are
// meaningless under concurrent charging — concurrent releases should
// each use their own accountant (with a shared Ledger for the
// cumulative budget).
func (a *Accountant) ReceiptSince(from int) Receipt {
	if a == nil {
		return Receipt{Policy: Sequential{}.Name()}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(a.charges) {
		from = len(a.charges)
	}
	part := append([]Charge(nil), a.charges[from:]...)
	return Receipt{
		Policy:  a.policyLocked().Name(),
		Total:   a.policyLocked().Compose(part),
		Charges: part,
	}
}

// remaining subtracts spent from budget, clamping at zero.
func remaining(budget, spent dp.Budget) dp.Budget {
	r := dp.Budget{Eps: budget.Eps - spent.Eps, Delta: budget.Delta - spent.Delta}
	if r.Eps < 0 {
		r.Eps = 0
	}
	if r.Delta < 0 {
		r.Delta = 0
	}
	return r
}

// ExhaustedError reports a refused charge or spend: the requested
// budget does not fit in what remains. It unwraps to
// ErrBudgetExhausted for errors.Is dispatch.
type ExhaustedError struct {
	// Dataset is set by Ledger refusals; empty for Accountant limits.
	Dataset string
	// Query names the refused charge (empty for whole-receipt spends).
	Query string
	// Requested is the budget the refused charge or receipt asked for.
	Requested dp.Budget
	// Spent and Limit describe the ledger/accountant state at refusal.
	Spent, Limit dp.Budget
}

// Remaining returns the budget still available at the time of refusal.
func (e *ExhaustedError) Remaining() dp.Budget { return remaining(e.Limit, e.Spent) }

func (e *ExhaustedError) Error() string {
	where := "accountant limit"
	if e.Dataset != "" {
		where = "dataset " + e.Dataset
	}
	return fmt.Sprintf("privacy budget exhausted for %s: requested %s, remaining %s of %s",
		where, e.Requested, e.Remaining(), e.Limit)
}

// Is makes errors.Is(err, ErrBudgetExhausted) match.
func (e *ExhaustedError) Is(target error) bool { return target == ErrBudgetExhausted }

// ErrBudgetExhausted is the sentinel every refused charge or spend
// matches via errors.Is.
var ErrBudgetExhausted = errBudgetExhausted{}

type errBudgetExhausted struct{}

func (errBudgetExhausted) Error() string { return "accountant: privacy budget exhausted" }
