package accountant

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"dpkron/internal/dp"
	"dpkron/internal/faultfs"
	"dpkron/internal/fslock"
	"dpkron/internal/graph"
)

// DatasetID returns a stable content-addressed identifier for g:
// "ds-" plus the first 16 hex digits of the SHA-256 of the node count
// and canonical (sorted-CSR) edge list. Byte-identical graphs map to
// the same id in every process, so budget spent on a dataset accrues
// across fits, restarts, and machines sharing a ledger.
func DatasetID(g *graph.Graph) string {
	h := sha256.New()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(g.NumNodes()))
	h.Write(buf[:8])
	g.ForEachEdge(func(u, v int) {
		binary.LittleEndian.PutUint64(buf[:8], uint64(u))
		binary.LittleEndian.PutUint64(buf[8:], uint64(v))
		h.Write(buf[:])
	})
	return fmt.Sprintf("ds-%x", h.Sum(nil)[:8])
}

// Account is one dataset's ledger entry: the configured budget, the
// composed spend so far, and the receipts that produced it.
type Account struct {
	Budget   dp.Budget `json:"budget"`
	Spent    dp.Budget `json:"spent"`
	Receipts []Receipt `json:"receipts,omitempty"`
}

// Remaining returns the budget left on the account, clamped at zero.
func (a Account) Remaining() dp.Budget { return remaining(a.Budget, a.Spent) }

// ledgerFile is the on-disk JSON shape.
type ledgerFile struct {
	Version  int                 `json:"version"`
	Datasets map[string]*Account `json:"datasets"`
}

const ledgerVersion = 1

// Ledger is a persistent per-dataset privacy-budget store. Every
// mutation is written to <path>.tmp and atomically renamed over the
// ledger file before the mutating call returns, so a crash mid-write
// leaves either the old state or the new — never a torn file.
//
// Enforcement is default-deny: a dataset with no configured budget
// refuses every spend (set one with SetBudget / `dpkron budget set`).
// Spends are conservative — once debited, a cancelled or failed run
// does not refund, because its mechanisms may already have drawn noise.
//
// A Ledger is safe across goroutines and across processes: every
// operation serializes through an in-process mutex plus an advisory
// file lock on <path>.lock (where the platform provides one; see
// internal/fslock) and re-reads the file before acting, so a budget set by
// `dpkron budget set` is visible to an already-running `dpkron serve`,
// and concurrent fits from separate processes can never jointly
// overdraw.
type Ledger struct {
	path string
	fs   faultfs.FS
	// met carries the telemetry collectors installed by Instrument;
	// the zero value no-ops.
	met  ledgerMetrics
	mu   sync.Mutex
	data ledgerFile
}

// Open validates that the ledger at path is readable (creating nothing
// on disk until the first mutation) and returns a handle. A stale
// <path>.tmp from a crashed writer is ignored and overwritten by the
// next successful write; a corrupt ledger file is a hard error, never
// silent data loss.
func Open(path string) (*Ledger, error) { return OpenFS(faultfs.OS, path) }

// OpenFS is Open against an explicit filesystem (fault-injection
// tests).
func OpenFS(fsys faultfs.FS, path string) (*Ledger, error) {
	l := &Ledger{path: path, fs: fsys}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.reloadLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Path returns the ledger file location.
func (l *Ledger) Path() string { return l.path }

// reloadLocked replaces the in-memory state with the current on-disk
// state (empty when the file does not exist). Callers hold l.mu.
func (l *Ledger) reloadLocked() error {
	l.data = ledgerFile{Version: ledgerVersion, Datasets: map[string]*Account{}}
	b, err := l.fs.ReadFile(l.path)
	switch {
	case os.IsNotExist(err):
		return nil
	case err != nil:
		return fmt.Errorf("accountant: opening ledger: %w", err)
	}
	if err := json.Unmarshal(b, &l.data); err != nil {
		return fmt.Errorf("accountant: ledger %s is corrupt: %w", l.path, err)
	}
	if l.data.Datasets == nil {
		l.data.Datasets = map[string]*Account{}
	}
	return nil
}

// withLocked runs fn with the in-process mutex held, the cross-process
// file lock acquired, and the state freshly reloaded from disk — the
// read-modify-write bracket every public operation uses.
func (l *Ledger) withLocked(fn func() error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	unlock, err := fslock.Lock(l.path + ".lock")
	if err != nil {
		return fmt.Errorf("accountant: locking ledger: %w", err)
	}
	defer unlock()
	if err := l.reloadLocked(); err != nil {
		return err
	}
	return fn()
}

// persistLocked writes the current state via tmp-file + atomic rename.
func (l *Ledger) persistLocked() error {
	b, err := json.MarshalIndent(&l.data, "", "  ")
	if err != nil {
		return err
	}
	tmp := l.path + ".tmp"
	f, err := l.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("accountant: writing ledger: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("accountant: writing ledger: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("accountant: syncing ledger: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("accountant: closing ledger: %w", err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("accountant: committing ledger: %w", err)
	}
	return nil
}

// SetBudget configures (or raises/lowers) the total allowance of a
// dataset, creating its account if needed. Existing spend is kept: a
// budget below the current spend leaves the dataset exhausted.
func (l *Ledger) SetBudget(dataset string, b dp.Budget) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return l.withLocked(func() error {
		acct := l.data.Datasets[dataset]
		if acct == nil {
			acct = &Account{}
			l.data.Datasets[dataset] = acct
		}
		acct.Budget = b
		if err := l.persistLocked(); err != nil {
			return err
		}
		l.met.setRemaining(dataset, acct.Remaining())
		return nil
	})
}

// Reset zeroes a dataset's spend and drops its receipts, keeping the
// configured budget. Only sound when the previously released outputs
// have been destroyed or the dataset's privacy story is otherwise
// restarted — the ledger cannot know; the operator must.
func (l *Ledger) Reset(dataset string) error {
	return l.withLocked(func() error {
		acct := l.data.Datasets[dataset]
		if acct == nil {
			return fmt.Errorf("accountant: unknown dataset %q", dataset)
		}
		acct.Spent = dp.Budget{}
		acct.Receipts = nil
		if err := l.persistLocked(); err != nil {
			return err
		}
		l.met.setRemaining(dataset, acct.Remaining())
		return nil
	})
}

// Account returns a copy of the dataset's entry as currently on disk.
func (l *Ledger) Account(dataset string) (Account, bool) {
	var cp Account
	var ok bool
	_ = l.withLocked(func() error {
		if acct := l.data.Datasets[dataset]; acct != nil {
			cp = *acct
			cp.Receipts = append([]Receipt(nil), acct.Receipts...)
			ok = true
		}
		return nil
	})
	return cp, ok
}

// Datasets returns the known dataset ids, sorted.
func (l *Ledger) Datasets() []string {
	var out []string
	_ = l.withLocked(func() error {
		for id := range l.data.Datasets {
			out = append(out, id)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

// Remaining returns the budget left on a dataset. Unknown datasets
// have zero budget (default-deny) and report zero remaining.
func (l *Ledger) Remaining(dataset string) dp.Budget {
	acct, ok := l.Account(dataset)
	if !ok {
		return dp.Budget{}
	}
	return acct.Remaining()
}

// Spend atomically debits r.Total from the dataset's remaining budget
// and appends the receipt, persisting the new state before returning.
// It refuses with an *ExhaustedError (matching ErrBudgetExhausted)
// when the remaining budget cannot cover the receipt — including for
// datasets with no configured budget, whose allowance is zero. The
// reload-check-debit-persist sequence holds both the in-process and
// the cross-process ledger lock throughout, so concurrent spenders —
// goroutines or separate processes — can never jointly overdraw.
func (l *Ledger) Spend(dataset string, r Receipt) error {
	r.Token = ""
	return l.spend(dataset, r)
}

// SpendToken is Spend made idempotent under token: the receipt is
// recorded with the token, and a later SpendToken with the same token
// on the same dataset succeeds without debiting again. This resolves
// the two-phase crash window between a ledger debit and the journal
// record acknowledging it — replay always re-issues the spend, and
// exactly one debit lands regardless of where the crash fell. Tokens
// are never garbage-collected from receipts; use job-unique ids.
func (l *Ledger) SpendToken(dataset string, r Receipt, token string) error {
	if token == "" {
		return fmt.Errorf("accountant: SpendToken requires a token")
	}
	r.Token = token
	return l.spend(dataset, r)
}

func (l *Ledger) spend(dataset string, r Receipt) error {
	return l.withLocked(func() error {
		acct := l.data.Datasets[dataset]
		if r.Token != "" && acct != nil {
			for _, prev := range acct.Receipts {
				if prev.Token == r.Token {
					return nil // this exact debit already landed
				}
			}
		}
		var have Account
		if acct != nil {
			have = *acct
		}
		if have.Spent.Eps+r.Total.Eps > have.Budget.Eps+budgetSlack ||
			have.Spent.Delta+r.Total.Delta > have.Budget.Delta+budgetSlack {
			l.met.refusals.With(dataset).Inc()
			return &ExhaustedError{
				Dataset:   dataset,
				Requested: r.Total,
				Spent:     have.Spent,
				Limit:     have.Budget,
			}
		}
		if acct == nil {
			// Unreachable while default-deny holds (zero budget refuses
			// all positive spends), but keeps a zero-cost receipt
			// well-defined.
			acct = &Account{}
			l.data.Datasets[dataset] = acct
		}
		// Stamp the acceptance instant: receipts in the ledger carry
		// when each debit landed, giving `dpkron audit` a chronology
		// even for spends no journal witnessed. Times never feed
		// release keys, so fixed-seed fingerprints are unaffected.
		now := l.fs.Now()
		r.Time = &now
		acct.Spent = dp.Compose(acct.Spent, r.Total)
		acct.Receipts = append(acct.Receipts, r)
		if err := l.persistLocked(); err != nil {
			// Roll back the in-memory debit so memory and disk agree.
			acct.Spent = have.Spent
			acct.Receipts = acct.Receipts[:len(acct.Receipts)-1]
			return err
		}
		l.met.debits.With(dataset).Inc()
		l.met.setRemaining(dataset, acct.Remaining())
		return nil
	})
}
