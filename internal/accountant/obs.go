package accountant

import (
	"dpkron/internal/dp"
	"dpkron/internal/obs"
)

// ledgerMetrics is the ledger's telemetry: debit/refusal counters and
// remaining-budget gauges, all per dataset. The zero value (nil
// collectors) no-ops, so an uninstrumented ledger pays one nil check
// per spend.
type ledgerMetrics struct {
	debits   *obs.CounterVec
	refusals *obs.CounterVec
	remEps   *obs.GaugeVec
	remDelta *obs.GaugeVec
}

// Instrument registers the ledger's metrics on reg and primes the
// remaining-budget gauges from the current on-disk state. Call once,
// before serving traffic; a nil reg leaves the ledger uninstrumented.
// The per-dataset labels are operator-bounded: datasets exist because
// an operator imported them or set budgets on them.
func (l *Ledger) Instrument(reg *obs.Registry) {
	l.met = ledgerMetrics{
		debits:   reg.CounterVec("dpkron_ledger_debits_total", "Privacy-budget debits that landed, by dataset.", "dataset"),
		refusals: reg.CounterVec("dpkron_ledger_refusals_total", "Spends refused for insufficient remaining budget, by dataset.", "dataset"),
		remEps:   reg.GaugeVec("dpkron_ledger_remaining_epsilon", "Remaining privacy budget (epsilon), by dataset.", "dataset"),
		remDelta: reg.GaugeVec("dpkron_ledger_remaining_delta", "Remaining privacy budget (delta), by dataset.", "dataset"),
	}
	_ = l.withLocked(func() error {
		for id, acct := range l.data.Datasets {
			l.met.setRemaining(id, acct.Remaining())
		}
		return nil
	})
}

// setRemaining publishes a dataset's remaining budget — the
// operational readout of the accountant's composition state.
func (m ledgerMetrics) setRemaining(dataset string, rem dp.Budget) {
	m.remEps.With(dataset).Set(rem.Eps)
	m.remDelta.With(dataset).Set(rem.Delta)
}
