package accountant

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dpkron/internal/dp"
	"dpkron/internal/randx"
)

func TestSequentialChargesSumExactly(t *testing.T) {
	acc := New(nil)
	if err := acc.Charge("q1", Laplace{Sens: 2, Eps: 0.125}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Charge("q2", LaplaceVec{Sens: 2, Eps: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := acc.Charge("q3", SmoothLaplace{SmoothSens: 3, Beta: 0.01, Eps: 0.5, Delta: 0.0625}); err != nil {
		t.Fatal(err)
	}
	// The charge values are dyadic rationals, so the sums are exact in
	// floating point: "sequential charges sum exactly" is ==, not ≈.
	if got := acc.Total(); got.Eps != 0.875 || got.Delta != 0.0625 {
		t.Fatalf("Total = %v, want (0.875, 0.0625)", got)
	}
	ch := acc.Charges()
	if len(ch) != 3 || ch[0].Query != "q1" || ch[1].Mechanism != "laplace-vec" {
		t.Fatalf("Charges = %+v", ch)
	}
	// Mutating the copy must not affect the accountant.
	ch[0].Query = "x"
	if acc.Charges()[0].Query != "q1" {
		t.Fatal("Charges returned aliased storage")
	}
	rec := acc.Receipt()
	if rec.Policy != "sequential" || rec.Total != acc.Total() || len(rec.Charges) != 3 {
		t.Fatalf("Receipt = %+v", rec)
	}
	// Per-release slicing.
	part := acc.ReceiptSince(1)
	if len(part.Charges) != 2 || part.Total.Eps != 0.75 {
		t.Fatalf("ReceiptSince(1) = %+v", part)
	}
}

// TestQuickSequentialSums: for arbitrary charge sets the sequential
// total equals the running float sum of the parts (exact association
// order, no reordering).
func TestQuickSequentialSums(t *testing.T) {
	f := func(epsRaw []uint16, deltaRaw []uint16) bool {
		n := len(epsRaw)
		if len(deltaRaw) < n {
			n = len(deltaRaw)
		}
		acc := New(nil)
		var wantEps, wantDelta float64
		for i := 0; i < n; i++ {
			eps := float64(epsRaw[i]+1) / 1000
			delta := float64(deltaRaw[i]) / 200000
			if err := acc.Charge("q", SmoothLaplace{Beta: 1, Eps: eps, Delta: delta}); err != nil {
				return false
			}
			wantEps += eps
			wantDelta += delta
		}
		got := acc.Total()
		return got.Eps == wantEps && got.Delta == wantDelta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAdvancedNeverLooserThanSequential: for any charge set and any
// slack, the advanced policy's ε never exceeds sequential's, and its δ
// exceeds sequential's by at most the slack (and only when the
// advanced bound was the one used).
func TestAdvancedNeverLooserThanSequential(t *testing.T) {
	f := func(epsRaw []uint16, slackRaw uint16) bool {
		charges := make([]Charge, len(epsRaw))
		for i, e := range epsRaw {
			charges[i] = Charge{Query: "q", Eps: float64(e%500+1) / 10000, Delta: 1e-7}
		}
		slack := float64(slackRaw+1) / 1e7
		seq := Sequential{}.Compose(charges)
		adv := Advanced{DeltaSlack: slack}.Compose(charges)
		if adv.Eps > seq.Eps {
			return false
		}
		return adv.Delta <= seq.Delta+slack+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And for many small charges it is strictly tighter: 100 charges of
	// ε = 0.01 compose to 1.0 sequentially but ~0.6 advanced at δ' = 1e-6.
	var many []Charge
	for i := 0; i < 100; i++ {
		many = append(many, Charge{Eps: 0.01})
	}
	adv := Advanced{DeltaSlack: 1e-6}.Compose(many)
	if adv.Eps >= 1.0 {
		t.Fatalf("advanced composition not engaged: eps = %v", adv.Eps)
	}
	if adv.Delta != 1e-6 {
		t.Fatalf("advanced delta = %v, want the slack 1e-6", adv.Delta)
	}
}

func TestAccountantLimitRefusal(t *testing.T) {
	acc := New(nil).WithLimit(dp.Budget{Eps: 0.5, Delta: 0.01})
	if err := acc.Charge("a", Laplace{Sens: 1, Eps: 0.3}); err != nil {
		t.Fatal(err)
	}
	err := acc.Charge("b", Laplace{Sens: 1, Eps: 0.3})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-limit charge error = %v, want ErrBudgetExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %T is not *ExhaustedError", err)
	}
	if got := ex.Remaining(); math.Abs(got.Eps-0.2) > 1e-12 {
		t.Fatalf("Remaining = %v, want eps 0.2", got)
	}
	// The refused charge was not recorded; a fitting one still lands.
	if acc.Len() != 1 {
		t.Fatalf("refused charge was recorded: %d charges", acc.Len())
	}
	if err := acc.Charge("c", Laplace{Sens: 1, Eps: 0.2}); err != nil {
		t.Fatalf("exact-fit charge refused: %v", err)
	}
	// Budget slack: ten 0.1-charges against a 1.0 limit must all fit
	// despite float accumulation error.
	acc = New(nil).WithLimit(dp.Budget{Eps: 1})
	for i := 0; i < 10; i++ {
		if err := acc.Charge("q", Laplace{Sens: 1, Eps: 0.1}); err != nil {
			t.Fatalf("charge %d refused under float rounding: %v", i, err)
		}
	}
	if err := acc.Charge("q", Laplace{Sens: 1, Eps: 0.1}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("eleventh charge error = %v, want refusal", err)
	}
}

func TestAccountantNilSafe(t *testing.T) {
	var acc *Accountant
	if err := acc.Charge("q", Laplace{Sens: 1, Eps: 0.5}); err != nil {
		t.Fatalf("nil accountant refused a charge: %v", err)
	}
	if acc.Len() != 0 || acc.Total() != (dp.Budget{}) || acc.Charges() != nil {
		t.Fatal("nil accountant recorded state")
	}
	if rec := acc.Receipt(); rec.Policy != "sequential" || len(rec.Charges) != 0 {
		t.Fatalf("nil Receipt = %+v", rec)
	}
}

func TestAccountantRejectsInvalidCharge(t *testing.T) {
	acc := New(nil)
	if err := acc.Charge("q", Laplace{Sens: 1, Eps: 0}); err == nil {
		t.Fatal("zero-eps charge accepted")
	}
	if err := acc.Charge("q", SmoothLaplace{Beta: 1, Eps: 0.1, Delta: 1.5}); err == nil {
		t.Fatal("delta >= 1 charge accepted")
	}
	if acc.Len() != 0 {
		t.Fatal("invalid charges recorded")
	}
}

// TestMechanismApplyMatchesDirectDraws: drawing through a mechanism is
// bit-identical to the direct dp calls for the same rng state — the
// accounting layer must never perturb the noise stream.
func TestMechanismApplyMatchesDirectDraws(t *testing.T) {
	direct := randx.New(11)
	metered := randx.New(11)

	if got, want := (Laplace{Sens: 2, Eps: 0.3}).Apply(5, metered), dp.Laplace(5, 2, 0.3, direct); got != want {
		t.Fatalf("Laplace: %v != %v", got, want)
	}
	vals := []float64{1, 2, 3, 4}
	gotV := LaplaceVec{Sens: 2, Eps: 0.3}.Apply(vals, metered)
	wantV := dp.LaplaceVec(vals, 2, 0.3, direct)
	for i := range gotV {
		if gotV[i] != wantV[i] {
			t.Fatalf("LaplaceVec[%d]: %v != %v", i, gotV[i], wantV[i])
		}
	}
	m := SmoothLaplace{SmoothSens: 3, Beta: 0.05, Eps: 0.4, Delta: 0.01}
	if got, want := m.Apply(7, metered), 7+direct.Laplace(2*3/0.4); got != want {
		t.Fatalf("SmoothLaplace: %v != %v", got, want)
	}
	c := SmoothCauchy{SmoothSens: 3, Beta: 0.05, Eps: 0.4}
	if got, want := c.Apply(7, metered), 7+direct.Cauchy(6*3/0.4); got != want {
		t.Fatalf("SmoothCauchy: %v != %v", got, want)
	}
}

// TestChargesNeverLeakCalibration: smooth-sensitivity charges must not
// carry the data-dependent smooth sensitivity — only public parameters.
func TestChargesNeverLeakCalibration(t *testing.T) {
	c := SmoothLaplace{SmoothSens: 123.456, Beta: 0.05, Eps: 0.4, Delta: 0.01}.Charge("q")
	if c.Sensitivity != 0 {
		t.Fatalf("smooth charge leaked sensitivity %v", c.Sensitivity)
	}
	if c.Beta != 0.05 || c.Eps != 0.4 || c.Delta != 0.01 {
		t.Fatalf("smooth charge lost public params: %+v", c)
	}
	p := SmoothCauchy{SmoothSens: 99, Beta: 0.1, Eps: 0.6}.Charge("q")
	if p.Sensitivity != 0 || p.Delta != 0 {
		t.Fatalf("pure smooth charge wrong: %+v", p)
	}
}
