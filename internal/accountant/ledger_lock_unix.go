//go:build unix

package accountant

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path (creating it if
// needed), blocking until the lock is granted, and returns the release
// function. Advisory locks cooperate only with other flock users —
// which every Ledger operation is — giving cross-process mutual
// exclusion for the read-modify-write bracket.
func lockFile(path string) (unlock func(), err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock.
		f.Close()
	}, nil
}
