package accountant

import (
	"math"

	"dpkron/internal/dp"
)

// Policy composes a sequence of charges into one (ε, δ) guarantee.
// Any valid composition theorem may be plugged in; the accountant only
// requires that Compose be monotone in its input (more charges never
// shrink the total).
type Policy interface {
	// Name identifies the policy in receipts ("sequential", "advanced").
	Name() string
	// Compose returns the composed guarantee of the charges.
	Compose(charges []Charge) dp.Budget
}

// Sequential is basic composition: ε and δ add across charges
// (Theorem 4.9 of the paper; dp.Compose). Tight for the pure-ε regime
// and for the small charge counts of a single Algorithm 1 run.
type Sequential struct{}

// Name implements Policy.
func (Sequential) Name() string { return "sequential" }

// Compose implements Policy.
func (Sequential) Compose(charges []Charge) dp.Budget {
	parts := make([]dp.Budget, len(charges))
	for i, c := range charges {
		parts[i] = c.Budget()
	}
	return dp.Compose(parts...)
}

// Advanced is the heterogeneous advanced-composition bound
// (Dwork–Rothblum–Vadhan; Kairouz–Oh–Viswanath give the heterogeneous
// form): at slack δ' > 0, k charges (ε_i, δ_i) compose to
//
//	ε* = √(2·ln(1/δ')·Σ ε_i²) + Σ ε_i·(e^{ε_i} − 1),   δ* = δ' + Σ δ_i.
//
// For many small-ε charges ε* grows like √k instead of k. Compose
// returns the tighter of this bound and sequential composition —
// sequential wins for few or large charges — so Advanced is never
// looser than Sequential (and pays the δ' slack only when the advanced
// bound is the one used).
type Advanced struct {
	// DeltaSlack is δ'; <= 0 selects 1e-9.
	DeltaSlack float64
}

// Name implements Policy.
func (Advanced) Name() string { return "advanced" }

// Compose implements Policy.
func (p Advanced) Compose(charges []Charge) dp.Budget {
	seq := Sequential{}.Compose(charges)
	if len(charges) == 0 {
		return seq
	}
	slack := p.DeltaSlack
	if slack <= 0 {
		slack = 1e-9
	}
	var sumSq, sumLin float64
	for _, c := range charges {
		sumSq += c.Eps * c.Eps
		sumLin += c.Eps * math.Expm1(c.Eps)
	}
	adv := math.Sqrt(2*math.Log(1/slack)*sumSq) + sumLin
	if adv >= seq.Eps {
		return seq
	}
	return dp.Budget{Eps: adv, Delta: seq.Delta + slack}
}
