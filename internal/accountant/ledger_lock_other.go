//go:build !unix

package accountant

// lockFile is a no-op on platforms without flock: the Ledger still
// serializes all in-process access through its mutex and re-reads the
// file before every operation, but cross-process mutual exclusion is
// not guaranteed — run a single ledger-owning process there.
func lockFile(path string) (unlock func(), err error) {
	return func() {}, nil
}
