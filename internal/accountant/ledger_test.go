package accountant

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dpkron/internal/dp"
	"dpkron/internal/faultfs"
	"dpkron/internal/graph"
)

func testReceipt(eps, delta float64) Receipt {
	c := Charge{Query: "q", Mechanism: "laplace", Sensitivity: 1, Eps: eps, Delta: delta}
	return Receipt{Policy: "sequential", Total: c.Budget(), Charges: []Charge{c}}
}

func TestLedgerLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	led, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	// Default-deny: spending on an unconfigured dataset is refused.
	err = led.Spend("ds-a", testReceipt(0.1, 0))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("unconfigured spend error = %v, want refusal", err)
	}

	if err := led.SetBudget("ds-a", dp.Budget{Eps: 0.5, Delta: 0.02}); err != nil {
		t.Fatal(err)
	}
	if err := led.Spend("ds-a", testReceipt(0.3, 0.01)); err != nil {
		t.Fatal(err)
	}
	if rem := led.Remaining("ds-a"); math.Abs(rem.Eps-0.2) > 1e-12 || math.Abs(rem.Delta-0.01) > 1e-12 {
		t.Fatalf("Remaining = %v", rem)
	}

	// Overdraw in either coordinate refuses; the error carries state.
	err = led.Spend("ds-a", testReceipt(0.3, 0))
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("overdraw error = %v", err)
	}
	if ex.Dataset != "ds-a" || math.Abs(ex.Remaining().Eps-0.2) > 1e-12 {
		t.Fatalf("refusal state = %+v", ex)
	}
	if err := led.Spend("ds-a", testReceipt(0.1, 0.02)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("delta overdraw error = %v, want refusal", err)
	}

	// Persistence: a fresh Open sees budget, spend, and receipts.
	led2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	acct, ok := led2.Account("ds-a")
	if !ok {
		t.Fatal("dataset lost across reopen")
	}
	if acct.Budget.Eps != 0.5 || math.Abs(acct.Spent.Eps-0.3) > 1e-12 || len(acct.Receipts) != 1 {
		t.Fatalf("reopened account = %+v", acct)
	}
	if acct.Receipts[0].Charges[0].Query != "q" {
		t.Fatalf("receipt content lost: %+v", acct.Receipts[0])
	}

	// Reset zeroes spend but keeps the budget.
	if err := led2.Reset("ds-a"); err != nil {
		t.Fatal(err)
	}
	if rem := led2.Remaining("ds-a"); rem.Eps != 0.5 {
		t.Fatalf("post-reset remaining = %v", rem)
	}
	if err := led2.Reset("ds-missing"); err == nil {
		t.Fatal("reset of unknown dataset succeeded")
	}

	// Datasets are sorted.
	if err := led2.SetBudget("ds-0", dp.Budget{Eps: 1}); err != nil {
		t.Fatal(err)
	}
	ids := led2.Datasets()
	if len(ids) != 2 || ids[0] != "ds-0" || ids[1] != "ds-a" {
		t.Fatalf("Datasets = %v", ids)
	}
}

// TestLedgerCrossHandleVisibility: two handles on one ledger file (the
// `dpkron serve` / `dpkron budget set` split, here in-process) observe
// each other's writes, because every operation re-reads the file under
// the cross-process lock — a budget set after the server opened its
// handle must be honored, and spends through either handle accrue.
func TestLedgerCrossHandleVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	server, err := Open(path) // long-lived handle, opened first
	if err != nil {
		t.Fatal(err)
	}
	admin, err := Open(path) // a later `dpkron budget set` invocation
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.SetBudget("ds-a", dp.Budget{Eps: 1}); err != nil {
		t.Fatal(err)
	}
	// The server handle sees the budget without reopening.
	if err := server.Spend("ds-a", testReceipt(0.5, 0)); err != nil {
		t.Fatalf("server handle missed admin's budget: %v", err)
	}
	// And the admin handle sees the server's spend.
	if rem := admin.Remaining("ds-a"); rem.Eps != 0.5 {
		t.Fatalf("admin handle remaining = %v, want 0.5", rem)
	}
	// Joint overdraw across handles is refused.
	if err := admin.Spend("ds-a", testReceipt(0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := server.Spend("ds-a", testReceipt(0.5, 0)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("cross-handle overdraw error = %v, want refusal", err)
	}
}

// TestLedgerCrashMidWrite: the atomic-rename protocol means a crashed
// writer leaves either the old file or the new one, plus possibly a
// garbage .tmp — which Open must ignore and the next write replace.
func TestLedgerCrashMidWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	led, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.SetBudget("ds-a", dp.Budget{Eps: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a torn, half-written tmp file.
	if err := os.WriteFile(path+".tmp", []byte(`{"version":1,"datasets":{"ds-a"`), 0o644); err != nil {
		t.Fatal(err)
	}
	led2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with stale tmp failed: %v", err)
	}
	if acct, ok := led2.Account("ds-a"); !ok || acct.Budget.Eps != 1 {
		t.Fatalf("state lost to stale tmp: %+v", acct)
	}
	// The next successful write replaces the garbage tmp.
	if err := led2.Spend("ds-a", testReceipt(0.25, 0)); err != nil {
		t.Fatal(err)
	}
	led3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rem := led3.Remaining("ds-a"); rem.Eps != 0.75 {
		t.Fatalf("remaining after recovery = %v", rem)
	}

	// A corrupt main file is a hard error, not silent data loss.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("corrupt ledger opened without error")
	}
}

// TestLedgerConcurrentSpendNeverOversubscribes: N goroutines race to
// spend unit receipts from a budget of K < N; exactly K must succeed.
// Run under -race in CI.
func TestLedgerConcurrentSpendNeverOversubscribes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	led, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const budget, spenders = 5, 20
	if err := led.SetBudget("ds-a", dp.Budget{Eps: budget}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]error, spenders)
	for i := 0; i < spenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = led.Spend("ds-a", testReceipt(1, 0))
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range results {
		switch {
		case err == nil:
			ok++
		case !errors.Is(err, ErrBudgetExhausted):
			t.Fatalf("unexpected spend error: %v", err)
		}
	}
	if ok != budget {
		t.Fatalf("%d spends succeeded, want exactly %d", ok, budget)
	}
	if rem := led.Remaining("ds-a"); math.Abs(rem.Eps) > 1e-9 {
		t.Fatalf("remaining = %v, want 0", rem)
	}
	// Disk agrees with memory.
	led2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if acct, _ := led2.Account("ds-a"); len(acct.Receipts) != budget {
		t.Fatalf("persisted %d receipts, want %d", len(acct.Receipts), budget)
	}
}

func TestDatasetIDStableAndContentAddressed(t *testing.T) {
	g1 := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	g2 := graph.FromEdges(4, [][2]int{{2, 3}, {0, 1}, {1, 2}, {1, 0}}) // same graph, shuffled input
	g3 := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	id1, id2, id3 := DatasetID(g1), DatasetID(g2), DatasetID(g3)
	if id1 != id2 {
		t.Fatalf("same graph, different ids: %s vs %s", id1, id2)
	}
	if id1 == id3 {
		t.Fatalf("different graphs share id %s", id1)
	}
	if len(id1) != len("ds-")+16 {
		t.Fatalf("id %q has unexpected shape", id1)
	}
	// Node count matters even with identical edges.
	g4 := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if DatasetID(g4) == id1 {
		t.Fatal("node count not part of the fingerprint")
	}
}

// TestSpendTokenIdempotent: re-issuing a token-bearing debit charges
// exactly once — the replay path a server restart takes after a crash
// between the ledger debit and its journal acknowledgement.
func TestSpendTokenIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	led, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.SetBudget("ds-a", dp.Budget{Eps: 1, Delta: 0.01}); err != nil {
		t.Fatal(err)
	}
	r := testReceipt(0.4, 0)
	for i := 0; i < 3; i++ {
		if err := led.SpendToken("ds-a", r, "job-1"); err != nil {
			t.Fatalf("SpendToken #%d: %v", i+1, err)
		}
	}
	acct, _ := led.Account("ds-a")
	if math.Abs(acct.Spent.Eps-0.4) > 1e-12 {
		t.Fatalf("three same-token spends debited eps=%v, want 0.4", acct.Spent.Eps)
	}
	if len(acct.Receipts) != 1 {
		t.Fatalf("%d receipts recorded, want 1", len(acct.Receipts))
	}

	// Idempotency survives a process restart (it lives in the file, not
	// in memory) and is per-token: a fresh token debits again.
	led2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := led2.SpendToken("ds-a", r, "job-1"); err != nil {
		t.Fatalf("replayed SpendToken after reopen: %v", err)
	}
	if err := led2.SpendToken("ds-a", r, "job-2"); err != nil {
		t.Fatalf("fresh-token SpendToken: %v", err)
	}
	acct, _ = led2.Account("ds-a")
	if math.Abs(acct.Spent.Eps-0.8) > 1e-12 {
		t.Fatalf("spent eps=%v after one replay + one fresh debit, want 0.8", acct.Spent.Eps)
	}

	// Tokenless Spend never matches a token.
	if err := led2.SpendToken("ds-a", r, ""); err == nil {
		t.Fatal("SpendToken accepted an empty token")
	}
}

// TestLedgerInjectedFaults drives the persist path through every fault
// point — open, torn write, failed fsync, failed rename — and asserts
// the debit never lands half-way: the spend reports the error and both
// the in-memory and on-disk state still show the pre-spend balance.
func TestLedgerInjectedFaults(t *testing.T) {
	faults := []faultfs.Fault{
		{Op: faultfs.OpOpen, Path: "ledger.json.tmp"},
		{Op: faultfs.OpWrite, Path: "ledger.json.tmp", Short: 10},
		{Op: faultfs.OpSync, Path: "ledger.json.tmp"},
		{Op: faultfs.OpRename, Path: "ledger.json.tmp"},
	}
	for _, fault := range faults {
		t.Run(string(fault.Op), func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS)
			path := filepath.Join(t.TempDir(), "ledger.json")
			led, err := OpenFS(inj, path)
			if err != nil {
				t.Fatal(err)
			}
			if err := led.SetBudget("ds-a", dp.Budget{Eps: 1, Delta: 0.01}); err != nil {
				t.Fatal(err)
			}
			inj.Fail(fault)
			if err := led.Spend("ds-a", testReceipt(0.4, 0)); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("spend under %s fault: %v, want ErrInjected", fault.Op, err)
			}
			// The failed debit must not exist, in memory or on disk.
			acct, ok := led.Account("ds-a")
			if !ok || acct.Spent.Eps != 0 || len(acct.Receipts) != 0 {
				t.Fatalf("failed spend left state behind: %+v", acct)
			}
			led2, err := Open(path)
			if err != nil {
				t.Fatalf("reopen after %s fault: %v", fault.Op, err)
			}
			acct, ok = led2.Account("ds-a")
			if !ok || acct.Spent.Eps != 0 || len(acct.Receipts) != 0 {
				t.Fatalf("failed spend reached disk: %+v", acct)
			}
			// And the ledger keeps working once the fault clears.
			if err := led.Spend("ds-a", testReceipt(0.4, 0)); err != nil {
				t.Fatalf("spend after fault cleared: %v", err)
			}
		})
	}
}
