//go:build unix

// Package fslock provides the advisory cross-process file lock every
// on-disk store in the module uses for its read-modify-write brackets:
// the accountant's budget ledgers and the dataset store both lock a
// sidecar file, reload state from disk, mutate, and atomically rename
// the result into place.
package fslock

import (
	"os"
	"syscall"
)

// Lock takes an exclusive advisory flock on path (creating it if
// needed), blocking until the lock is granted, and returns the release
// function. Advisory locks cooperate only with other flock users —
// which every store operation in this module is — giving cross-process
// mutual exclusion for the read-modify-write bracket.
func Lock(path string) (unlock func(), err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock.
		f.Close()
	}, nil
}
