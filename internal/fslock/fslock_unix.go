//go:build unix

// Package fslock provides the advisory cross-process file lock every
// on-disk store in the module uses for its read-modify-write brackets:
// the accountant's budget ledgers, the dataset store, the release
// cache and the job journal all lock a sidecar file, reload state from
// disk, mutate, and atomically rename the result into place.
package fslock

import (
	"errors"
	"os"
	"syscall"
)

// ErrLocked is returned by LockNB when another process already holds
// the lock.
var ErrLocked = errors.New("fslock: held by another process")

// Lock takes an exclusive advisory flock on path (creating it if
// needed), blocking until the lock is granted, and returns the release
// function. Advisory locks cooperate only with other flock users —
// which every store operation in this module is — giving cross-process
// mutual exclusion for the read-modify-write bracket.
//
// Because flock is tied to the open descriptor, a holder that dies —
// even SIGKILLed mid-critical-section — releases its lock when the
// kernel closes its descriptors, so crashed holders can never
// permanently wedge the stores (there is no stale lock file to clean
// up; the sidecar's contents are irrelevant).
func Lock(path string) (unlock func(), err error) {
	return lock(path, 0)
}

// LockNB is Lock without blocking: when another process holds the
// lock, it fails immediately with ErrLocked. Used by single-owner
// stores (the job journal) to refuse to start rather than queue behind
// a live owner.
func LockNB(path string) (unlock func(), err error) {
	return lock(path, syscall.LOCK_NB)
}

func lock(path string, extraFlags int) (unlock func(), err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// Retry on EINTR: a signal delivered mid-flock (SIGTERM starting a
	// graceful drain, a profiler's SIGPROF) interrupts the syscall
	// without granting the lock; failing the whole store operation for
	// that would turn routine signals into spurious I/O errors.
	for {
		err = syscall.Flock(int(f.Fd()), syscall.LOCK_EX|extraFlags)
		if err == nil {
			break
		}
		if err == syscall.EINTR {
			continue
		}
		f.Close()
		if extraFlags&syscall.LOCK_NB != 0 && (err == syscall.EWOULDBLOCK || err == syscall.EAGAIN) {
			return nil, ErrLocked
		}
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock.
		f.Close()
	}, nil
}
