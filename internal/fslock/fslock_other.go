//go:build !unix

// Package fslock provides the advisory cross-process file lock every
// on-disk store in the module uses for its read-modify-write brackets.
package fslock

// Lock is a no-op on platforms without flock: stores still serialize
// all in-process access through their mutexes and re-read their files
// before every operation, but cross-process mutual exclusion is not
// guaranteed — run a single store-owning process there.
func Lock(path string) (unlock func(), err error) {
	return func() {}, nil
}
