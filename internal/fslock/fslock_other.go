//go:build !unix

// Package fslock provides the advisory cross-process file lock every
// on-disk store in the module uses for its read-modify-write brackets.
package fslock

import "errors"

// ErrLocked is returned by LockNB when another process already holds
// the lock. Never produced on platforms without flock.
var ErrLocked = errors.New("fslock: held by another process")

// Lock is a no-op on platforms without flock: stores still serialize
// all in-process access through their mutexes and re-read their files
// before every operation, but cross-process mutual exclusion is not
// guaranteed — run a single store-owning process there.
func Lock(path string) (unlock func(), err error) {
	return func() {}, nil
}

// LockNB is a no-op on platforms without flock, like Lock.
func LockNB(path string) (unlock func(), err error) {
	return func() {}, nil
}
