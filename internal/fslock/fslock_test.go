//go:build unix

package fslock

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestMain doubles as the lock-holder helper process: when re-exec'd
// with FSLOCK_HELPER set, it takes the lock, reports readiness on
// stdout, and holds the lock until killed — simulating a process that
// dies mid-critical-section.
func TestMain(m *testing.M) {
	if path := os.Getenv("FSLOCK_HELPER"); path != "" {
		unlock, err := Lock(path)
		if err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		defer unlock()
		fmt.Println("LOCKED")
		// Hold the lock "forever"; the parent SIGKILLs us.
		time.Sleep(time.Hour)
		return
	}
	os.Exit(m.Run())
}

func TestLockSerializesGoroutines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	var mu sync.Mutex
	inside := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			unlock, err := Lock(path)
			if err != nil {
				t.Errorf("Lock: %v", err)
				return
			}
			mu.Lock()
			inside++
			if inside != 1 {
				t.Errorf("%d holders inside the critical section", inside)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inside--
			mu.Unlock()
			unlock()
		}()
	}
	wg.Wait()
}

func TestLockNB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	unlock, err := LockNB(path)
	if err != nil {
		t.Fatalf("first LockNB: %v", err)
	}
	// Same-process flocks on separate descriptors do not conflict in a
	// way LockNB can observe portably (flock is per open-file), so the
	// contended case is exercised against a separate process below.
	unlock()
	unlock2, err := LockNB(path)
	if err != nil {
		t.Fatalf("re-acquire after unlock: %v", err)
	}
	unlock2()
}

// spawnHolder re-execs the test binary as a lock-holder on path and
// returns the running process once it reports the lock taken.
func spawnHolder(t *testing.T, path string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "FSLOCK_HELPER="+path)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() || sc.Text() != "LOCKED" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("helper did not take the lock: %q", sc.Text())
	}
	return cmd
}

// TestLockNBContendedAcrossProcesses: while another live process holds
// the lock, LockNB fails fast with ErrLocked instead of queueing.
func TestLockNBContendedAcrossProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	holder := spawnHolder(t, path)
	defer func() {
		holder.Process.Kill()
		holder.Wait()
	}()
	if _, err := LockNB(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("LockNB against a live holder: %v, want ErrLocked", err)
	}
}

// TestStaleLockRecovery is the crashed-holder scenario: a separate
// process takes the lock and is SIGKILLed mid-critical-section —
// no unlock, no cleanup. The kernel releases the flock with the dead
// process's descriptors, so a waiting Lock acquires promptly and a
// LockNB succeeds: a crashed holder can never permanently wedge the
// ledger, store, cache or journal.
func TestStaleLockRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lock")
	holder := spawnHolder(t, path)

	// The holder provably has it.
	if _, err := LockNB(path); !errors.Is(err, ErrLocked) {
		holder.Process.Kill()
		holder.Wait()
		t.Fatalf("holder alive but LockNB got %v, want ErrLocked", err)
	}

	// Kill -9: the holder dies inside its critical section.
	if err := holder.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	holder.Wait()

	// The blocking path acquires promptly (bounded by the test timeout
	// via the goroutine + select).
	acquired := make(chan error, 1)
	go func() {
		unlock, err := Lock(path)
		if err == nil {
			unlock()
		}
		acquired <- err
	}()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("Lock after holder death: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Lock still blocked 10s after the holder was killed")
	}

	// And the non-blocking path agrees the lock is free.
	unlock, err := LockNB(path)
	if err != nil {
		t.Fatalf("LockNB after holder death: %v", err)
	}
	unlock()
}
