package linalg

import (
	"math"
	"sort"
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
)

func randomSymmetric(n int, rng *randx.Rand) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := rng.Normal()
			m[i][j] = x
			m[j][i] = x
		}
	}
	return m
}

func TestJacobiDiagonal(t *testing.T) {
	m := [][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}}
	eig := JacobiEigen(m)
	want := []float64{-1, 2, 3}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-10 {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	eig := JacobiEigen([][]float64{{2, 1}, {1, 2}})
	if math.Abs(eig[0]-1) > 1e-10 || math.Abs(eig[1]-3) > 1e-10 {
		t.Fatalf("eig = %v, want [1 3]", eig)
	}
}

func TestJacobiTraceAndFrobenius(t *testing.T) {
	rng := randx.New(1)
	for trial := 0; trial < 5; trial++ {
		m := randomSymmetric(8, rng)
		eig := JacobiEigen(m)
		var trace, fro, sumEig, sumSq float64
		for i := range m {
			trace += m[i][i]
			for j := range m {
				fro += m[i][j] * m[i][j]
			}
		}
		for _, l := range eig {
			sumEig += l
			sumSq += l * l
		}
		if math.Abs(trace-sumEig) > 1e-8 {
			t.Fatalf("trace %v != eig sum %v", trace, sumEig)
		}
		if math.Abs(fro-sumSq) > 1e-8 {
			t.Fatalf("frobenius² %v != eig sq sum %v", fro, sumSq)
		}
	}
}

func TestTridiagEigenvalues(t *testing.T) {
	// Tridiagonal with diagonal 2 and off-diagonal -1 (discrete Laplacian)
	// has eigenvalues 2 - 2cos(kπ/(n+1)).
	n := 12
	alpha := make([]float64, n)
	beta := make([]float64, n-1)
	for i := range alpha {
		alpha[i] = 2
	}
	for i := range beta {
		beta[i] = -1
	}
	got := tridiagEigenvalues(alpha, beta)
	sort.Float64s(got)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(got[k-1]-want) > 1e-9 {
			t.Fatalf("eig[%d] = %v, want %v (all: %v)", k-1, got[k-1], want, got)
		}
	}
}

func TestLanczosMatchesJacobi(t *testing.T) {
	rng := randx.New(9)
	for trial := 0; trial < 4; trial++ {
		m := randomSymmetric(20, rng)
		dense := JacobiEigen(m) // ascending
		// Full-dimension Lanczos should recover the whole spectrum.
		got := TopEigen(DenseOp{M: m}, 20, 20, rng.Split())
		sort.Float64s(got)
		if len(got) != 20 {
			t.Fatalf("TopEigen returned %d values", len(got))
		}
		for i := range got {
			if math.Abs(got[i]-dense[i]) > 1e-6 {
				t.Fatalf("trial %d: lanczos %v vs jacobi %v at %d", trial, got[i], dense[i], i)
			}
		}
	}
}

func TestTopEigenExtremesOnGraph(t *testing.T) {
	// K_n adjacency has only two distinct eigenvalues, n-1 and -1, so
	// Lanczos exhausts the Krylov space after two steps and returns two
	// Ritz values even though three were requested.
	g := graph.Complete(10)
	eig := TopEigen(AdjacencyOp{G: g}, 3, 0, randx.New(5))
	if len(eig) != 2 {
		t.Fatalf("K10 Ritz values = %v, want exactly the 2 distinct eigenvalues", eig)
	}
	if math.Abs(eig[0]-9) > 1e-8 {
		t.Fatalf("K10 top eigenvalue = %v, want 9", eig[0])
	}
	if math.Abs(eig[1]-(-1)) > 1e-6 {
		t.Fatalf("K10 second eigenvalue = %v, want -1", eig[1])
	}
}

func TestPowerIterationStar(t *testing.T) {
	// Star S_n adjacency is bipartite with λ = ±sqrt(n-1); the shifted
	// iteration must converge to the positive (Perron) eigenvalue.
	g := graph.Star(17)
	lambda, vec := PowerIteration(AdjacencyOp{G: g}, float64(g.MaxDegree()), 1e-12, 5000, randx.New(2))
	if math.Abs(lambda-4) > 1e-6 {
		t.Fatalf("star lambda = %v, want +4", lambda)
	}
	// Eigenvector: centre component = 1/sqrt(2), leaves = 1/sqrt(2(n-1)).
	if math.Abs(math.Abs(vec[0])-1/math.Sqrt2) > 1e-5 {
		t.Fatalf("centre component = %v, want %v", math.Abs(vec[0]), 1/math.Sqrt2)
	}
}

func TestNetworkValuesSortedAndNormalized(t *testing.T) {
	g := graph.Complete(8)
	nv := NetworkValues(g, randx.New(3))
	if len(nv) != 8 {
		t.Fatalf("len = %d", len(nv))
	}
	var sumSq float64
	for i, x := range nv {
		sumSq += x * x
		if i > 0 && nv[i] > nv[i-1] {
			t.Fatal("network values not sorted descending")
		}
	}
	if math.Abs(sumSq-1) > 1e-8 {
		t.Fatalf("eigenvector norm² = %v, want 1", sumSq)
	}
}

func TestScreeValuesCompleteGraph(t *testing.T) {
	// K12 has two distinct eigenvalues (11 and -1), so the scree series
	// collapses to two singular values: 11 and 1.
	g := graph.Complete(12)
	sv := ScreeValues(g, 4, randx.New(8))
	if len(sv) != 2 {
		t.Fatalf("scree = %v, want 2 values", sv)
	}
	if math.Abs(sv[0]-11) > 1e-7 {
		t.Fatalf("scree[0] = %v, want 11", sv[0])
	}
	if math.Abs(sv[1]-1) > 1e-5 {
		t.Fatalf("scree[1] = %v, want 1", sv[1])
	}
}

func TestAdjacencyOpMatchesDense(t *testing.T) {
	g := graph.Cycle(6)
	n := g.NumNodes()
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		for _, w := range g.Neighbors(i) {
			dense[i][w] = 1
		}
	}
	rng := randx.New(4)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Normal()
	}
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	AdjacencyOp{G: g}.Apply(y1, x)
	DenseOp{M: dense}.Apply(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("matvec mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestEmptyOperator(t *testing.T) {
	if got := TopEigen(DenseOp{}, 3, 0, randx.New(1)); got != nil {
		t.Fatalf("TopEigen on empty = %v", got)
	}
	l, v := PowerIteration(DenseOp{}, 0, 0, 0, randx.New(1))
	if l != 0 || v != nil {
		t.Fatal("PowerIteration on empty should be zero")
	}
}
