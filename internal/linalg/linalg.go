// Package linalg provides the small spectral toolkit needed for the
// paper's scree plots (leading singular values of the adjacency matrix)
// and network-value plots (components of the principal eigenvector):
// a sparse symmetric matvec over the CSR graph, Lanczos iteration with
// full reorthogonalization for the extremal eigenvalues, power iteration
// for the principal eigenpair, and a dense Jacobi eigensolver that
// serves as the test oracle.
//
// For a symmetric matrix the singular values are the absolute values of
// the eigenvalues, which is how the scree series is produced.
package linalg

import (
	"context"
	"math"
	"sort"

	"dpkron/internal/graph"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
)

// MatVec is a symmetric linear operator y = A·x of dimension Dim.
type MatVec interface {
	Dim() int
	Apply(dst, src []float64)
}

// AdjacencyOp wraps a graph's adjacency matrix as a MatVec.
type AdjacencyOp struct{ G *graph.Graph }

// Dim returns the number of nodes.
func (a AdjacencyOp) Dim() int { return a.G.NumNodes() }

// Apply computes dst = A·src where A is the 0/1 adjacency matrix.
func (a AdjacencyOp) Apply(dst, src []float64) {
	n := a.G.NumNodes()
	for v := 0; v < n; v++ {
		var sum float64
		for _, w := range a.G.Neighbors(v) {
			sum += src[w]
		}
		dst[v] = sum
	}
}

// DenseOp is a dense symmetric matrix operator, used in tests and for
// small systems such as Kronecker initiators.
type DenseOp struct{ M [][]float64 }

// Dim returns the matrix dimension.
func (d DenseOp) Dim() int { return len(d.M) }

// Apply computes dst = M·src.
func (d DenseOp) Apply(dst, src []float64) {
	for i, row := range d.M {
		var sum float64
		for j, a := range row {
			sum += a * src[j]
		}
		dst[i] = sum
	}
}

// TopEigen computes approximations to the k eigenvalues of largest
// magnitude of the symmetric operator op, sorted by |λ| descending,
// using Lanczos with full reorthogonalization and a random start vector.
// iters controls the Krylov dimension (0 means max(3k+16, 48), capped at
// Dim). The companion Ritz vectors are not returned; use PowerIteration
// for the principal eigenvector.
func TopEigen(op MatVec, k, iters int, rng *randx.Rand) []float64 {
	eig, _ := TopEigenCtx(nil, op, k, iters, rng)
	return eig
}

// TopEigenCtx is TopEigen with cooperative cancellation checked once
// per Lanczos step. A nil or never-cancelled context yields exactly the
// TopEigen result (the start vector is drawn before any step, so a
// completed run consumed the same rng draws).
func TopEigenCtx(ctx context.Context, op MatVec, k, iters int, rng *randx.Rand) ([]float64, error) {
	n := op.Dim()
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	m := iters
	if m <= 0 {
		m = 3*k + 16
		if m < 48 {
			m = 48
		}
	}
	if m > n {
		m = n
	}
	alpha, beta, _, err := lanczos(ctx, op, m, rng)
	if err != nil {
		return nil, err
	}
	ritz := tridiagEigenvalues(alpha, beta)
	sort.Slice(ritz, func(i, j int) bool { return math.Abs(ritz[i]) > math.Abs(ritz[j]) })
	if len(ritz) > k {
		ritz = ritz[:k]
	}
	return ritz, nil
}

// lanczos runs m steps with full reorthogonalization, returning the
// tridiagonal coefficients and the Lanczos basis. It stops early on
// breakdown (invariant subspace found) and checks ctx (when non-nil
// with a cancellation signal) before each step.
func lanczos(ctx context.Context, op MatVec, m int, rng *randx.Rand) (alpha, beta []float64, basis [][]float64, err error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	n := op.Dim()
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Normal()
	}
	normalize(v)
	w := make([]float64, n)
	basis = append(basis, append([]float64(nil), v...))
	for j := 0; j < m; j++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, err
			}
		}
		op.Apply(w, basis[j])
		a := dot(w, basis[j])
		alpha = append(alpha, a)
		// w -= a*v_j + b_{j-1}*v_{j-1}
		axpy(w, basis[j], -a)
		if j > 0 {
			axpy(w, basis[j-1], -beta[j-1])
		}
		// Full reorthogonalization (twice for stability).
		for pass := 0; pass < 2; pass++ {
			for _, q := range basis {
				axpy(w, q, -dot(w, q))
			}
		}
		b := math.Sqrt(dot(w, w))
		if b < 1e-12 || j == m-1 {
			return alpha, beta, basis, nil
		}
		beta = append(beta, b)
		next := make([]float64, n)
		for i := range next {
			next[i] = w[i] / b
		}
		basis = append(basis, next)
	}
	return alpha, beta, basis, nil
}

// tridiagEigenvalues computes all eigenvalues of the symmetric
// tridiagonal matrix with diagonal alpha and off-diagonal beta using the
// implicit QL algorithm (EISPACK tql1).
func tridiagEigenvalues(alpha, beta []float64) []float64 {
	n := len(alpha)
	d := append([]float64(nil), alpha...)
	e := make([]float64, n)
	copy(e, beta)
	for l := 0; l < n; l++ {
		for iter := 0; iter < 80; iter++ {
			// Find a small off-diagonal element.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return d
}

// PowerIteration computes the algebraically largest eigenpair of op by
// power iteration on the shifted operator op + shift·I. A shift of at
// least a Gershgorin bound on |λmin| (for adjacency matrices, the
// maximum degree) guarantees convergence even on bipartite graphs,
// where λmax and λmin have equal magnitude and unshifted iteration
// oscillates. It returns the eigenvalue of op (shift removed) and the
// unit eigenvector. tol defaults to 1e-10 when 0; maxIter to 1000.
func PowerIteration(op MatVec, shift, tol float64, maxIter int, rng *randx.Rand) (float64, []float64) {
	lambda, v, _ := PowerIterationCtx(nil, op, shift, tol, maxIter, rng)
	return lambda, v
}

// PowerIterationCtx is PowerIteration with cooperative cancellation
// checked once per iteration. A nil or never-cancelled context yields
// exactly the PowerIteration result.
func PowerIterationCtx(ctx context.Context, op MatVec, shift, tol float64, maxIter int, rng *randx.Rand) (float64, []float64, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	n := op.Dim()
	if n == 0 {
		return 0, nil, nil
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Normal()
	}
	normalize(v)
	w := make([]float64, n)
	var lambda float64
	for it := 0; it < maxIter; it++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, nil, err
			}
		}
		op.Apply(w, v)
		if shift != 0 {
			axpy(w, v, shift)
		}
		next := dot(w, v) - shift // Rayleigh quotient of op
		norm := math.Sqrt(dot(w, w))
		if norm == 0 {
			return 0, v, nil
		}
		for i := range v {
			v[i] = w[i] / norm
		}
		if it > 0 && math.Abs(next-lambda) <= tol*math.Max(1, math.Abs(next)) {
			lambda = next
			break
		}
		lambda = next
	}
	return lambda, v, nil
}

// NetworkValues returns the absolute components of the principal
// (Perron) eigenvector sorted descending — the series plotted in the
// paper's "network value" panels.
func NetworkValues(g *graph.Graph, rng *randx.Rand) []float64 {
	out, _ := NetworkValuesCtx(nil, g, rng)
	return out
}

// NetworkValuesCtx is NetworkValues under a pipeline Run: the power
// iteration checks the context once per iteration and a "network-values"
// stage event pair is emitted. A nil or never-cancelled run yields
// exactly the NetworkValues series.
func NetworkValuesCtx(run *pipeline.Run, g *graph.Graph, rng *randx.Rand) ([]float64, error) {
	done := run.Stage("network-values")
	shift := float64(g.MaxDegree())
	_, vec, err := PowerIterationCtx(run.Context(), AdjacencyOp{G: g}, shift, 1e-9, 2000, rng)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vec))
	for i, x := range vec {
		out[i] = math.Abs(x)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	done()
	return out, nil
}

// ScreeValues returns the top-k singular values of the adjacency matrix
// of g (for symmetric matrices, |eigenvalues|), sorted descending.
func ScreeValues(g *graph.Graph, k int, rng *randx.Rand) []float64 {
	out, _ := ScreeValuesCtx(nil, g, k, rng)
	return out
}

// ScreeValuesCtx is ScreeValues under a pipeline Run: the Lanczos
// iteration checks the context once per step and a "scree" stage event
// pair is emitted. A nil or never-cancelled run yields exactly the
// ScreeValues series.
func ScreeValuesCtx(run *pipeline.Run, g *graph.Graph, k int, rng *randx.Rand) ([]float64, error) {
	done := run.Stage("scree")
	eig, err := TopEigenCtx(run.Context(), AdjacencyOp{G: g}, k, 0, rng)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(eig))
	for i, x := range eig {
		out[i] = math.Abs(x)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	done()
	return out, nil
}

// JacobiEigen computes all eigenvalues of a dense symmetric matrix with
// the cyclic Jacobi rotation method. It is O(n³) and intended as a test
// oracle and for small matrices. The input is not modified.
func JacobiEigen(m [][]float64) []float64 {
	n := len(m)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64(nil), m[i]...)
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i][i]
	}
	sort.Float64s(out)
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst, x []float64, alpha float64) {
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
