// Package faultfs is the filesystem seam the module's durable stores
// write through, plus a deterministic fault injector for testing them.
//
// Every component that persists irreplaceable state — the privacy
// ledger, the dataset store, the release cache, and the job journal —
// performs its file operations against the FS interface instead of
// calling the os package directly. In production that indirection is
// free: OS is a zero-cost wrapper over os.*. In tests, an Injector
// wraps any FS and fails scripted operations — a rename that returns
// EIO, an fsync that never happens, a write that lands only half its
// bytes — so the crash-consistency claims those stores make (atomic
// rename, fsync-before-rename, torn-tail recovery) are proven against
// injected faults rather than assumed.
//
// The injector is deterministic: faults fire on the Nth matching
// operation, selected by operation kind and path substring, so a test
// can enumerate every fault point of a scenario (run once with a
// counting injector, then re-run failing at each counted point). A
// clock hook rides along for the same reason — time is an input the
// journal records, and tests pin it.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// File is the subset of *os.File the durable stores need: sequential
// writes, durability, and close.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// Reader is the read side of a file: sequential reads plus random
// access. The external-sort spill machinery streams runs back through
// it, and binary-searches merged runs with ReadAt.
type Reader interface {
	io.ReadCloser
	io.ReaderAt
}

// FS is the filesystem surface the durable stores write through. All
// paths are OS paths, semantics match the corresponding os functions.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file for reading (os.Open semantics).
	Open(name string) (Reader, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(path string, perm fs.FileMode) error
	Truncate(name string, size int64) error
	// Now is the clock: recorded timestamps come from here so tests
	// can pin them.
	Now() time.Time
}

// OS is the production FS: direct delegation to the os package and
// time.Now.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a typed nil-free interface value only on success.
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (Reader, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Now() time.Time                               { return time.Now() }
