package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "f.txt")
	if err := OS.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := OS.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "moved.txt")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(moved)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, err := OS.Stat(moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.Truncate(moved, 2); err != nil {
		t.Fatal(err)
	}
	if b, _ := OS.ReadFile(moved); string(b) != "he" {
		t.Fatalf("after truncate: %q", b)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(OS.Now()); d < 0 || d > time.Minute {
		t.Errorf("OS.Now drift: %v", d)
	}
}

func TestInjectorFiresOnNthMatch(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS).Fail(Fault{Op: OpSync, After: 1})
	write := func(name string) error {
		f, err := inj.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Write([]byte("x")); err != nil {
			return err
		}
		return f.Sync()
	}
	if err := write("a"); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := write("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: got %v, want ErrInjected", err)
	}
	if err := write("c"); err != nil {
		t.Fatalf("fault is one-shot, third sync should pass: %v", err)
	}
}

func TestInjectorPathFilterAndPersist(t *testing.T) {
	dir := t.TempDir()
	sentinel := errors.New("boom")
	inj := NewInjector(OS).Fail(Fault{Op: OpRename, Path: "target", Err: sentinel, Persist: true})
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inj.Rename(src, filepath.Join(dir, "other")); err != nil {
		t.Fatalf("non-matching rename: %v", err)
	}
	for i := 0; i < 2; i++ {
		err := inj.Rename(filepath.Join(dir, "other"), filepath.Join(dir, "target"))
		if !errors.Is(err, sentinel) {
			t.Fatalf("persistent fault round %d: got %v, want sentinel", i, err)
		}
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	inj := NewInjector(OS).Fail(Fault{Op: OpWrite, Short: 3, Err: io.ErrShortWrite})
	f, err := inj.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Write = %d, %v; want 3, ErrShortWrite", n, err)
	}
	f.Close()
	// The torn prefix really landed: recovery code sees a crash-shaped
	// file, not a clean absence.
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "012" {
		t.Fatalf("on disk after torn write: %q, %v", b, err)
	}
}

func TestInjectorTraceAndOps(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetNow(func() time.Time { return time.Unix(42, 0) })
	if !inj.Now().Equal(time.Unix(42, 0)) {
		t.Error("SetNow not honoured")
	}
	path := filepath.Join(dir, "t")
	f, err := inj.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	inj.ReadFile(path)
	if got := inj.Ops(OpWrite, ""); got != 1 {
		t.Errorf("Ops(write) = %d, want 1", got)
	}
	if got := inj.Ops("", "t"); got < 4 {
		t.Errorf("Ops(any) = %d, want >= 4 (open, write, sync, close)", got)
	}
	trace := inj.Trace()
	if len(trace) == 0 || trace[0] != "open "+path {
		t.Errorf("trace[0] = %q", trace)
	}
}
