package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error returned by a fired fault. Tests
// match it with errors.Is through whatever wrapping the store applied,
// proving the store surfaces I/O failures instead of swallowing them.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names one interceptable filesystem operation.
type Op string

// The interceptable operations. OpWrite and OpSync fire on the File
// returned by OpenFile; the rest fire on the FS itself.
const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpRead     Op = "read"
	OpStat     Op = "stat"
	OpMkdir    Op = "mkdir"
	OpTruncate Op = "truncate"
)

// Fault is one scripted failure: the After-th (0-based) operation
// matching Op and Path fails. A zero Fault value matches the first
// operation of every kind on every path — set fields to narrow it.
type Fault struct {
	// Op selects the operation kind; empty matches every kind.
	Op Op
	// Path is a substring the operation's path must contain; empty
	// matches every path. Rename matches on either path.
	Path string
	// After skips that many matching operations before firing
	// (0 = fail the first match).
	After int
	// Err is the error to return; nil selects ErrInjected.
	Err error
	// Short, for OpWrite only, makes the write succeed for Short bytes
	// before reporting the error — a torn write. Short = 0 writes
	// nothing.
	Short int
	// Persist keeps the fault armed after it fires; by default a fault
	// fires once.
	Persist bool

	hits int // matching ops seen so far
	done bool
}

// Injector wraps an FS and fails scripted operations. It also records
// an ordered trace of every operation it sees, so a test can first run
// a scenario to enumerate its fault points and then re-run it failing
// at each one. All methods are safe for concurrent use.
type Injector struct {
	inner FS

	mu     sync.Mutex
	faults []*Fault
	trace  []string
	now    func() time.Time
}

// NewInjector returns an Injector over inner (nil selects OS).
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS
	}
	return &Injector{inner: inner}
}

// Fail arms a fault and returns the injector for chaining.
func (i *Injector) Fail(f Fault) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = append(i.faults, &f)
	return i
}

// SetNow overrides the injector's clock.
func (i *Injector) SetNow(now func() time.Time) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.now = now
}

// Trace returns the ordered "op path" strings of every operation seen.
func (i *Injector) Trace() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.trace...)
}

// Ops returns how many operations matching op (empty = all) and path
// substring (empty = any) were seen.
func (i *Injector) Ops(op Op, path string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, t := range i.trace {
		kind, p, _ := strings.Cut(t, " ")
		if (op == "" || kind == string(op)) && (path == "" || strings.Contains(p, path)) {
			n++
		}
	}
	return n
}

// check records the operation and returns the armed fault that fires
// on it, if any.
func (i *Injector) check(op Op, path string) *Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.trace = append(i.trace, fmt.Sprintf("%s %s", op, path))
	for _, f := range i.faults {
		if f.done {
			continue
		}
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(path, f.Path) {
			continue
		}
		if f.hits < f.After {
			f.hits++
			continue
		}
		if !f.Persist {
			f.done = true
		}
		return f
	}
	return nil
}

func (f *Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if f := i.check(OpOpen, name); f != nil {
		return nil, f.err()
	}
	file, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{inner: file, inj: i}, nil
}

func (i *Injector) Open(name string) (Reader, error) {
	if f := i.check(OpOpen, name); f != nil {
		return nil, f.err()
	}
	return i.inner.Open(name)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if f := i.check(OpRename, oldpath+" -> "+newpath); f != nil {
		return f.err()
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if f := i.check(OpRemove, name); f != nil {
		return f.err()
	}
	return i.inner.Remove(name)
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if f := i.check(OpRead, name); f != nil {
		return nil, f.err()
	}
	return i.inner.ReadFile(name)
}

func (i *Injector) Stat(name string) (fs.FileInfo, error) {
	if f := i.check(OpStat, name); f != nil {
		return nil, f.err()
	}
	return i.inner.Stat(name)
}

func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if f := i.check(OpMkdir, path); f != nil {
		return f.err()
	}
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) Truncate(name string, size int64) error {
	if f := i.check(OpTruncate, name); f != nil {
		return f.err()
	}
	return i.inner.Truncate(name, size)
}

func (i *Injector) Now() time.Time {
	i.mu.Lock()
	now := i.now
	i.mu.Unlock()
	if now != nil {
		return now()
	}
	return i.inner.Now()
}

// injectFile intercepts write/sync/close on an opened file.
type injectFile struct {
	inner File
	inj   *Injector
}

func (f *injectFile) Name() string { return f.inner.Name() }

func (f *injectFile) Write(p []byte) (int, error) {
	if flt := f.inj.check(OpWrite, f.inner.Name()); flt != nil {
		n := flt.Short
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			// A torn write: the prefix really lands on disk, so recovery
			// code sees exactly what a crash mid-write would leave.
			if wn, werr := f.inner.Write(p[:n]); werr != nil {
				return wn, werr
			}
		}
		return n, flt.err()
	}
	return f.inner.Write(p)
}

func (f *injectFile) Sync() error {
	if flt := f.inj.check(OpSync, f.inner.Name()); flt != nil {
		return flt.err()
	}
	return f.inner.Sync()
}

func (f *injectFile) Close() error {
	if flt := f.inj.check(OpClose, f.inner.Name()); flt != nil {
		f.inner.Close() // do not leak the descriptor
		return flt.err()
	}
	return f.inner.Close()
}
