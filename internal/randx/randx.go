// Package randx provides deterministic, seedable random number generation
// and the noise distributions used by the differential privacy mechanisms
// in this module (Laplace, exponential, Bernoulli).
//
// All randomness in the repository flows through *Rand so that every
// experiment, test, and benchmark is reproducible from a single seed.
// Independent sub-streams are derived with Split, which uses a SplitMix64
// step so that child streams are decorrelated from the parent.
package randx

import (
	"math"
	"math/rand/v2"
)

// Rand is a deterministic random source with samplers for the
// distributions required by the estimators and mechanisms.
type Rand struct {
	src *rand.Rand
}

// New returns a Rand seeded with the given seed. Equal seeds yield
// identical streams.
func New(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, splitmix64(seed)))}
}

// splitmix64 is the finalizer of the SplitMix64 generator; it is used to
// expand one 64-bit seed into the second PCG word and to derive child seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives a new Rand whose stream is independent of the receiver's
// future output. The receiver advances by one draw.
func (r *Rand) Split() *Rand {
	return New(splitmix64(r.src.Uint64()))
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Normal returns a standard normal sample.
func (r *Rand) Normal() float64 { return r.src.NormFloat64() }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Exponential returns a sample from Exp(rate), i.e. with mean 1/rate.
// It panics if rate <= 0.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential rate must be positive")
	}
	return r.src.ExpFloat64() / rate
}

// Laplace returns a sample from the Laplace distribution with mean zero
// and the given scale (density 1/(2b)·exp(-|x|/b)). A scale of zero
// returns 0 so callers can express "no noise" uniformly.
func (r *Rand) Laplace(scale float64) float64 {
	if scale == 0 {
		return 0
	}
	if scale < 0 {
		panic("randx: Laplace scale must be non-negative")
	}
	// Inverse CDF on u ~ Uniform(-1/2, 1/2):
	// x = -b * sgn(u) * ln(1 - 2|u|).
	u := r.src.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Cauchy returns a sample from the Cauchy distribution with median
// zero and the given scale (density 1/(πb·(1+(x/b)²))), via the
// inverse CDF x = b·tan(π(u − ½)). A scale of zero returns 0 so
// callers can express "no noise" uniformly.
func (r *Rand) Cauchy(scale float64) float64 {
	if scale == 0 {
		return 0
	}
	if scale < 0 {
		panic("randx: Cauchy scale must be non-negative")
	}
	return scale * math.Tan(math.Pi*(r.src.Float64()-0.5))
}

// LaplaceVec returns n independent Laplace(scale) samples.
func (r *Rand) LaplaceVec(n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Laplace(scale)
	}
	return out
}

// Geometric returns a sample from the geometric distribution on
// {0, 1, 2, ...} with success probability p. It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("randx: Geometric p must be in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln(U) / ln(1-p)).
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Binomial returns a sample from Binomial(n, p) in O(n) time for small n
// and via waiting-time (geometric skip) sampling otherwise, which runs in
// O(n·p) expected time.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("randx: Binomial n must be non-negative")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Waiting-time method: skip ahead by geometric gaps.
	count := 0
	i := r.Geometric(p)
	for i < n {
		count++
		i += 1 + r.Geometric(p)
	}
	return count
}

// Shuffle permutes the integers in s uniformly at random.
func (r *Rand) Shuffle(s []int) {
	r.src.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
