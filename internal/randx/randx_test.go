package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(123)
	const n = 200000
	scale := 2.5
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := r.Laplace(scale)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = scale for Laplace.
	if math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("Laplace E|X| = %v, want %v", meanAbs, scale)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	r := New(5)
	for i := 0; i < 10; i++ {
		if x := r.Laplace(0); x != 0 {
			t.Fatalf("Laplace(0) = %v, want 0", x)
		}
	}
}

func TestLaplaceTailSymmetry(t *testing.T) {
	r := New(99)
	pos, neg := 0, 0
	for i := 0; i < 100000; i++ {
		if r.Laplace(1) > 0 {
			pos++
		} else {
			neg++
		}
	}
	ratio := float64(pos) / float64(neg)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("sign ratio = %v, want ~1", ratio)
	}
}

// TestCauchyQuartiles: the Cauchy distribution has no moments, so the
// distribution is checked through its quartiles — the CDF puts 1/4 of
// the mass below −scale and 1/4 above +scale — plus median symmetry.
func TestCauchyQuartiles(t *testing.T) {
	r := New(321)
	const n = 200000
	scale := 2.5
	below, above, pos := 0, 0, 0
	for i := 0; i < n; i++ {
		x := r.Cauchy(scale)
		if x < -scale {
			below++
		}
		if x > scale {
			above++
		}
		if x > 0 {
			pos++
		}
	}
	for name, count := range map[string]int{"below -scale": below, "above +scale": above} {
		if frac := float64(count) / n; math.Abs(frac-0.25) > 0.01 {
			t.Errorf("Cauchy mass %s = %v, want ~0.25", name, frac)
		}
	}
	if frac := float64(pos) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Cauchy positive mass = %v, want ~0.5", frac)
	}
}

func TestCauchyZeroScaleAndPanic(t *testing.T) {
	r := New(7)
	for i := 0; i < 10; i++ {
		if x := r.Cauchy(0); x != 0 {
			t.Fatalf("Cauchy(0) = %v, want 0", x)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative scale did not panic")
		}
	}()
	r.Cauchy(-1)
}

func TestExponentialMean(t *testing.T) {
	r := New(321)
	const n = 200000
	rate := 3.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exponential mean = %v, want %v", mean, 1/rate)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(55)
	const n = 200000
	p := 0.25
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("Geometric mean = %v, want %v", mean, want)
	}
}

func TestBinomialMeanVar(t *testing.T) {
	r := New(77)
	const trials = 20000
	n, p := 50, 0.2
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := float64(r.Binomial(n, p))
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-float64(n)*p) > 0.15 {
		t.Errorf("Binomial mean = %v, want %v", mean, float64(n)*p)
	}
	wantVar := float64(n) * p * (1 - p)
	if math.Abs(variance-wantVar) > 0.5 {
		t.Errorf("Binomial variance = %v, want %v", variance, wantVar)
	}
}

func TestBinomialBounds(t *testing.T) {
	r := New(3)
	err := quick.Check(func(seed uint64, n16 uint16, pRaw float64) bool {
		n := int(n16 % 200)
		p := math.Abs(pRaw)
		p -= math.Floor(p) // p in [0,1)
		x := r.Binomial(n, p)
		return x >= 0 && x <= n
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestBinomialHighP(t *testing.T) {
	r := New(8)
	const trials = 50000
	n, p := 20, 0.9
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(n, p))
	}
	mean := sum / trials
	if math.Abs(mean-18) > 0.1 {
		t.Errorf("Binomial(20, .9) mean = %v, want 18", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestLaplaceVecLength(t *testing.T) {
	r := New(4)
	v := r.LaplaceVec(37, 1.5)
	if len(v) != 37 {
		t.Fatalf("LaplaceVec length = %d, want 37", len(v))
	}
}

func TestPanics(t *testing.T) {
	r := New(0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Exponential(0)", func() { r.Exponential(0) })
	mustPanic("Laplace(-1)", func() { r.Laplace(-1) })
	mustPanic("Geometric(0)", func() { r.Geometric(0) })
	mustPanic("Binomial(-1,.5)", func() { r.Binomial(-1, 0.5) })
}
