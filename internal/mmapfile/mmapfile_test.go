package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("dpkron"), 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Bytes(), want) {
		t.Fatalf("mapped bytes differ from file contents (%d vs %d bytes)", len(m.Bytes()), len(want))
	}
	if Supported && !m.Mapped() {
		t.Error("Mapped() = false on a platform that supports mmap")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.Bytes() != nil {
		t.Error("Bytes() non-nil after Close")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(m.Bytes()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(m.Bytes()))
	}
	if m.Mapped() {
		t.Error("empty file reported as mapped; zero-length regions cannot be")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}
