//go:build !unix

package mmapfile

import "os"

// Supported reports whether this build can mmap files. False here:
// Open always reads onto the heap on non-unix builds.
const Supported = false

func mmap(f *os.File, size int) ([]byte, error) { panic("mmapfile: mmap unsupported") }

func munmap(data []byte) error { return nil }
