// Package mmapfile opens files as read-only byte mappings. On unix it
// is mmap(2): the returned bytes are backed by the page cache, so an
// Open is O(1) in the file size and reads fault pages in on demand. On
// other platforms (and wherever mmap fails) it degrades to reading the
// whole file onto the heap behind the same API, so callers never
// branch on platform — they only lose the laziness.
//
// The dataset store uses it to open DPKG v2 graph files: the CSR
// arrays of a stored graph are served straight out of the mapping,
// which is what takes Store.Load from O(n+m) decode to O(1) open.
package mmapfile

import (
	"fmt"
	"os"
	"sync"
)

// Mapping is a read-only view of one file's bytes, either an mmap
// region or a heap copy. Close is idempotent and safe to call while
// no reads are in flight; after Close the bytes must not be touched.
type Mapping struct {
	mu     sync.Mutex
	data   []byte
	mapped bool
}

// Bytes returns the file contents. For a mapped file the slice aliases
// the mapping and is valid only until Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Mapped reports whether the bytes are an mmap region (true) or a heap
// copy (false). Callers use it to decide residency accounting: mapped
// bytes are the page cache's problem, heap bytes are ours.
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping (munmap) or drops the heap copy. It is
// idempotent.
func (m *Mapping) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if !mapped || len(data) == 0 {
		return nil
	}
	return munmap(data)
}

// Open maps path read-only. On platforms without mmap support — and
// for empty files, which cannot be mapped — the file is read onto the
// heap instead; Mapped on the result tells the caller which happened.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(maxInt) {
		return nil, fmt.Errorf("mmapfile: %s is %d bytes, beyond the addressable limit", path, size)
	}
	if Supported && size > 0 {
		if data, err := mmap(f, int(size)); err == nil {
			return &Mapping{data: data, mapped: true}, nil
		}
		// An mmap refusal (exotic filesystem, resource limits) is not
		// fatal: fall through to the heap read, losing only laziness.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}

const maxInt = int(^uint(0) >> 1)
