//go:build unix

package mmapfile

import (
	"os"
	"syscall"
)

// Supported reports whether this build can mmap files. True on unix.
const Supported = true

func mmap(f *os.File, size int) ([]byte, error) {
	// MAP_SHARED keeps the pages backed by the file (no copy-on-write
	// reservation); PROT_READ makes stray writes through the returned
	// slice fault instead of corrupting the store.
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
