package kronfit

import (
	"math"
	"testing"

	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// ulpDiff returns the number of representable float64 values between a
// and b (0 when bit-identical).
func ulpDiff(a, b float64) int {
	if a == b {
		return 0
	}
	n := 0
	for x := math.Min(a, b); x < math.Max(a, b) && n <= 4; n++ {
		x = math.Nextafter(x, math.Inf(1))
	}
	return n
}

// tableThetas spans the clamp range [MinParam, MaxParam] of Options,
// including the extremes where log P and 1/(1−P) are most delicate.
func tableThetas() []skg.Initiator {
	const minP, maxP = 0.001, 0.9999 // Options defaults
	vals := []float64{minP, 0.01, 0.2, 0.5, 0.9, maxP}
	var out []skg.Initiator
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				out = append(out, skg.Initiator{A: a, B: b, C: c})
			}
		}
	}
	return out
}

// TestEdgeTableMatchesDirect asserts the tabulated edgeTerm agrees with
// the direct math.Exp/math.Log1p formula to within 1 ulp for every
// reachable (na, nc) cell, across the clamp range and several K.
func TestEdgeTableMatchesDirect(t *testing.T) {
	g := testGraph(4, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 1)
	for _, k := range []int{4, 10, 16} {
		for _, th := range tableThetas() {
			s := newState(g, 4, th, randx.New(1))
			s.k = k // retabulate at power k
			s.edgeTab = make([]float64, (k+1)*(k+1))
			s.gradTab = make([]float64, 3*(k+1)*(k+1))
			s.setTheta(th)
			for na := 0; na <= k; na++ {
				for nc := 0; na+nc <= k; nc++ {
					// Labels realizing (na, nc): nc shared low bits, the
					// next k−na−nc bits set on one side only.
					nb := k - na - nc
					u := 1<<(nc+nb) - 1
					v := 1<<nc - 1
					got := s.edgeTerm(u, v)
					want := s.edgeTermDirect(u, v)
					if d := ulpDiff(got, want); d > 1 {
						t.Fatalf("k=%d θ=%v na=%d nc=%d: edgeTerm %v vs direct %v (%d ulp)",
							k, th, na, nc, got, want, d)
					}
				}
			}
		}
	}
}

// TestGradTableMatchesDirect asserts the three tabulated gradient
// coefficients agree with the direct formulas to within 1 ulp.
func TestGradTableMatchesDirect(t *testing.T) {
	g := testGraph(4, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 1)
	for _, k := range []int{4, 12} {
		for _, th := range tableThetas() {
			s := newState(g, 4, th, randx.New(1))
			s.k = k
			s.edgeTab = make([]float64, (k+1)*(k+1))
			s.gradTab = make([]float64, 3*(k+1)*(k+1))
			s.setTheta(th)
			for na := 0; na <= k; na++ {
				for nc := 0; na+nc <= k; nc++ {
					nb := k - na - nc
					logP := float64(na)*s.la + float64(nb)*s.lb + float64(nc)*s.lc
					p := math.Exp(logP)
					if p > 1-1e-12 {
						p = 1 - 1e-12
					}
					inv := 1 / (1 - p)
					want := [3]float64{
						2 * float64(na) / th.A * inv,
						2 * float64(nb) / th.B * inv,
						2 * float64(nc) / th.C * inv,
					}
					idx := na*(k+1) + nc
					for j := 0; j < 3; j++ {
						if d := ulpDiff(s.gradTab[3*idx+j], want[j]); d > 1 {
							t.Fatalf("k=%d θ=%v na=%d nc=%d coeff %d: %v vs %v (%d ulp)",
								k, th, na, nc, j, s.gradTab[3*idx+j], want[j], d)
						}
					}
				}
			}
		}
	}
}

// TestPairIndexMatchesQuadrants checks the table index agrees with the
// (na, nb, nc) decomposition for random label pairs.
func TestPairIndexMatchesQuadrants(t *testing.T) {
	g := testGraph(4, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 1)
	for _, k := range []int{1, 5, 13} {
		s := newState(g, 4, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, randx.New(1))
		s.k = k
		rng := randx.New(uint64(k))
		for trial := 0; trial < 500; trial++ {
			u := rng.IntN(1 << k)
			v := rng.IntN(1 << k)
			na, _, nc := s.quadrants(u, v)
			if got, want := s.pairIndex(u, v), na*(k+1)+nc; got != want {
				t.Fatalf("k=%d u=%d v=%d: pairIndex %d, want %d", k, u, v, got, want)
			}
		}
	}
}
