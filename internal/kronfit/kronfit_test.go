package kronfit

import (
	"math"
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// exactLL computes the log-likelihood by materializing the probability
// matrix: Σ over ordered pairs u≠v of A_uv·log P + (1−A_uv)·log(1−P),
// under the same permutation the package state uses.
func exactLL(g *graph.Graph, k int, init skg.Initiator, sigma []int) float64 {
	m := skg.Model{Init: init, K: k}
	P := m.ProbMatrix()
	n := 1 << k
	N := g.NumNodes()
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			p := P[sigma[i]][sigma[j]]
			edge := i < N && j < N && g.HasEdge(i, j)
			if edge {
				total += math.Log(p)
			} else {
				total += math.Log1p(-p)
			}
		}
	}
	return total
}

func testGraph(k int, init skg.Initiator, seed uint64) *graph.Graph {
	m := skg.Model{Init: init, K: k}
	return m.SampleExact(randx.New(seed))
}

func TestSwapDeltaMatchesFullRecompute(t *testing.T) {
	init := skg.Initiator{A: 0.9, B: 0.55, C: 0.25}
	g := testGraph(6, init, 3)
	rng := randx.New(7)
	s := newState(g, 6, init, rng)
	for trial := 0; trial < 200; trial++ {
		x, y := rng.IntN(s.n), rng.IntN(s.n)
		if x == y {
			continue
		}
		before := s.ll()
		want := s.swapDelta(x, y)
		s.sigma[x], s.sigma[y] = s.sigma[y], s.sigma[x]
		after := s.ll()
		if math.Abs((after-before)-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("trial %d: swapDelta = %v, recompute = %v", trial, want, after-before)
		}
	}
}

func TestApproxLLCloseToExact(t *testing.T) {
	// The Taylor expansion of the no-edge sum is third-order accurate per
	// pair; on a sparse Kronecker model the relative error should be
	// well under 2%.
	init := skg.Initiator{A: 0.9, B: 0.5, C: 0.2}
	g := testGraph(7, init, 5)
	rng := randx.New(1)
	s := newState(g, 7, init, rng)
	got := s.ll()
	want := exactLL(g, 7, init, s.sigma)
	if rel := math.Abs(got-want) / math.Abs(want); rel > 0.02 {
		t.Fatalf("approx ll = %v, exact = %v (rel %.4f)", got, want, rel)
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	init := skg.Initiator{A: 0.85, B: 0.5, C: 0.3}
	g := testGraph(6, init, 11)
	rng := randx.New(2)
	s := newState(g, 6, init, rng)
	ga, gb, gc := s.grad()
	const h = 1e-6
	numeric := func(bump func(skg.Initiator) skg.Initiator) float64 {
		up := newState(g, 6, bump(init), rng)
		copy(up.sigma, s.sigma)
		down := newState(g, 6, init, rng)
		copy(down.sigma, s.sigma)
		return (up.ll() - down.ll()) / h
	}
	na := numeric(func(i skg.Initiator) skg.Initiator { i.A += h; return i })
	nb := numeric(func(i skg.Initiator) skg.Initiator { i.B += h; return i })
	nc := numeric(func(i skg.Initiator) skg.Initiator { i.C += h; return i })
	for _, pair := range [][2]float64{{ga, na}, {gb, nb}, {gc, nc}} {
		if math.Abs(pair[0]-pair[1]) > 1e-3*(1+math.Abs(pair[1])) {
			t.Fatalf("gradient mismatch: analytic %v vs numeric %v (all: %v,%v,%v vs %v,%v,%v)",
				pair[0], pair[1], ga, gb, gc, na, nb, nc)
		}
	}
}

func TestMetropolisDoesNotDegradeLikelihood(t *testing.T) {
	// Starting from a random permutation, MCMC should (statistically)
	// increase the likelihood; at minimum it must not collapse.
	init := skg.Initiator{A: 0.9, B: 0.5, C: 0.2}
	g := testGraph(7, init, 9)
	rng := randx.New(3)
	s := newState(g, 7, init, rng)
	// Scramble sigma to a random permutation.
	perm := rng.Perm(s.n)
	copy(s.sigma, perm)
	before := s.ll()
	s.metropolis(20*s.n, rng)
	after := s.ll()
	if after < before-1 {
		t.Fatalf("likelihood degraded: %v -> %v", before, after)
	}
	if after <= before {
		t.Logf("note: ll %v -> %v (no improvement)", before, after)
	}
}

func TestDegreeSeededPermutationBeatsRandom(t *testing.T) {
	init := skg.Initiator{A: 0.95, B: 0.5, C: 0.15}
	g := testGraph(8, init, 13)
	rng := randx.New(4)
	s := newState(g, 8, init, rng)
	seeded := s.ll()
	var worse int
	for trial := 0; trial < 10; trial++ {
		copy(s.sigma, rng.Perm(s.n))
		if s.ll() < seeded {
			worse++
		}
	}
	if worse < 8 {
		t.Fatalf("degree-seeded permutation beaten by %d/10 random permutations", 10-worse)
	}
}

func TestFitRecoversParameters(t *testing.T) {
	truth := skg.Initiator{A: 0.9, B: 0.5, C: 0.2}
	g := testGraph(9, truth, 21)
	res, err := Fit(g, Options{K: 9, Iters: 40, Rng: randx.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Init.A-truth.A) > 0.15 ||
		math.Abs(res.Init.B-truth.B) > 0.15 ||
		math.Abs(res.Init.C-truth.C) > 0.15 {
		t.Fatalf("truth %v, recovered %v", truth, res.Init)
	}
}

func TestFitImprovesLikelihoodOverInit(t *testing.T) {
	truth := skg.Initiator{A: 0.95, B: 0.45, C: 0.25}
	g := testGraph(8, truth, 33)
	rng := randx.New(6)
	start := skg.Initiator{A: 0.9, B: 0.6, C: 0.2}
	ll0, err := LogLikelihood(g, 8, start, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(g, Options{K: 8, Iters: 40, Init: start, Rng: randx.New(6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikelihood < ll0 {
		t.Fatalf("fit did not improve likelihood: %v -> %v", ll0, res.LogLikelihood)
	}
}

func TestFitInfersK(t *testing.T) {
	g := testGraph(6, skg.Initiator{A: 0.9, B: 0.5, C: 0.2}, 2)
	res, err := Fit(g, Options{Iters: 2, Rng: randx.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Fatalf("inferred K = %d, want 6", res.K)
	}
}

func TestFitRejectsTooSmallK(t *testing.T) {
	g := graph.Complete(64)
	if _, err := Fit(g, Options{K: 5, Iters: 1, Rng: randx.New(1)}); err == nil {
		t.Fatal("expected error: 2^5 < 64... wait, 2^5 = 32 < 64")
	}
}

func TestFitRequiresRng(t *testing.T) {
	g := graph.Complete(8)
	if _, err := Fit(g, Options{K: 3}); err == nil {
		t.Fatal("expected error without Rng")
	}
}

func TestFitHandlesPaddedNodes(t *testing.T) {
	// 40 nodes require K = 6 (64 slots): 24 isolated padding slots.
	b := graph.NewBuilder(40)
	for i := 0; i < 39; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	res, err := Fit(g, Options{Iters: 5, Rng: randx.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Fatalf("K = %d, want 6", res.K)
	}
	if err := res.Init.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitCanonical(t *testing.T) {
	g := testGraph(7, skg.Initiator{A: 0.9, B: 0.4, C: 0.3}, 17)
	res, err := Fit(g, Options{K: 7, Iters: 15, Rng: randx.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Init.A < res.Init.C {
		t.Fatalf("result not canonical: %v", res.Init)
	}
}
