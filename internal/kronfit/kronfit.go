// Package kronfit implements KronFit, the Leskovec–Faloutsos (ICML'07)
// approximate maximum-likelihood estimator for stochastic Kronecker
// graph parameters — the second baseline of the paper's Table 1.
//
// The likelihood of a graph under an SKG requires a node correspondence
// σ between graph nodes and Kronecker node labels:
//
//	ll(Θ, σ) = Σ_{(i,j)∈E} log P_{σ(i)σ(j)} + Σ_{(i,j)∉E} log(1 − P_{σ(i)σ(j)})
//
// over ordered pairs (an undirected graph contributes both directions of
// each edge). KronFit ascends an estimate of E_σ[∇ll] where σ is sampled
// with a Metropolis chain over node swaps. The "empty graph" sum over
// all pairs is permutation invariant and evaluated in closed form with a
// second-order Taylor expansion (log(1−p) ≈ −p − p²/2); the diagonal is
// handled exactly, and per-edge terms use exact logarithms.
//
// Because the 2×2 initiator admits only (K+1)(K+2)/2 distinct per-pair
// probabilities, the per-edge likelihood and gradient kernels are
// tabulated per (na, nc) quadrant-count pair on every parameter update
// (see state.setTheta), leaving no transcendental calls in the
// Metropolis, likelihood, or gradient inner loops.
package kronfit

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dpkron/internal/graph"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// Options configures a fit.
type Options struct {
	// K is the Kronecker power; 2^K must be >= g.NumNodes(). 0 infers
	// the smallest adequate K.
	K int
	// Init is the starting initiator (default {0.9, 0.6, 0.2}).
	Init skg.Initiator
	// Iters is the number of gradient ascent steps (default 60).
	Iters int
	// PermSamples is the number of permutation samples averaged per
	// gradient step (default 4).
	PermSamples int
	// SwapsPerSample is the number of Metropolis proposals between
	// samples (default n/4).
	SwapsPerSample int
	// WarmupSwaps is the per-iteration burn-in after the permutation is
	// reset to the degree-seeded arrangement (default 2n). Restarting
	// the chain every gradient step keeps it from descending into
	// permutations that overfit the current parameters: with an
	// unbounded chain the Metropolis acceptance is effectively greedy
	// (per-swap likelihood deltas are large), and profile-likelihood
	// overfitting drags the parameters toward a degenerate
	// core–periphery solution. The restarted chain reproduces the
	// recovery quality reported for KronFit in the paper's Table 1.
	WarmupSwaps int
	// resetPerm is always enabled by fill; it exists so the restart
	// behaviour is explicit at the use site.
	resetPerm bool
	// Step0 is the initial normalized-gradient step size (default 0.04);
	// step t uses Step0/(1+t/15).
	Step0 float64
	// MinParam and MaxParam clamp initiator entries away from {0, 1}
	// where the log-likelihood degenerates (defaults 0.001 and 0.9999).
	MinParam, MaxParam float64
	// Rng is required.
	Rng *randx.Rand
	// Workers bounds the goroutines used for the per-edge likelihood and
	// gradient sums (the Metropolis chain itself is sequential); <= 0
	// selects runtime.GOMAXPROCS(0). The fixed-shard ordered reduction
	// makes the fit identical for every worker count. FitCtx ignores
	// this field: the pipeline Run's budget is authoritative.
	Workers int
}

func (o *Options) fill(n int) error {
	if o.K == 0 {
		o.K = 1
		for 1<<o.K < n {
			o.K++
		}
	}
	if 1<<o.K < n {
		return fmt.Errorf("kronfit: 2^%d < %d nodes", o.K, n)
	}
	if o.Init == (skg.Initiator{}) {
		o.Init = skg.Initiator{A: 0.9, B: 0.6, C: 0.2}
	}
	if o.Iters == 0 {
		o.Iters = 60
	}
	if o.PermSamples == 0 {
		o.PermSamples = 4
	}
	if o.SwapsPerSample == 0 {
		o.SwapsPerSample = (1 << o.K) / 4
	}
	if o.WarmupSwaps == 0 {
		o.WarmupSwaps = 2 << o.K
	}
	o.resetPerm = true
	if o.Step0 == 0 {
		o.Step0 = 0.04
	}
	if o.MinParam == 0 {
		o.MinParam = 0.001
	}
	if o.MaxParam == 0 {
		o.MaxParam = 0.9999
	}
	if o.Rng == nil {
		return fmt.Errorf("kronfit: Options.Rng is required")
	}
	return nil
}

// Result is a fitted initiator with diagnostics.
type Result struct {
	Init          skg.Initiator
	K             int
	LogLikelihood float64 // approximate ll at the final parameters/permutation
	Iters         int
}

// state carries the MCMC configuration: the graph embedded in 2^K
// Kronecker slots via permutation sigma.
//
// With a 2×2 initiator there are only (K+1)(K+2)/2 distinct per-pair
// probabilities — one per quadrant-count pair (na, nc) — so every
// per-edge transcendental (math.Exp, math.Log1p and the gradient
// divisions) is precomputed into flat tables on setTheta, and the
// Metropolis/likelihood/gradient inner loops reduce to two popcounts
// and an array read per edge. The tables are filled with exactly the
// expressions the direct formulas used, so every sum and every
// Metropolis accept decision is bit-identical to the untabulated code.
type state struct {
	g       *graph.Graph
	k       int
	n       int // 2^k slots; nodes >= g.NumNodes() are isolated padding
	sigma   []int
	theta   skg.Initiator
	la      float64 // log A
	lb      float64
	lc      float64
	workers int // resolved goroutine bound for ll/grad sums
	// Lookup tables indexed by na*(k+1)+nc (entries with na+nc > k are
	// unused); refreshed by setTheta.
	edgeTab []float64 // log P − log(1−P)
	gradTab []float64 // the three per-edge gradient coefficients, interleaved
}

func newState(g *graph.Graph, k int, init skg.Initiator, rng *randx.Rand) *state {
	n := 1 << k
	s := &state{g: g, k: k, n: n, sigma: make([]int, n), workers: 1}
	s.edgeTab = make([]float64, (k+1)*(k+1))
	s.gradTab = make([]float64, 3*(k+1)*(k+1))
	s.setTheta(init)
	// Initialize sigma greedily: high-degree graph nodes take Kronecker
	// labels with few 1-bits (highest expected degree when a+b >= b+c,
	// the canonical orientation).
	bydeg := make([]int, n)
	for i := range bydeg {
		bydeg[i] = i
	}
	deg := func(i int) int {
		if i < g.NumNodes() {
			return g.Degree(i)
		}
		return 0
	}
	sort.Slice(bydeg, func(x, y int) bool { return deg(bydeg[x]) > deg(bydeg[y]) })
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	sort.Slice(labels, func(x, y int) bool {
		px, py := bits.OnesCount64(uint64(labels[x])), bits.OnesCount64(uint64(labels[y]))
		if px != py {
			return px < py
		}
		return labels[x] < labels[y]
	})
	for rank, node := range bydeg {
		s.sigma[node] = labels[rank]
	}
	_ = rng
	return s
}

func (s *state) setTheta(t skg.Initiator) {
	s.theta = t
	s.la = math.Log(t.A)
	s.lb = math.Log(t.B)
	s.lc = math.Log(t.C)
	// Refresh the per-(na, nc) kernels. The expressions mirror the
	// direct per-edge formulas term for term (see edgeTerm and grad), so
	// the tabulated values are the exact floats the direct code produced.
	a, b, c := t.A, t.B, t.C
	for na := 0; na <= s.k; na++ {
		for nc := 0; na+nc <= s.k; nc++ {
			nb := s.k - na - nc
			logP := float64(na)*s.la + float64(nb)*s.lb + float64(nc)*s.lc
			p := math.Exp(logP)
			if p > 1-1e-12 {
				p = 1 - 1e-12
			}
			idx := na*(s.k+1) + nc
			s.edgeTab[idx] = logP - math.Log1p(-p)
			inv := 1 / (1 - p)
			s.gradTab[3*idx] = 2 * float64(na) / a * inv
			s.gradTab[3*idx+1] = 2 * float64(nb) / b * inv
			s.gradTab[3*idx+2] = 2 * float64(nc) / c * inv
		}
	}
}

// pairIndex returns the table index for Kronecker labels u, v: with
// nc = popcount(u&v) ones-quadrants and na = k − popcount(u|v)
// zero-quadrants, the index is na*(k+1)+nc.
func (s *state) pairIndex(u, v int) int {
	nc := bits.OnesCount64(uint64(u & v))
	na := s.k - bits.OnesCount64(uint64(u|v))
	return na*(s.k+1) + nc
}

// quadrants returns the initiator cell counts for Kronecker labels u, v.
func (s *state) quadrants(u, v int) (na, nb, nc int) {
	nc = bits.OnesCount64(uint64(u & v))
	na = s.k - bits.OnesCount64(uint64(u|v))
	nb = s.k - na - nc
	return
}

// edgeTerm returns log P_uv − log(1 − P_uv) for Kronecker labels u, v,
// by table lookup.
func (s *state) edgeTerm(u, v int) float64 {
	return s.edgeTab[s.pairIndex(u, v)]
}

// edgeTermDirect is the untabulated formula edgeTerm's table is filled
// from; it exists as the reference for the table-consistency tests.
func (s *state) edgeTermDirect(u, v int) float64 {
	na, nb, nc := s.quadrants(u, v)
	logP := float64(na)*s.la + float64(nb)*s.lb + float64(nc)*s.lc
	p := math.Exp(logP)
	if p > 1-1e-12 {
		p = 1 - 1e-12
	}
	return logP - math.Log1p(-p)
}

// emptyLL approximates Σ_{u≠v} log(1−P_uv) over all ordered off-diagonal
// Kronecker pairs: the Taylor series over all pairs minus the exact
// diagonal contribution.
func (s *state) emptyLL() float64 {
	a, b, c := s.theta.A, s.theta.B, s.theta.C
	k := float64(s.k)
	s1 := math.Pow(a+2*b+c, k)
	s2 := math.Pow(a*a+2*b*b+c*c, k)
	total := -s1 - s2/2
	// Exact diagonal: P_uu = a^{k-i} c^i for popcount(u) = i.
	diag := 0.0
	choose := 1.0
	for i := 0; i <= s.k; i++ {
		p := math.Pow(a, k-float64(i)) * math.Pow(c, float64(i))
		if p > 1-1e-12 {
			p = 1 - 1e-12
		}
		diag += choose * math.Log1p(-p)
		choose = choose * float64(s.k-i) / float64(i+1)
	}
	return total - diag
}

// emptyGrad returns the gradient of emptyLL in (a, b, c).
func (s *state) emptyGrad() (ga, gb, gc float64) {
	a, b, c := s.theta.A, s.theta.B, s.theta.C
	k := float64(s.k)
	s1p := k * math.Pow(a+2*b+c, k-1)
	s2p := k * math.Pow(a*a+2*b*b+c*c, k-1)
	ga = -s1p - a*s2p
	gb = -2*s1p - 2*b*s2p
	gc = -s1p - c*s2p
	// Diagonal (exact), derivative of −Σ C(k,i) log(1−a^{k−i}c^i).
	choose := 1.0
	for i := 0; i <= s.k; i++ {
		ki := float64(s.k - i)
		fi := float64(i)
		p := math.Pow(a, ki) * math.Pow(c, fi)
		if p > 1-1e-12 {
			p = 1 - 1e-12
		}
		q := choose / (1 - p)
		if a > 0 {
			ga += q * ki * p / a
		}
		if c > 0 {
			gc += q * fi * p / c
		}
		choose = choose * float64(s.k-i) / float64(i+1)
	}
	return ga, gb, gc
}

// ll returns the approximate log-likelihood at the current permutation.
// The per-edge sum shards over node ranges with a fixed-shard ordered
// reduction, so the float total is identical for every worker count.
func (s *state) ll() float64 {
	N := s.g.NumNodes()
	edges := parallel.SumFloat64(s.workers, N, func(lo, hi int) float64 {
		total := 0.0
		for u := lo; u < hi; u++ {
			su := s.sigma[u]
			for _, w := range s.g.Neighbors(u) {
				if int(w) > u {
					total += 2 * s.edgeTerm(su, s.sigma[w])
				}
			}
		}
		return total
	})
	return s.emptyLL() + edges
}

// grad returns the gradient of ll at the current permutation, with the
// per-edge sums sharded like ll.
func (s *state) grad() (ga, gb, gc float64) {
	ga, gb, gc = s.emptyGrad()
	N := s.g.NumNodes()
	blocks := parallel.Blocks(N, parallel.DefaultShards)
	parts := make([][3]float64, len(blocks))
	parallel.Run(s.workers, len(blocks), func(sh int) {
		var pa, pb, pc float64
		for u := blocks[sh].Lo; u < blocks[sh].Hi; u++ {
			su := s.sigma[u]
			for _, w := range s.g.Neighbors(u) {
				if int(w) <= u {
					continue
				}
				// d/dθ [log P − log(1−P)] = (n_θ/θ) / (1−P), doubled for
				// the two edge directions; tabulated per (na, nc).
				t := s.gradTab[3*s.pairIndex(su, s.sigma[w]):]
				pa += t[0]
				pb += t[1]
				pc += t[2]
			}
		}
		parts[sh] = [3]float64{pa, pb, pc}
	})
	for _, p := range parts {
		ga += p[0]
		gb += p[1]
		gc += p[2]
	}
	return ga, gb, gc
}

// swapDelta computes ll(σ with x,y swapped) − ll(σ) in O((d_x+d_y)·1).
func (s *state) swapDelta(x, y int) float64 {
	sx, sy := s.sigma[x], s.sigma[y]
	delta := 0.0
	N := s.g.NumNodes()
	if x < N {
		for _, w := range s.g.Neighbors(x) {
			if int(w) == y {
				continue // P is symmetric: the (x,y) edge term is swap-invariant
			}
			sw := s.sigma[w]
			delta += s.edgeTerm(sy, sw) - s.edgeTerm(sx, sw)
		}
	}
	if y < N {
		for _, w := range s.g.Neighbors(y) {
			if int(w) == x {
				continue
			}
			sw := s.sigma[w]
			delta += s.edgeTerm(sx, sw) - s.edgeTerm(sy, sw)
		}
	}
	return 2 * delta
}

// metropolis performs count swap proposals.
func (s *state) metropolis(count int, rng *randx.Rand) {
	for t := 0; t < count; t++ {
		x := rng.IntN(s.n)
		y := rng.IntN(s.n)
		if x == y {
			continue
		}
		d := s.swapDelta(x, y)
		if d >= 0 || rng.Float64() < math.Exp(d) {
			s.sigma[x], s.sigma[y] = s.sigma[y], s.sigma[x]
		}
	}
}

// Fit estimates the initiator by stochastic gradient ascent over the
// permutation-sampled likelihood. The returned initiator is canonical.
func Fit(g *graph.Graph, opts Options) (Result, error) {
	return FitCtx(pipeline.New(nil, opts.Workers, nil), g, opts)
}

// FitCtx is Fit under a pipeline Run: the worker budget comes from run
// (opts.Workers is ignored), the context is checked once per gradient
// iteration, and a "kronfit" stage emits start/done events plus an
// incremental progress fraction per iteration. A run that is never
// cancelled fits the exact Fit result for the same options; a cancelled
// run returns run.Err().
func FitCtx(run *pipeline.Run, g *graph.Graph, opts Options) (Result, error) {
	if err := opts.fill(g.NumNodes()); err != nil {
		return Result{}, err
	}
	clamp := func(x float64) float64 {
		return math.Min(opts.MaxParam, math.Max(opts.MinParam, x))
	}
	done := run.Stage("kronfit")
	init := skg.Initiator{A: clamp(opts.Init.A), B: clamp(opts.Init.B), C: clamp(opts.Init.C)}
	s := newState(g, opts.K, init, opts.Rng)
	s.workers = run.Workers()
	seedPerm := append([]int(nil), s.sigma...)
	for t := 0; t < opts.Iters; t++ {
		if err := run.Err(); err != nil {
			return Result{}, err
		}
		if t > 0 {
			run.Progress("kronfit", float64(t)/float64(opts.Iters))
		}
		if opts.resetPerm {
			copy(s.sigma, seedPerm)
		}
		s.metropolis(opts.WarmupSwaps, opts.Rng)
		var ga, gb, gc float64
		for m := 0; m < opts.PermSamples; m++ {
			s.metropolis(opts.SwapsPerSample, opts.Rng)
			a, b, c := s.grad()
			ga += a
			gb += b
			gc += c
		}
		ga /= float64(opts.PermSamples)
		gb /= float64(opts.PermSamples)
		gc /= float64(opts.PermSamples)
		norm := math.Sqrt(ga*ga + gb*gb + gc*gc)
		if norm < 1e-12 {
			break
		}
		step := opts.Step0 / (1 + float64(t)/15)
		s.setTheta(skg.Initiator{
			A: clamp(s.theta.A + step*ga/norm),
			B: clamp(s.theta.B + step*gb/norm),
			C: clamp(s.theta.C + step*gc/norm),
		})
	}
	if err := run.Err(); err != nil {
		return Result{}, err
	}
	res := Result{
		Init:          s.theta.Canonical(),
		K:             opts.K,
		LogLikelihood: s.ll(),
		Iters:         opts.Iters,
	}
	done()
	return res, nil
}

// LogLikelihood returns the approximate log-likelihood of g under the
// given initiator at power k, using the degree-seeded permutation
// (no MCMC). It is primarily a diagnostic and testing hook.
func LogLikelihood(g *graph.Graph, k int, init skg.Initiator, rng *randx.Rand) (float64, error) {
	opts := Options{K: k, Init: init, Rng: rng}
	if err := opts.fill(g.NumNodes()); err != nil {
		return 0, err
	}
	s := newState(g, opts.K, opts.Init, rng)
	s.workers = parallel.Normalize(opts.Workers)
	return s.ll(), nil
}
