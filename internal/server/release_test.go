package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/release"
)

// newCacheServer builds a server with a ledger and a release cache
// rooted in fresh temp dirs, returning both handles for direct
// inspection.
func newCacheServer(t *testing.T, extra func(*Options)) (*accountant.Ledger, *release.Cache, *httptest.Server) {
	t.Helper()
	led, err := accountant.Open(filepath.Join(t.TempDir(), "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := release.Open(filepath.Join(t.TempDir(), "releases"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 2, MaxJobs: 2, Ledger: led, Releases: rc}
	if extra != nil {
		extra(&opts)
	}
	_, ts := newTestServer(t, opts)
	return led, rc, ts
}

// stripCacheMarkers removes the fields a cached response legitimately
// adds or omits relative to the cold response it memoized: the
// cached/release markers, and remaining (ledger state at serve time,
// absent on hits because a hit never touches the ledger). Everything
// else must be identical.
func stripCacheMarkers(result map[string]any) string {
	clean := map[string]any{}
	for k, v := range result {
		switch k {
		case "cached", "release", "remaining":
		default:
			clean[k] = v
		}
	}
	b, _ := json.Marshal(clean)
	return string(b)
}

// TestServerSingleFlightRace is the headline coalescing proof: 64
// goroutines submit the identical private fit against a budget that
// affords exactly one, simultaneously. Exactly one ledger debit may
// land, exactly one job may execute, no caller may be refused, and
// every caller must end up with the same release bytes. Run under
// -race in CI.
func TestServerSingleFlightRace(t *testing.T) {
	led, _, ts := newCacheServer(t, nil)

	edges := testEdgeList(t, 7)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	// Budget for exactly one (0.4, 0.01) fit: a second debit would be
	// refused with 429, so any double debit is loud, not latent.
	if err := led.SetBudget(ds, dp.Budget{Eps: 0.4, Delta: 0.01}); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(FitRequest{
		Method: "private", Eps: 0.4, Delta: 0.01, K: 7, Seed: 5,
		EdgeList: edges,
	})
	if err != nil {
		t.Fatal(err)
	}

	const callers = 64
	type reply struct {
		code int
		body map[string]any
		err  error
	}
	replies := make([]reply, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait() // maximize simultaneity
			resp, err := http.Post(ts.URL+"/v1/fit", "application/json", bytes.NewReader(body))
			if err != nil {
				replies[i].err = err
				return
			}
			defer resp.Body.Close()
			replies[i].code = resp.StatusCode
			replies[i].err = json.NewDecoder(resp.Body).Decode(&replies[i].body)
		}(i)
	}
	start.Done()
	done.Wait()

	// No caller was refused, and the in-flight callers all coalesced
	// onto one job id; late callers may instead have been served the
	// already-cached release (200, different job id, cached marker).
	flightIDs := map[string]bool{}
	var ids []string
	for i, r := range replies {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if r.code != http.StatusAccepted && r.code != http.StatusOK {
			t.Fatalf("caller %d: status %d, want 200/202 (%v)", i, r.code, r.body)
		}
		id, _ := r.body["id"].(string)
		if id == "" {
			t.Fatalf("caller %d: no job id in %v", i, r.body)
		}
		ids = append(ids, id)
		if r.code == http.StatusAccepted {
			flightIDs[id] = true
		}
	}
	if len(flightIDs) > 1 {
		t.Fatalf("concurrent identical fits spread over %d jobs %v, want 1", len(flightIDs), flightIDs)
	}

	// Every caller's job resolves done with the identical release bytes
	// (markers aside).
	want := ""
	for i, id := range ids {
		job := pollJob(t, ts.URL, id, 60*time.Second)
		if job["status"] != StatusDone {
			t.Fatalf("caller %d job %s ended %v: %v", i, id, job["status"], job)
		}
		result, _ := job["result"].(map[string]any)
		if result == nil {
			t.Fatalf("caller %d job %s has no result", i, id)
		}
		got := stripCacheMarkers(result)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("caller %d release differs:\n got %s\nwant %s", i, got, want)
		}
	}

	// Exactly one ledger debit.
	acct, ok := led.Account(ds)
	if !ok {
		t.Fatal("dataset has no ledger account")
	}
	if len(acct.Receipts) != 1 {
		t.Fatalf("ledger holds %d receipts, want exactly 1", len(acct.Receipts))
	}
	if rem := acct.Remaining(); rem.Eps > 1e-9 {
		t.Fatalf("remaining ε = %v after the single debit, want ~0", rem.Eps)
	}

	// Exactly one underlying execution: of all fit jobs, exactly one is
	// a cold (uncached) run; any others are cache-served registrations.
	code, resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: %d", code)
	}
	cold := 0
	for _, item := range resp["jobs"].([]any) {
		j := item.(map[string]any)
		if j["kind"] != "fit/private" {
			continue
		}
		result, _ := j["result"].(map[string]any)
		if result == nil {
			t.Fatalf("fit job without result: %v", j)
		}
		if result["cached"] != true {
			cold++
		}
	}
	if cold != 1 {
		t.Fatalf("%d cold fit executions, want exactly 1", cold)
	}
}

// TestServerCacheHitZeroDebit: a repeated question is served 200 from
// the cache with the original receipt, a cached marker, and zero new
// ledger debits; a question differing in one key component misses and
// is refused by the exhausted budget.
func TestServerCacheHitZeroDebit(t *testing.T) {
	led, _, ts := newCacheServer(t, nil)

	edges := testEdgeList(t, 7)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	if err := led.SetBudget(ds, dp.Budget{Eps: 0.4, Delta: 0.01}); err != nil {
		t.Fatal(err)
	}
	fit := func(seed uint64) (int, map[string]any) {
		return doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
			Method: "private", Eps: 0.4, Delta: 0.01, K: 7, Seed: seed,
			EdgeList: edges,
		})
	}

	// Cold fit: the usual async job, one debit.
	code, resp := fit(5)
	if code != http.StatusAccepted {
		t.Fatalf("cold fit: status %d (%v)", code, resp)
	}
	job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("cold fit ended %v", job["status"])
	}
	coldResult := job["result"].(map[string]any)
	if coldResult["cached"] != nil {
		t.Fatalf("cold result carries a cached marker: %v", coldResult)
	}
	if coldResult["remaining"] == nil {
		t.Fatal("cold ledger-enforced result lacks remaining")
	}

	// Identical fit: answered 200 immediately, already done, cached
	// marker set, release id resolvable, receipt identical, no new
	// debit, and no remaining (the hit never touches the ledger).
	code, resp = fit(5)
	if code != http.StatusOK {
		t.Fatalf("cache hit: status %d, want 200 (%v)", code, resp)
	}
	if resp["status"] != StatusDone {
		t.Fatalf("cache hit status %v, want done", resp["status"])
	}
	hit := resp["result"].(map[string]any)
	if hit["cached"] != true {
		t.Fatalf("hit result lacks cached marker: %v", hit)
	}
	rel, _ := hit["release"].(string)
	if !strings.HasPrefix(rel, "rel-") {
		t.Fatalf("hit release id %q", rel)
	}
	if _, ok := hit["remaining"]; ok {
		t.Fatal("cache hit reports remaining; hits must not touch the ledger")
	}
	if got, want := stripCacheMarkers(hit), stripCacheMarkers(coldResult); got != want {
		t.Fatalf("hit differs from the fit it memoized:\n got %s\nwant %s", got, want)
	}
	if acct, _ := led.Account(ds); len(acct.Receipts) != 1 {
		t.Fatalf("cache hit debited the ledger: %d receipts", len(acct.Receipts))
	}

	// A different seed is a different question: cache miss, and the
	// exhausted budget refuses it — proving misses keep full admission
	// semantics.
	code, resp = fit(6)
	if code != http.StatusTooManyRequests {
		t.Fatalf("different-seed fit: status %d, want 429 (%v)", code, resp)
	}

	// Introspection: the release is listed and fetchable by id.
	code, resp = doJSON(t, http.MethodGet, ts.URL+"/v1/releases", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/releases: %d (%v)", code, resp)
	}
	releases := resp["releases"].([]any)
	if len(releases) != 1 {
		t.Fatalf("%d releases listed, want 1", len(releases))
	}
	meta := releases[0].(map[string]any)
	if meta["fingerprint"] != rel {
		t.Fatalf("listed fingerprint %v, want %v", meta["fingerprint"], rel)
	}
	if meta["payload"] != nil {
		t.Fatal("listing includes payloads")
	}
	code, resp = doJSON(t, http.MethodGet, ts.URL+"/v1/releases/"+rel, nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/releases/%s: %d (%v)", rel, code, resp)
	}
	key := resp["key"].(map[string]any)
	if key["dataset_id"] != ds || key["seed"] != 5.0 || key["eps"] != 0.4 {
		t.Fatalf("release key %v does not match the question", key)
	}
	if resp["payload"] == nil {
		t.Fatal("release info lacks payload")
	}

	// Hostile id: rejected as not-found, never a path lookup.
	code, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/releases/rel-..%2f..%2fpasswd", nil)
	if code != http.StatusNotFound {
		t.Fatalf("traversal release id: status %d, want 404", code)
	}
}

// TestServerCorruptReleaseRecomputed: a bit-flipped persisted entry is
// detected by a fresh server sharing the cache directory, evicted, and
// the fit transparently recomputed with a fresh debit — never served,
// never a 500.
func TestServerCorruptReleaseRecomputed(t *testing.T) {
	led, rc, ts := newCacheServer(t, nil)

	edges := testEdgeList(t, 7)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	// Budget for exactly two fits: the recompute's fresh debit fits,
	// a third would not.
	if err := led.SetBudget(ds, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	req := FitRequest{
		Method: "private", Eps: 0.4, Delta: 0.01, K: 7, Seed: 5,
		EdgeList: edges,
	}

	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", req)
	if code != http.StatusAccepted {
		t.Fatalf("cold fit: status %d (%v)", code, resp)
	}
	if job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("cold fit ended %v", job["status"])
	}

	// Flip a payload digit in the persisted entry.
	entries, err := filepath.Glob(filepath.Join(rc.Dir(), "rel-*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries = %v (%v)", entries, err)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte(`"payload"`))
	if i < 0 {
		t.Fatal("no payload in entry file")
	}
	j := bytes.IndexAny(data[i:], "0123456789")
	data[i+j] = '0' + ('9' - data[i+j])
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server (fresh LRU) over the same cache dir and ledger:
	// the corrupt entry must not be served — the fit runs again, with a
	// fresh debit.
	rc2, err := release.Open(rc.Dir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Options{Workers: 2, MaxJobs: 2, Ledger: led, Releases: rc2})

	code, resp = doJSON(t, http.MethodPost, ts2.URL+"/v1/fit", req)
	if code != http.StatusAccepted {
		t.Fatalf("fit over corrupt entry: status %d, want 202 recompute (%v)", code, resp)
	}
	if job := pollJob(t, ts2.URL, resp["id"].(string), 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("recompute ended %v", job["status"])
	}
	if acct, _ := led.Account(ds); len(acct.Receipts) != 2 {
		t.Fatalf("recompute after corruption left %d receipts, want 2 (fresh debit)", len(acct.Receipts))
	}

	// The rewritten entry is healthy again: the budget is exhausted,
	// yet the repeated question is served from the cache.
	code, resp = doJSON(t, http.MethodPost, ts2.URL+"/v1/fit", req)
	if code != http.StatusOK {
		t.Fatalf("fit after recompute: status %d, want 200 cache hit (%v)", code, resp)
	}
	if result := resp["result"].(map[string]any); result["cached"] != true {
		t.Fatalf("expected cached result, got %v", result)
	}
}

// TestServerFitByIDCacheHit: a repeated fit-by-dataset-id is answered
// from the cache before the graph is even loaded — pinned by deleting
// the stored dataset and asking again. The inferred power (k omitted)
// and its explicit equivalent share the entry.
func TestServerFitByIDCacheHit(t *testing.T) {
	st, err := dataset.Open(filepath.Join(t.TempDir(), "datasets"))
	if err != nil {
		t.Fatal(err)
	}
	led, _, ts := newCacheServer(t, func(o *Options) { o.Datasets = st })

	g, err := graph.ReadEdgeList(strings.NewReader(testEdgeList(t, 7)), 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := st.Put(g, "cache-test", "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := led.SetBudget(meta.ID, dp.Budget{Eps: 0.4, Delta: 0.01}); err != nil {
		t.Fatal(err)
	}

	// Cold fit by id, inferred power.
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "private", Eps: 0.4, Delta: 0.01, Seed: 5, DatasetID: meta.ID,
	})
	if code != http.StatusAccepted {
		t.Fatalf("cold fit-by-id: status %d (%v)", code, resp)
	}
	if job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("cold fit ended %v", job["status"])
	}

	// Delete the dataset; the cached answer must survive it, because a
	// hit never loads the graph. The explicit k equals the inferred
	// one, so both forms name the same question.
	if err := st.Delete(meta.ID); err != nil {
		t.Fatal(err)
	}
	code, resp = doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "private", Eps: 0.4, Delta: 0.01, K: 7, Seed: 5, DatasetID: meta.ID,
	})
	if code != http.StatusOK {
		t.Fatalf("fit-by-id after delete: status %d, want 200 cache hit (%v)", code, resp)
	}
	if result := resp["result"].(map[string]any); result["cached"] != true {
		t.Fatalf("expected cached result, got %v", result)
	}
	if acct, _ := led.Account(meta.ID); len(acct.Receipts) != 1 {
		t.Fatalf("fit-by-id hit debited the ledger: %d receipts", len(acct.Receipts))
	}
}

// TestServerReleasesRequireCache: the introspection routes 404 without
// a configured cache, matching the dataset routes' behavior.
func TestServerReleasesRequireCache(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	code, resp := doJSON(t, http.MethodGet, ts.URL+"/v1/releases", nil)
	if code != http.StatusNotFound {
		t.Fatalf("GET /v1/releases without cache: %d (%v)", code, resp)
	}
	if msg, _ := resp["error"].(string); !strings.Contains(msg, "release cache") {
		t.Fatalf("error message %q", msg)
	}
}
