package server

import (
	"context"
	"errors"
	"net/http"

	"dpkron/internal/accountant"
	"dpkron/internal/dp"
	"dpkron/internal/trace"
)

// tcKey carries the request's W3C trace context through its context.
type tcKey struct{}

// TraceContextFrom returns the trace context the middleware attached
// to ctx: the client's (valid traceparent header) or a generated one
// whose trace id was already echoed back. Zero outside a request.
func TraceContextFrom(ctx context.Context) trace.Context {
	tc, _ := ctx.Value(tcKey{}).(trace.Context)
	return tc
}

// startJobTrace builds the tracer and root span for a job-submitting
// request, joining the trace the middleware established (so the trace
// id a client received in the response traceparent finds this job's
// tree). Returns nils when tracing is off — every downstream use
// no-ops.
func (s *Server) startJobTrace(r *http.Request, kind string) (*trace.Tracer, *trace.Span) {
	if s.opts.Traces == nil {
		return nil, nil
	}
	tr := trace.New(TraceContextFrom(r.Context()))
	root := tr.Start(nil, kind, trace.String("request_id", RequestIDFrom(r.Context())))
	return tr, root
}

// auditDebit records the admission-time ledger decision on the debit
// span: one audit event per planned mechanism charge on success (the
// itemized ε/δ the ledger just accepted, plus the account's remaining
// budget), or a single refusal event carrying what was asked and what
// remained. Together with the per-run accountant events, this makes
// the trace the job's privacy-audit timeline.
func (s *Server) auditDebit(sp *trace.Span, dataset string, planned *accountant.Receipt, err error) {
	if sp == nil || planned == nil {
		return
	}
	if err != nil {
		attrs := []trace.Attr{
			trace.String("dataset", dataset),
			trace.Float("requested_eps", planned.Total.Eps),
			trace.Float("requested_delta", planned.Total.Delta),
			trace.String("error", err.Error()),
		}
		var refused *accountant.ExhaustedError
		if errors.As(err, &refused) {
			rem := refused.Remaining()
			attrs = append(attrs,
				trace.Float("remaining_eps", rem.Eps),
				trace.Float("remaining_delta", rem.Delta))
		}
		sp.Event("ledger-refusal", attrs...)
		return
	}
	var rem dp.Budget
	if s.opts.Ledger != nil && dataset != "" {
		rem = s.opts.Ledger.Remaining(dataset)
	}
	for _, c := range planned.Charges {
		sp.Event("ledger-debit",
			trace.String("dataset", dataset),
			trace.String("mechanism", c.Mechanism),
			trace.String("query", c.Query),
			trace.Float("eps", c.Eps),
			trace.Float("delta", c.Delta),
			trace.Float("remaining_eps", rem.Eps),
			trace.Float("remaining_delta", rem.Delta))
	}
}

// auditObserver builds the accountant Observer that turns each
// in-run mechanism charge (or refusal) into an audit event on the
// job's root span: mechanism name, ε/δ charged, and the run budget
// remaining after the decision. Returns nil when the span is nil, so
// an untraced accountant carries no observer at all.
func auditObserver(root *trace.Span) accountant.Observer {
	if root == nil {
		return nil
	}
	return func(c accountant.Charge, rem dp.Budget, err error) {
		attrs := []trace.Attr{
			trace.String("mechanism", c.Mechanism),
			trace.String("query", c.Query),
			trace.Float("eps", c.Eps),
			trace.Float("delta", c.Delta),
			trace.Float("remaining_eps", rem.Eps),
			trace.Float("remaining_delta", rem.Delta),
		}
		name := "accountant-debit"
		if err != nil {
			name = "accountant-refusal"
			attrs = append(attrs, trace.String("error", err.Error()))
		}
		root.Event(name, attrs...)
	}
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's span tree
// as JSON, or as a Chrome/Perfetto trace-event file with
// ?format=chrome (load it in chrome://tracing or ui.perfetto.dev).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Traces == nil {
		writeError(w, http.StatusNotFound, "tracing is not enabled (start the server with tracing on)")
		return
	}
	id := r.PathValue("id")
	tr, ok := s.opts.Traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for this job (unknown id, evicted with job history, or admitted before tracing)")
		return
	}
	tree := tr.Tree()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="`+id+`.trace.json"`)
		_ = trace.WriteChrome(w, tree)
		return
	}
	writeJSON(w, http.StatusOK, tree)
}
