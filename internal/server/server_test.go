package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// pollJob polls GET /v1/jobs/{id} until the job leaves the queued and
// running states or the deadline passes.
func pollJob(t *testing.T, base, id string, deadline time.Duration) map[string]any {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		code, job := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d (%v)", id, code, job)
		}
		switch job["status"] {
		case StatusDone, StatusFailed, StatusCancelled:
			return job
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s did not finish within %v: %v", id, deadline, job)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func testEdgeList(t *testing.T, k int) string {
	t.Helper()
	m, err := skg.NewModel(skg.Initiator{A: 0.95, B: 0.55, C: 0.3}, k)
	if err != nil {
		t.Fatal(err)
	}
	g := m.SampleExact(randx.New(4))
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestServerFitSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, MaxJobs: 2})

	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "private", Eps: 1, Delta: 0.05, K: 8, Seed: 3,
		EdgeList: testEdgeList(t, 8),
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/fit: status %d (%v)", code, resp)
	}
	id, _ := resp["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", resp)
	}

	job := pollJob(t, ts.URL, id, 60*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("fit job ended %v, want done: %v", job["status"], job)
	}
	result, _ := job["result"].(map[string]any)
	if result == nil {
		t.Fatalf("done job has no result: %v", job)
	}
	init, _ := result["initiator"].(map[string]any)
	if init == nil {
		t.Fatalf("result has no initiator: %v", result)
	}
	for _, f := range []string{"a", "b", "c"} {
		v, ok := init[f].(float64)
		if !ok || v < 0 || v > 1 {
			t.Errorf("initiator %s = %v, want float in [0, 1]", f, init[f])
		}
	}
	if prv, _ := result["privacy"].(map[string]any); prv == nil || prv["eps"] != 1.0 {
		t.Errorf("privacy block missing or wrong: %v", result["privacy"])
	}
	// Stage progress must have been recorded, ending with the moment fit.
	stages, _ := job["stages"].([]any)
	if len(stages) == 0 {
		t.Fatalf("no stage progress recorded: %v", job)
	}
	var names []string
	for _, st := range stages {
		m := st.(map[string]any)
		names = append(names, m["stage"].(string))
		if m["frac"].(float64) < 1 {
			t.Errorf("stage %v did not complete: frac %v", m["stage"], m["frac"])
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"algorithm1/degree-release", "algorithm1/triangle-release", "algorithm1/moment-fit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stage %q missing from progress %v", want, names)
		}
	}
}

func TestServerGenerateRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, MaxJobs: 2})
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.95, B: 0.55, C: 0.3, K: 8, Seed: 3, Method: "exact",
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/generate: status %d (%v)", code, resp)
	}
	job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("generate job ended %v: %v", job["status"], job)
	}
	result := job["result"].(map[string]any)
	if result["nodes"].(float64) != 256 {
		t.Errorf("nodes = %v, want 256", result["nodes"])
	}
	edgeList, _ := result["edgelist"].(string)
	g, err := graph.ReadEdgeList(strings.NewReader(edgeList), 256)
	if err != nil {
		t.Fatalf("result edge list unparsable: %v", err)
	}
	if float64(g.NumEdges()) != result["edges"].(float64) {
		t.Errorf("edge list has %d edges, result says %v", g.NumEdges(), result["edges"])
	}
	// The sampled graph must equal a local sample with the same seed:
	// the job API is deterministic per request.
	m, _ := skg.NewModel(skg.Initiator{A: 0.95, B: 0.55, C: 0.3}, 8)
	want := m.SampleExact(randx.New(3))
	if g.NumEdges() != want.NumEdges() {
		t.Errorf("server sample has %d edges, local sample %d", g.NumEdges(), want.NumEdges())
	}
}

func TestServerSubmitCancel(t *testing.T) {
	// One worker and one slot: the long first job occupies the slot.
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})

	// A big exact sample (k=13 → 67M pair flips on one goroutine) runs
	// long enough to be cancelled mid-flight.
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.99, B: 0.55, C: 0.35, K: 13, Seed: 5, Method: "exact", OmitEdges: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	id := resp["id"].(string)

	// Wait until the job is running and has reported a stage.
	stop := time.Now().Add(30 * time.Second)
	for {
		_, job := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
		if job["status"] == StatusRunning {
			break
		}
		if job["status"] == StatusDone {
			t.Skip("machine too fast for mid-run cancellation; covered by queued-cancel below")
		}
		if time.Now().After(stop) {
			t.Fatalf("job never started: %v", job)
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, cresp := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d (%v)", code, cresp)
	}
	job := pollJob(t, ts.URL, id, 30*time.Second)
	if job["status"] != StatusCancelled {
		t.Fatalf("job ended %v, want cancelled: %v", job["status"], job)
	}
	if _, hasResult := job["result"]; hasResult {
		t.Fatalf("cancelled job must not expose a result: %v", job)
	}
}

func TestServerQueuedJobCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	// Occupy the only slot.
	_, first := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.99, B: 0.55, C: 0.35, K: 13, Seed: 5, Method: "exact", OmitEdges: true,
	})
	firstID := first["id"].(string)
	// The second job queues behind it.
	_, second := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.9, B: 0.5, C: 0.3, K: 6, Seed: 1,
	})
	secondID := second["id"].(string)

	code, resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+secondID, nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE queued: status %d (%v)", code, resp)
	}
	job := pollJob(t, ts.URL, secondID, 10*time.Second)
	if job["status"] != StatusCancelled {
		t.Fatalf("queued job ended %v, want cancelled", job["status"])
	}
	// Clean up the long job so Close returns quickly.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+firstID, nil)
}

func TestServerValidationAndLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1, MaxQueue: 1})

	for name, tc := range map[string]struct {
		path string
		body any
	}{
		"missing graph":   {"/v1/fit", FitRequest{Method: "mom"}},
		"bad method":      {"/v1/fit", FitRequest{Method: "bogus", EdgeList: "0 1\n"}},
		"bad initiator":   {"/v1/generate", GenerateRequest{A: 2, B: 0.5, C: 0.5, K: 5}},
		"bad k":           {"/v1/generate", GenerateRequest{A: 0.9, B: 0.5, C: 0.2, K: 0}},
		"unknown field":   {"/v1/fit", map[string]any{"nope": 1}},
		"edges+edgelist":  {"/v1/fit", FitRequest{Edges: [][2]int{{0, 1}}, EdgeList: "0 1\n"}},
		"negative nodeid": {"/v1/fit", FitRequest{Edges: [][2]int{{-1, 1}}}},
		"nodes over cap":  {"/v1/fit", FitRequest{Nodes: maxGraphNodes + 1, EdgeList: "0 1\n"}},
		"edge id over cap": {"/v1/fit", FitRequest{
			Edges: [][2]int{{maxGraphNodes + 5, 1}},
		}},
		"edgelist id over cap": {"/v1/fit", FitRequest{
			EdgeList: fmt.Sprintf("0 %d\n", maxGraphNodes+5),
		}},
		"edgelist header over cap": {"/v1/fit", FitRequest{
			EdgeList: fmt.Sprintf("# Nodes: %d\n0 1\n", maxGraphNodes+5),
		}},
		"generate k over cap": {"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: maxGenerateK + 1,
		}},
		"exact k over cap": {"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: maxExactK + 1, Method: "exact",
		}},
		"target over cap": {"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: 10, Target: maxGenerateEdges + 1,
		}},
	} {
		code, resp := doJSON(t, http.MethodPost, ts.URL+tc.path, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, code, resp)
		}
	}

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job: status %d, want 404", code)
	}

	// Queue bound: with MaxQueue=1, a second active job is rejected.
	_, first := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.99, B: 0.55, C: 0.35, K: 13, Seed: 5, Method: "exact", OmitEdges: true,
	})
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.9, B: 0.5, C: 0.3, K: 6,
	})
	if code != http.StatusTooManyRequests {
		t.Errorf("over-queue submission: status %d, want 429 (%v)", code, resp)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+first["id"].(string), nil)

	// The jobs listing includes everything submitted.
	code, list := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", code)
	}
	if jobs, _ := list["jobs"].([]any); len(jobs) == 0 {
		t.Errorf("jobs listing empty after submissions")
	}

	if code, _ = doJSON(t, http.MethodGet, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

// TestServerHistoryEviction: finished jobs beyond MaxHistory are
// evicted oldest-first so a long-running server stays bounded.
func TestServerHistoryEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1, MaxHistory: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		_, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: 5, Seed: uint64(i + 1), OmitEdges: true,
		})
		id := resp["id"].(string)
		ids = append(ids, id)
		if job := pollJob(t, ts.URL, id, 30*time.Second); job["status"] != StatusDone {
			t.Fatalf("job %s ended %v", id, job["status"])
		}
	}
	// Eviction runs on finalize; the last finalize may race the final
	// poll, so allow a short settle.
	var kept int
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, list := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
		kept = len(list["jobs"].([]any))
		if kept <= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if kept > 2 {
		t.Errorf("retained %d finished jobs, want <= MaxHistory=2", kept)
	}
	// The oldest job is gone, the newest still pollable.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("evicted job still resolvable: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[4], nil); code != http.StatusOK {
		t.Errorf("newest job not resolvable: status %d", code)
	}
}

// TestServerLedgerEnforcement: with a ledger configured, a sequence of
// private fits against one dataset is admitted while the remaining ε
// covers the request and rejected with 429 (plus a remaining-budget
// body) exactly when it no longer does.
func TestServerLedgerEnforcement(t *testing.T) {
	led, err := accountant.Open(filepath.Join(t.TempDir(), "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 2, MaxJobs: 2, Ledger: led})

	edges := testEdgeList(t, 8)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)

	fit := func() (int, map[string]any) {
		return doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
			Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, EdgeList: edges,
		})
	}

	// Default-deny: no budget configured yet → immediate 429.
	code, resp := fit()
	if code != http.StatusTooManyRequests {
		t.Fatalf("fit without budget: status %d, want 429 (%v)", code, resp)
	}
	if resp["dataset"] != ds {
		t.Errorf("429 body names dataset %v, want %v", resp["dataset"], ds)
	}

	// Budget for exactly two fits of (0.4, 0.01) plus ε slack that
	// cannot cover a third.
	if err := led.SetBudget(ds, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		code, resp = fit()
		if code != http.StatusAccepted {
			t.Fatalf("fit %d: status %d, want 202 (%v)", i, code, resp)
		}
		job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second)
		if job["status"] != StatusDone {
			t.Fatalf("fit %d ended %v: %v", i, job["status"], job)
		}
		result := job["result"].(map[string]any)
		// The finished job carries the spend receipt and the totals.
		spent, _ := result["spent"].(map[string]any)
		if spent == nil || spent["eps"].(float64) != 0.4 {
			t.Errorf("fit %d: spent = %v, want eps 0.4", i, result["spent"])
		}
		receipt, _ := result["receipt"].(map[string]any)
		if receipt == nil {
			t.Fatalf("fit %d: no receipt in result: %v", i, result)
		}
		if charges, _ := receipt["charges"].([]any); len(charges) != 2 {
			t.Errorf("fit %d: receipt has %d charges, want 2", i, len(receipt["charges"].([]any)))
		}
		if result["dataset"] != ds {
			t.Errorf("fit %d: result dataset %v, want %v", i, result["dataset"], ds)
		}
	}

	// Remaining ε is now 0.1 < 0.4: the third fit must be refused.
	code, resp = fit()
	if code != http.StatusTooManyRequests {
		t.Fatalf("third fit: status %d, want 429 (%v)", code, resp)
	}
	rem, _ := resp["remaining"].(map[string]any)
	if rem == nil {
		t.Fatalf("429 body lacks remaining budget: %v", resp)
	}
	if eps := rem["eps"].(float64); math.Abs(eps-0.1) > 1e-9 {
		t.Errorf("remaining eps = %v, want 0.1", eps)
	}

	// The budget endpoint reports the same account state.
	code, acct := doJSON(t, http.MethodGet, ts.URL+"/v1/budget/"+ds, nil)
	if code != http.StatusOK {
		t.Fatalf("GET budget: status %d (%v)", code, acct)
	}
	if spent := acct["spent"].(map[string]any); math.Abs(spent["eps"].(float64)-0.8) > 1e-9 {
		t.Errorf("budget endpoint spent = %v, want eps 0.8", acct["spent"])
	}
	if acct["receipts"].(float64) != 2 {
		t.Errorf("receipts = %v, want 2", acct["receipts"])
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/budget/ds-unknown", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown budget: status %d, want 404", code)
	}

	// Non-private fits are never charged, even over an exhausted account.
	code, resp = doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "mom", K: 8, EdgeList: edges,
	})
	if code != http.StatusAccepted {
		t.Fatalf("mom fit with exhausted ledger: status %d, want 202 (%v)", code, resp)
	}
	if job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("mom fit ended %v", job["status"])
	}

	// The spend survives the process: a reopened ledger agrees.
	led2, err := accountant.Open(led.Path())
	if err != nil {
		t.Fatal(err)
	}
	if rem := led2.Remaining(ds); math.Abs(rem.Eps-0.1) > 1e-9 {
		t.Errorf("reopened ledger remaining = %v, want eps 0.1", rem)
	}
}

// TestServerLedgerBadBudget: invalid budgets on private fits are 400s
// at the door, not failed jobs.
func TestServerLedgerBadBudget(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	for name, req := range map[string]FitRequest{
		"negative eps":   {Method: "private", Eps: -1, EdgeList: "0 1\n"},
		"delta over 1":   {Method: "private", Eps: 0.5, Delta: 1.5, EdgeList: "0 1\n"},
		"negative delta": {Method: "private", Eps: 0.5, Delta: -0.1, EdgeList: "0 1\n"},
	} {
		if code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, code, resp)
		}
	}
}

// TestServerWorkerSplit pins the budget split rule.
func TestServerWorkerSplit(t *testing.T) {
	for _, tc := range []struct {
		workers, maxJobs, want int
	}{
		{8, 2, 4},
		{4, 4, 1},
		{1, 2, 1},
		{3, 2, 1},
	} {
		s := New(Options{Workers: tc.workers, MaxJobs: tc.maxJobs})
		if s.jobWorkers != tc.want {
			t.Errorf("workers=%d maxJobs=%d: per-job budget %d, want %d",
				tc.workers, tc.maxJobs, s.jobWorkers, tc.want)
		}
		s.Close()
	}
}

// --- Dataset store endpoints (PR 5) ---

func newStoreServer(t *testing.T, led *accountant.Ledger) (*dataset.Store, *httptest.Server) {
	t.Helper()
	st, err := dataset.Open(filepath.Join(t.TempDir(), "datasets"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 2, MaxJobs: 2, Datasets: st, Ledger: led})
	return st, ts
}

// upload POSTs raw bytes to /v1/datasets and returns the status and
// decoded body.
func upload(t *testing.T, base string, body []byte, headers map[string]string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/datasets?name=test-graph", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	return resp.StatusCode, out
}

func gzipped(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerDatasetLifecycle(t *testing.T) {
	st, ts := newStoreServer(t, nil)

	edges := testEdgeList(t, 8)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantID := accountant.DatasetID(g)

	// First import: 201 with the content-addressed metadata.
	code, meta := upload(t, ts.URL, []byte(edges), nil)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d (%v)", code, meta)
	}
	if meta["id"] != wantID {
		t.Errorf("uploaded id %v, want %v", meta["id"], wantID)
	}
	if meta["nodes"].(float64) != float64(g.NumNodes()) || meta["edges"].(float64) != float64(g.NumEdges()) {
		t.Errorf("meta %v does not describe the graph (%d nodes, %d edges)", meta, g.NumNodes(), g.NumEdges())
	}
	if meta["source"] != "snap" || meta["name"] != "test-graph" {
		t.Errorf("meta source/name = %v/%v", meta["source"], meta["name"])
	}

	// Same bytes again: idempotent 200, same id.
	code, meta2 := upload(t, ts.URL, []byte(edges), nil)
	if code != http.StatusOK || meta2["id"] != wantID {
		t.Errorf("re-upload: status %d id %v, want 200 %v", code, meta2["id"], wantID)
	}

	// Gzipped upload of different content (sniffed, no header): 201.
	other := testEdgeList(t, 7)
	code, meta3 := upload(t, ts.URL, gzipped(t, []byte(other)), nil)
	if code != http.StatusCreated {
		t.Fatalf("gzip upload: status %d (%v)", code, meta3)
	}
	if meta3["source"] != "snap+gzip" {
		t.Errorf("gzip upload source = %v, want snap+gzip", meta3["source"])
	}
	otherID := meta3["id"].(string)

	// Listing shows both; metadata endpoint resolves each.
	code, list := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil)
	if code != http.StatusOK || len(list["datasets"].([]any)) != 2 {
		t.Fatalf("list: status %d (%v)", code, list)
	}
	code, one := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+wantID, nil)
	if code != http.StatusOK || one["id"] != wantID {
		t.Fatalf("meta: status %d (%v)", code, one)
	}

	// The store on disk holds the binary graph, bit-identical.
	back, err := st.Load(wantID)
	if err != nil || !g.Equal(back) {
		t.Fatalf("stored graph differs: %v", err)
	}

	// Fit by dataset id (non-private, no ledger needed).
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "mom", K: 8, DatasetID: wantID,
	})
	if code != http.StatusAccepted {
		t.Fatalf("fit by id: status %d (%v)", code, resp)
	}
	if job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("fit by id ended %v: %v", job["status"], job)
	}

	// Delete; the id then 404s on every route that takes one.
	if code, resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/"+otherID, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d (%v)", code, resp)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+otherID, nil); code != http.StatusNotFound {
		t.Errorf("meta after delete: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/"+otherID, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
	code, resp = doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{Method: "mom", K: 8, DatasetID: otherID})
	if code != http.StatusNotFound {
		t.Errorf("fit by deleted id: status %d, want 404 (%v)", code, resp)
	}
	if msg, _ := resp["error"].(string); msg == "" {
		t.Errorf("404 body lacks JSON error: %v", resp)
	}
}

// TestServerDatasetValidation: malformed uploads and requests answer
// with typed statuses, and unknown ids 404 consistently across fit,
// dataset and budget routes (the satellite contract).
func TestServerDatasetValidation(t *testing.T) {
	led, err := accountant.Open(filepath.Join(t.TempDir(), "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newStoreServer(t, led)

	// Bad uploads are 400s with a JSON error body.
	for name, body := range map[string][]byte{
		"unparsable":   []byte("0 x\n"),
		"node-id-bomb": []byte("0 999999999\n"),
		"corrupt-dpkg": append([]byte("DPKG"), 0xff, 0xff),
		"garbage-gzip": {0x1f, 0x8b, 0x00, 0x00},
	} {
		code, resp := upload(t, ts.URL, body, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, code, resp)
		}
		if msg, _ := resp["error"].(string); msg == "" {
			t.Errorf("%s: 400 body lacks JSON error: %v", name, resp)
		}
	}

	// Unknown dataset ids: 404 JSON on fit, dataset and budget routes.
	const ghost = "ds-00112233445566ff"
	for name, probe := range map[string]func() (int, map[string]any){
		"fit": func() (int, map[string]any) {
			return doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{Method: "private", DatasetID: ghost})
		},
		"meta":   func() (int, map[string]any) { return doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+ghost, nil) },
		"delete": func() (int, map[string]any) { return doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/"+ghost, nil) },
		"budget": func() (int, map[string]any) { return doJSON(t, http.MethodGet, ts.URL+"/v1/budget/"+ghost, nil) },
	} {
		code, resp := probe()
		if code != http.StatusNotFound {
			t.Errorf("%s with unknown id: status %d, want 404 (%v)", name, code, resp)
		}
		if msg, _ := resp["error"].(string); msg == "" {
			t.Errorf("%s: 404 body lacks JSON error: %v", name, resp)
		}
	}

	// A stored dataset with no ledger account reports its default-deny
	// zero budget instead of 404 (it is a known dataset).
	code, meta := upload(t, ts.URL, []byte(testEdgeList(t, 7)), nil)
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	code, acct := doJSON(t, http.MethodGet, ts.URL+"/v1/budget/"+meta["id"].(string), nil)
	if code != http.StatusOK {
		t.Fatalf("budget of stored-but-unbudgeted dataset: status %d (%v)", code, acct)
	}
	if rem := acct["remaining"].(map[string]any); rem["eps"].(float64) != 0 {
		t.Errorf("unbudgeted remaining = %v, want 0", acct["remaining"])
	}

	// Mixing inline and stored forms is a 400.
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "mom", DatasetID: meta["id"].(string), EdgeList: "0 1\n",
	})
	if code != http.StatusBadRequest {
		t.Errorf("dataset_id+edgelist: status %d, want 400 (%v)", code, resp)
	}
}

// TestServerDatasetUploadGzipBomb: MaxUploadBytes bounds the
// decompressed upload, not just the wire bytes, so a tiny gzipped
// body that expands past the cap is a 413 instead of an OOM.
func TestServerDatasetUploadGzipBomb(t *testing.T) {
	st, err := dataset.Open(filepath.Join(t.TempDir(), "datasets"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1, Datasets: st, MaxUploadBytes: 64 << 10})

	// A megabyte of repeated edges gzips to ~1 KiB: under the 64 KiB
	// wire cap, 16x over it decompressed.
	bomb := gzipped(t, bytes.Repeat([]byte("0 1\n"), 1<<18))
	if int64(len(bomb)) >= 64<<10 {
		t.Fatalf("bomb failed to compress under the wire cap (%d bytes)", len(bomb))
	}
	code, resp := upload(t, ts.URL, bomb, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip bomb upload: status %d, want 413 (%v)", code, resp)
	}
	if msg, _ := resp["error"].(string); msg == "" {
		t.Errorf("413 body lacks JSON error: %v", resp)
	}

	// An upload that fits both caps still lands.
	if code, resp := upload(t, ts.URL, gzipped(t, []byte(testEdgeList(t, 7))), nil); code != http.StatusCreated {
		t.Fatalf("in-cap gzip upload: status %d (%v)", code, resp)
	}
}

// TestServerGzipJSONBodyOverCap: a gzipped inline body that expands
// past the 64 MiB JSON cap is named as over-cap, not misreported as
// invalid JSON.
func TestServerGzipJSONBodyOverCap(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})

	// 65 MiB of JSON whitespace (> maxBodyBytes) gzips to ~65 KiB.
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	pad := bytes.Repeat([]byte(" "), 1<<20)
	for i := 0; i < 65; i++ {
		if _, err := gw.Write(pad); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gw.Write([]byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/fit", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap gzip body: status %d, want 413 (%v)", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "decompresses past") {
		t.Errorf("over-cap gzip body error %q does not name the limit", msg)
	}
}

// TestServerDatasetRoutesWithoutStore: a server started without a
// store answers 404 on the dataset surface.
func TestServerDatasetRoutesWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	if code, _ := upload(t, ts.URL, []byte("0 1\n"), nil); code != http.StatusNotFound {
		t.Errorf("upload without store: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil); code != http.StatusNotFound {
		t.Errorf("list without store: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{Method: "mom", DatasetID: "ds-0011223344556677"}); code != http.StatusNotFound {
		t.Errorf("fit by id without store: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{A: 0.9, B: 0.5, C: 0.3, K: 5, Store: true}); code != http.StatusNotFound {
		t.Errorf("generate-into-store without store: status %d, want 404", code)
	}
}

// TestServerGenerateIntoStore: a generate job can persist its sample
// as a dataset, and the returned id immediately works for fit-by-id.
func TestServerGenerateIntoStore(t *testing.T) {
	st, ts := newStoreServer(t, nil)
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.95, B: 0.55, C: 0.3, K: 8, Seed: 3, Method: "exact", Store: true, Name: "synthetic-8", OmitEdges: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("generate: status %d (%v)", code, resp)
	}
	job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("generate ended %v: %v", job["status"], job)
	}
	result := job["result"].(map[string]any)
	ds, _ := result["dataset"].(map[string]any)
	if ds == nil {
		t.Fatalf("result lacks dataset metadata: %v", result)
	}
	id := ds["id"].(string)
	if ds["name"] != "synthetic-8" || ds["source"] != "generated" {
		t.Errorf("stored meta name/source = %v/%v", ds["name"], ds["source"])
	}
	if _, hasEdges := result["edgelist"]; hasEdges {
		t.Errorf("omit_edges ignored: %v", result)
	}
	// The stored sample equals a local sample with the same seed.
	m, _ := skg.NewModel(skg.Initiator{A: 0.95, B: 0.55, C: 0.3}, 8)
	want := m.SampleExact(randx.New(3))
	back, err := st.Load(id)
	if err != nil || !want.Equal(back) {
		t.Fatalf("stored sample differs from local sample: %v", err)
	}
	// Round trip: fit the stored dataset by id.
	code, resp = doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{Method: "mom", K: 8, DatasetID: id})
	if code != http.StatusAccepted {
		t.Fatalf("fit stored sample: status %d (%v)", code, resp)
	}
	if job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("fit stored sample ended %v", job["status"])
	}
}

// TestServerInlineGzipBody: inline JSON job bodies are transparently
// gunzipped, via the Content-Encoding header or the sniffed magic.
func TestServerInlineGzipBody(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, MaxJobs: 2})
	body, err := json.Marshal(FitRequest{Method: "mom", K: 8, EdgeList: testEdgeList(t, 8)})
	if err != nil {
		t.Fatal(err)
	}
	for name, headers := range map[string]map[string]string{
		"content-encoding": {"Content-Encoding": "gzip"},
		"sniffed":          {},
	} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/fit", bytes.NewReader(gzipped(t, body)))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: status %d (%v)", name, resp.StatusCode, out)
		}
		if job := pollJob(t, ts.URL, out["id"].(string), 60*time.Second); job["status"] != StatusDone {
			t.Fatalf("%s: gzipped fit ended %v", name, job["status"])
		}
	}
}

// TestServerFitByIDWithLedger is the PR 5 acceptance sequence: import
// once over HTTP, fit twice by dataset id against one ledger, and hit
// 429 with the remaining budget exactly when the account runs dry.
func TestServerFitByIDWithLedger(t *testing.T) {
	led, err := accountant.Open(filepath.Join(t.TempDir(), "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newStoreServer(t, led)

	// Register the dataset once (gzipped upload for good measure).
	code, meta := upload(t, ts.URL, gzipped(t, []byte(testEdgeList(t, 8))), map[string]string{"Content-Encoding": "gzip"})
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d (%v)", code, meta)
	}
	id := meta["id"].(string)

	fitByID := func() (int, map[string]any) {
		return doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
			Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, DatasetID: id,
		})
	}

	// Default-deny before any budget exists.
	if code, resp := fitByID(); code != http.StatusTooManyRequests {
		t.Fatalf("fit without budget: status %d, want 429 (%v)", code, resp)
	}

	// Budget for exactly two (0.4, 0.01) fits; debits key to the
	// stored dataset id — no separate fingerprint account.
	if err := led.SetBudget(id, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		code, resp := fitByID()
		if code != http.StatusAccepted {
			t.Fatalf("fit %d: status %d, want 202 (%v)", i, code, resp)
		}
		job := pollJob(t, ts.URL, resp["id"].(string), 60*time.Second)
		if job["status"] != StatusDone {
			t.Fatalf("fit %d ended %v: %v", i, job["status"], job)
		}
		result := job["result"].(map[string]any)
		if result["dataset"] != id {
			t.Errorf("fit %d charged dataset %v, want %v", i, result["dataset"], id)
		}
	}

	// Third fit refused: 429 naming the dataset and the remainder.
	code, resp := fitByID()
	if code != http.StatusTooManyRequests {
		t.Fatalf("third fit: status %d, want 429 (%v)", code, resp)
	}
	if resp["dataset"] != id {
		t.Errorf("429 names dataset %v, want %v", resp["dataset"], id)
	}
	rem := resp["remaining"].(map[string]any)
	if eps := rem["eps"].(float64); math.Abs(eps-0.1) > 1e-9 {
		t.Errorf("remaining eps = %v, want 0.1", eps)
	}

	// The budget endpoint agrees, keyed by the same id.
	code, acct := doJSON(t, http.MethodGet, ts.URL+"/v1/budget/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET budget: status %d", code)
	}
	if spent := acct["spent"].(map[string]any); math.Abs(spent["eps"].(float64)-0.8) > 1e-9 {
		t.Errorf("spent = %v, want eps 0.8", acct["spent"])
	}
}
