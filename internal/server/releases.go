package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"dpkron/internal/core"
	"dpkron/internal/release"
)

// CachedFitResult is the response payload for a fit answered from the
// release cache: the memoized FitResult exactly as stored (original
// initiator, receipt and spend — post-processing is free, so the
// historical answer is the answer), flattened alongside the cache
// markers. Remaining is absent: a hit never touches the ledger, so
// there is no account state to report.
type CachedFitResult struct {
	FitResult
	// Cached marks the result as served from the release cache.
	Cached bool `json:"cached"`
	// Release is the cache entry's fingerprint ("rel-..."), resolvable
	// via GET /v1/releases/{id}.
	Release string `json:"release"`
}

// PrivateFitResult converts a completed Algorithm 1 run into the fit
// API's result payload — the same shape the release cache persists,
// so a CLI fit and a server fit memoize interchangeably. Remaining is
// left unset; the server's cold path fills it after the ledger debit.
func PrivateFitResult(res *core.Result, dataset string) FitResult {
	return FitResult{
		Method:    "private",
		Initiator: InitiatorJSON{res.Init.A, res.Init.B, res.Init.C},
		K:         res.K,
		Objective: &res.Moment.Objective,
		Features:  featuresJSON(res.Features),
		Privacy:   &res.Privacy,
		Spent:     &res.Receipt.Total,
		Receipt:   &res.Receipt,
		Dataset:   dataset,
	}
}

// serveReleaseLocked answers a private fit request from the release
// cache or an identical in-flight job, reporting whether the request
// was handled. Callers hold s.flightMu, which makes the
// miss-check-then-submit sequence in handleFit atomic: between "no
// entry, no flight" and the debit-bearing submit, no concurrent
// identical request can slip in a second debit.
//
// A cache hit is registered as an already-terminal job (visible in
// GET /v1/jobs, pollable by id) and answered 200 with the stored
// release plus cached/release markers — zero ledger debit, zero noise
// draws, zero queue slots. An in-flight identical fit coalesces: the
// caller receives the same job (202, or 200 once done), so every
// waiter observes the same receipt-bearing result.
func (s *Server) serveReleaseLocked(w http.ResponseWriter, key release.Key) bool {
	if e, ok := s.opts.Releases.Get(key); ok {
		var fr FitResult
		if err := json.Unmarshal(e.Payload, &fr); err == nil {
			j := s.completedJob("fit/private", CachedFitResult{FitResult: fr, Cached: true, Release: e.Fingerprint})
			writeJSON(w, http.StatusOK, j.view())
			return true
		}
		// A validated entry whose payload no longer decodes as a
		// FitResult (a schema from some other tool): treat as a miss and
		// recompute rather than serve an unusable answer.
	}
	if j := s.flights[key.Fingerprint()]; j != nil {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		if st == StatusDone || !terminalStatus(st) {
			status := http.StatusAccepted
			if st == StatusDone {
				status = http.StatusOK
			}
			s.met.coalesced.Inc()
			writeJSON(w, status, j.view())
			return true
		}
		// The previous flight failed or was cancelled without producing a
		// release; fall through and let this request start a fresh one.
	}
	return false
}

// forgetFlight drops a fingerprint's single-flight registration. Runs
// after the flight's Put (success) or failure, so every moment of a
// successful fit's lifetime is covered by either the flight map or
// the cache — a concurrent identical request always finds one of
// them.
func (s *Server) forgetFlight(fp string) {
	s.flightMu.Lock()
	delete(s.flights, fp)
	s.flightMu.Unlock()
}

// requireReleases returns the configured release cache or answers 404.
func (s *Server) requireReleases(w http.ResponseWriter) *release.Cache {
	if s.opts.Releases == nil {
		writeError(w, http.StatusNotFound, "no release cache configured (start the server with -release-cache)")
		return nil
	}
	return s.opts.Releases
}

func releaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, release.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, release.ErrCorrupt):
		// An inspectable-but-damaged entry: the fit path would evict and
		// recompute it; introspection reports it honestly.
		writeError(w, http.StatusNotFound, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleReleaseList serves GET /v1/releases: every cached release's
// key and integrity metadata, payloads stripped.
func (s *Server) handleReleaseList(w http.ResponseWriter, r *http.Request) {
	c := s.requireReleases(w)
	if c == nil {
		return
	}
	list, err := c.List()
	if err != nil {
		releaseError(w, err)
		return
	}
	if list == nil {
		list = []release.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"releases": list})
}

// handleRelease serves GET /v1/releases/{id}: one entry with its
// stored payload.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	c := s.requireReleases(w)
	if c == nil {
		return
	}
	e, err := c.Info(r.PathValue("id"))
	if err != nil {
		releaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}
