package server

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/dataset"
	"dpkron/internal/dp"
	"dpkron/internal/extsort"
	"dpkron/internal/graph"
	"dpkron/internal/kronfit"
	"dpkron/internal/kronmom"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/release"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
	"dpkron/internal/trace"
)

// FitRequest is the body of POST /v1/fit. The graph arrives as an
// explicit pair list (Edges, with Nodes optionally raising the node
// count), as SNAP edge-list text (EdgeList), or — when the server has
// a dataset store — as a stored dataset id (DatasetID); exactly one is
// required.
type FitRequest struct {
	// Method selects the estimator: "private" (default), "mom", "mle".
	Method string `json:"method"`
	// Eps/Delta are the privacy budget for method "private"
	// (defaults 0.2, 0.01).
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta"`
	// K is the Kronecker power; 0 infers the smallest adequate power.
	K int `json:"k"`
	// Seed drives all estimator randomness (default 1); resubmitting an
	// identical request yields an identical result.
	Seed uint64 `json:"seed"`
	// Dataset names the ledger account a private fit is charged to when
	// the server enforces budgets; empty selects the content fingerprint
	// of the submitted graph (accountant.DatasetID), so repeated fits of
	// the same graph share one account. Ignored without a ledger.
	Dataset string `json:"dataset,omitempty"`
	// Nodes is the minimum node count (0 = max endpoint + 1).
	Nodes int `json:"nodes"`
	// Edges lists node pairs; loops are dropped, duplicates merged.
	Edges [][2]int `json:"edges,omitempty"`
	// EdgeList is SNAP edge-list text ('#' comments, one pair per line).
	EdgeList string `json:"edgelist,omitempty"`
	// DatasetID names a graph previously imported into the server's
	// dataset store (POST /v1/datasets), replacing the inline forms.
	// Ledger debits default to this same id, so budget follows the
	// stored graph.
	DatasetID string `json:"dataset_id,omitempty"`
}

// maxGraphNodes caps the node count a fit request may imply. Graph
// construction allocates O(n) CSR arrays, so without this cap a
// ~30-byte body naming node id 2e9 would force a multi-gigabyte
// allocation regardless of maxBodyBytes. 2^24 nodes (offset arrays in
// the hundreds of MB) is far beyond any edge list that fits the body
// cap.
const maxGraphNodes = 1 << 24

func (r *FitRequest) graph() (*graph.Graph, error) {
	if r.Nodes > maxGraphNodes {
		return nil, fmt.Errorf("nodes = %d exceeds the per-request cap of %d", r.Nodes, maxGraphNodes)
	}
	switch {
	case (len(r.Edges) > 0 && r.EdgeList != "") ||
		(r.DatasetID != "" && (len(r.Edges) > 0 || r.EdgeList != "")):
		return nil, fmt.Errorf("provide exactly one of edges, edgelist or dataset_id")
	case len(r.Edges) > 0:
		n := r.Nodes
		for _, e := range r.Edges {
			if e[0] < 0 || e[1] < 0 {
				return nil, fmt.Errorf("negative node id in edge [%d, %d]", e[0], e[1])
			}
			if e[0] >= n {
				n = e[0] + 1
			}
			if e[1] >= n {
				n = e[1] + 1
			}
		}
		if n > maxGraphNodes {
			return nil, fmt.Errorf("edge node ids imply %d nodes, exceeding the per-request cap of %d", n, maxGraphNodes)
		}
		return graph.FromEdges(n, r.Edges), nil
	case r.EdgeList != "":
		// The cap covers node ids on edge lines AND "# Nodes: N" header
		// comments (which ReadEdgeList honours), both rejected before
		// the O(n) graph arrays are allocated.
		return graph.ReadEdgeListLimit(strings.NewReader(r.EdgeList), r.Nodes, maxGraphNodes)
	default:
		return nil, fmt.Errorf("edges or edgelist is required")
	}
}

// InitiatorJSON is a fitted or requested initiator in JSON form.
type InitiatorJSON struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
}

// FitResult is the result payload of a completed fit job.
type FitResult struct {
	Method    string        `json:"method"`
	Initiator InitiatorJSON `json:"initiator"`
	K         int           `json:"k"`
	// Objective is the moment objective at the optimum (mom, private).
	Objective *float64 `json:"objective,omitempty"`
	// LogLikelihood is the approximate ll at the optimum (mle).
	LogLikelihood *float64 `json:"loglikelihood,omitempty"`
	// Privacy echoes the composed guarantee (private only).
	Privacy *dp.Budget `json:"privacy,omitempty"`
	// Spent is the receipt total — the (ε, δ) the run's mechanisms
	// actually charged (private only).
	Spent *dp.Budget `json:"spent,omitempty"`
	// Receipt itemizes the run's mechanism charges (private only).
	Receipt *accountant.Receipt `json:"receipt,omitempty"`
	// Dataset and Remaining report the ledger account charged and what
	// it has left (ledger-enforced private fits only).
	Dataset   string     `json:"dataset,omitempty"`
	Remaining *dp.Budget `json:"remaining,omitempty"`
	// Features are the (private, for method private; exact otherwise)
	// feature counts used by the fit.
	Features *struct {
		E     float64 `json:"e"`
		H     float64 `json:"h"`
		T     float64 `json:"t"`
		Delta float64 `json:"delta"`
	} `json:"features,omitempty"`
}

func featuresJSON(f stats.Features) *struct {
	E     float64 `json:"e"`
	H     float64 `json:"h"`
	T     float64 `json:"t"`
	Delta float64 `json:"delta"`
} {
	return &struct {
		E     float64 `json:"e"`
		H     float64 `json:"h"`
		T     float64 `json:"t"`
		Delta float64 `json:"delta"`
	}{f.E, f.H, f.T, f.Delta}
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.decodeError(w, r, err)
		return
	}
	if req.Method == "" {
		req.Method = "private"
	}
	if req.Eps == 0 {
		req.Eps = 0.2
	}
	if req.Delta == 0 {
		req.Delta = 0.01
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	method := strings.ToLower(req.Method)
	switch method {
	case "private", "mom", "mle":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q (want private, mom or mle)", req.Method))
		return
	}
	if method == "private" {
		// Reject bad budgets at the door (400) instead of deep inside the
		// job (failed status); the zero-value defaults above are valid.
		if err := (dp.Budget{Eps: req.Eps, Delta: req.Delta}).Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	// The job's tracer joins the trace context the middleware already
	// established (and echoed), so the trace id the client holds finds
	// this job's span tree. Nil tracer/span when tracing is off — every
	// use below no-ops.
	tr, root := s.startJobTrace(r, "fit/"+method)
	// Release-cache keying: a private fit's question is identified by
	// the content fingerprint of (dataset bytes, ε, δ, policy,
	// mechanism config, seed). The key is built before the graph is
	// decoded when the request names a stored dataset, so a repeated
	// question skips even the graph load.
	useCache := s.opts.Releases != nil && method == "private"
	var relKey release.Key
	var haveKey bool
	var g *graph.Graph
	var err error
	if req.DatasetID != "" && len(req.Edges) == 0 && req.EdgeList == "" {
		// Fit-by-id: resolve the stored graph. Unknown ids — and a
		// server without a store — are 404s with a JSON body, matching
		// the dataset routes.
		st := s.requireStore(w)
		if st == nil {
			return
		}
		if useCache {
			// The inferred Kronecker power is part of the question;
			// resolve it from the stored metadata (no graph decode). A
			// failed lookup just falls through to the post-load keying.
			k := req.K
			if k <= 0 {
				if meta, err := st.Meta(req.DatasetID); err == nil {
					k = kronmom.KForNodes(meta.Nodes)
				}
			}
			if k > 0 {
				relKey = release.KeyFor(req.DatasetID, req.Eps, req.Delta, k, req.Seed, core.PlannedReceipt(req.Eps, req.Delta))
				haveKey = true
				lk := tr.Start(root, "release-cache-lookup")
				s.flightMu.Lock()
				handled := s.serveReleaseLocked(w, relKey)
				s.flightMu.Unlock()
				lk.SetAttr(trace.String("hit", strconv.FormatBool(handled)))
				lk.End()
				if handled {
					return
				}
			}
		}
		dsp := tr.Start(root, "dataset-load",
			trace.String("dataset_id", req.DatasetID), trace.String("source", "store"))
		g, err = st.Load(req.DatasetID)
		dsp.End()
		if err != nil {
			datasetError(w, err)
			return
		}
	} else {
		dsp := tr.Start(root, "dataset-load", trace.String("source", "inline"))
		g, err = req.graph()
		dsp.End()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if useCache && !haveKey {
		// Inline graphs key by their content fingerprint — the same id
		// the dataset store would assign — so the identical bytes hit the
		// identical entry no matter how they arrived.
		k := req.K
		if k <= 0 {
			k = kronmom.KForNodes(g.NumNodes())
		}
		relKey = release.KeyFor(accountant.DatasetID(g), req.Eps, req.Delta, k, req.Seed, core.PlannedReceipt(req.Eps, req.Delta))
	}
	// Ledger enforcement: debit the full requested budget at admission
	// (Algorithm 1's charge schedule is data-independent, so the spend
	// is known before the job runs). The debit happens inside submit's
	// admission critical section — with a journal, under a journaled
	// per-admission idempotent spend token, so a replay after a crash
	// re-issues it without double-charging; without one, as a plain
	// debit. An exhausted account surfaces as 429 with the remaining
	// budget in the body.
	var admit func(token string) error
	var dataset string
	var planned *accountant.Receipt
	var refused *accountant.ExhaustedError
	if s.opts.Ledger != nil && method == "private" {
		dataset = req.Dataset
		if dataset == "" {
			// A stored dataset's id already is its content fingerprint;
			// inline graphs are fingerprinted here. Either way repeated
			// fits of the same bytes share one budget account.
			dataset = req.DatasetID
		}
		if dataset == "" {
			dataset = accountant.DatasetID(g)
		}
		p := core.PlannedReceipt(req.Eps, req.Delta)
		planned = &p
		admit = func(token string) error {
			var err error
			if token == "" {
				err = s.opts.Ledger.Spend(dataset, p)
			} else {
				err = s.opts.Ledger.SpendToken(dataset, p, token)
			}
			errors.As(err, &refused)
			return err
		}
	}
	fj := fitJob{
		req: req, method: method, dataset: dataset,
		relKey: relKey, useCache: useCache,
		loadGraph: func() (*graph.Graph, error) { return g, nil },
		root:      root,
	}
	fn := s.fitFn(fj)
	reqJSON, _ := json.Marshal(&req)
	traceID := TraceContextFrom(r.Context()).TraceID
	if tr != nil {
		traceID = tr.TraceID()
	}
	spec := jobSpec{
		kind:      "fit/" + method,
		request:   reqJSON,
		dataset:   dataset,
		planned:   planned,
		admit:     admit,
		fn:        fn,
		requestID: RequestIDFrom(r.Context()),
		traceID:   traceID,
		tr:        tr,
		root:      root,
	}
	var j *job
	var status int
	var msg string
	if useCache {
		// Single-flight admission: under flightMu, re-check the cache
		// and the in-flight map, then submit. The lock makes
		// miss-then-debit atomic — of N concurrent identical requests,
		// exactly one passes the ledger-debit critical section and runs;
		// the rest join its job or are served the cached result.
		fp := relKey.Fingerprint()
		inner := fn
		spec.releaseKey = &relKey
		spec.fn = func(run *pipeline.Run) (any, error) {
			// Drop the flight registration on every exit; on success the
			// Put above has already happened, so the question is always
			// answerable by either the flight map or the cache.
			defer s.forgetFlight(fp)
			return inner(run)
		}
		lk := tr.Start(root, "release-cache-lookup", trace.String("fingerprint", fp))
		s.flightMu.Lock()
		if s.serveReleaseLocked(w, relKey) {
			s.flightMu.Unlock()
			lk.SetAttr(trace.String("hit", "true"))
			lk.End()
			return
		}
		lk.SetAttr(trace.String("hit", "false"))
		lk.End()
		j, status, msg = s.submit(spec)
		if j != nil {
			s.flights[fp] = j
		}
		s.flightMu.Unlock()
	} else {
		j, status, msg = s.submit(spec)
	}
	if j == nil {
		if refused != nil {
			// Budget refusals answer with the machine-readable remaining
			// budget so clients can right-size their next request, and a
			// Retry-After suited to budgets (a raise is an operator
			// action, not a momentary spike).
			rem := refused.Remaining()
			s.rejectAdmission(r, rejectBudget, dataset, msg,
				slog.Float64("remaining_eps", rem.Eps),
				slog.Float64("remaining_delta", rem.Delta))
			setRetryAfter(w, http.StatusTooManyRequests, true)
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":     msg,
				"dataset":   dataset,
				"remaining": rem,
			})
			return
		}
		s.rejectAdmission(r, rejectReason(status), dataset, msg)
		setRetryAfter(w, status, false)
		writeError(w, status, msg)
		return
	}
	writeJSON(w, status, j.view())
}

// fitJob bundles everything a fit job's execution closure needs —
// built from the HTTP request on the admission path and from the
// journaled admission record on the replay path, so a resumed fit
// runs the identical code (same seed, same mechanisms) and lands the
// identical release.
type fitJob struct {
	// req is the FitRequest after defaulting — the form that is
	// journaled, so replay never re-derives defaults.
	req      FitRequest
	method   string
	dataset  string
	relKey   release.Key
	useCache bool
	// loadGraph defers graph materialization into the job: the HTTP
	// path closes over the already-decoded graph, replay loads from
	// the store or re-parses the recorded request — and a load failure
	// becomes a journaled job failure, never silence.
	loadGraph func() (*graph.Graph, error)
	// root is the job's root trace span (nil when tracing is off):
	// the run's accountant charges land on it as audit events, and the
	// release-cache Put gets a span under it.
	root *trace.Span
}

// fitFn builds the job closure executing the fit described by fj.
func (s *Server) fitFn(fj fitJob) func(run *pipeline.Run) (any, error) {
	return func(run *pipeline.Run) (any, error) {
		g, err := fj.loadGraph()
		if err != nil {
			return nil, err
		}
		req := fj.req
		rng := randx.New(req.Seed)
		switch fj.method {
		case "mom":
			est, err := kronmom.FitGraphCtx(run, g, req.K, kronmom.Options{Rng: rng})
			if err != nil {
				return nil, err
			}
			return FitResult{
				Method:    fj.method,
				Initiator: InitiatorJSON{est.Init.A, est.Init.B, est.Init.C},
				K:         est.K,
				Objective: &est.Objective,
			}, nil
		case "mle":
			res, err := kronfit.FitCtx(run, g, kronfit.Options{K: req.K, Rng: rng})
			if err != nil {
				return nil, err
			}
			return FitResult{
				Method:        fj.method,
				Initiator:     InitiatorJSON{res.Init.A, res.Init.B, res.Init.C},
				K:             res.K,
				LogLikelihood: &res.LogLikelihood,
			}, nil
		default: // private
			// The per-run accountant caps the run at exactly the budget
			// the ledger was debited for — a belt-and-braces guarantee
			// that no mechanism can spend beyond the admission debit.
			// Its observer turns every charge into a privacy-audit event
			// on the job's trace (a no-op observer when tracing is off).
			acc := accountant.New(nil).
				WithLimit(dp.Budget{Eps: req.Eps, Delta: req.Delta}).
				WithObserver(auditObserver(fj.root))
			res, err := core.EstimateCtx(run, g, core.Options{
				Eps: req.Eps, Delta: req.Delta, K: req.K, Rng: rng, Accountant: acc,
			})
			if err != nil {
				return nil, err
			}
			out := PrivateFitResult(res, fj.dataset)
			if fj.useCache {
				// Memoize the release itself — before Remaining is filled,
				// which reports ledger state at this moment, not part of
				// the answer. A failed Put costs future hits, not this
				// run's correctness.
				psp := fj.root.Child("release-cache-put")
				_, _ = s.opts.Releases.Put(fj.relKey, out)
				psp.End()
			}
			if s.opts.Ledger != nil && fj.dataset != "" {
				rem := s.opts.Ledger.Remaining(fj.dataset)
				out.Remaining = &rem
			}
			return out, nil
		}
	}
}

// setRetryAfter attaches the Retry-After hint matched to why the
// request was refused: a queue spike clears in about a second, a
// draining server is replaced within seconds, an exhausted budget
// waits on an operator raising it.
func setRetryAfter(w http.ResponseWriter, status int, budget bool) {
	switch {
	case budget:
		w.Header().Set("Retry-After", "60")
	case status == http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "10")
	case status == http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
	}
}

// Per-request bounds for generate jobs: maxGenerateK matches the fit
// endpoint's maxGraphNodes (2^24 nodes); maxExactK additionally bounds
// the exact sampler, whose cost is quadratic in the node count (k = 16
// is ~2^31 pair draws — minutes on one worker, and cancellable);
// maxGenerateEdges bounds the ball-drop dedup and the result payload.
const (
	maxGenerateK     = 24
	maxExactK        = 16
	maxGenerateEdges = 1 << 26
)

// GenerateRequest is the body of POST /v1/generate: the initiator
// entries, the Kronecker power, and the sampler configuration.
type GenerateRequest struct {
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	C    float64 `json:"c"`
	K    int     `json:"k"`
	Seed uint64  `json:"seed"`
	// Method selects the sampler: "auto" (default; exact for K <= 13),
	// "exact", "balldrop".
	Method string `json:"method"`
	// Target overrides the ball-drop edge target (0 = expected count).
	Target int `json:"target"`
	// OmitEdges drops the edge list from the result (counts only) for
	// large graphs.
	OmitEdges bool `json:"omit_edges"`
	// Store saves the sampled graph into the server's dataset store:
	// the result then carries the dataset metadata, and the graph can
	// be fitted later by dataset_id instead of re-shipping edges.
	// Requires a configured store (404 otherwise). Usually paired with
	// omit_edges.
	Store bool `json:"store,omitempty"`
	// Name labels the stored dataset (with store only).
	Name string `json:"name,omitempty"`
}

// GenerateResult is the result payload of a completed generate job.
type GenerateResult struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// EdgeList is the sampled graph in SNAP edge-list text (omitted
	// when the request set omit_edges).
	EdgeList string `json:"edgelist,omitempty"`
	// Dataset is the stored dataset's metadata (store requests only);
	// Dataset.ID is directly usable as a fit request's dataset_id.
	Dataset *dataset.Meta `json:"dataset,omitempty"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.decodeError(w, r, err)
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	method := strings.ToLower(req.Method)
	if method == "" {
		method = "auto"
	}
	switch method {
	case "auto", "exact", "balldrop":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown method %q (want auto, exact or balldrop)", req.Method))
		return
	}
	// Bound the work a generate job may pin a slot with, mirroring the
	// fit endpoint's maxGraphNodes guard: K caps the CSR allocation
	// (2^K nodes), the exact sampler additionally costs O(4^K) pair
	// draws, and target caps the dedup/result size.
	if req.K > maxGenerateK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k = %d exceeds the per-request cap of %d", req.K, maxGenerateK))
		return
	}
	if method == "exact" && req.K > maxExactK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("method exact is capped at k = %d (O(4^k) pair draws); use balldrop or auto", maxExactK))
		return
	}
	if req.Target > maxGenerateEdges {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("target = %d exceeds the per-request cap of %d edges", req.Target, maxGenerateEdges))
		return
	}
	m, err := skg.NewModel(skg.Initiator{A: req.A, B: req.B, C: req.C}, req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var store *dataset.Store
	if req.Store {
		if store = s.requireStore(w); store == nil {
			return
		}
	}
	tr, root := s.startJobTrace(r, "generate")
	reqJSON, _ := json.Marshal(&req)
	traceID := TraceContextFrom(r.Context()).TraceID
	if tr != nil {
		traceID = tr.TraceID()
	}
	spec := jobSpec{
		kind: "generate", request: reqJSON,
		requestID: RequestIDFrom(r.Context()), traceID: traceID,
		tr: tr, root: root,
	}
	spec.fn = func(run *pipeline.Run) (any, error) {
		rng := randx.New(req.Seed)
		if store != nil && req.OmitEdges {
			// Streaming route: nothing downstream needs the edge list in
			// memory, so spill the sample through an external sort straight
			// into the store's v2 encoder — peak residency is O(spill
			// chunk), not O(edges), and the stored bytes are bit-identical
			// to what the in-memory route would have produced for this
			// seed.
			sorter, err := extsort.NewTemp(nil, 0)
			if err != nil {
				return nil, err
			}
			defer sorter.RemoveAll()
			var es *skg.EdgeStream
			switch {
			case method == "exact":
				es, err = m.StreamExactCtx(run, rng, sorter)
			case method == "balldrop" && req.Target > 0:
				es, err = m.StreamBallDropNCtx(run, rng, req.Target, sorter)
			case method == "balldrop":
				es, err = m.StreamBallDropCtx(run, rng, sorter)
			default:
				es, err = m.StreamCtx(run, rng, sorter)
			}
			if err != nil {
				return nil, err
			}
			defer es.Close()
			meta, _, err := store.PutStream(es, req.Name, "generated")
			if err != nil {
				return nil, err
			}
			return GenerateResult{Nodes: meta.Nodes, Edges: meta.Edges, Dataset: &meta}, nil
		}
		var g *graph.Graph
		var err error
		switch {
		case method == "exact":
			g, err = m.SampleExactCtx(run, rng)
		case method == "balldrop" && req.Target > 0:
			g, err = m.SampleBallDropNCtx(run, rng, req.Target)
		case method == "balldrop":
			g, err = m.SampleBallDropCtx(run, rng)
		default:
			g, err = m.SampleCtx(run, rng)
		}
		if err != nil {
			return nil, err
		}
		res := GenerateResult{Nodes: g.NumNodes(), Edges: g.NumEdges()}
		if store != nil {
			meta, _, err := store.Put(g, req.Name, "generated")
			if err != nil {
				return nil, err
			}
			res.Dataset = &meta
		}
		if !req.OmitEdges {
			var sb strings.Builder
			if err := g.WriteEdgeList(&sb); err != nil {
				return nil, err
			}
			res.EdgeList = sb.String()
		}
		return res, nil
	}
	j, status, msg := s.submit(spec)
	if j == nil {
		s.rejectAdmission(r, rejectReason(status), "", msg)
		setRetryAfter(w, status, false)
		writeError(w, status, msg)
		return
	}
	writeJSON(w, status, j.view())
}

// maxBodyBytes bounds request bodies (64 MiB covers multi-million-edge
// lists while keeping a hostile POST from exhausting memory).
const maxBodyBytes = 64 << 20

// errBodyTooLarge marks a decode failure caused by the body cap —
// raw or decompressed — so callers can answer 413 (and count the
// rejection) instead of a generic 400.
var errBodyTooLarge = errors.New("request body exceeds the size limit")

// decodeError answers a failed decodeJSON: over-cap bodies are 413
// Payload Too Large, counted and warn-logged as admission rejections
// (these used to vanish as anonymous 400s); anything else is a plain
// 400.
func (s *Server) decodeError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, errBodyTooLarge) {
		s.rejectAdmission(r, rejectBodyTooLarge, "", err.Error())
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// decodeJSON parses a request body, bounding its size and rejecting
// unknown fields so typos in job specs fail fast instead of silently
// defaulting. Gzipped bodies are transparent — declared via
// Content-Encoding: gzip or detected by the 1f 8b magic (valid JSON
// cannot start with those bytes) — so clients can ship multi-million-
// edge inline lists compressed; both the compressed and decompressed
// sizes are bounded by the same cap.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	var src io.Reader = body
	gzipped := strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip")
	if !gzipped {
		head, _ := body.Peek(2)
		gzipped = len(head) == 2 && head[0] == 0x1f && head[1] == 0x8b
	}
	var lr *io.LimitedReader
	if gzipped {
		gz, err := gzip.NewReader(body)
		if err != nil {
			return fmt.Errorf("invalid gzip body: %w", err)
		}
		defer gz.Close()
		// Cap the decompressed stream too: a gzip bomb must not expand
		// past what an uncompressed request could ship. One extra byte
		// of headroom distinguishes over-cap from truncated JSON.
		lr = &io.LimitedReader{R: gz, N: maxBodyBytes + 1}
		src = lr
	}
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if lr != nil && lr.N <= 0 {
			return fmt.Errorf("%w: gzipped body decompresses past the %d-byte limit", errBodyTooLarge, maxBodyBytes)
		}
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds the %d-byte limit", errBodyTooLarge, maxBodyBytes)
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}
