package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/journal"
	"dpkron/internal/release"
	"dpkron/internal/trace"
)

const (
	clientTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	clientSpanID      = "00f067aa0ba902b7"
	clientTraceparent = "00-" + clientTraceID + "-" + clientSpanID + "-01"
)

// getTree fetches and decodes a job's span tree.
func getTree(t *testing.T, base, id string) (*trace.Tree, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var tree trace.Tree
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return &tree, resp.StatusCode
}

// collectSpans flattens a tree into name → nodes.
func collectSpans(tree *trace.Tree) map[string][]*trace.Node {
	byName := map[string][]*trace.Node{}
	tree.Walk(func(n *trace.Node, depth int) {
		byName[n.Name] = append(byName[n.Name], n)
	})
	return byName
}

// sumEvents sums the eps/delta attributes of every event with the
// given name anywhere in the tree, returning the count too.
func sumEvents(t *testing.T, tree *trace.Tree, name string) (eps, delta float64, count int) {
	t.Helper()
	tree.Walk(func(n *trace.Node, depth int) {
		for _, e := range n.Events {
			if e.Name != name {
				continue
			}
			count++
			for key, dst := range map[string]*float64{"eps": &eps, "delta": &delta} {
				v, err := strconv.ParseFloat(e.Attrs[key], 64)
				if err != nil {
					t.Fatalf("event %s has unparsable %s=%q", name, key, e.Attrs[key])
				}
				*dst += v
			}
		}
	})
	return eps, delta, count
}

// TestServerTraceEndToEnd runs one ledger-enforced private fit on a
// fully traced server (ledger + release cache + journal + traces) and
// asserts the tentpole contract: the client's traceparent is adopted
// and echoed, the exported trace holds one span per algorithm1/*
// stage plus the explicit admission/journal/debit/dataset-load spans,
// and the audit events' summed ε/δ equals the job's receipt. With
// TRACE_SAMPLE_OUT set, the Chrome export is written there (CI
// uploads it as an artifact).
func TestServerTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	led, err := accountant.Open(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	edges := testEdgeList(t, 8)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	if err := led.SetBudget(ds, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Open(filepath.Join(dir, "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	store := trace.NewStore(0)
	_, ts := newTestServer(t, Options{
		Workers: 2, MaxJobs: 2,
		Ledger: led, Releases: cache, Journal: jnl, Traces: store,
	})

	body, _ := json.Marshal(FitRequest{Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, EdgeList: edges})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/fit", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("traceparent"); got != clientTraceparent {
		t.Fatalf("traceparent echo = %q, want %q", got, clientTraceparent)
	}
	requestID := resp.Header.Get("X-Request-ID")
	if requestID == "" {
		t.Fatal("no X-Request-ID on response")
	}
	var accepted map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/fit: status %d (%v)", resp.StatusCode, accepted)
	}
	id := accepted["id"].(string)

	job := pollJob(t, ts.URL, id, 120*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("fit ended %v: %v", job["status"], job)
	}
	result := job["result"].(map[string]any)
	receipt := result["receipt"].(map[string]any)
	total := receipt["total"].(map[string]any)
	wantEps := total["eps"].(float64)
	wantDelta := total["delta"].(float64)

	tree, code := getTree(t, ts.URL, id)
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if tree.TraceID != clientTraceID {
		t.Fatalf("trace adopted id %q, want the client's %q", tree.TraceID, clientTraceID)
	}
	if tree.RemoteParent != clientSpanID {
		t.Fatalf("remote parent = %q, want %q", tree.RemoteParent, clientSpanID)
	}

	spans := collectSpans(tree)
	// Exactly one span per algorithm1/* stage of the private pipeline.
	for _, stage := range []string{
		"algorithm1/degree-release",
		"algorithm1/feature-derivation",
		"algorithm1/triangle-release",
		"algorithm1/moment-fit",
		"algorithm1/moment-fit/kronmom",
	} {
		got := spans[stage]
		if len(got) != 1 {
			t.Fatalf("stage %q has %d spans, want 1", stage, len(got))
		}
		if got[0].Open {
			t.Fatalf("stage span %q left open", stage)
		}
		if got[0].Attrs["workers"] == "" {
			t.Fatalf("stage span %q lacks the worker-count attribute: %v", stage, got[0].Attrs)
		}
	}
	// The kronmom sub-stage nests under moment-fit.
	mf := spans["algorithm1/moment-fit"][0]
	if len(mf.Children) != 1 || mf.Children[0].Name != "algorithm1/moment-fit/kronmom" {
		t.Fatalf("moment-fit children = %+v", mf.Children)
	}
	// The explicit serving-layer spans.
	for _, name := range []string{
		"release-cache-lookup", "dataset-load", "admission",
		"journal-append", "ledger-debit", "queue-wait", "run",
		"release-cache-put",
	} {
		if len(spans[name]) == 0 {
			t.Fatalf("trace lacks a %q span; have %v", name, keys(spans))
		}
	}
	if hit := spans["release-cache-lookup"][0].Attrs["hit"]; hit != "false" {
		t.Fatalf("first fit's cache lookup hit = %q, want false", hit)
	}
	if root := tree.Spans[0]; root.Attrs["request_id"] != requestID {
		t.Fatalf("root request_id attr = %q, want %q", root.Attrs["request_id"], requestID)
	} else if root.Attrs["status"] != StatusDone || root.Open {
		t.Fatalf("root span not closed done: %+v", root.Attrs)
	}

	// Audit timeline: the in-run accountant events sum to the receipt,
	// and the admission-time ledger events sum to the same planned
	// total — one event per mechanism charge in both.
	accEps, accDelta, accN := sumEvents(t, tree, "accountant-debit")
	if accN != len(receipt["charges"].([]any)) {
		t.Fatalf("accountant-debit events = %d, want one per receipt charge (%d)", accN, len(receipt["charges"].([]any)))
	}
	if math.Abs(accEps-wantEps) > 1e-9 || math.Abs(accDelta-wantDelta) > 1e-9 {
		t.Fatalf("accountant-debit events sum to (%g, %g), receipt total is (%g, %g)", accEps, accDelta, wantEps, wantDelta)
	}
	ledEps, ledDelta, ledN := sumEvents(t, tree, "ledger-debit")
	if ledN == 0 {
		t.Fatal("no ledger-debit audit events on the admission debit span")
	}
	if math.Abs(ledEps-wantEps) > 1e-9 || math.Abs(ledDelta-wantDelta) > 1e-9 {
		t.Fatalf("ledger-debit events sum to (%g, %g), receipt total is (%g, %g)", ledEps, ledDelta, wantEps, wantDelta)
	}

	// The journaled admission carries the request/trace identity
	// (satellite: a crash-resumed job links back to its originator).
	var admitted *journal.Record
	for _, rec := range jnl.Records() {
		if rec.Job == id && rec.State == journal.StateAdmitted {
			r := rec
			admitted = &r
		}
	}
	if admitted == nil {
		t.Fatalf("no journaled admission for %s", id)
	}
	if admitted.RequestID != requestID || admitted.TraceID != clientTraceID {
		t.Fatalf("journaled admission ids = (%q, %q), want (%q, %q)",
			admitted.RequestID, admitted.TraceID, requestID, clientTraceID)
	}
	// The ledger receipt was stamped with the debit time and its token
	// cross-references the journaled admission.
	acct, ok := led.Account(ds)
	if !ok || len(acct.Receipts) != 1 {
		t.Fatalf("ledger account: ok=%v receipts=%d", ok, len(acct.Receipts))
	}
	if acct.Receipts[0].Time == nil || acct.Receipts[0].Time.IsZero() {
		t.Fatalf("ledger receipt has no debit timestamp: %+v", acct.Receipts[0])
	}
	if acct.Receipts[0].Token != admitted.Token {
		t.Fatalf("receipt token %q does not match journaled token %q", acct.Receipts[0].Token, admitted.Token)
	}

	// Chrome export: valid trace-event JSON, one X event per span.
	chResp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chResp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	raw := new(strings.Builder)
	if err := json.NewDecoder(io.TeeReader(chResp.Body, raw)).Decode(&chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var xEvents int
	for _, e := range chrome.TraceEvents {
		if e.Phase == "X" {
			xEvents++
		}
	}
	var spanCount int
	tree.Walk(func(n *trace.Node, depth int) { spanCount++ })
	if xEvents != spanCount {
		t.Fatalf("chrome export has %d complete events, tree has %d spans", xEvents, spanCount)
	}
	if out := os.Getenv("TRACE_SAMPLE_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(raw.String()), 0o644); err != nil {
			t.Fatalf("writing TRACE_SAMPLE_OUT: %v", err)
		}
	}

	// A second identical fit is a cache hit: no new trace is stored
	// for the synthetic completed job, and the original is untouched.
	code2, resp2 := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, EdgeList: edges,
	})
	if code2 != http.StatusOK {
		t.Fatalf("repeat fit: status %d (%v)", code2, resp2)
	}
	if store.Len() != 1 {
		t.Fatalf("trace store holds %d traces after a cache hit, want 1", store.Len())
	}
}

func keys(m map[string][]*trace.Node) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestServerTraceResumeLinksOrigin synthesizes a crash after the
// admission record and restarts with tracing on: the resumed job's
// trace must adopt the journaled trace id and carry the originating
// request id, linking the post-crash work to the pre-crash request.
func TestServerTraceResumeLinksOrigin(t *testing.T) {
	fx := buildCrashFixture(t)
	ad := fx.records[0]
	if ad.RequestID == "" || ad.TraceID == "" {
		t.Fatalf("fixture admission lacks request/trace ids: %+v", ad)
	}
	dir := t.TempDir()
	led, err := accountant.Open(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := led.SetBudget(fx.dsID, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Open(filepath.Join(dir, "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	if err := jnl.Append(ad, true); err != nil {
		t.Fatal(err)
	}
	store := trace.NewStore(0)
	_, ts := newTestServer(t, Options{
		Workers: 2, MaxJobs: 2,
		Ledger: led, Releases: cache, Journal: jnl, Traces: store,
	})
	job := pollJob(t, ts.URL, ad.Job, 120*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("resumed fit ended %v: %v", job["status"], job)
	}
	tree, code := getTree(t, ts.URL, ad.Job)
	if code != http.StatusOK {
		t.Fatalf("GET resumed trace: status %d", code)
	}
	if tree.TraceID != ad.TraceID {
		t.Fatalf("resumed trace id %q, want journaled %q", tree.TraceID, ad.TraceID)
	}
	root := tree.Spans[0]
	if root.Attrs["resumed"] != "true" || root.Attrs["request_id"] != ad.RequestID {
		t.Fatalf("resumed root attrs = %v, want resumed=true request_id=%q", root.Attrs, ad.RequestID)
	}
	if len(collectSpans(tree)["dataset-load"]) == 0 {
		t.Fatal("resumed trace lacks a dataset-load span")
	}
}

// TestServerTraceEvictionAndDisabled covers the retention contract
// (trace dropped with job-history eviction) and the disabled path
// (404, not a panic or an empty tree).
func TestServerTraceEvictionAndDisabled(t *testing.T) {
	store := trace.NewStore(0)
	_, ts := newTestServer(t, Options{
		Workers: 1, MaxJobs: 1, MaxHistory: 1, Traces: store,
	})
	var ids []string
	for i := 0; i < 3; i++ {
		code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: 3, Seed: uint64(i + 1), Method: "exact",
		})
		if code != http.StatusAccepted {
			t.Fatalf("generate %d: status %d (%v)", i, code, resp)
		}
		id := resp["id"].(string)
		ids = append(ids, id)
		if job := pollJob(t, ts.URL, id, 60*time.Second); job["status"] != StatusDone {
			t.Fatalf("generate %s ended %v", id, job["status"])
		}
	}
	// History bound 1: the oldest jobs are evicted and their traces
	// with them; eviction runs in finalize, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := store.Get(ids[0]); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("evicted job %s still has a trace", ids[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, code := getTree(t, ts.URL, ids[0]); code != http.StatusNotFound {
		t.Fatalf("evicted job trace: status %d, want 404", code)
	}
	if tree, code := getTree(t, ts.URL, ids[2]); code != http.StatusOK {
		t.Fatalf("latest job trace: status %d", code)
	} else if len(tree.Spans) == 0 || tree.Spans[0].Name != "generate" {
		t.Fatalf("latest trace = %+v", tree.Spans)
	}

	// Tracing disabled: the endpoint answers 404 and jobs run normally.
	_, plain := newTestServer(t, Options{Workers: 1, MaxJobs: 1})
	code, resp := doJSON(t, http.MethodPost, plain.URL+"/v1/generate", GenerateRequest{
		A: 0.9, B: 0.5, C: 0.3, K: 3, Seed: 1, Method: "exact",
	})
	if code != http.StatusAccepted {
		t.Fatalf("untraced generate: status %d (%v)", code, resp)
	}
	id := resp["id"].(string)
	if job := pollJob(t, plain.URL, id, 60*time.Second); job["status"] != StatusDone {
		t.Fatalf("untraced generate ended %v", job["status"])
	}
	if _, code := getTree(t, plain.URL, id); code != http.StatusNotFound {
		t.Fatalf("trace on untraced server: status %d, want 404", code)
	}
}
