package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/dp"
	"dpkron/internal/obs"
)

// scrapeMetrics fetches /metrics and parses every sample line into a
// map from "name{labels}" (labels as rendered) to its value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumPrefix totals every sample whose key starts with prefix — the
// label-blind sum of a metric family.
func sumPrefix(m map[string]float64, prefix string) float64 {
	var s float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			s += v
		}
	}
	return s
}

// syncBuffer is a goroutine-safe log sink for asserting on records.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newObsTestServer(t *testing.T, opts Options) (*Server, string, *syncBuffer) {
	t.Helper()
	logs := &syncBuffer{}
	logger, err := obs.NewLogger(logs, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	opts.Metrics = obs.NewRegistry()
	opts.Logger = logger
	s, ts := newTestServer(t, opts)
	return s, ts.URL, logs
}

// TestServerMetricsHammer floods an instrumented server with 64
// concurrent fits while concurrently scraping /metrics, then checks
// the final exposition for internal consistency: every submitted job
// completed, the in-flight/queued/running gauges returned to rest, and
// HTTP accounting covered the traffic. Run under -race this also
// proves the collectors and render path are data-race free.
func TestServerMetricsHammer(t *testing.T) {
	_, base, _ := newObsTestServer(t, Options{Workers: 2, MaxJobs: 4, MaxQueue: 128})
	el := testEdgeList(t, 6)

	const fits = 64
	stopScrapes := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stopScrapes:
					return
				default:
				}
				resp, err := http.Get(base + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	var fitWG sync.WaitGroup
	ids := make([]string, fits)
	for i := 0; i < fits; i++ {
		fitWG.Add(1)
		go func(i int) {
			defer fitWG.Done()
			code, resp := doJSON(t, http.MethodPost, base+"/v1/fit", FitRequest{
				Method: "mom", K: 6, Seed: uint64(i + 1), EdgeList: el,
			})
			if code != http.StatusAccepted {
				t.Errorf("fit %d: status %d (%v)", i, code, resp)
				return
			}
			ids[i], _ = resp["id"].(string)
		}(i)
	}
	fitWG.Wait()
	close(stopScrapes)
	scrapeWG.Wait()

	for _, id := range ids {
		if id == "" {
			t.Fatal("a fit was not admitted")
		}
		pollJob(t, base, id, 60*time.Second)
	}

	// Terminal job status is visible before finalize updates the
	// counters, so give the completion totals a moment to converge.
	deadline := time.Now().Add(10 * time.Second)
	var m map[string]float64
	for {
		m = scrapeMetrics(t, base)
		if sumPrefix(m, "dpkron_jobs_completed_total") == fits || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if got := sumPrefix(m, "dpkron_jobs_submitted_total"); got != fits {
		t.Errorf("jobs_submitted_total = %v, want %d", got, fits)
	}
	if got := sumPrefix(m, "dpkron_jobs_completed_total"); got != fits {
		t.Errorf("jobs_completed_total = %v, want %d", got, fits)
	}
	if got := m[`dpkron_jobs_completed_total{kind="fit/mom",status="done"}`]; got != fits {
		t.Errorf(`jobs_completed_total{fit/mom,done} = %v, want %d`, got, fits)
	}
	if got := m["dpkron_jobs_running"]; got != 0 {
		t.Errorf("jobs_running = %v at rest, want 0", got)
	}
	if got := m["dpkron_jobs_queued"]; got != 0 {
		t.Errorf("jobs_queued = %v at rest, want 0", got)
	}
	// The only request in flight during the final scrape is the scrape.
	if got := m["dpkron_http_in_flight_requests"]; got != 1 {
		t.Errorf("http_in_flight_requests = %v during a scrape, want 1", got)
	}
	if got := m[`dpkron_http_requests_total{route="/v1/fit",method="POST",code="202"}`]; got != fits {
		t.Errorf("http_requests_total for fits = %v, want %d", got, fits)
	}
	if got := sumPrefix(m, `dpkron_http_request_seconds_count{route="/v1/fit"}`); got != fits {
		t.Errorf("http_request_seconds_count for fits = %v, want %d", got, fits)
	}
	// Stage tracing observed at least one completed stage per fit.
	if got := sumPrefix(m, "dpkron_job_stage_seconds_count"); got < fits {
		t.Errorf("job_stage_seconds observations = %v, want >= %d", got, fits)
	}
}

// TestServerReadyz: /readyz mirrors drain state — 200 while serving,
// 503 with Retry-After once draining — while /healthz stays 200
// throughout (alive, finishing journaled work; don't restart it).
func TestServerReadyz(t *testing.T) {
	s, base, _ := newObsTestServer(t, Options{Workers: 1, MaxJobs: 1})
	code, body := doJSON(t, http.MethodGet, base+"/readyz", nil)
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz before drain: %d %v, want 200 ready", code, body)
	}
	s.StartDrain()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz carries no Retry-After")
	}
	if code, _ := doJSON(t, http.MethodGet, base+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", code)
	}
}

// TestServerAdmissionRejectionTelemetry: refused admissions — once
// silent drops — are counted by reason and warn-logged with the
// request id. Exercises the draining, queue_full and budget reasons.
func TestServerAdmissionRejectionTelemetry(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		s, base, logs := newObsTestServer(t, Options{Workers: 1, MaxJobs: 1})
		s.StartDrain()
		code, _ := doJSON(t, http.MethodPost, base+"/v1/fit", FitRequest{
			Method: "mom", EdgeList: "0 1\n1 2\n",
		})
		if code != http.StatusServiceUnavailable {
			t.Fatalf("fit while draining: status %d, want 503", code)
		}
		m := scrapeMetrics(t, base)
		if got := m[`dpkron_admission_rejected_total{reason="draining"}`]; got != 1 {
			t.Errorf(`admission_rejected_total{draining} = %v, want 1`, got)
		}
		if lg := logs.String(); !strings.Contains(lg, "admission rejected") || !strings.Contains(lg, `"request_id"`) {
			t.Errorf("no admission-rejected log with request id:\n%s", lg)
		}
	})

	t.Run("queue_full", func(t *testing.T) {
		_, base, logs := newObsTestServer(t, Options{Workers: 1, MaxJobs: 1, MaxQueue: 1})
		_, first := doJSON(t, http.MethodPost, base+"/v1/generate", GenerateRequest{
			A: 0.99, B: 0.55, C: 0.35, K: 13, Seed: 5, Method: "exact", OmitEdges: true,
		})
		code, _ := doJSON(t, http.MethodPost, base+"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: 6,
		})
		doJSON(t, http.MethodDelete, base+"/v1/jobs/"+first["id"].(string), nil)
		if code != http.StatusTooManyRequests {
			t.Fatalf("over-queue submission: status %d, want 429", code)
		}
		m := scrapeMetrics(t, base)
		if got := m[`dpkron_admission_rejected_total{reason="queue_full"}`]; got != 1 {
			t.Errorf(`admission_rejected_total{queue_full} = %v, want 1`, got)
		}
		if !strings.Contains(logs.String(), "admission rejected") {
			t.Error("queue-full rejection was not logged")
		}
	})

	t.Run("budget", func(t *testing.T) {
		led, err := accountant.Open(t.TempDir() + "/ledger.json")
		if err != nil {
			t.Fatal(err)
		}
		const ds = "starved"
		if err := led.SetBudget(ds, dp.Budget{Eps: 0.01, Delta: 0.0001}); err != nil {
			t.Fatal(err)
		}
		_, base, logs := newObsTestServer(t, Options{Workers: 1, MaxJobs: 1, Ledger: led})
		code, resp := doJSON(t, http.MethodPost, base+"/v1/fit", FitRequest{
			Method: "private", Eps: 1, Delta: 0.01, Dataset: ds, EdgeList: "0 1\n1 2\n",
		})
		if code != http.StatusTooManyRequests {
			t.Fatalf("starved fit: status %d (%v), want 429", code, resp)
		}
		m := scrapeMetrics(t, base)
		if got := m[`dpkron_admission_rejected_total{reason="budget"}`]; got != 1 {
			t.Errorf(`admission_rejected_total{budget} = %v, want 1`, got)
		}
		// The ledger's own refusal counter agrees.
		if got := m[fmt.Sprintf(`dpkron_ledger_refusals_total{dataset=%q}`, ds)]; got != 1 {
			t.Errorf(`ledger_refusals_total{%s} = %v, want 1`, ds, got)
		}
		lg := logs.String()
		for _, want := range []string{"admission rejected", `"dataset":"starved"`, "remaining_eps"} {
			if !strings.Contains(lg, want) {
				t.Errorf("budget rejection log is missing %q:\n%s", want, lg)
			}
		}
	})
}

// TestServerRequestIDEcho: a well-formed client X-Request-ID is echoed
// back; a hostile one is replaced with a generated id.
func TestServerRequestIDEcho(t *testing.T) {
	_, base, _ := newObsTestServer(t, Options{Workers: 1, MaxJobs: 1})
	req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-42.a_b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-42.a_b" {
		t.Errorf("well-formed request id not echoed: got %q", got)
	}

	const hostile = "spaces and {braces} fail the shape check"
	req.Header.Set("X-Request-ID", hostile)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || got == hostile {
		t.Errorf("hostile request id not replaced: got %q", got)
	}
}
