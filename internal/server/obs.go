package server

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"dpkron/internal/obs"
	"dpkron/internal/trace"
)

// serverMetrics is the serving tier's telemetry bundle, built once in
// New. With a nil registry every collector is nil and every update
// no-ops — the zero-cost path for library users of this package.
type serverMetrics struct {
	httpRequests *obs.CounterVec   // route, method, code
	httpDuration *obs.HistogramVec // route
	httpInFlight *obs.Gauge

	jobsSubmitted *obs.CounterVec // kind
	jobsCompleted *obs.CounterVec // kind, status
	jobsQueued    *obs.Gauge
	jobsRunning   *obs.Gauge
	stageSeconds  *obs.HistogramVec // stage

	admissionRejected *obs.CounterVec // reason
	coalesced         *obs.Counter
	replayedJobs      *obs.Counter
	resumedJobs       *obs.Counter
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		httpRequests: reg.CounterVec("dpkron_http_requests_total", "HTTP requests served, by route, method and status code.", "route", "method", "code"),
		httpDuration: reg.HistogramVec("dpkron_http_request_seconds", "HTTP request latency, by route.", nil, "route"),
		httpInFlight: reg.Gauge("dpkron_http_in_flight_requests", "HTTP requests currently being served."),

		jobsSubmitted: reg.CounterVec("dpkron_jobs_submitted_total", "Jobs admitted into the queue, by kind.", "kind"),
		jobsCompleted: reg.CounterVec("dpkron_jobs_completed_total", "Jobs finished, by kind and terminal status.", "kind", "status"),
		jobsQueued:    reg.Gauge("dpkron_jobs_queued", "Jobs admitted and waiting for a slot."),
		jobsRunning:   reg.Gauge("dpkron_jobs_running", "Jobs currently holding a run slot."),
		stageSeconds:  reg.HistogramVec("dpkron_job_stage_seconds", "Wall-clock duration of completed pipeline stages, by stage.", nil, "stage"),

		admissionRejected: reg.CounterVec("dpkron_admission_rejected_total", "Job submissions refused at the door, by reason.", "reason"),
		coalesced:         reg.Counter("dpkron_release_coalesced_total", "Fit requests that joined an identical in-flight job instead of running (single-flight)."),
		replayedJobs:      reg.Counter("dpkron_journal_replayed_jobs_total", "Terminal jobs restored from the journal at startup."),
		resumedJobs:       reg.Counter("dpkron_journal_resumed_jobs_total", "Unfinished jobs resumed from the journal at startup."),
	}
}

// Admission rejection reasons — the label set of
// dpkron_admission_rejected_total.
const (
	rejectBudget       = "budget"
	rejectQueueFull    = "queue_full"
	rejectDraining     = "draining"
	rejectBodyTooLarge = "body_too_large"
	rejectInternal     = "internal"
)

// rejectReason maps a refused submission's HTTP status to its metric
// label. Budget refusals are detected by the caller (they carry an
// ExhaustedError) before falling back to this mapping.
func rejectReason(status int) string {
	switch status {
	case http.StatusServiceUnavailable:
		return rejectDraining
	case http.StatusTooManyRequests:
		return rejectQueueFull
	default:
		return rejectInternal
	}
}

// rejectAdmission counts and warn-logs one refused admission — the
// fix for the silent-drop failure mode where 429s and 413s vanished
// without trace. Every record carries the request id; dataset and
// remaining budget ride along when the refusal is budget-shaped.
func (s *Server) rejectAdmission(r *http.Request, reason, dataset, msg string, extra ...slog.Attr) {
	s.met.admissionRejected.With(reason).Inc()
	attrs := []slog.Attr{
		slog.String("request_id", RequestIDFrom(r.Context())),
		slog.String("reason", reason),
	}
	if dataset != "" {
		attrs = append(attrs, slog.String("dataset", dataset))
	}
	attrs = append(attrs, extra...)
	attrs = append(attrs, slog.String("error", msg))
	s.log.LogAttrs(r.Context(), slog.LevelWarn, "admission rejected", attrs...)
}

// ridKey carries the request's correlation id through its context.
type ridKey struct{}

// RequestIDFrom returns the request id the middleware attached to
// ctx, or "" outside a request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// requestID echoes a well-formed client-supplied X-Request-ID (so
// callers can stitch their own traces through the server's logs) or
// generates a fresh one. The shape check keeps hostile header bytes
// out of the logs.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 64 {
		return obs.NewRequestID()
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return obs.NewRequestID()
		}
	}
	return id
}

// routeLabel normalizes a request path to a bounded label set —
// path parameters collapse to their pattern so metric cardinality
// stays O(routes), never O(ids). (http.Request.Pattern would hand us
// this, but it needs Go 1.23 and CI pins 1.22.)
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/v1/fit", "/v1/generate", "/v1/jobs", "/v1/datasets", "/v1/releases",
		"/healthz", "/readyz", "/metrics":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/v1/jobs/") && strings.HasSuffix(p, "/trace"):
		return "/v1/jobs/{id}/trace"
	case strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(p, "/v1/datasets/"):
		return "/v1/datasets/{id}"
	case strings.HasPrefix(p, "/v1/releases/"):
		return "/v1/releases/{id}"
	case strings.HasPrefix(p, "/v1/budget/"):
		return "/v1/budget/{dataset}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// quietRoute marks the probe endpoints whose per-scrape access logs
// would drown real traffic at info; they log at debug instead.
func quietRoute(route string) bool {
	return route == "/metrics" || route == "/healthz" || route == "/readyz" || route == "/debug/pprof"
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (rec *statusRecorder) WriteHeader(code int) {
	rec.status = code
	rec.ResponseWriter.WriteHeader(code)
}

// traceContext parses the request's W3C traceparent header, or mints
// a fresh trace identity when it is absent or malformed (hostile
// headers are simply replaced — the parser never panics and nothing
// unvalidated reaches logs or traces). The second return is the
// header value to echo: the client's verbatim for version-00 input,
// otherwise the generated identity so the caller learns the trace id
// its job was recorded under.
func traceContext(r *http.Request) (trace.Context, string) {
	if tc, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return tc, tc.Traceparent()
	}
	// SpanID stays empty in the returned context — there is no real
	// client span — but the echoed header needs one, representing this
	// request's server-side handling.
	tc := trace.Context{TraceID: trace.NewTraceID(), Flags: 1}
	echo := tc
	echo.SpanID = trace.NewSpanID()
	return tc, echo.Traceparent()
}

// instrument is the HTTP middleware around the whole mux: request-id
// generation/echo (X-Request-ID, also attached to the context for the
// handlers' logs), W3C traceparent parse/echo/generate (the trace
// context rides the request context for the job tracer to join), the
// in-flight gauge, per-route request/latency/status metrics, and one
// structured access-log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID(r)
		w.Header().Set("X-Request-ID", id)
		tc, echo := traceContext(r)
		w.Header().Set("traceparent", echo)
		ctx := context.WithValue(r.Context(), ridKey{}, id)
		ctx = context.WithValue(ctx, tcKey{}, tc)
		r = r.WithContext(ctx)
		route := routeLabel(r)
		s.met.httpInFlight.Inc()
		defer s.met.httpInFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		s.met.httpRequests.With(route, r.Method, strconv.Itoa(rec.status)).Inc()
		s.met.httpDuration.With(route).Observe(elapsed.Seconds())
		level := slog.LevelInfo
		if quietRoute(route) {
			level = slog.LevelDebug
		}
		s.log.LogAttrs(r.Context(), level, "http request",
			slog.String("request_id", id),
			slog.String("trace_id", tc.TraceID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", rec.status),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// handleReady serves GET /readyz: the load-balancer signal, distinct
// from /healthz liveness. A draining server is alive (200 /healthz —
// don't restart it, it's finishing journaled work) but not ready (503
// here — stop routing new traffic to it before SIGTERM completes).
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "10")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// registerPprof mounts net/http/pprof's profiling handlers. Gated
// behind Options.EnablePprof (`serve -pprof`): profiles expose
// runtime internals and cost CPU while sampling, so an operator opts
// in.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
