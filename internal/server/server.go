// Package server exposes the estimation pipeline as an HTTP/JSON job
// API — the service surface the ROADMAP's production goal needs. Fits
// and synthetic-graph generations are submitted as asynchronous jobs,
// polled for stage progress (fed by the pipeline event sink threaded
// through core/kronfit/kronmom/skg), and cancelled through the same
// context plumbing that every long-running layer checks.
//
// Endpoints:
//
//	POST   /v1/fit              submit an estimation job (private | mom | mle)
//	POST   /v1/generate         submit a synthetic-graph sampling job
//	GET    /v1/jobs             list all jobs (newest last)
//	GET    /v1/jobs/{id}        one job with stage progress and result
//	GET    /v1/jobs/{id}/trace  the job's span tree (?format=chrome for
//	                            a Chrome/Perfetto trace-event file)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/budget/{dataset} a dataset's ledger account (ledger mode)
//	POST   /v1/datasets         import a graph into the dataset store
//	GET    /v1/datasets[/{id}]  list stored datasets / one's metadata
//	DELETE /v1/datasets/{id}    remove a stored dataset
//	GET    /v1/releases[/{id}]  list cached releases / one with payload
//	GET    /healthz             liveness probe
//
// With Options.Datasets configured, fit requests may name a stored
// dataset id ("dataset_id") instead of shipping an inline edge list —
// the register-once, query-many workflow: the graph is uploaded a
// single time (streamed, gzip-transparent, exempt from the inline body
// cap) and every subsequent fit references it by its content
// fingerprint, which is also the id the privacy ledger charges.
//
// When Options.Ledger is set, private fits are additionally charged
// against a persistent per-dataset privacy-budget ledger: the request's
// dataset id (or the graph's content fingerprint) is debited the full
// requested (ε, δ) at admission, exhausted budgets are rejected with
// 429 plus the remaining budget, and finished fit results carry the
// itemized spend receipt.
//
// With Options.Releases configured, private fits are memoized in a
// persistent release cache keyed by the question's content fingerprint
// (dataset bytes, ε, δ, composition policy, mechanism config, seed).
// Post-processing is free under differential privacy, so a repeated
// question is answered 200 from the cache — the stored release with
// its original receipt plus a "cached": true marker — at zero ledger
// debit, zero noise draws, and zero job slots. Admission is
// cache-aware: only a genuine miss enters the ledger-debit critical
// section, and concurrent identical submissions coalesce through a
// single-flight group so exactly one job runs (and exactly one debit
// lands) no matter how many clients ask at once; the coalesced
// requests all receive that one job, hence the same receipt-bearing
// result. Cancelling a coalesced job cancels it for every waiter.
//
// Concurrency model: the process-wide worker budget is split evenly
// across the MaxJobs job slots, so a fully loaded server never runs
// more goroutines than the budget allows; jobs beyond MaxJobs queue
// (bounded by MaxQueue, further submissions get 429). Every job runs
// under its own context derived from the server's, so Close cancels
// everything in flight.
//
// With Options.Journal configured, the server is crash-safe: every
// job transition is appended to a durable, checksummed journal — the
// admission record (fsynced before the ledger debit) carries the
// request, planned receipt, release key and an idempotency token, and
// the terminal record is fsynced before eviction may forget the job.
// New replays the journal on startup, restoring terminal jobs as
// pollable history and resuming interrupted fits without a second
// debit (cache-first, then SpendToken under the journaled token,
// then deterministic re-execution from the recorded seed). The
// serving invariant: every debit is eventually matched by a served
// release or an explicit journaled failure — never silence.
// StartDrain and Drain implement graceful shutdown: admission is
// refused with 503 + Retry-After (budget and queue refusals carry
// Retry-After too) while reads and cache hits stay available, running
// jobs get the drain deadline to finish, and stragglers are cancelled
// so their terminal states reach the journal before Drain returns.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/dataset"
	"dpkron/internal/journal"
	"dpkron/internal/obs"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/release"
	"dpkron/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Workers is the total worker budget split across concurrent jobs;
	// <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// MaxJobs bounds concurrently *running* jobs (default 2).
	MaxJobs int
	// MaxQueue bounds jobs admitted but not yet finished — running plus
	// queued (default 32). Submissions beyond it are rejected with 429.
	MaxQueue int
	// MaxHistory bounds retained *finished* jobs (default 256): once
	// exceeded, the oldest terminal jobs are evicted so a long-running
	// server's memory stays bounded. Queued and running jobs are never
	// evicted.
	MaxHistory int
	// EventLog, when set, receives every job's pipeline events as they
	// arrive (serialized per job). Used by `dpkron serve -progress`.
	EventLog func(jobID string, e pipeline.Event)
	// Ledger, when set, turns on per-dataset privacy-budget
	// enforcement: every private fit is debited against its dataset's
	// account at admission time (the full requested (ε, δ), known
	// upfront because Algorithm 1's charge schedule is
	// data-independent), and a request whose dataset lacks the
	// remaining budget is rejected with 429 and a remaining-budget
	// body. The debit is conservative — cancelled or failed jobs do
	// not refund, since their mechanisms may already have drawn noise.
	Ledger *accountant.Ledger
	// Datasets, when set, enables the dataset endpoints and
	// fit-by-dataset-id: graphs are imported once into the persistent
	// store and later requests reference them by content-addressed id.
	Datasets *dataset.Store
	// MaxUploadBytes bounds POST /v1/datasets bodies (default 1 GiB);
	// inline JSON job bodies keep their own 64 MiB cap.
	MaxUploadBytes int64
	// Releases, when set, memoizes private fit results in a persistent
	// release cache and coalesces concurrent identical fits into one
	// job: a repeated question is served from the cache at zero budget
	// and zero compute (see the package comment).
	Releases *release.Cache
	// Journal, when set, makes serving crash-safe: every job's state
	// transitions are append-logged (with the request payload, dataset,
	// planned receipt and release key at admission), New replays the log
	// — journaled terminal jobs answer GET /v1/jobs/{id} across
	// restarts, and an unfinished fit is resumed without a second
	// ledger debit (the idempotent spend token re-issues the charge at
	// most once). The caller owns the journal's lifecycle and must keep
	// it open until after Close/Drain returns.
	Journal *journal.Journal
	// Metrics, when set, instruments the whole serving tier on the
	// registry — HTTP middleware, the job manager, and every configured
	// subsystem (ledger, dataset store, release cache, journal) — and
	// mounts GET /metrics serving it in Prometheus text format. Nil
	// keeps every instrumented path at its zero-cost no-op.
	Metrics *obs.Registry
	// Logger receives structured request, job and admission logs with
	// per-request/per-job correlation ids. Nil discards them.
	Logger *slog.Logger
	// Traces, when set, records a span tree per job — W3C traceparent
	// adopted from the request, spans for admission, journal appends,
	// the ledger debit, dataset load, queueing and every pipeline
	// stage, plus a privacy-audit event per accountant debit/refusal —
	// retained in this bounded store (dropped alongside job-history
	// eviction) and served by GET /v1/jobs/{id}/trace. Nil keeps every
	// tracing path at its zero-cost no-op; a job's outputs are
	// bit-identical either way (trace ids never touch the seeded
	// streams).
	Traces *trace.Store
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
}

func (o *Options) fill() {
	o.Workers = parallel.Normalize(o.Workers)
	if o.MaxJobs <= 0 {
		o.MaxJobs = 2
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 32
	}
	if o.MaxHistory <= 0 {
		o.MaxHistory = 256
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 1 << 30
	}
}

// Server is the job manager plus its HTTP handler.
type Server struct {
	opts       Options
	jobWorkers int
	met        serverMetrics
	log        *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	slots  chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	next     int
	active   int  // admitted and not yet finalized (queued + running)
	draining bool // StartDrain called: refuse new admissions with 503
	// admitting holds job ids whose admission record is journaled but
	// whose job is not yet registered — a window journal compaction
	// must not drop.
	admitting           map[string]struct{}
	evictedSinceCompact int

	// flights single-flights private fits by release fingerprint: while
	// a fit for a question is queued or running, identical submissions
	// join its job instead of debiting and running again. Entries are
	// dropped after the result is in the cache (or the run failed), so
	// a successful question is always answerable by flight or cache.
	// Lock order: flightMu before mu (serveReleaseLocked/submit);
	// never the reverse.
	flightMu sync.Mutex
	flights  map[string]*job

	mux *http.ServeMux
}

// New returns a Server ready to serve its Handler.
func New(opts Options) *Server {
	opts.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		met:       newServerMetrics(opts.Metrics),
		log:       opts.Logger,
		ctx:       ctx,
		cancel:    cancel,
		slots:     make(chan struct{}, opts.MaxJobs),
		jobs:      map[string]*job{},
		flights:   map[string]*job{},
		admitting: map[string]struct{}{},
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	if opts.Metrics != nil {
		// One wiring point instruments every configured subsystem, so
		// `serve` gets the full metric surface from a single flag while
		// library callers keep per-component control via Instrument.
		if opts.Ledger != nil {
			opts.Ledger.Instrument(opts.Metrics)
		}
		if opts.Datasets != nil {
			opts.Datasets.Instrument(opts.Metrics)
		}
		if opts.Releases != nil {
			opts.Releases.Instrument(opts.Metrics)
		}
		if opts.Journal != nil {
			opts.Journal.Instrument(opts.Metrics)
		}
	}
	// Split the budget across the job slots: a saturated server stays
	// within Options.Workers total.
	s.jobWorkers = opts.Workers / opts.MaxJobs
	if s.jobWorkers < 1 {
		s.jobWorkers = 1
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/fit", s.handleFit)
	s.mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/budget/{dataset}", s.handleBudget)
	s.mux.HandleFunc("POST /v1/datasets", s.handleDatasetImport)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetMeta)
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDatasetDelete)
	s.mux.HandleFunc("GET /v1/releases", s.handleReleaseList)
	s.mux.HandleFunc("GET /v1/releases/{id}", s.handleRelease)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		s.mu.Lock()
		if s.draining {
			status = "draining"
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"status": status})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if opts.Metrics != nil {
		s.mux.Handle("GET /metrics", opts.Metrics.Handler())
	}
	if opts.EnablePprof {
		registerPprof(s.mux)
	}
	if opts.Journal != nil {
		s.replay()
	}
	return s
}

// Handler returns the HTTP handler serving the job API, wrapped in
// the telemetry middleware (request ids, per-route metrics, access
// logs — all no-ops when Options left Metrics and Logger unset).
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// Close cancels every queued and running job and waits for their
// goroutines to drain.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// StartDrain stops admission: subsequent job submissions are refused
// with 503 + Retry-After while everything already admitted keeps
// running. Cache hits, job polling, and the read-only endpoints stay
// available throughout.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain gracefully shuts the job manager down: admission stops, jobs
// already admitted run to completion until ctx expires, then
// stragglers are cancelled — and waited for, so every job's terminal
// state (done, failed, or cancelled) is journaled before Drain
// returns. The HTTP listener is the caller's to close; call Drain
// before closing the journal.
func (s *Server) Drain(ctx context.Context) {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel what remains and wait for the cancellations
		// to finalize (each journals its cancelled record on the way
		// out).
		s.cancel()
		<-done
	}
}

// Job statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// StageProgress is one stage's latest progress fraction, in the order
// the stages first reported.
type StageProgress struct {
	Stage string  `json:"stage"`
	Frac  float64 `json:"frac"`
	// Seconds is the stage's wall-clock time so far (final once frac
	// reaches 1) — the trace `dpkron job show -v` renders, matching
	// the dpkron_job_stage_seconds histogram an operator scrapes.
	Seconds float64 `json:"seconds,omitempty"`
}

type job struct {
	id     string
	kind   string
	cancel context.CancelFunc

	mu     sync.Mutex
	status string
	// ran records that the job reached running (vs cancelled straight
	// out of the queue) — it decides which gauge finalize decrements.
	ran        bool
	stages     []StageProgress
	stageStart map[string]time.Time
	result     any
	errMsg     string
	// journaled marks the terminal state as recorded in the journal;
	// only journaled terminal jobs may be evicted from memory.
	journaled bool

	// tr and root carry the job's tracer and root span when tracing is
	// on (both nil otherwise — every use no-ops). Set before the job is
	// registered and never mutated after, so they need no lock.
	tr   *trace.Tracer
	root *trace.Span
}

// sink returns the pipeline Sink recording stage progress (and
// per-stage wall-clock timing) on the job. A stage's clock starts at
// its first event and its duration lands in stageSeconds when an
// event reports frac >= 1 — tracing derived entirely from the
// progress events the pipeline already emits.
func (j *job) sink(stageSeconds *obs.HistogramVec) pipeline.Sink {
	return func(e pipeline.Event) {
		now := time.Now()
		j.mu.Lock()
		defer j.mu.Unlock()
		for i := range j.stages {
			if j.stages[i].Stage == e.Stage {
				if e.Frac > j.stages[i].Frac {
					j.stages[i].Frac = e.Frac
				}
				if start, ok := j.stageStart[e.Stage]; ok {
					elapsed := now.Sub(start).Seconds()
					j.stages[i].Seconds = elapsed
					if e.Frac >= 1 {
						stageSeconds.With(e.Stage).Observe(elapsed)
						delete(j.stageStart, e.Stage)
					}
				}
				return
			}
		}
		if j.stageStart == nil {
			j.stageStart = map[string]time.Time{}
		}
		j.stages = append(j.stages, StageProgress{Stage: e.Stage, Frac: e.Frac})
		if e.Frac >= 1 {
			// A stage whose very first event is completion: zero-length.
			stageSeconds.With(e.Stage).Observe(0)
			return
		}
		j.stageStart[e.Stage] = now
	}
}

// setStatus transitions the job unless it already reached a terminal
// state: a DELETE that marked a queued job cancelled must not be
// overwritten by the goroutine racing into "running". Returns whether
// the transition applied.
func (j *job) setStatus(status string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalStatus(j.status) {
		return false
	}
	j.status = status
	if status == StatusRunning {
		j.ran = true
	}
	return true
}

func terminalStatus(s string) bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// view is the JSON representation returned by the jobs endpoints.
type view struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Status string          `json:"status"`
	Stages []StageProgress `json:"stages,omitempty"`
	Result any             `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (j *job) view() view {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := view{
		ID:     j.id,
		Kind:   j.kind,
		Status: j.status,
		Stages: append([]StageProgress(nil), j.stages...),
		Error:  j.errMsg,
	}
	if j.status == StatusDone {
		v.Result = j.result
	}
	return v
}

// jobSpec is everything submit needs to admit, journal, and run a
// job. The admission payload fields (request, dataset, planned,
// releaseKey) are what a restarted server needs to resume the job
// from its journal record.
type jobSpec struct {
	kind string
	// id preassigns the job id (journal replay); empty allocates the
	// next "job-N".
	id string
	// replayed marks a journal-resumed job: its admission record is
	// already on disk and it was admitted once, so it bypasses the
	// queue cap and the admission journaling.
	replayed bool
	// request is the submitted body, journaled at admission so replay
	// can rebuild fn.
	request json.RawMessage
	// dataset, planned and releaseKey are the fit's ledger account,
	// admission debit, and release-cache key (private fits).
	dataset    string
	planned    *accountant.Receipt
	releaseKey *release.Key
	// admit runs after the admission record is journaled, before the
	// job is registered — the ledger-debit hook. With a journal it
	// receives the admission's unique spend token (journaled, so replay
	// re-issues the identical idempotent debit); without one the token
	// is empty and the hook debits plainly.
	admit func(token string) error
	fn    func(run *pipeline.Run) (any, error)
	// requestID and traceID tie the journaled admission back to the
	// originating HTTP request, so a crash-resumed job's trace links to
	// the request that paid for it.
	requestID string
	traceID   string
	// tr and root are the job's tracer and root span (nil when tracing
	// is off); submit hangs admission, queue-wait and run spans off
	// them and stores the tracer under the job id.
	tr   *trace.Tracer
	root *trace.Span
}

// submit registers a job and launches its goroutine. fn runs once a
// job slot frees up, under a pipeline Run wired to the job's context
// and progress sink. Returns nil (plus an HTTP status and message)
// when the server is draining, the queue is full, or the admit hook
// refuses. The queue slot is reserved first, then journaling and
// admission run outside s.mu — both do disk I/O (fsync) and must not
// stall every other endpoint — so a committed debit never needs
// rolling back for a queue-full rejection, only the slot reservation
// is undone on refusal.
//
// With a journal, the write order carries the crash-consistency
// protocol: the admission record (fsynced) precedes the ledger debit,
// so a crash anywhere in between leaves a journaled job whose replay
// re-issues the debit under its idempotent job-id token — exactly one
// debit lands no matter where the crash fell. A refused admission is
// closed with a journaled failure so the admitted record never
// dangles.
func (s *Server) submit(spec jobSpec) (*job, int, string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, "server is draining; retry against the restarted instance"
	}
	if !spec.replayed && s.active >= s.opts.MaxQueue {
		active := s.active
		s.mu.Unlock()
		return nil, http.StatusTooManyRequests, fmt.Sprintf("job queue full (%d active)", active)
	}
	s.active++ // reserve the queue slot before the lock is dropped
	id := spec.id
	if id == "" {
		s.next++
		id = fmt.Sprintf("job-%d", s.next)
	}
	s.admitting[id] = struct{}{}
	s.mu.Unlock()
	undo := func() {
		s.mu.Lock()
		s.active--
		delete(s.admitting, id)
		s.mu.Unlock()
	}
	adm := spec.tr.Start(spec.root, "admission", trace.String("job_id", id))
	var token string
	if s.opts.Journal != nil && !spec.replayed {
		// The spend token must be unique across process lifetimes (job
		// ids restart with the server; a collision with an old receipt
		// would silently skip a legitimate debit), and it must be
		// journaled before the debit so replay re-issues the identical
		// token.
		if spec.planned != nil {
			token = id + "-" + randomSuffix()
		}
		rec := journal.Record{
			Job: id, State: journal.StateAdmitted, Kind: spec.kind,
			Request: spec.request, Dataset: spec.dataset,
			Planned: spec.planned, Token: token, ReleaseKey: spec.releaseKey,
			RequestID: spec.requestID, TraceID: spec.traceID,
		}
		jsp := adm.Child("journal-append", trace.String("state", journal.StateAdmitted))
		err := s.opts.Journal.Append(rec, true)
		jsp.End()
		if err != nil {
			undo()
			return nil, http.StatusInternalServerError, fmt.Sprintf("journaling admission: %v", err)
		}
	}
	if spec.admit != nil {
		deb := adm.Child("ledger-debit", trace.String("dataset", spec.dataset))
		err := spec.admit(token)
		s.auditDebit(deb, spec.dataset, spec.planned, err)
		deb.End()
		if err != nil {
			// Close the journaled admission with an explicit failure —
			// the invariant's "never silence" — before undoing the slot.
			if s.opts.Journal != nil {
				_ = s.opts.Journal.Append(journal.Record{
					Job: id, State: journal.StateFailed, Kind: spec.kind,
					Error: "admission refused: " + err.Error(),
				}, true)
			}
			adm.End()
			undo()
			status := http.StatusInternalServerError
			if errors.Is(err, accountant.ErrBudgetExhausted) {
				status = http.StatusTooManyRequests
			}
			return nil, status, err.Error()
		}
		if s.opts.Journal != nil && spec.planned != nil {
			// The debit landed; record it. Async is safe: losing this
			// record only means replay re-issues the idempotent token.
			_ = s.opts.Journal.Append(journal.Record{Job: id, State: journal.StateDebited}, false)
		}
	}
	s.mu.Lock()
	ctx, cancel := context.WithCancel(s.ctx)
	j := &job{
		id:     id,
		kind:   spec.kind,
		cancel: cancel,
		status: StatusQueued,
		tr:     spec.tr,
		root:   spec.root,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	delete(s.admitting, id)
	s.wg.Add(1)
	s.mu.Unlock()
	adm.End()
	// Store the tracer as soon as the job exists: an in-flight job's
	// trace is queryable while it runs, not only after it finishes.
	s.opts.Traces.Put(id, spec.tr)
	s.met.jobsSubmitted.With(spec.kind).Inc()
	s.met.jobsQueued.Inc()
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "job admitted",
		slog.String("job_id", id), slog.String("kind", spec.kind),
		slog.String("dataset", spec.dataset), slog.Bool("replayed", spec.replayed))
	fn := spec.fn

	go func() {
		defer s.wg.Done()
		// finalize exactly once, on every exit path: release the job's
		// context resources, return its admission slot, and evict old
		// terminal jobs beyond the history bound.
		defer s.finalize(j)
		qsp := j.tr.Start(j.root, "queue-wait")
		select {
		case s.slots <- struct{}{}:
			qsp.End()
			defer func() { <-s.slots }()
		case <-ctx.Done():
			qsp.End()
			j.setStatus(StatusCancelled)
			return
		}
		if ctx.Err() != nil {
			j.setStatus(StatusCancelled)
			return
		}
		if j.setStatus(StatusRunning) {
			s.met.jobsQueued.Dec()
			s.met.jobsRunning.Inc()
		}
		if s.opts.Journal != nil {
			// Recoverable by re-execution, so async: a lost running
			// record only costs replay the knowledge that the fit had
			// started.
			_ = s.opts.Journal.Append(journal.Record{Job: j.id, State: journal.StateRunning}, false)
		}
		sink := j.sink(s.met.stageSeconds)
		if s.opts.EventLog != nil {
			inner := sink
			id := j.id
			sink = func(e pipeline.Event) {
				inner(e)
				s.opts.EventLog(id, e)
			}
		}
		runSp := j.tr.Start(j.root, "run", trace.Int("workers", s.jobWorkers))
		stages := j.tr.StageSpans(runSp, trace.Int("workers", s.jobWorkers))
		if stages != nil {
			inner := sink
			sink = func(e pipeline.Event) {
				inner(e)
				stages.Observe(e.Stage, e.Frac)
			}
		}
		res, err := fn(pipeline.New(ctx, s.jobWorkers, sink))
		stages.Close()
		runSp.End()
		j.mu.Lock()
		defer j.mu.Unlock()
		if terminalStatus(j.status) {
			// A DELETE already confirmed this job cancelled to the
			// client; keep that answer and drop any late result.
			return
		}
		switch {
		case err == nil:
			j.status = StatusDone
			j.result = res
		case errors.Is(err, context.Canceled) || ctx.Err() != nil:
			j.status = StatusCancelled
		default:
			j.status = StatusFailed
			j.errMsg = err.Error()
		}
	}()
	return j, http.StatusAccepted, ""
}

// terminal reports whether the job has finished (any outcome).
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalStatus(j.status)
}

// randomSuffix returns 8 random hex bytes for the per-admission spend
// token: job ids restart with the process, so the id alone could
// collide with a receipt journaled by an earlier instance.
func randomSuffix() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random token suffix: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// finalize runs once per job, after it reaches a terminal state:
// journals the terminal transition (fsynced — the record that closes
// the job's debit, and the precondition for evicting it), releases
// the job context's resources, frees the admission slot, and evicts
// the oldest finished jobs beyond Options.MaxHistory.
func (s *Server) finalize(j *job) {
	j.cancel()
	jsp := j.tr.Start(j.root, "journal-append", trace.String("state", "terminal"))
	s.journalTerminal(j, true)
	jsp.End()
	j.mu.Lock()
	status, ran, errMsg := j.status, j.ran, j.errMsg
	j.mu.Unlock()
	j.root.SetAttr(trace.String("status", status))
	j.root.End()
	if ran {
		s.met.jobsRunning.Dec()
	} else {
		s.met.jobsQueued.Dec()
	}
	s.met.jobsCompleted.With(j.kind, status).Inc()
	attrs := []slog.Attr{
		slog.String("job_id", j.id),
		slog.String("kind", j.kind),
		slog.String("status", status),
	}
	level := slog.LevelInfo
	if errMsg != "" {
		attrs = append(attrs, slog.String("error", errMsg))
		level = slog.LevelWarn
	}
	s.log.LogAttrs(context.Background(), level, "job finished", attrs...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	s.evictHistoryLocked()
}

// journalTerminal appends the job's terminal record and marks the job
// evictable. If the append fails, the job stays unjournaled — and
// therefore never evicted from memory — so its outcome remains
// observable somewhere: never silence.
func (s *Server) journalTerminal(j *job, sync bool) {
	if s.opts.Journal == nil {
		j.mu.Lock()
		j.journaled = true
		j.mu.Unlock()
		return
	}
	j.mu.Lock()
	rec := journal.Record{Job: j.id, State: j.status, Kind: j.kind, Error: j.errMsg}
	if j.status == StatusDone && j.result != nil {
		// Retain the result when it fits the cap so GET /v1/jobs/{id}
		// answers across restarts; an oversized payload (a huge generate
		// edge list) is elided, keeping only the done state.
		if raw, err := json.Marshal(j.result); err == nil && len(raw) <= journal.MaxResultBytes {
			rec.Result = raw
		}
	}
	j.mu.Unlock()
	if err := s.opts.Journal.Append(rec, sync); err != nil {
		return
	}
	j.mu.Lock()
	j.journaled = true
	j.mu.Unlock()
}

// evictable reports whether the job may be dropped from memory: it
// must be terminal AND have its terminal state journaled (with a
// journal configured, the journal is the source of truth for
// -max-history — evicting an unjournaled terminal job would erase its
// outcome entirely).
func (j *job) evictable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalStatus(j.status) && j.journaled
}

// evictHistoryLocked drops the oldest evictable terminal jobs beyond
// Options.MaxHistory, and periodically compacts the journal down to
// the retained set so the log tracks the same bound; callers hold
// s.mu.
func (s *Server) evictHistoryLocked() {
	finished := len(s.order) - s.active
	if finished <= s.opts.MaxHistory {
		return
	}
	evict := finished - s.opts.MaxHistory
	kept := s.order[:0]
	evicted := 0
	for _, id := range s.order {
		if evict > 0 && s.jobs[id].evictable() {
			delete(s.jobs, id)
			// Trace retention tracks job retention: an evicted job's
			// span tree goes with it.
			s.opts.Traces.Drop(id)
			evict--
			evicted++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	if evicted == 0 || s.opts.Journal == nil {
		return
	}
	// Compact once a quarter of the history bound has churned:
	// amortized O(1) records of rewrite per finished job, while the
	// journal never holds more than ~MaxHistory + MaxHistory/4 + active
	// jobs. Keep everything still registered or mid-admission.
	s.evictedSinceCompact += evicted
	if s.evictedSinceCompact*4 < s.opts.MaxHistory {
		return
	}
	s.evictedSinceCompact = 0
	_ = s.opts.Journal.Compact(func(id string) bool {
		if _, ok := s.jobs[id]; ok {
			return true
		}
		_, ok := s.admitting[id]
		return ok
	})
}

// completedJob registers a job that is already done — a fit answered
// from the release cache. It never held a queue slot or admission
// debit, so only the history bound applies; registering it keeps the
// jobs API uniform (the hit is pollable and listed like any fit). The
// single done record it journals (async — no debit rides on it) is
// what lets the hit answer by job id across restarts and be evicted.
func (s *Server) completedJob(kind string, result any) *job {
	s.mu.Lock()
	s.next++
	j := &job{
		id:     fmt.Sprintf("job-%d", s.next),
		kind:   kind,
		cancel: func() {},
		status: StatusDone,
		result: result,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.journalTerminal(j, false)
	s.mu.Lock()
	s.evictHistoryLocked()
	s.mu.Unlock()
	return j
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]view, 0, len(ids))
	for _, id := range ids {
		if j := s.lookup(id); j != nil {
			out = append(out, j.view())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.cancel()
	// A queued job flips to cancelled synchronously; a running one
	// transitions when its pipeline observes the context.
	j.mu.Lock()
	if j.status == StatusQueued {
		j.status = StatusCancelled
	}
	v := view{ID: j.id, Kind: j.kind, Status: j.status}
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

// handleBudget reports a dataset's ledger account: configured budget,
// composed spend, remaining allowance, and receipt count.
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if s.opts.Ledger == nil {
		writeError(w, http.StatusNotFound, "no ledger configured (start the server with a ledger to enforce budgets)")
		return
	}
	ds := r.PathValue("dataset")
	acct, ok := s.opts.Ledger.Account(ds)
	if !ok {
		// A dataset the store holds but the ledger has never seen is a
		// real dataset with the default-deny zero budget — report that
		// consistently instead of a 404 that would contradict
		// GET /v1/datasets/{id}. Ids known to neither are 404s, the
		// same JSON error shape the fit and dataset routes use.
		if s.opts.Datasets == nil || !s.opts.Datasets.Has(ds) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q (set a budget with `dpkron budget set`)", ds))
			return
		}
		acct = accountant.Account{}
	}
	rem := acct.Remaining()
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":   ds,
		"budget":    acct.Budget,
		"spent":     acct.Spent,
		"remaining": rem,
		"receipts":  len(acct.Receipts),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
