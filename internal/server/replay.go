package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"

	"dpkron/internal/graph"
	"dpkron/internal/journal"
	"dpkron/internal/pipeline"
	"dpkron/internal/trace"
)

// replay, called from New when a journal is configured, restores the
// server's job table from the log and resumes unfinished work. The
// serving invariant it upholds: every debit the journal proves is
// eventually matched by a served release or an explicit journaled
// failure — never silence.
//
//   - Terminal jobs become history: GET /v1/jobs/{id} answers across
//     restarts, with the retained result when it fit the journal's cap.
//   - An unfinished fit is resumed: its release key is checked against
//     the cache first (a crash after the cache Put but before the done
//     record means the work is already paid for and finished — serve
//     it, never recompute), otherwise its debit is re-issued under the
//     idempotent job-id token (at most one debit total, no matter
//     where the crash fell) and the fit re-executes deterministically
//     from the recorded seed, landing the identical release.
//   - Anything that cannot be resumed — a generate job (no budget at
//     stake), a request that no longer decodes, a dataset since
//     deleted — is closed with an explicit journaled failure.
func (s *Server) replay() {
	states := journal.Reduce(s.opts.Journal.Records())
	s.mu.Lock()
	// Restore the id counter past every journaled job so new ids never
	// collide with resumed or historical ones.
	for _, st := range states {
		if n, ok := jobNumber(st.Job); ok && n > s.next {
			s.next = n
		}
	}
	var unfinished []*journal.JobState
	for _, st := range states {
		if !st.Terminal() {
			unfinished = append(unfinished, st)
			continue
		}
		j := &job{
			id:        st.Job,
			kind:      st.Kind,
			cancel:    func() {},
			status:    st.State,
			errMsg:    st.Error,
			journaled: true,
		}
		if len(st.Result) > 0 {
			j.result = json.RawMessage(st.Result)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.met.replayedJobs.Inc()
	}
	s.evictHistoryLocked()
	s.mu.Unlock()
	if len(states) > 0 {
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "journal replayed",
			slog.Int("jobs", len(states)), slog.Int("unfinished", len(unfinished)))
	}
	for _, st := range unfinished {
		s.resume(st)
	}
}

// resume restarts one unfinished journaled job, or closes it with a
// journaled failure when it cannot run again.
func (s *Server) resume(st *journal.JobState) {
	ad := st.Admitted
	if ad == nil {
		s.closeUnresumable(st, "journal holds no admission record for this job; cannot resume")
		return
	}
	if !strings.HasPrefix(st.Kind, "fit/") {
		// A generate job holds no privacy budget, so re-running it
		// unasked buys nothing the client can't get by resubmitting;
		// close it explicitly instead.
		s.closeUnresumable(st, "interrupted by server restart; resubmit to regenerate")
		return
	}
	method := strings.TrimPrefix(st.Kind, "fit/")
	var req FitRequest
	if err := json.Unmarshal(ad.Request, &req); err != nil {
		s.closeUnresumable(st, fmt.Sprintf("journaled request does not decode: %v", err))
		return
	}
	useCache := s.opts.Releases != nil && method == "private" && ad.ReleaseKey != nil
	if useCache {
		// Cache-first: the release-cache Put precedes the done record,
		// so a crash in between leaves finished, paid-for work. Serve
		// it; recomputing would waste the compute (the debit already
		// covers this exact release).
		if e, ok := s.opts.Releases.Get(*ad.ReleaseKey); ok {
			j := &job{
				id:     st.Job,
				kind:   st.Kind,
				cancel: func() {},
				status: StatusDone,
				result: json.RawMessage(e.Payload),
			}
			s.register(j)
			s.journalTerminal(j, true)
			return
		}
	}
	// Re-issue the admission debit under the journaled spend token.
	// When the journal holds the debited record the token is provably
	// in the ledger and this is a no-op — even against an exhausted
	// account; when the crash fell between debit and record, the token
	// makes this the one real debit. A genuine refusal (the debit never
	// landed and the budget is gone) closes the job as failed: the
	// invariant's explicit-failure arm, with no debit left dangling.
	if s.opts.Ledger != nil && method == "private" && ad.Dataset != "" && ad.Planned != nil {
		tok := ad.Token
		if tok == "" {
			tok = st.Job
		}
		if err := s.opts.Ledger.SpendToken(ad.Dataset, *ad.Planned, tok); err != nil {
			s.closeUnresumable(st, fmt.Sprintf("budget unavailable at resume: %v", err))
			return
		}
		_ = s.opts.Journal.Append(journal.Record{Job: st.Job, State: journal.StateDebited}, false)
	}
	// The resumed job's tracer adopts the journaled trace id, so the
	// trace a client started before the crash finds the work that
	// finished after it; the originating request id rides along as an
	// attribute on the new root span.
	var tr *trace.Tracer
	var root *trace.Span
	if s.opts.Traces != nil {
		tr = trace.New(trace.Context{TraceID: ad.TraceID})
		root = tr.Start(nil, st.Kind,
			trace.String("resumed", "true"),
			trace.String("request_id", ad.RequestID))
	}
	fj := fitJob{
		req:      req,
		method:   method,
		dataset:  ad.Dataset,
		useCache: useCache,
		root:     root,
		loadGraph: func() (*graph.Graph, error) {
			dsp := root.Child("dataset-load")
			defer dsp.End()
			if req.DatasetID != "" && len(req.Edges) == 0 && req.EdgeList == "" {
				if s.opts.Datasets == nil {
					return nil, fmt.Errorf("job references stored dataset %s but the server has no dataset store", req.DatasetID)
				}
				return s.opts.Datasets.Load(req.DatasetID)
			}
			return req.graph()
		},
	}
	if useCache {
		fj.relKey = *ad.ReleaseKey
	}
	fn := s.fitFn(fj)
	spec := jobSpec{
		kind:      st.Kind,
		id:        st.Job,
		replayed:  true,
		fn:        fn,
		requestID: ad.RequestID,
		traceID:   ad.TraceID,
		tr:        tr,
		root:      root,
	}
	var j *job
	var msg string
	if useCache {
		// Re-register the single flight so identical requests arriving
		// after the restart join the resumed job instead of debiting a
		// second run.
		fp := ad.ReleaseKey.Fingerprint()
		inner := fn
		spec.fn = func(run *pipeline.Run) (any, error) {
			defer s.forgetFlight(fp)
			return inner(run)
		}
		s.flightMu.Lock()
		j, _, msg = s.submit(spec)
		if j != nil {
			s.flights[fp] = j
		}
		s.flightMu.Unlock()
	} else {
		j, _, msg = s.submit(spec)
	}
	if j == nil {
		s.closeUnresumable(st, "resume refused: "+msg)
		return
	}
	s.met.resumedJobs.Inc()
}

// closeUnresumable journals an explicit failure for a job that cannot
// run again and registers it as terminal history — the "never
// silence" arm of the serving invariant.
func (s *Server) closeUnresumable(st *journal.JobState, msg string) {
	j := &job{
		id:     st.Job,
		kind:   st.Kind,
		cancel: func() {},
		status: StatusFailed,
		errMsg: msg,
	}
	s.register(j)
	s.journalTerminal(j, true)
}

// register adds an already-terminal job to the table (replay paths).
func (s *Server) register(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

// jobNumber extracts N from a "job-N" id.
func jobNumber(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}
