package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/core"
	"dpkron/internal/dp"
	"dpkron/internal/faultfs"
	"dpkron/internal/graph"
	"dpkron/internal/journal"
	"dpkron/internal/release"
)

// doJSONHeaders is doJSON plus the response headers, for tests that
// assert Retry-After.
func doJSONHeaders(t *testing.T, method, url string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out, resp.Header
}

// crashFixture is one private fit run to completion on a fully wired
// server (ledger + release cache + journal), with everything a crash
// test needs to rebuild the moment of any transition: the real journal
// records the admission path wrote, the ledger bytes after the debit,
// and the byte-exact release the fit produced.
type crashFixture struct {
	records     []journal.Record // admitted, debited, running, done
	edges       string
	dsID        string
	key         release.Key
	wantPayload []byte // release payload as cached by the first life
	ledgerBytes []byte // ledger.json after the admission debit
}

func (fx *crashFixture) fitRequest() FitRequest {
	return FitRequest{Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, EdgeList: fx.edges}
}

func buildCrashFixture(t *testing.T) *crashFixture {
	t.Helper()
	dir := t.TempDir()
	led, err := accountant.Open(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	edges := testEdgeList(t, 8)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	if err := led.SetBudget(ds, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Open(filepath.Join(dir, "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 2, MaxJobs: 2, Ledger: led, Releases: cache, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	fx := &crashFixture{edges: edges, dsID: ds}
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", fx.fitRequest())
	if code != http.StatusAccepted {
		t.Fatalf("fixture fit: status %d (%v)", code, resp)
	}
	if job := pollJob(t, ts.URL, resp["id"].(string), 120*time.Second); job["status"] != StatusDone {
		t.Fatalf("fixture fit ended %v: %v", job["status"], job)
	}
	ts.Close()
	s.Close()
	fx.records = jnl.Records()
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	// The admission path writes exactly these four transitions for one
	// clean fit; the crash tests below replay their prefixes.
	wantStates := []string{journal.StateAdmitted, journal.StateDebited, journal.StateRunning, journal.StateDone}
	if len(fx.records) != len(wantStates) {
		t.Fatalf("fixture journal holds %d records, want %d: %+v", len(fx.records), len(wantStates), fx.records)
	}
	for i, want := range wantStates {
		if fx.records[i].State != want {
			t.Fatalf("fixture record %d is %q, want %q", i, fx.records[i].State, want)
		}
	}
	ad := fx.records[0]
	if ad.ReleaseKey == nil || ad.Planned == nil || ad.Token == "" || ad.Dataset != ds {
		t.Fatalf("admission record lacks replay payload: %+v", ad)
	}
	fx.key = *ad.ReleaseKey
	e, ok := cache.Get(fx.key)
	if !ok {
		t.Fatal("fixture fit left no release in the cache")
	}
	fx.wantPayload = append([]byte(nil), e.Payload...)
	fx.ledgerBytes, err = os.ReadFile(led.Path())
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// lifeB is a server restarted over a synthesized crash state.
type lifeB struct {
	s     *Server
	ts    *httptest.Server
	led   *accountant.Ledger
	cache *release.Cache
	jnl   *journal.Journal
}

// restart builds the state directory a crash at a given point would
// leave — the first `prefix` journal records, the ledger with or
// without the landed debit, the cache with or without the finished
// release — and starts a fresh server over it.
func (fx *crashFixture) restart(t *testing.T, prefix int, debitLanded, cachePrimed bool) *lifeB {
	t.Helper()
	dir := t.TempDir()
	ledPath := filepath.Join(dir, "ledger.json")
	if debitLanded {
		if err := os.WriteFile(ledPath, fx.ledgerBytes, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	led, err := accountant.Open(ledPath)
	if err != nil {
		t.Fatal(err)
	}
	if !debitLanded {
		if err := led.SetBudget(fx.dsID, dp.Budget{Eps: 0.9, Delta: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	if cachePrimed {
		if _, err := cache.Put(fx.key, json.RawMessage(fx.wantPayload)); err != nil {
			t.Fatal(err)
		}
	}
	jnl, err := journal.Open(filepath.Join(dir, "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range fx.records[:prefix] {
		if err := jnl.Append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Options{Workers: 2, MaxJobs: 2, Ledger: led, Releases: cache, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		jnl.Close()
	})
	return &lifeB{s: s, ts: ts, led: led, cache: cache, jnl: jnl}
}

// waitJournalTerminal polls the journal until job reaches a terminal
// state (the terminal append may trail the HTTP-visible status by a
// moment) and returns its folded state.
func waitJournalTerminal(t *testing.T, jnl *journal.Journal, job string) *journal.JobState {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, st := range journal.Reduce(jnl.Records()) {
			if st.Job == job && st.Terminal() {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a journaled terminal state", job)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCrashPointResume replays a crash at every transition of a
// debit-bearing private fit and asserts the serving invariant at each:
// the restarted server resumes the job, exactly one ledger debit exists
// no matter where the crash fell, and the resumed fit lands the
// byte-identical release (deterministic re-execution from the recorded
// seed).
func TestServerCrashPointResume(t *testing.T) {
	fx := buildCrashFixture(t)
	for _, tc := range []struct {
		name        string
		prefix      int // journal records surviving the crash
		debitLanded bool
		cachePrimed bool
	}{
		// Crash after the fsynced admission record, before the ledger
		// debit: resume issues the one real debit.
		{"admitted-before-debit", 1, false, false},
		// Crash after the debit landed but before the (async) debited
		// record: the journaled token makes the resume debit a no-op.
		{"debit-landed-before-debited-record", 1, true, false},
		// Crash after the debited record.
		{"debited", 2, true, false},
		// Crash mid-run.
		{"running", 3, true, false},
		// Crash after the release-cache Put but before the done record:
		// the paid-for work is served from the cache, never recomputed.
		{"cache-put-before-done-record", 3, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lb := fx.restart(t, tc.prefix, tc.debitLanded, tc.cachePrimed)
			if tc.cachePrimed {
				// Cache-first resume happens synchronously in New: the job
				// is already done before the server takes its first request.
				code, job := doJSON(t, http.MethodGet, lb.ts.URL+"/v1/jobs/job-1", nil)
				if code != http.StatusOK || job["status"] != StatusDone {
					t.Fatalf("cache-primed resume: job-1 = %d %v, want immediate done", code, job)
				}
			}
			job := pollJob(t, lb.ts.URL, "job-1", 120*time.Second)
			if job["status"] != StatusDone {
				t.Fatalf("resumed job ended %v: %v", job["status"], job)
			}
			// Exactly one debit, wherever the crash fell.
			code, acct := doJSON(t, http.MethodGet, lb.ts.URL+"/v1/budget/"+fx.dsID, nil)
			if code != http.StatusOK {
				t.Fatalf("GET budget: status %d (%v)", code, acct)
			}
			if n := acct["receipts"].(float64); n != 1 {
				t.Fatalf("%v receipts after resume, want exactly 1", n)
			}
			if rem := acct["remaining"].(map[string]any); math.Abs(rem["eps"].(float64)-0.5) > 1e-9 {
				t.Errorf("remaining eps = %v, want 0.5", rem["eps"])
			}
			// Byte-identical release under the identical fingerprint.
			e, ok := lb.cache.Get(fx.key)
			if !ok {
				t.Fatal("resumed fit left no release in the cache")
			}
			if !bytes.Equal(e.Payload, fx.wantPayload) {
				t.Errorf("resumed release differs from the original:\n got %s\nwant %s", e.Payload, fx.wantPayload)
			}
			// The journal closed the job.
			if st := waitJournalTerminal(t, lb.jnl, "job-1"); st.State != journal.StateDone {
				t.Errorf("journal closed job-1 as %q, want done", st.State)
			}
		})
	}
}

// TestServerResumeAgainstExhaustedBudget: a landed debit must resume
// even when the account has nothing left — the token check precedes the
// exhaustion check, so a provably paid-for fit is never refused its own
// charge.
func TestServerResumeAgainstExhaustedBudget(t *testing.T) {
	fx := buildCrashFixture(t)
	dir := t.TempDir()
	led, err := accountant.Open(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Budget exactly covering the one fit; after the landed debit the
	// account is exhausted.
	if err := led.SetBudget(fx.dsID, dp.Budget{Eps: 0.4, Delta: 0.01}); err != nil {
		t.Fatal(err)
	}
	ad := fx.records[0]
	if err := led.SpendToken(fx.dsID, *ad.Planned, ad.Token); err != nil {
		t.Fatal(err)
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Open(filepath.Join(dir, "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range fx.records[:2] { // admitted + debited
		if err := jnl.Append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Options{Workers: 2, MaxJobs: 2, Ledger: led, Releases: cache, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close(); jnl.Close() }()

	job := pollJob(t, ts.URL, "job-1", 120*time.Second)
	if job["status"] != StatusDone {
		t.Fatalf("resume against exhausted budget ended %v: %v", job["status"], job)
	}
	code, acct := doJSON(t, http.MethodGet, ts.URL+"/v1/budget/"+fx.dsID, nil)
	if code != http.StatusOK {
		t.Fatalf("GET budget: status %d", code)
	}
	if n := acct["receipts"].(float64); n != 1 {
		t.Fatalf("%v receipts, want exactly 1", n)
	}
	if rem := acct["remaining"].(map[string]any); rem["eps"].(float64) != 0 {
		t.Errorf("remaining eps = %v, want 0", rem["eps"])
	}
}

// TestServerResumeCoalescesIdenticalFit: after a restart, an identical
// request arriving while the resumed fit runs joins its flight (or is
// served the finished cache entry) — never a second debit.
func TestServerResumeCoalescesIdenticalFit(t *testing.T) {
	fx := buildCrashFixture(t)
	lb := fx.restart(t, 2, true, false)
	code, resp := doJSON(t, http.MethodPost, lb.ts.URL+"/v1/fit", fx.fitRequest())
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("identical fit during resume: status %d (%v)", code, resp)
	}
	if resp["id"] != "job-1" {
		// Not coalesced into the resumed flight — acceptable only because
		// the flight already finished and the cache served it.
		result, _ := resp["result"].(map[string]any)
		if result == nil || result["cached"] != true {
			t.Fatalf("identical fit neither joined the resumed flight nor hit the cache: %v", resp)
		}
	}
	if job := pollJob(t, lb.ts.URL, "job-1", 120*time.Second); job["status"] != StatusDone {
		t.Fatalf("resumed job ended %v", job["status"])
	}
	_, acct := doJSON(t, http.MethodGet, lb.ts.URL+"/v1/budget/"+fx.dsID, nil)
	if n := acct["receipts"].(float64); n != 1 {
		t.Fatalf("%v receipts after coalesced resume, want exactly 1", n)
	}
}

// TestServerJobHistoryAcrossRestart: journaled terminal jobs answer
// GET /v1/jobs/{id} across restarts with their retained result, the id
// counter resumes past them, and the finished question serves from the
// cache without a new debit.
func TestServerJobHistoryAcrossRestart(t *testing.T) {
	fx := buildCrashFixture(t)
	lb := fx.restart(t, len(fx.records), true, true)
	code, job := doJSON(t, http.MethodGet, lb.ts.URL+"/v1/jobs/job-1", nil)
	if code != http.StatusOK || job["status"] != StatusDone {
		t.Fatalf("job-1 across restart: %d %v, want 200 done", code, job)
	}
	result, _ := job["result"].(map[string]any)
	if result == nil {
		t.Fatalf("restart dropped the retained result: %v", job)
	}
	if init, _ := result["initiator"].(map[string]any); init == nil {
		t.Errorf("retained result lacks the initiator: %v", result)
	}
	// The same question again: a cache hit under a fresh id past the
	// journaled one, with the receipt count untouched.
	code, resp := doJSON(t, http.MethodPost, lb.ts.URL+"/v1/fit", fx.fitRequest())
	if code != http.StatusOK {
		t.Fatalf("refit after restart: status %d (%v)", code, resp)
	}
	if hit, _ := resp["result"].(map[string]any); hit == nil || hit["cached"] != true {
		t.Fatalf("refit after restart was not a cache hit: %v", resp)
	}
	if resp["id"] == "job-1" {
		t.Fatalf("restart reused a journaled job id")
	}
	_, acct := doJSON(t, http.MethodGet, lb.ts.URL+"/v1/budget/"+fx.dsID, nil)
	if n := acct["receipts"].(float64); n != 1 {
		t.Fatalf("%v receipts after restart + cache hit, want 1", n)
	}
}

// TestServerResumeBudgetRefusal: when the admission debit provably
// never landed and the budget is gone by restart, the job is closed
// with an explicit journaled failure — the "never silence" arm.
func TestServerResumeBudgetRefusal(t *testing.T) {
	dir := t.TempDir()
	edges := testEdgeList(t, 8)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	req := FitRequest{Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, EdgeList: edges}
	reqJSON, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	planned := core.PlannedReceipt(req.Eps, req.Delta)
	key := release.KeyFor(ds, req.Eps, req.Delta, req.K, req.Seed, planned)
	jnl, err := journal.Open(filepath.Join(dir, "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Append(journal.Record{
		Job: "job-1", State: journal.StateAdmitted, Kind: "fit/private",
		Request: reqJSON, Dataset: ds, Planned: &planned,
		Token: "job-1-feedfacecafebeef", ReleaseKey: &key,
	}, true); err != nil {
		t.Fatal(err)
	}
	led, err := accountant.Open(filepath.Join(dir, "ledger.json")) // default-deny: no budget
	if err != nil {
		t.Fatal(err)
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 1, MaxJobs: 1, Ledger: led, Releases: cache, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close(); jnl.Close() }()

	code, job := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-1", nil)
	if code != http.StatusOK || job["status"] != StatusFailed {
		t.Fatalf("refused resume: %d %v, want 200 failed", code, job)
	}
	if msg, _ := job["error"].(string); !strings.Contains(msg, "budget unavailable at resume") {
		t.Errorf("failure does not name the refusal: %q", msg)
	}
	if st := waitJournalTerminal(t, jnl, "job-1"); st.State != journal.StateFailed {
		t.Errorf("journal closed the refused job as %q, want failed", st.State)
	}
	// The refusal debited nothing: the account was never created.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/budget/"+ds, nil); code != http.StatusNotFound {
		t.Errorf("refused resume created a ledger account: budget status %d", code)
	}
}

// TestServerReplayClosesUnresumable: journal states that cannot run
// again — an interrupted generate, a job with no admission record, a
// request that no longer decodes — are closed as explicit journaled
// failures, and fresh ids never collide with journaled ones.
func TestServerReplayClosesUnresumable(t *testing.T) {
	jnl, err := journal.Open(filepath.Join(t.TempDir(), "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	genReq, err := json.Marshal(&GenerateRequest{A: 0.9, B: 0.5, C: 0.3, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journal.Record{
		{Job: "job-1", State: journal.StateAdmitted, Kind: "generate", Request: genReq},
		{Job: "job-2", State: journal.StateDebited},
		// Valid JSON (the journal stores RawMessage) that does not decode
		// as a FitRequest — the shape a newer server version could leave.
		{Job: "job-3", State: journal.StateAdmitted, Kind: "fit/private", Request: json.RawMessage(`{"eps":"high"}`)},
	} {
		if err := jnl.Append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Options{Workers: 1, MaxJobs: 1, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close(); jnl.Close() }()

	for id, wantErr := range map[string]string{
		"job-1": "resubmit to regenerate",
		"job-2": "no admission record",
		"job-3": "does not decode",
	} {
		code, job := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
		if code != http.StatusOK || job["status"] != StatusFailed {
			t.Fatalf("%s: %d %v, want 200 failed", id, code, job)
		}
		if msg, _ := job["error"].(string); !strings.Contains(msg, wantErr) {
			t.Errorf("%s error %q does not mention %q", id, msg, wantErr)
		}
		if st := waitJournalTerminal(t, jnl, id); st.State != journal.StateFailed {
			t.Errorf("journal closed %s as %q, want failed", id, st.State)
		}
	}
	// New ids continue past the journaled ones.
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.9, B: 0.5, C: 0.3, K: 5, Seed: 1, OmitEdges: true,
	})
	if code != http.StatusAccepted || resp["id"] != "job-4" {
		t.Fatalf("post-replay submission: %d id %v, want 202 job-4", code, resp["id"])
	}
}

// TestServerDrainRefusesNewJobsServesReads: a draining server refuses
// new work with 503 + Retry-After while cache hits, job polling and
// health stay available.
func TestServerDrainRefusesNewJobsServesReads(t *testing.T) {
	dir := t.TempDir()
	led, err := accountant.Open(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := release.Open(filepath.Join(dir, "releases"))
	if err != nil {
		t.Fatal(err)
	}
	edges := testEdgeList(t, 8)
	g, err := graph.ReadEdgeList(strings.NewReader(edges), 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := accountant.DatasetID(g)
	if err := led.SetBudget(ds, dp.Budget{Eps: 1, Delta: 0.05}); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Workers: 2, MaxJobs: 2, Ledger: led, Releases: cache})

	// Prime the cache with one finished fit.
	fit := FitRequest{Method: "private", Eps: 0.4, Delta: 0.01, K: 8, Seed: 3, EdgeList: edges}
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/fit", fit)
	if code != http.StatusAccepted {
		t.Fatalf("priming fit: status %d (%v)", code, resp)
	}
	primedID := resp["id"].(string)
	if job := pollJob(t, ts.URL, primedID, 120*time.Second); job["status"] != StatusDone {
		t.Fatalf("priming fit ended %v", job["status"])
	}

	s.StartDrain()

	if _, h := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil); h["status"] != "draining" {
		t.Errorf("healthz while draining = %v, want draining", h["status"])
	}
	code, _, hdr := doJSONHeaders(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.9, B: 0.5, C: 0.3, K: 5, OmitEdges: true,
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("generate while draining: status %d, want 503", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "10" {
		t.Errorf("drain 503 Retry-After = %q, want 10", ra)
	}
	// A different question (new seed) needs a run: refused.
	other := fit
	other.Seed = 99
	if code, _, _ := doJSONHeaders(t, http.MethodPost, ts.URL+"/v1/fit", other); code != http.StatusServiceUnavailable {
		t.Errorf("fresh fit while draining: status %d, want 503", code)
	}
	// The identical question is a cache hit: still served, zero debit.
	code, resp = doJSON(t, http.MethodPost, ts.URL+"/v1/fit", fit)
	if code != http.StatusOK {
		t.Fatalf("cached fit while draining: status %d (%v)", code, resp)
	}
	if hit, _ := resp["result"].(map[string]any); hit == nil || hit["cached"] != true {
		t.Errorf("fit during drain was not a cache hit: %v", resp)
	}
	// Job polling stays available.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+primedID, nil); code != http.StatusOK {
		t.Errorf("job poll while draining: status %d", code)
	}
	// Nothing is running, so Drain returns promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
	if ctx.Err() != nil {
		t.Fatal("Drain with an idle server hit its deadline")
	}
}

// TestServerDrainDeadlineCancelsAndJournals: a straggler past the
// drain deadline is cancelled, its cancelled record is journaled
// before Drain returns, and a restart replays it as history.
func TestServerDrainDeadlineCancelsAndJournals(t *testing.T) {
	jnl, err := journal.Open(filepath.Join(t.TempDir(), "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	s := New(Options{Workers: 1, MaxJobs: 1, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A maximal exact sample (4^16 pair draws) cannot finish inside the
	// 200ms deadline on any hardware: a guaranteed straggler.
	code, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.99, B: 0.55, C: 0.35, K: 16, Seed: 5, Method: "exact", OmitEdges: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	id := resp["id"].(string)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	s.Drain(ctx)

	// Drain returned only after the cancellation finalized — the
	// journal already holds the terminal record, no polling needed.
	var got *journal.JobState
	for _, st := range journal.Reduce(jnl.Records()) {
		if st.Job == id {
			got = st
		}
	}
	if got == nil || got.State != journal.StateCancelled {
		t.Fatalf("journal after Drain holds %+v, want %s cancelled", got, id)
	}
	code, job := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusOK || job["status"] != StatusCancelled {
		t.Fatalf("straggler after Drain: %d %v, want 200 cancelled", code, job)
	}

	// A restarted server replays the cancellation as history.
	s2 := New(Options{Workers: 1, MaxJobs: 1, Journal: jnl})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	code, job = doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+id, nil)
	if code != http.StatusOK || job["status"] != StatusCancelled {
		t.Fatalf("straggler after restart: %d %v, want 200 cancelled", code, job)
	}
}

// TestServerRetryAfterHeaders pins the Retry-After policy: an
// exhausted budget waits on an operator (60s), a queue spike clears in
// about a second (1s).
func TestServerRetryAfterHeaders(t *testing.T) {
	led, err := accountant.Open(filepath.Join(t.TempDir(), "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobs: 1, MaxQueue: 1, Ledger: led})

	// Budget refusal (default-deny, nothing configured): 429 + 60.
	code, _, hdr := doJSONHeaders(t, http.MethodPost, ts.URL+"/v1/fit", FitRequest{
		Method: "private", Eps: 0.4, Delta: 0.01, K: 8, EdgeList: "0 1\n1 2\n",
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("budget refusal: status %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "60" {
		t.Errorf("budget 429 Retry-After = %q, want 60", ra)
	}

	// Queue refusal: 429 + 1. The k=16 exact sample occupies the queue
	// for as long as the test needs it to.
	_, first := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.99, B: 0.55, C: 0.35, K: 16, Seed: 5, Method: "exact", OmitEdges: true,
	})
	code, _, hdr = doJSONHeaders(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
		A: 0.9, B: 0.5, C: 0.3, K: 5,
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue refusal: status %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Errorf("queue 429 Retry-After = %q, want 1", ra)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+first["id"].(string), nil)
}

// TestServerEvictionJournaledAcrossRestart: with a journal, the
// -max-history bound survives restarts — evicted jobs are gone from the
// journal too (compaction), retained ones replay.
func TestServerEvictionJournaledAcrossRestart(t *testing.T) {
	jnl, err := journal.Open(filepath.Join(t.TempDir(), "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	s := New(Options{Workers: 1, MaxJobs: 1, MaxHistory: 2, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	var ids []string
	for i := 0; i < 5; i++ {
		_, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: 5, Seed: uint64(i + 1), OmitEdges: true,
		})
		id := resp["id"].(string)
		ids = append(ids, id)
		if job := pollJob(t, ts.URL, id, 30*time.Second); job["status"] != StatusDone {
			t.Fatalf("job %s ended %v", id, job["status"])
		}
	}
	// Let the last finalize's eviction settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, list := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
		if len(list["jobs"].([]any)) <= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts.Close()
	s.Close()

	s2 := New(Options{Workers: 1, MaxJobs: 1, MaxHistory: 2, Journal: jnl})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()
	_, list := doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs", nil)
	if n := len(list["jobs"].([]any)); n > 2 {
		t.Errorf("restart replayed %d jobs, want <= MaxHistory=2", n)
	}
	if code, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Errorf("evicted job survived the restart: status %d", code)
	}
	if code, job := doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+ids[4], nil); code != http.StatusOK || job["status"] != StatusDone {
		t.Errorf("newest job lost across restart: %d %v", code, job)
	}
}

// TestServerUnjournaledTerminalNeverEvicted: when the terminal append
// fails, the job's outcome exists only in memory — so it must survive
// the history bound until the journal holds it. Never silence, even
// under a failing disk.
func TestServerUnjournaledTerminalNeverEvicted(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	jnl, err := journal.OpenFS(inj, filepath.Join(t.TempDir(), "journal.dpkj"))
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	s := New(Options{Workers: 1, MaxJobs: 1, MaxHistory: 1, Journal: jnl})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Per generate job the journal sees two syncs: admission, terminal.
	// Skip the first so job-1's terminal append is the one that fails.
	inj.Fail(faultfs.Fault{Op: faultfs.OpSync, Path: "journal", After: 1})

	var ids []string
	for i := 0; i < 3; i++ {
		_, resp := doJSON(t, http.MethodPost, ts.URL+"/v1/generate", GenerateRequest{
			A: 0.9, B: 0.5, C: 0.3, K: 5, Seed: uint64(i + 1), OmitEdges: true,
		})
		id := resp["id"].(string)
		ids = append(ids, id)
		// Journaled jobs beyond the bound may be evicted the instant they
		// finalize (the unjournaled job-1 already overflows MaxHistory=1),
		// so a 404 here means done-journaled-and-evicted, not lost.
		stop := time.Now().Add(30 * time.Second)
		for {
			code, job := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil)
			if code == http.StatusNotFound || job["status"] == StatusDone {
				break
			}
			if job["status"] == StatusFailed || job["status"] == StatusCancelled {
				t.Fatalf("job %s ended %v", id, job["status"])
			}
			if time.Now().After(stop) {
				t.Fatalf("job %s did not finish: %v", id, job)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// The unjournaled job-1 outlives the MaxHistory=1 bound: its outcome
	// would otherwise exist nowhere.
	code, job := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[0], nil)
	if code != http.StatusOK || job["status"] != StatusDone {
		t.Fatalf("unjournaled terminal job was evicted: %d %v", code, job)
	}
	// The journaled middle job did get evicted, proving the bound is
	// enforced for everything the journal holds. Eviction happens in
	// each job's finalize, which runs after its done status is already
	// pollable — so the 404 is eventual, not immediate.
	stop := time.Now().Add(30 * time.Second)
	for {
		code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+ids[1], nil)
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(stop) {
			t.Errorf("journaled job %s not evicted under MaxHistory=1: status %d", ids[1], code)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
