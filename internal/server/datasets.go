package server

import (
	"errors"
	"fmt"
	"net/http"

	"dpkron/internal/dataset"
)

// Dataset endpoints (Options.Datasets must be configured):
//
//	POST   /v1/datasets        import a graph (streamed body: SNAP text,
//	                           gzip, Matrix Market or DPKG binary;
//	                           ?name= labels it). Returns the metadata,
//	                           201 on first import, 200 when the content
//	                           was already stored.
//	GET    /v1/datasets        list stored datasets
//	GET    /v1/datasets/{id}   one dataset's metadata
//	DELETE /v1/datasets/{id}   remove a dataset (spent budget remains)
//
// Uploads stream through the importers straight into the store — they
// are not subject to the 64 MiB inline-JSON body cap; Options.
// MaxUploadBytes (default 1 GiB) bounds them instead.

// requireStore resolves the configured dataset store or answers 404 —
// the same status unknown dataset ids get, so probing cannot tell "no
// store" from "not stored".
func (s *Server) requireStore(w http.ResponseWriter) *dataset.Store {
	if s.opts.Datasets == nil {
		writeError(w, http.StatusNotFound, "no dataset store configured (start the server with -store)")
		return nil
	}
	return s.opts.Datasets
}

// datasetError maps store errors onto HTTP statuses: ErrNotFound and
// malformed ids are 404s with a JSON body, anything else a 500.
func datasetError(w http.ResponseWriter, err error) {
	if errors.Is(err, dataset.ErrNotFound) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

func (s *Server) handleDatasetImport(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	// MaxBytesReader bounds the wire bytes; MaxBytes bounds what a
	// gzipped body may decompress to, so a gzip bomb cannot expand past
	// what an uncompressed upload could ship.
	g, format, err := dataset.DecodeGraph(body, dataset.DecodeOptions{
		MaxNodes: maxGraphNodes,
		MaxBytes: s.opts.MaxUploadBytes,
	})
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) || errors.Is(err, dataset.ErrTooLarge) {
			msg := fmt.Sprintf("upload exceeds the %d-byte limit", s.opts.MaxUploadBytes)
			s.rejectAdmission(r, rejectBodyTooLarge, "", msg)
			writeError(w, http.StatusRequestEntityTooLarge, msg)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, created, err := st.Put(g, r.URL.Query().Get("name"), string(format))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	status := http.StatusCreated
	if !created {
		status = http.StatusOK // identical content already stored
	}
	writeJSON(w, status, m)
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	list, err := st.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if list == nil {
		list = []dataset.Meta{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": list})
}

func (s *Server) handleDatasetMeta(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	m, err := st.Meta(r.PathValue("id"))
	if err != nil {
		datasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	id := r.PathValue("id")
	if err := st.Delete(id); err != nil {
		datasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}
