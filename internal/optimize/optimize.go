// Package optimize provides the derivative-free optimizers used by the
// moment-matching estimator: Nelder–Mead simplex descent (the same
// algorithm as MATLAB's fminsearch, which Gleich's reference code used)
// plus coarse grid search and multistart driving, with box constraints
// handled by projection.
package optimize

import (
	"context"
	"math"
	"sort"

	"dpkron/internal/parallel"
	"dpkron/internal/randx"
)

// Func is an objective to minimize.
type Func func(x []float64) float64

// Result is the outcome of a minimization.
type Result struct {
	X         []float64
	F         float64
	Evals     int
	Converged bool
}

// NelderMeadOptions tunes the simplex search.
type NelderMeadOptions struct {
	// Step is the initial simplex edge length (default 0.1).
	Step float64
	// MaxIter bounds the number of iterations (default 400).
	MaxIter int
	// TolF stops when the simplex function spread falls below it
	// (default 1e-10).
	TolF float64
	// TolX stops when the simplex diameter falls below it (default 1e-9).
	TolX float64
}

func (o *NelderMeadOptions) fill() {
	if o.Step == 0 {
		o.Step = 0.1
	}
	if o.MaxIter == 0 {
		o.MaxIter = 400
	}
	if o.TolF == 0 {
		o.TolF = 1e-10
	}
	if o.TolX == 0 {
		o.TolX = 1e-9
	}
}

// NelderMead minimizes f starting from x0 with the standard
// reflection/expansion/contraction/shrink simplex method
// (coefficients 1, 2, 0.5, 0.5).
func NelderMead(f Func, x0 []float64, opts NelderMeadOptions) Result {
	res, _ := NelderMeadCtx(nil, f, x0, opts)
	return res
}

// NelderMeadCtx is NelderMead with cooperative cancellation checked
// once per simplex iteration: a cancelled context stops the descent and
// returns ctx.Err() together with the best point seen so far (which the
// caller must treat as unusable). A nil or never-cancelled context
// yields exactly the NelderMead result.
func NelderMeadCtx(ctx context.Context, f Func, x0 []float64, opts NelderMeadOptions) (Result, error) {
	opts.fill()
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	d := len(x0)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}
	// Build initial simplex.
	simplex := make([][]float64, d+1)
	fvals := make([]float64, d+1)
	for i := range simplex {
		p := append([]float64(nil), x0...)
		if i > 0 {
			p[i-1] += opts.Step
		}
		simplex[i] = p
		fvals[i] = eval(p)
	}
	order := make([]int, d+1)
	centroid := make([]float64, d)
	trial := make([]float64, d)
	trial2 := make([]float64, d)
	converged := false
	var ctxErr error
	for iter := 0; iter < opts.MaxIter; iter++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				break
			}
		}
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fvals[order[a]] < fvals[order[b]] })
		best, worst := order[0], order[d]
		// Convergence checks.
		spread := math.Abs(fvals[worst] - fvals[best])
		diam := 0.0
		for _, i := range order[1:] {
			for j := 0; j < d; j++ {
				diam = math.Max(diam, math.Abs(simplex[i][j]-simplex[best][j]))
			}
		}
		if spread < opts.TolF && diam < opts.TolX {
			converged = true
			break
		}
		// Centroid of all but worst.
		for j := 0; j < d; j++ {
			centroid[j] = 0
		}
		for _, i := range order[:d] {
			for j := 0; j < d; j++ {
				centroid[j] += simplex[i][j]
			}
		}
		for j := 0; j < d; j++ {
			centroid[j] /= float64(d)
		}
		// Reflection.
		for j := 0; j < d; j++ {
			trial[j] = centroid[j] + (centroid[j] - simplex[worst][j])
		}
		fr := eval(trial)
		secondWorst := order[d-1]
		switch {
		case fr < fvals[best]:
			// Expansion.
			for j := 0; j < d; j++ {
				trial2[j] = centroid[j] + 2*(centroid[j]-simplex[worst][j])
			}
			fe := eval(trial2)
			if fe < fr {
				copy(simplex[worst], trial2)
				fvals[worst] = fe
			} else {
				copy(simplex[worst], trial)
				fvals[worst] = fr
			}
		case fr < fvals[secondWorst]:
			copy(simplex[worst], trial)
			fvals[worst] = fr
		default:
			// Contraction (outside if reflection helped, else inside).
			if fr < fvals[worst] {
				for j := 0; j < d; j++ {
					trial2[j] = centroid[j] + 0.5*(trial[j]-centroid[j])
				}
			} else {
				for j := 0; j < d; j++ {
					trial2[j] = centroid[j] - 0.5*(centroid[j]-simplex[worst][j])
				}
			}
			fc := eval(trial2)
			if fc < math.Min(fr, fvals[worst]) {
				copy(simplex[worst], trial2)
				fvals[worst] = fc
			} else {
				// Shrink towards best.
				for _, i := range order[1:] {
					for j := 0; j < d; j++ {
						simplex[i][j] = simplex[best][j] + 0.5*(simplex[i][j]-simplex[best][j])
					}
					fvals[i] = eval(simplex[i])
				}
			}
		}
	}
	bi := 0
	for i := 1; i <= d; i++ {
		if fvals[i] < fvals[bi] {
			bi = i
		}
	}
	return Result{X: append([]float64(nil), simplex[bi]...), F: fvals[bi], Evals: evals, Converged: converged}, ctxErr
}

// Clamp projects x into the box [lo, hi] componentwise, in place.
func Clamp(x, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		}
		if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// GridSearch evaluates f on a regular grid with the given number of
// points per axis (inclusive of bounds) and returns the best point.
func GridSearch(f Func, lo, hi []float64, pointsPerAxis int) Result {
	res, _ := GridSearchCtx(nil, f, lo, hi, pointsPerAxis)
	return res
}

// GridSearchCtx is GridSearch with cooperative cancellation checked
// every 256 evaluations. A nil or never-cancelled context yields
// exactly the GridSearch result.
func GridSearchCtx(ctx context.Context, f Func, lo, hi []float64, pointsPerAxis int) (Result, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	d := len(lo)
	if pointsPerAxis < 2 {
		pointsPerAxis = 2
	}
	x := make([]float64, d)
	idx := make([]int, d)
	best := Result{F: math.Inf(1)}
	evals := 0
	for {
		if ctx != nil && evals&255 == 0 {
			if err := ctx.Err(); err != nil {
				return best, err
			}
		}
		for j := 0; j < d; j++ {
			x[j] = lo[j] + (hi[j]-lo[j])*float64(idx[j])/float64(pointsPerAxis-1)
		}
		v := f(x)
		evals++
		if v < best.F {
			best.F = v
			best.X = append(best.X[:0], x...)
		}
		// Advance mixed-radix counter.
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] < pointsPerAxis {
				break
			}
			idx[j] = 0
		}
		if j == d {
			break
		}
	}
	best.Evals = evals
	best.Converged = true
	best.X = append([]float64(nil), best.X...)
	return best, nil
}

// MultiStart runs Nelder–Mead from the grid-search optimum and from
// additional random starts inside the box, clamping every candidate into
// the box via penalty-free projection inside the objective wrapper, and
// returns the best result found. It is MultiStartWorkers on a single
// goroutine.
func MultiStart(f Func, lo, hi []float64, randomStarts, gridPoints int, rng *randx.Rand, nm NelderMeadOptions) Result {
	return MultiStartWorkers(f, lo, hi, randomStarts, gridPoints, rng, nm, 1)
}

// MultiStartWorkers runs the grid-seeded Nelder–Mead descent and the
// random restarts concurrently on up to workers goroutines (<= 0
// selects runtime.GOMAXPROCS(0)). The restart points are drawn from rng
// serially before any descent begins, the descents are deterministic,
// and the winner is chosen by scanning results in start order with a
// strict improvement rule — so the result is identical for every worker
// count, including the serial MultiStart. f must be safe for concurrent
// calls.
func MultiStartWorkers(f Func, lo, hi []float64, randomStarts, gridPoints int, rng *randx.Rand, nm NelderMeadOptions, workers int) Result {
	res, _ := MultiStartCtx(nil, f, lo, hi, randomStarts, gridPoints, rng, nm, workers)
	return res
}

// MultiStartCtx is MultiStartWorkers with cooperative cancellation: the
// seeding grid search checks the context periodically, the concurrent
// descents check it between simplex iterations and between starts, and
// a cancelled context makes the whole call return ctx.Err(). A nil or
// never-cancelled context yields exactly the MultiStartWorkers result.
func MultiStartCtx(ctx context.Context, f Func, lo, hi []float64, randomStarts, gridPoints int, rng *randx.Rand, nm NelderMeadOptions, workers int) (Result, error) {
	boxed := func(x []float64) float64 {
		penalty := 0.0
		y := make([]float64, len(x))
		for i := range x {
			y[i] = x[i]
			if y[i] < lo[i] {
				penalty += (lo[i] - y[i]) * (lo[i] - y[i])
				y[i] = lo[i]
			}
			if y[i] > hi[i] {
				penalty += (y[i] - hi[i]) * (y[i] - hi[i])
				y[i] = hi[i]
			}
		}
		return f(y)*(1+penalty) + penalty
	}
	seed, err := GridSearchCtx(ctx, f, lo, hi, gridPoints)
	if err != nil {
		return Result{}, err
	}
	// Start points: the grid optimum first, then the random restarts,
	// drawn serially so the points do not depend on scheduling.
	starts := make([][]float64, 1+randomStarts)
	starts[0] = seed.X
	for s := 1; s < len(starts); s++ {
		x0 := make([]float64, len(lo))
		for i := range x0 {
			x0[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		starts[s] = x0
	}
	results := make([]Result, len(starts))
	runErr := parallel.RunCtx(ctx, parallel.Normalize(workers), len(starts), func(s int) {
		// A descent that observes cancellation returns early; its
		// partial result is discarded below via the shared context
		// error, so the per-start error can be dropped here.
		results[s], _ = NelderMeadCtx(ctx, boxed, starts[s], nm)
	})
	if runErr != nil {
		return Result{}, runErr
	}
	if ctx != nil {
		// A descent may have aborted mid-run without RunCtx noticing
		// (the shard itself completed); reject the fan-out wholesale.
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	best := results[0]
	evals := seed.Evals + results[0].Evals
	for _, r := range results[1:] {
		evals += r.Evals
		if r.F < best.F {
			best = r
		}
	}
	best.Evals = evals
	Clamp(best.X, lo, hi)
	best.F = f(best.X)
	return best, nil
}
