package optimize

import (
	"math"
	"testing"

	"dpkron/internal/randx"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i+1 < len(x); i++ {
		s += 100*math.Pow(x[i+1]-x[i]*x[i], 2) + math.Pow(1-x[i], 2)
	}
	return s
}

func TestNelderMeadSphere(t *testing.T) {
	res := NelderMead(sphere, []float64{3, -2, 1}, NelderMeadOptions{MaxIter: 2000})
	if res.F > 1e-8 {
		t.Fatalf("sphere minimum not found: F=%v X=%v", res.F, res.X)
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	res := NelderMead(rosenbrock, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000, Step: 0.5})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("rosenbrock minimum not found: F=%v X=%v", res.F, res.X)
	}
}

func TestNelderMeadShiftedQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return 2*(x[0]-0.3)*(x[0]-0.3) + 5*(x[1]+0.7)*(x[1]+0.7) + 1.5
	}
	res := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(res.X[0]-0.3) > 1e-4 || math.Abs(res.X[1]+0.7) > 1e-4 {
		t.Fatalf("X = %v, want (0.3, -0.7)", res.X)
	}
	if math.Abs(res.F-1.5) > 1e-6 {
		t.Fatalf("F = %v, want 1.5", res.F)
	}
}

func TestNelderMeadConvergedFlag(t *testing.T) {
	res := NelderMead(sphere, []float64{0.5, 0.5}, NelderMeadOptions{MaxIter: 5000})
	if !res.Converged {
		t.Fatal("expected convergence on sphere")
	}
	res = NelderMead(rosenbrock, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 3})
	if res.Converged {
		t.Fatal("3 iterations should not converge on rosenbrock")
	}
}

func TestGridSearch(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Abs(x[0]-0.5) + math.Abs(x[1]-0.25)
	}
	res := GridSearch(f, []float64{0, 0}, []float64{1, 1}, 5)
	// Grid points are multiples of 0.25: exact optimum is on the grid.
	if math.Abs(res.X[0]-0.5) > 1e-12 || math.Abs(res.X[1]-0.25) > 1e-12 {
		t.Fatalf("grid optimum = %v", res.X)
	}
	if res.Evals != 25 {
		t.Fatalf("grid evals = %d, want 25", res.Evals)
	}
}

func TestClamp(t *testing.T) {
	x := []float64{-1, 0.5, 2}
	Clamp(x, []float64{0, 0, 0}, []float64{1, 1, 1})
	if x[0] != 0 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("Clamp = %v", x)
	}
}

func TestMultiStartFindsBoxConstrainedMinimum(t *testing.T) {
	// Unconstrained minimum at (2, 2) lies outside the box [0,1]²;
	// the constrained minimum is at the corner (1, 1).
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]-2)*(x[1]-2)
	}
	res := MultiStart(f, []float64{0, 0}, []float64{1, 1}, 4, 5, randx.New(1), NelderMeadOptions{MaxIter: 500})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("constrained minimum = %v, want (1,1)", res.X)
	}
}

func TestMultiStartEscapesLocalMinimum(t *testing.T) {
	// Double well in 1D: local minimum near x=0.1 (value 0.5), global
	// near x=0.9 (value 0).
	f := func(x []float64) float64 {
		a := (x[0] - 0.1) * (x[0] - 0.1) * 40
		b := (x[0]-0.9)*(x[0]-0.9)*40 + 0
		if a+0.5 < b {
			return a + 0.5
		}
		return b
	}
	res := MultiStart(f, []float64{0}, []float64{1}, 6, 9, randx.New(3), NelderMeadOptions{})
	if math.Abs(res.X[0]-0.9) > 0.05 {
		t.Fatalf("global minimum missed: %v", res.X)
	}
}

func TestGridSearchSinglePointPerAxisClamped(t *testing.T) {
	res := GridSearch(sphere, []float64{-1}, []float64{1}, 1) // bumped to 2
	if res.Evals != 2 {
		t.Fatalf("evals = %d, want 2", res.Evals)
	}
}
