// Package extsort sorts and deduplicates streams of int64 keys in
// bounded memory: keys accumulate in fixed-size chunks that are sorted
// and spilled to disk as runs, and a k-way merge streams the unique
// ascending sequence back. It is the machinery behind streaming
// generate-to-store — the sampled edge keys of a graph too large to
// hold are spilled shard by shard and merged straight into the v2
// on-disk encoder, so peak memory is O(chunk), not O(edges).
//
// All spill I/O goes through faultfs.FS, so the fault-injection tests
// that cover the durable stores cover the spill files too: a torn
// write or failed rename surfaces as an error from Add/Merge, never as
// a silently wrong edge set.
//
// Keys are packed undirected edges (int64(u)<<32 | v, u < v) in
// practice, but nothing here depends on that: any int64 ordering
// works.
package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"

	"dpkron/internal/faultfs"
)

// DefaultChunk is the spill threshold in keys (8 MiB of int64s) when
// New is given chunkKeys <= 0.
const DefaultChunk = 1 << 20

// Sorter accumulates keys through per-goroutine Writers and merges the
// spilled runs. A Sorter owns a directory of run files; Remove deletes
// them. Methods on the Sorter are safe for concurrent use; each Writer
// is for a single goroutine.
type Sorter struct {
	fs    faultfs.FS
	dir   string
	chunk int

	mu      sync.Mutex
	runs    []runInfo
	seq     int
	writers int
}

type runInfo struct {
	path  string
	count int64
}

// New returns a Sorter spilling into dir (created if needed) through
// fsys. chunkKeys bounds the in-memory buffer of each Writer;
// <= 0 selects DefaultChunk.
func New(fsys faultfs.FS, dir string, chunkKeys int) (*Sorter, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if chunkKeys <= 0 {
		chunkKeys = DefaultChunk
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extsort: creating spill dir: %w", err)
	}
	return &Sorter{fs: fsys, dir: dir, chunk: chunkKeys}, nil
}

// NewTemp is New in a fresh os.MkdirTemp directory. RemoveAll deletes
// the directory along with the runs.
func NewTemp(fsys faultfs.FS, chunkKeys int) (*Sorter, error) {
	dir, err := os.MkdirTemp("", "dpkron-extsort-")
	if err != nil {
		return nil, fmt.Errorf("extsort: creating spill dir: %w", err)
	}
	return New(fsys, dir, chunkKeys)
}

// Dir returns the spill directory.
func (s *Sorter) Dir() string { return s.dir }

// Remove deletes every run file the sorter has produced. Missing files
// (already consolidated away) are ignored.
func (s *Sorter) Remove() error {
	s.mu.Lock()
	runs := s.runs
	s.runs = nil
	s.mu.Unlock()
	var first error
	for _, r := range runs {
		if err := s.fs.Remove(r.path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// RemoveAll is Remove plus deletion of the spill directory itself.
func (s *Sorter) RemoveAll() error {
	err := s.Remove()
	if rmErr := os.RemoveAll(s.dir); rmErr != nil && err == nil {
		err = rmErr
	}
	return err
}

// nextPath reserves a fresh run-file path.
func (s *Sorter) nextPath(prefix string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return filepath.Join(s.dir, fmt.Sprintf("%s-%06d.run", prefix, s.seq))
}

// addRun registers a finished run file.
func (s *Sorter) addRun(path string, count int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs = append(s.runs, runInfo{path: path, count: count})
}

// writeRun writes sorted keys as one run file: raw little-endian
// int64s, buffered, no fsync (spill data does not survive a crash by
// design — a failed run aborts the whole operation instead).
func (s *Sorter) writeRun(path string, keys []int64) error {
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("extsort: creating run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var kb [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(kb[:], uint64(k))
		if _, err := bw.Write(kb[:]); err != nil {
			f.Close()
			return fmt.Errorf("extsort: writing run: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: writing run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("extsort: closing run: %w", err)
	}
	return nil
}

// spill sorts (unless presorted), deduplicates, and writes keys as a
// new run. It takes ownership of keys for the duration of the call.
func (s *Sorter) spill(keys []int64, presorted bool) error {
	if len(keys) == 0 {
		return nil
	}
	if !presorted {
		slices.Sort(keys)
		keys = slices.Compact(keys)
	}
	path := s.nextPath("run")
	if err := s.writeRun(path, keys); err != nil {
		return err
	}
	s.addRun(path, int64(len(keys)))
	return nil
}

// Writer returns a new chunk-buffered writer. Each concurrent
// goroutine feeding the sorter takes its own Writer; Close flushes the
// final partial chunk. All Writers must be closed before Merge or
// Consolidate.
func (s *Sorter) Writer() *Writer {
	s.mu.Lock()
	s.writers++
	s.mu.Unlock()
	return &Writer{s: s}
}

// Writer accumulates keys for one goroutine, spilling a sorted run
// whenever its chunk fills. Not safe for concurrent use.
type Writer struct {
	s      *Sorter
	buf    []int64
	closed bool
}

// Add buffers one key, spilling if the chunk is full.
func (w *Writer) Add(key int64) error {
	if w.buf == nil {
		w.buf = make([]int64, 0, w.s.chunk)
	}
	w.buf = append(w.buf, key)
	if len(w.buf) >= w.s.chunk {
		err := w.s.spill(w.buf, false)
		w.buf = w.buf[:0]
		return err
	}
	return nil
}

// AddSorted spills an already sorted, duplicate-free slice directly as
// one run, bypassing the chunk buffer. The slice is not retained.
func (w *Writer) AddSorted(keys []int64) error {
	return w.s.spill(keys, true)
}

// Close flushes the remaining partial chunk. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.s.spill(w.buf, false)
	w.buf = nil
	w.s.mu.Lock()
	w.s.writers--
	w.s.mu.Unlock()
	return err
}

// Merge returns an iterator over the unique ascending union of every
// spilled run. All Writers must be closed first.
func (s *Sorter) Merge() (*Iterator, error) {
	s.mu.Lock()
	if s.writers != 0 {
		n := s.writers
		s.mu.Unlock()
		return nil, fmt.Errorf("extsort: Merge with %d writers still open", n)
	}
	runs := append([]runInfo(nil), s.runs...)
	s.mu.Unlock()
	srcs := make([]source, 0, len(runs))
	for _, r := range runs {
		fs, err := newFileSource(s.fs, r.path, r.count)
		if err != nil {
			for _, src := range srcs {
				src.close()
			}
			return nil, err
		}
		srcs = append(srcs, fs)
	}
	return newIterator(srcs), nil
}

// Consolidate merges every spilled run into a single on-disk run
// (written via tmp + rename, so a failure leaves no half-merged file
// masquerading as the result), deletes the inputs, and returns a
// handle supporting sequential iteration and binary-searched
// membership probes. The sorter afterwards holds just the consolidated
// run.
func (s *Sorter) Consolidate() (*Run, error) {
	it, err := s.Merge()
	if err != nil {
		return nil, err
	}
	path := s.nextPath("merged")
	tmp := path + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		it.Close()
		return nil, fmt.Errorf("extsort: creating merged run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var count int64
	var kb [8]byte
	for {
		k, ok, err := it.Next()
		if err != nil {
			f.Close()
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(kb[:], uint64(k))
		if _, err := bw.Write(kb[:]); err != nil {
			f.Close()
			it.Close()
			return nil, fmt.Errorf("extsort: writing merged run: %w", err)
		}
		count++
	}
	it.Close()
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: writing merged run: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("extsort: closing merged run: %w", err)
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("extsort: committing merged run: %w", err)
	}
	// The inputs are subsumed; drop them and track only the merged run.
	s.mu.Lock()
	old := s.runs
	s.runs = []runInfo{{path: path, count: count}}
	s.mu.Unlock()
	for _, r := range old {
		_ = s.fs.Remove(r.path)
	}
	return &Run{fs: s.fs, path: path, count: count}, nil
}

// Run is one sorted, duplicate-free on-disk run: the product of
// Consolidate. It supports repeated sequential iteration and
// random-access membership probes (the streaming ball-drop top-up's
// exclude set lives here instead of on the heap).
type Run struct {
	fs    faultfs.FS
	path  string
	count int64

	mu sync.Mutex
	r  faultfs.Reader // lazily opened probe handle
}

// Count returns the number of keys in the run.
func (r *Run) Count() int64 { return r.count }

// Iter returns a fresh sequential iterator over the run.
func (r *Run) Iter() (*Iterator, error) {
	src, err := newFileSource(r.fs, r.path, r.count)
	if err != nil {
		return nil, err
	}
	return newIterator([]source{src}), nil
}

// IterWith returns an iterator over the unique ascending union of the
// run and a sorted slice — how a streamed sample's disk-resident bulk
// co-merges with its small in-memory top-up.
func (r *Run) IterWith(extra []int64) (*Iterator, error) {
	src, err := newFileSource(r.fs, r.path, r.count)
	if err != nil {
		return nil, err
	}
	return newIterator([]source{src, &sliceSource{keys: extra}}), nil
}

// Contains reports whether key is present, by binary search over the
// run file (O(log n) 8-byte ReadAt probes against the page cache).
func (r *Run) Contains(key int64) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.r == nil {
		f, err := r.fs.Open(r.path)
		if err != nil {
			return false, fmt.Errorf("extsort: opening run for probes: %w", err)
		}
		r.r = f
	}
	lo, hi := int64(0), r.count
	var kb [8]byte
	for lo < hi {
		mid := int64(uint64(lo+hi) >> 1)
		if _, err := r.r.ReadAt(kb[:], mid*8); err != nil {
			return false, fmt.Errorf("extsort: probing run: %w", err)
		}
		k := int64(binary.LittleEndian.Uint64(kb[:]))
		switch {
		case k == key:
			return true, nil
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, nil
}

// Close releases the probe handle, if open.
func (r *Run) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.r == nil {
		return nil
	}
	err := r.r.Close()
	r.r = nil
	return err
}

// source is one pull stream of ascending keys.
type source interface {
	next() (int64, bool, error)
	close() error
}

type sliceSource struct {
	keys []int64
	pos  int
}

func (s *sliceSource) next() (int64, bool, error) {
	if s.pos >= len(s.keys) {
		return 0, false, nil
	}
	k := s.keys[s.pos]
	s.pos++
	return k, true, nil
}

func (s *sliceSource) close() error { return nil }

type fileSource struct {
	f         faultfs.Reader
	br        *bufio.Reader
	remaining int64
}

func newFileSource(fsys faultfs.FS, path string, count int64) (*fileSource, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extsort: opening run: %w", err)
	}
	return &fileSource{f: f, br: bufio.NewReaderSize(f, 1<<16), remaining: count}, nil
}

func (s *fileSource) next() (int64, bool, error) {
	if s.remaining <= 0 {
		return 0, false, nil
	}
	var kb [8]byte
	if _, err := io.ReadFull(s.br, kb[:]); err != nil {
		return 0, false, fmt.Errorf("extsort: reading run: %w", err)
	}
	s.remaining--
	return int64(binary.LittleEndian.Uint64(kb[:])), true, nil
}

func (s *fileSource) close() error { return s.f.Close() }

// Iterator streams the unique ascending union of its sources: a k-way
// merge with duplicate suppression. Close releases the underlying run
// files; Next after exhaustion keeps returning ok = false.
type Iterator struct {
	heads []head // min-ordered by key: heads[0] is next
	last  int64
	first bool
	err   error
}

type head struct {
	key int64
	src source
}

func newIterator(srcs []source) *Iterator {
	it := &Iterator{first: true}
	for _, src := range srcs {
		k, ok, err := src.next()
		if err != nil {
			it.err = err
			src.close()
			continue
		}
		if !ok {
			src.close()
			continue
		}
		it.push(head{key: k, src: src})
	}
	return it
}

// push inserts h into the binary heap.
func (it *Iterator) push(h head) {
	it.heads = append(it.heads, h)
	i := len(it.heads) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if it.heads[parent].key <= it.heads[i].key {
			break
		}
		it.heads[parent], it.heads[i] = it.heads[i], it.heads[parent]
		i = parent
	}
}

// pop removes the minimum head.
func (it *Iterator) pop() head {
	h := it.heads[0]
	last := len(it.heads) - 1
	it.heads[0] = it.heads[last]
	it.heads = it.heads[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(it.heads) && it.heads[l].key < it.heads[min].key {
			min = l
		}
		if r < len(it.heads) && it.heads[r].key < it.heads[min].key {
			min = r
		}
		if min == i {
			break
		}
		it.heads[i], it.heads[min] = it.heads[min], it.heads[i]
		i = min
	}
	return h
}

// Next returns the next unique key in ascending order.
func (it *Iterator) Next() (int64, bool, error) {
	if it.err != nil {
		return 0, false, it.err
	}
	for len(it.heads) > 0 {
		h := it.pop()
		k, ok, err := h.src.next()
		if err != nil {
			it.err = err
			h.src.close()
			it.Close()
			return 0, false, err
		}
		if ok {
			it.push(head{key: k, src: h.src})
		} else {
			h.src.close()
		}
		if it.first || h.key != it.last {
			it.first = false
			it.last = h.key
			return h.key, true, nil
		}
	}
	return 0, false, nil
}

// Close releases every source still open.
func (it *Iterator) Close() error {
	var first error
	for _, h := range it.heads {
		if err := h.src.close(); err != nil && first == nil {
			first = err
		}
	}
	it.heads = nil
	return first
}
