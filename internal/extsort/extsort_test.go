package extsort

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"dpkron/internal/faultfs"
)

// drain pulls every key from it, failing the test on iterator errors.
func drain(t *testing.T, it *Iterator) []int64 {
	t.Helper()
	var out []int64
	for {
		k, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

// reference is the in-memory model the external sort must match.
func reference(keys []int64) []int64 {
	s := append([]int64(nil), keys...)
	slices.Sort(s)
	return slices.Compact(s)
}

func TestMergeMatchesReference(t *testing.T) {
	for _, chunk := range []int{1, 2, 7, 64, 1 << 20} {
		s, err := New(faultfs.OS, t.TempDir(), chunk)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(chunk)))
		var all []int64
		w := s.Writer()
		for i := 0; i < 500; i++ {
			k := int64(rng.Intn(200)) // dense → many duplicates
			all = append(all, k)
			if err := w.Add(k); err != nil {
				t.Fatal(err)
			}
		}
		// A second writer contributes a pre-sorted run, as sampler shards do.
		sorted := reference([]int64{5, 999, 1000, 1001, 5})
		w2 := s.Writer()
		if err := w2.AddSorted(sorted); err != nil {
			t.Fatal(err)
		}
		all = append(all, sorted...)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		it, err := s.Merge()
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, it)
		it.Close()
		if want := reference(all); !slices.Equal(got, want) {
			t.Fatalf("chunk %d: merge produced %d keys, want %d", chunk, len(got), len(want))
		}
		s.RemoveAll()
	}
}

func TestMergeRefusesOpenWriters(t *testing.T) {
	s, err := New(faultfs.OS, t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.RemoveAll()
	w := s.Writer()
	if _, err := s.Merge(); err == nil {
		t.Fatal("Merge succeeded with an open writer")
	}
	w.Close()
	if _, err := s.Merge(); err != nil {
		t.Fatal(err)
	}
}

func TestConsolidateAndContains(t *testing.T) {
	s, err := New(faultfs.OS, t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.RemoveAll()
	w := s.Writer()
	var want []int64
	for i := int64(0); i < 1000; i += 3 {
		want = append(want, i)
		if err := w.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := s.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Count() != int64(len(want)) {
		t.Fatalf("Count = %d, want %d", run.Count(), len(want))
	}
	for i := int64(0); i < 1000; i++ {
		got, err := run.Contains(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := i%3 == 0; got != want {
			t.Fatalf("Contains(%d) = %v, want %v", i, got, want)
		}
	}
	// Iteration after consolidation reproduces the full sequence, and
	// IterWith splices in-memory extras into their sorted positions.
	it, err := run.Iter()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	it.Close()
	if !slices.Equal(got, want) {
		t.Fatal("consolidated run iterates differently from its inputs")
	}
	itw, err := run.IterWith([]int64{-5, 4, 999})
	if err != nil {
		t.Fatal(err)
	}
	gotw := drain(t, itw)
	itw.Close()
	wantw := reference(append(append([]int64(nil), want...), -5, 4, 999))
	if !slices.Equal(gotw, wantw) {
		t.Fatal("IterWith merged incorrectly")
	}
}

// TestSpillFaults proves spill-file I/O failures surface as errors —
// a short write mid-run, a failed open, a failed rename during
// consolidation — rather than producing a silently truncated edge set.
func TestSpillFaults(t *testing.T) {
	add := func(s *Sorter, n int) error {
		w := s.Writer()
		for i := 0; i < n; i++ {
			if err := w.Add(int64(i * 7 % 50)); err != nil {
				w.Close()
				return err
			}
		}
		return w.Close()
	}
	t.Run("short-write", func(t *testing.T) {
		inj := faultfs.NewInjector(faultfs.OS).Fail(faultfs.Fault{Op: faultfs.OpWrite, Path: ".run", Short: 12})
		s, err := New(inj, t.TempDir(), 4)
		if err != nil {
			t.Fatal(err)
		}
		defer s.RemoveAll()
		if err := add(s, 100); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("torn spill write surfaced as %v, want ErrInjected", err)
		}
	})
	t.Run("open", func(t *testing.T) {
		inj := faultfs.NewInjector(faultfs.OS).Fail(faultfs.Fault{Op: faultfs.OpOpen, Path: ".run"})
		s, err := New(inj, t.TempDir(), 4)
		if err != nil {
			t.Fatal(err)
		}
		defer s.RemoveAll()
		if err := add(s, 100); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("failed spill open surfaced as %v, want ErrInjected", err)
		}
	})
	t.Run("consolidate-rename", func(t *testing.T) {
		inj := faultfs.NewInjector(faultfs.OS).Fail(faultfs.Fault{Op: faultfs.OpRename, Path: "merged"})
		s, err := New(inj, t.TempDir(), 4)
		if err != nil {
			t.Fatal(err)
		}
		defer s.RemoveAll()
		if err := add(s, 100); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Consolidate(); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("failed consolidate rename surfaced as %v, want ErrInjected", err)
		}
	})
	t.Run("merge-read", func(t *testing.T) {
		inj := faultfs.NewInjector(faultfs.OS)
		s, err := New(inj, t.TempDir(), 4)
		if err != nil {
			t.Fatal(err)
		}
		defer s.RemoveAll()
		if err := add(s, 100); err != nil {
			t.Fatal(err)
		}
		// Fail the read-side open of the first run during merge.
		inj.Fail(faultfs.Fault{Op: faultfs.OpOpen, Path: ".run"})
		if _, err := s.Merge(); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("failed run open during merge surfaced as %v, want ErrInjected", err)
		}
	})
}

// FuzzMergeDedup drives the external sort with arbitrary key bytes and
// chunk sizes and checks it against the in-memory reference.
func FuzzMergeDedup(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, chunk8 uint8) {
		if len(raw) > 1<<12 {
			return
		}
		chunk := int(chunk8%16) + 1
		var keys []int64
		for i := 0; i+8 <= len(raw); i += 8 {
			var k int64
			for j := 0; j < 8; j++ {
				k = k<<8 | int64(raw[i+j])
			}
			keys = append(keys, k)
		}
		s, err := New(faultfs.OS, t.TempDir(), chunk)
		if err != nil {
			t.Fatal(err)
		}
		defer s.RemoveAll()
		w := s.Writer()
		for _, k := range keys {
			if err := w.Add(k); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		it, err := s.Merge()
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, it)
		it.Close()
		if want := reference(keys); !slices.Equal(got, want) {
			t.Fatalf("external sort diverged from reference: %d vs %d keys", len(got), len(want))
		}
	})
}
