package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

// testGraphs returns a spread of shapes the codec must round-trip:
// degenerate, structured, isolated-node-bearing, and realistic SKG
// samples.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	withIsolated := graph.NewBuilder(50)
	withIsolated.AddEdge(0, 1)
	withIsolated.AddEdge(30, 7)
	withIsolated.AddEdge(48, 49)
	m, err := skg.NewModel(skg.Initiator{A: 0.99, B: 0.55, C: 0.35}, 10)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*graph.Graph{
		"empty":        graph.Empty(0),
		"nodes-only":   graph.Empty(17),
		"single-edge":  graph.FromEdges(2, [][2]int{{0, 1}}),
		"path":         graph.Path(100),
		"cycle":        graph.Cycle(64),
		"star":         graph.Star(33),
		"complete":     graph.Complete(20),
		"isolated":     withIsolated.Build(),
		"skg-k10":      m.SampleExactWorkers(randx.New(42), 4),
		"skg-balldrop": skg.Model{Init: skg.Initiator{A: 0.99, B: 0.45, C: 0.25}, K: 12}.SampleBallDropN(randx.New(7), 3000),
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		data := Marshal(g)
		back, err := Unmarshal(data)
		if err != nil {
			t.Errorf("%s: decode failed: %v", name, err)
			continue
		}
		if !g.Equal(back) {
			t.Errorf("%s: round trip changed the graph", name)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: decoded graph invalid: %v", name, err)
		}
	}
}

// TestCodecBitIdenticalToTextParse: the acceptance property — loading
// from binary equals parsing the original edge-list text, bit for bit
// (same CSR arrays, so every downstream fixed-seed release matches).
func TestCodecBitIdenticalToTextParse(t *testing.T) {
	for name, g := range testGraphs(t) {
		var text bytes.Buffer
		if err := g.WriteEdgeList(&text); err != nil {
			t.Fatal(err)
		}
		fromText, err := graph.ReadEdgeList(&text, 0)
		if err != nil {
			t.Fatal(err)
		}
		fromBinary, err := Unmarshal(Marshal(g))
		if err != nil {
			t.Fatal(err)
		}
		if !fromText.Equal(fromBinary) {
			t.Errorf("%s: binary load differs from text parse", name)
		}
	}
}

func TestCodecCompact(t *testing.T) {
	// The gap encoding should beat the text form comfortably on a
	// realistic sample: most gaps fit one varint byte vs ~12 text bytes
	// per edge line.
	g := testGraphs(t)["skg-k10"]
	var text bytes.Buffer
	if err := g.WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	bin := len(Marshal(g))
	if bin*3 > text.Len() {
		t.Errorf("binary form %d bytes vs text %d: want at least 3x smaller", bin, text.Len())
	}
}

func TestCodecErrors(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 5}, {0, 3}})
	good := Marshal(g)

	t.Run("truncation", func(t *testing.T) {
		// Every proper prefix must fail cleanly — typed, never a panic.
		for cut := 0; cut < len(good); cut++ {
			_, err := Unmarshal(good[:cut])
			if err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", cut)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadMagic) {
				t.Fatalf("truncation to %d bytes: untyped error %v", cut, err)
			}
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte("NOPE"), good[4:]...)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("bad magic: got %v, want ErrBadMagic", err)
		}
		if _, err := Unmarshal([]byte("DP")); !errors.Is(err, ErrTruncated) {
			t.Errorf("2-byte input: got %v, want ErrTruncated", err)
		}
	})

	t.Run("bad-checksum", func(t *testing.T) {
		for _, flip := range []int{5, len(good) / 2, len(good) - 1} {
			bad := bytes.Clone(good)
			bad[flip] ^= 0x40
			if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
				t.Errorf("flipped byte %d: got %v, want ErrChecksum", flip, err)
			}
		}
	})

	t.Run("gap-wraparound-checksummed", func(t *testing.T) {
		// The wraparound payload behind a *valid* checksum: an attacker
		// controls both, so the public Unmarshal path must reject it —
		// with an error, never an AddPackedEdges panic.
		payload := []byte{'D', 'P', 'K', 'G', 1, 2, 1,
			1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0}
		sum := sha256.Sum256(payload)
		if _, err := Unmarshal(append(payload, sum[:]...)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("checksummed gap wraparound: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(bytes.Clone(good), 0x00)
		if _, err := Unmarshal(bad); err == nil {
			t.Error("trailing garbage decoded successfully")
		}
	})

	t.Run("bad-version", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[4] = 99 // version varint
		if _, err := decodePayload(bad[:len(bad)-checksumLen]); !errors.Is(err, ErrBadVersion) {
			t.Errorf("version 99: got %v, want ErrBadVersion", err)
		}
	})

	t.Run("node-cap-at-header", func(t *testing.T) {
		// A checksummed file declaring 2^30 nodes must be rejected at
		// the header varint — before any O(n) allocation — when a cap
		// is set, even though the payload itself is tiny.
		payload := []byte{'D', 'P', 'K', 'G', 1}
		payload = binary.AppendUvarint(payload, 1<<30)
		payload = binary.AppendUvarint(payload, 0)
		sum := sha256.Sum256(payload)
		if _, err := UnmarshalLimit(append(payload, sum[:]...), 1000); err == nil {
			t.Error("over-cap header decoded successfully")
		}
		// The in-range graph still decodes under the same cap.
		if _, err := UnmarshalLimit(good, 1000); err != nil {
			t.Errorf("in-cap graph: %v", err)
		}
	})

	t.Run("corrupt-payloads", func(t *testing.T) {
		// Hand-built payloads that pass no checksum gate: decodePayload
		// must reject each with ErrCorrupt/ErrTruncated, never panic.
		for name, payload := range map[string][]byte{
			"huge-node-count":  {'D', 'P', 'K', 'G', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0},
			"huge-edge-count":  {'D', 'P', 'K', 'G', 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
			"row-count-lies":   {'D', 'P', 'K', 'G', 1, 2, 1, 5},          // row 0 claims 5 neighbours
			"neighbour-range":  {'D', 'P', 'K', 'G', 1, 2, 1, 1, 9},       // gap 9 -> neighbour 10 on 2 nodes
			"edges-undercount": {'D', 'P', 'K', 'G', 1, 3, 2, 1, 0, 0, 0}, // header claims 2, rows hold 1
			"varint-overflow":  {'D', 'P', 'K', 'G', 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
			"varint-cut":       {'D', 'P', 'K', 'G', 0x80},
			// gap near 2^64: w+1+gap must not wrap past the range check.
			"gap-wraparound": {'D', 'P', 'K', 'G', 1, 2, 1,
				1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0},
		} {
			g, err := decodePayload(payload)
			if err == nil {
				t.Errorf("%s: decoded to %d nodes, want error", name, g.NumNodes())
				continue
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Errorf("%s: untyped error %v", name, err)
			}
		}
	})
}
