// Package dataset is the persistent graph store behind fit-by-id: a
// compact binary on-disk CSR format, a content-addressed Store with
// atomic writes and cross-process locking, and streaming importers
// (SNAP text, gzip, Matrix Market) that feed graph.Builder directly.
//
// The paper's estimator is run repeatedly against the same sensitive
// graph (the ε-sweeps of Table 1), and the budget accountant already
// charges spends against content-addressed dataset ids — the store is
// where those datasets actually live. A graph is ingested once
// (`dpkron dataset import`, POST /v1/datasets) and every later fit
// references it by id, loading the binary form, which is bit-identical
// to parsing the original edge list and considerably faster.
package dataset

import (
	"bufio"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"

	"dpkron/internal/graph"
)

// Binary format ("DPKG", version 1):
//
//	magic    [4]byte  "DPKG"
//	version  uvarint  (1)
//	nodes    uvarint  n
//	edges    uvarint  m
//	rows     for each node u in 0..n-1:
//	           cnt    uvarint  number of neighbours w with w > u
//	           gaps   cnt uvarints: first is w0-u-1, then w[i]-w[i-1]-1
//	checksum [32]byte SHA-256 of every preceding byte
//
// Only the upper adjacency (u < w) is stored — half the CSR — and the
// decoder rebuilds the symmetric form through the same two-pass fill
// graph.Builder uses, so decode(encode(g)) is bit-identical to g. The
// gap encoding keeps typical SKG adjacency to one or two bytes per
// edge. The trailing checksum makes torn or bit-rotted files a typed
// error instead of a silently wrong graph.

// Typed decode errors. Decode failures wrap exactly one of these, so
// callers can distinguish wrong-file-type (ErrBadMagic) from damage
// (ErrTruncated, ErrChecksum, ErrCorrupt) from version skew.
var (
	ErrBadMagic   = errors.New("dataset: not a DPKG graph file")
	ErrBadVersion = errors.New("dataset: unsupported DPKG version")
	ErrTruncated  = errors.New("dataset: truncated DPKG graph file")
	ErrChecksum   = errors.New("dataset: DPKG checksum mismatch")
	ErrCorrupt    = errors.New("dataset: corrupt DPKG graph file")
)

var magic = [4]byte{'D', 'P', 'K', 'G'}

const (
	codecVersion = 1
	checksumLen  = sha256.Size
)

// upperRow returns the neighbours of u greater than u — the half v1
// stores — by skipping the lower prefix of the sorted adjacency.
func upperRow(g *graph.Graph, u int) []int32 {
	nb := g.Neighbors(u)
	i := 0
	for i < len(nb) && int(nb[i]) <= u {
		i++
	}
	return nb[i:]
}

// appendV1Row appends one node's count + gap varints to buf.
func appendV1Row(buf []byte, u int, upper []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(upper)))
	prev := u
	for _, w := range upper {
		buf = binary.AppendUvarint(buf, uint64(int(w)-prev-1))
		prev = int(w)
	}
	return buf
}

// uvarintLen returns the encoded size of x (1–10 bytes).
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// marshaledSize returns the exact v1-encoded size of g, checksum
// included, via a counting pass over the same rows Marshal writes.
// The old pessimistic bound (4+30+n+5m) over-allocated roughly 2× on
// typical SKG graphs — doubling peak encode memory for large graphs —
// where gap varints are mostly a single byte.
func marshaledSize(g *graph.Graph) int {
	n := g.NumNodes()
	m := g.NumEdges()
	size := len(magic) + uvarintLen(codecVersion) + uvarintLen(uint64(n)) + uvarintLen(uint64(m))
	for u := 0; u < n; u++ {
		upper := upperRow(g, u)
		size += uvarintLen(uint64(len(upper)))
		prev := u
		for _, w := range upper {
			size += uvarintLen(uint64(int(w) - prev - 1))
			prev = int(w)
		}
	}
	return size + checksumLen
}

// Marshal encodes g in the binary DPKG format (version 1). The buffer
// is sized exactly by a counting pass, so the returned slice's
// capacity equals its length.
func Marshal(g *graph.Graph) []byte {
	n := g.NumNodes()
	buf := make([]byte, 0, marshaledSize(g))
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(g.NumEdges()))
	for u := 0; u < n; u++ {
		buf = appendV1Row(buf, u, upperRow(g, u))
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// Unmarshal decodes a DPKG-encoded graph, verifying the checksum
// before parsing. Damaged input returns an error wrapping one of the
// typed errors above; it never panics.
func Unmarshal(data []byte) (*graph.Graph, error) {
	return UnmarshalLimit(data, 0)
}

// UnmarshalLimit is Unmarshal with a node-count cap (0 = none): input
// whose header declares more than maxNodes nodes is rejected as soon
// as the header varint is parsed, before the O(n+m) graph arrays are
// allocated. Servers use it so a hostile upload cannot decode into
// arrays far larger than the upload itself.
func UnmarshalLimit(data []byte, maxNodes int) (*graph.Graph, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, ErrBadMagic
	}
	if len(data) < len(magic)+1+checksumLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	payload, sum := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	want := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(want[:], sum) != 1 {
		return nil, ErrChecksum
	}
	return decodePayloadLimit(payload, maxNodes)
}

// decodePayload parses the checksummed region (magic through rows).
// It is split from Unmarshal so the fuzz harness can drive the parser
// directly, without a valid checksum shielding it from mutated input.
func decodePayload(payload []byte) (*graph.Graph, error) {
	return decodePayloadLimit(payload, 0)
}

func decodePayloadLimit(payload []byte, maxNodes int) (*graph.Graph, error) {
	if len(payload) < len(magic) || [4]byte(payload[:4]) != magic {
		return nil, ErrBadMagic
	}
	p := payload[4:]
	version, p, err := uvarint(p)
	if err != nil {
		return nil, err
	}
	if version == codecVersion2 {
		// The v2 mmap layout: fixed-width sections at absolute offsets,
		// so the decoder works on the original payload, not the cursor.
		return decodeV2Payload(payload, maxNodes)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("%w: %d (decoder knows %d and %d)", ErrBadVersion, version, codecVersion, codecVersion2)
	}
	nodes, p, err := uvarint(p)
	if err != nil {
		return nil, err
	}
	if maxNodes > 0 && nodes > uint64(maxNodes) {
		return nil, fmt.Errorf("dataset: input has %d nodes, exceeding the cap of %d", nodes, maxNodes)
	}
	edges, p, err := uvarint(p)
	if err != nil {
		return nil, err
	}
	// Every node costs at least one byte (its count varint) and every
	// edge at least one byte (its gap varint), so both are bounded by
	// the remaining payload — reject absurd headers before allocating
	// anything proportional to them.
	if nodes > uint64(len(p)) || nodes >= 1<<31 {
		return nil, fmt.Errorf("%w: %d nodes in %d payload bytes", ErrCorrupt, nodes, len(p))
	}
	if edges > uint64(len(p)) {
		return nil, fmt.Errorf("%w: %d edges in %d payload bytes", ErrCorrupt, edges, len(p))
	}
	n, m := int(nodes), int(edges)
	// The edge header is attacker-controlled (the checksum proves
	// nothing — an attacker computes both), so like the importers'
	// declared entry counts it is only a capacity hint: clamp it so a
	// padded upload declaring 1e9 edges cannot force an 8x-amplified
	// up-front allocation. Growth by append stays bounded by the gap
	// varints actually present, and the row/total checks below still
	// hold the file to exactly m edges.
	hint := m
	if hint > maxEdgeHint {
		hint = maxEdgeHint
	}
	pairs := make([]int64, 0, hint)
	for u := 0; u < n; u++ {
		cnt, rest, err := uvarint(p)
		if err != nil {
			return nil, err
		}
		p = rest
		if cnt > uint64(len(p)) || len(pairs)+int(cnt) > m {
			return nil, fmt.Errorf("%w: row %d claims %d neighbours", ErrCorrupt, u, cnt)
		}
		w := u
		for i := uint64(0); i < cnt; i++ {
			gap, rest, err := uvarint(p)
			if err != nil {
				return nil, err
			}
			p = rest
			// Bound the gap itself before the addition: a crafted
			// gap near 2^64 would otherwise wrap next past the range
			// check below (n < 2^31, so in-range gaps are < n).
			if gap >= uint64(n) {
				return nil, fmt.Errorf("%w: row %d neighbour gap %d out of range", ErrCorrupt, u, gap)
			}
			next := uint64(w) + 1 + gap
			if next >= uint64(n) {
				return nil, fmt.Errorf("%w: row %d neighbour %d out of range [0, %d)", ErrCorrupt, u, next, n)
			}
			w = int(next)
			pairs = append(pairs, int64(u)<<32|int64(w))
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after rows", ErrCorrupt, len(p))
	}
	if len(pairs) != m {
		return nil, fmt.Errorf("%w: header claims %d edges, rows hold %d", ErrCorrupt, m, len(pairs))
	}
	// pairs is sorted and duplicate-free by construction (rows ascend,
	// gaps are strictly positive), so Build skips its sort and fills the
	// identical CSR arrays the original graph held.
	b := graph.NewBuilderCap(n, m)
	b.AddPackedEdges(pairs)
	return b.Build(), nil
}

// uvarint decodes one varint from p, returning the value and the rest.
func uvarint(p []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(p)
	switch {
	case k > 0:
		return v, p[k:], nil
	case k == 0:
		return 0, nil, fmt.Errorf("%w: unexpected end of varint", ErrTruncated)
	default:
		return 0, nil, fmt.Errorf("%w: varint overflows 64 bits", ErrCorrupt)
	}
}

// Encode writes the binary DPKG form of g (version 1) to w, streaming
// row by row through a fixed-size buffer instead of materializing the
// whole encoding — writing a graph costs O(max row), not O(n+m).
func Encode(w io.Writer, g *graph.Graph) error {
	h := sha256.New()
	bw := bufio.NewWriterSize(w, 1<<16)
	mw := io.MultiWriter(bw, h)
	n := g.NumNodes()
	buf := make([]byte, 0, 256)
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(g.NumEdges()))
	if _, err := mw.Write(buf); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		buf = appendV1Row(buf[:0], u, upperRow(g, u))
		if _, err := mw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeBinary reads a DPKG-encoded graph from r (to EOF).
func DecodeBinary(r io.Reader) (*graph.Graph, error) {
	return DecodeBinaryLimit(r, 0)
}

// DecodeBinaryLimit is DecodeBinary with UnmarshalLimit's node cap.
func DecodeBinaryLimit(r io.Reader, maxNodes int) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading graph: %w", err)
	}
	return UnmarshalLimit(data, maxNodes)
}
