package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/faultfs"
	"dpkron/internal/fslock"
	"dpkron/internal/graph"
)

// ErrNotFound marks operations naming a dataset id the store does not
// hold. Servers map it to 404.
var ErrNotFound = errors.New("dataset: not found")

// Meta is the per-dataset metadata sidecar, persisted as
// <id>.json next to the binary graph.
type Meta struct {
	// ID is the content-addressed dataset id (accountant.DatasetID):
	// the same id the privacy-budget ledger charges, so budgets follow
	// the graph bytes, not the upload path.
	ID string `json:"id"`
	// Name is the operator-facing label given at import ("ca-grqc").
	Name string `json:"name,omitempty"`
	// Nodes and Edges describe the stored graph.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Source records what the graph was imported from ("snap",
	// "snap+gzip", "mtx", "dpkg", "generated", ...).
	Source string `json:"source,omitempty"`
	// Imported is the UTC time of first import.
	Imported time.Time `json:"imported"`
	// Bytes is the size of the binary graph file.
	Bytes int64 `json:"bytes"`
	// Format is the DPKG layout version of the graph file: 1 (compact
	// varint rows) or 2 (mmap-ready fixed-width CSR). 0 in metadata
	// written before formats existed means 1.
	Format int `json:"format,omitempty"`
}

// Store is a persistent, content-addressed graph store rooted at a
// directory: each dataset is a binary DPKG graph file plus a JSON
// metadata sidecar, both written via tmp-file + atomic rename so a
// crash mid-import leaves no torn dataset. Mutations additionally
// serialize through an in-process mutex plus an advisory file lock
// (internal/fslock, the accountant-ledger pattern) and reload nothing —
// the store keeps no authoritative in-memory state — so separate
// processes sharing a directory (a `dpkron serve` and a concurrent
// `dpkron dataset import`) never corrupt it.
//
// Ids are content-addressed (accountant.DatasetID): a given id can
// only ever name one graph, which makes the read cache below always
// valid and makes re-importing identical bytes a cheap no-op.
//
// Cross-process safety assumes POSIX semantics: on non-unix builds
// fslock is a documented no-op and rename-over-existing may fail, so
// there a store directory should be used by a single process.
type Store struct {
	dir string
	fs  faultfs.FS
	// met carries the telemetry collectors installed by Instrument;
	// the zero value no-ops.
	met storeMetrics

	mu         sync.Mutex
	cache      map[string]cacheEntry // id -> decoded graph (immutable)
	order      []string              // heap-entry eviction order, oldest first
	cacheBytes int64                 // resident bytes of heap entries
}

// cacheEntry is one cached graph plus its residency cost. Mapped
// (mmap-backed) graphs carry bytes = 0: their adjacency lives in the
// page cache, which the kernel already sizes and reclaims, so charging
// them against the heap budget would evict exactly the entries that
// are free to keep.
type cacheEntry struct {
	g     *graph.Graph
	bytes int64
}

// cacheBudget bounds the total resident bytes of heap-decoded graphs
// kept hot (the old bound was 8 entries regardless of size — a few
// k=20 graphs at ~200 MB each blew past any sensible budget). The
// newest entry always stays, even alone over budget: the caller is
// about to use it.
const cacheBudget = 256 << 20

// graphHeapBytes is the CSR residency of a decoded graph: 4 bytes per
// offset, 4 per adjacency slot (each edge appears twice).
func graphHeapBytes(g *graph.Graph) int64 {
	off, adj := g.CSR()
	return 4 * (int64(len(off)) + int64(len(adj)))
}

// Open returns a Store rooted at dir, creating the directory if
// needed.
func Open(dir string) (*Store, error) { return OpenFS(faultfs.OS, dir) }

// OpenFS is Open against an explicit filesystem (fault-injection
// tests).
func OpenFS(fsys faultfs.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: opening store: %w", err)
	}
	return &Store{dir: dir, fs: fsys, cache: map[string]cacheEntry{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

const (
	graphExt = ".dpkg"
	metaExt  = ".json"
)

// validID reports whether id is safe to splice into a filename: the
// "ds-" fingerprint shape with hex digits only, so a hostile id can
// never traverse out of the store directory.
func validID(id string) bool {
	if !strings.HasPrefix(id, "ds-") || len(id) != 3+16 {
		return false
	}
	for _, c := range id[3:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) graphPath(id string) string { return filepath.Join(s.dir, id+graphExt) }
func (s *Store) metaPath(id string) string  { return filepath.Join(s.dir, id+metaExt) }

// lock takes the store's cross-process mutation lock.
func (s *Store) lock() (unlock func(), err error) {
	return fslock.Lock(filepath.Join(s.dir, "store.lock"))
}

// Put imports an in-memory graph under its content fingerprint and
// returns the dataset's metadata plus whether it was newly created.
// Importing a graph that is already stored is a no-op returning the
// existing metadata (the id is content-addressed, so the bytes are
// guaranteed identical); a half-deleted dataset — metadata surviving a
// crash mid-Delete without its graph file, or vice versa — is
// re-imported in full, not mistaken for stored.
func (s *Store) Put(g *graph.Graph, name, source string) (Meta, bool, error) {
	return s.PutFormat(g, name, source, 1)
}

// PutFormat is Put with an explicit DPKG layout version: 1 (compact,
// the default) or 2 (mmap-ready; Load then opens it O(1) on unix).
// The id is content-addressed over the graph, not the file bytes, so
// both formats of the same graph share one id — and one budget
// account.
func (s *Store) PutFormat(g *graph.Graph, name, source string, format int) (Meta, bool, error) {
	if format != 1 && format != 2 {
		return Meta{}, false, fmt.Errorf("dataset: unknown format version %d (want 1 or 2)", format)
	}
	id := accountant.DatasetID(g)
	unlock, err := s.lock()
	if err != nil {
		return Meta{}, false, fmt.Errorf("dataset: locking store: %w", err)
	}
	defer unlock()
	if m, err := s.readMeta(id); err == nil {
		if _, err := s.fs.Stat(s.graphPath(id)); err == nil {
			return m, false, nil
		}
	}
	var data []byte
	if format == 2 {
		data = MarshalV2(g)
	} else {
		data = Marshal(g)
	}
	if err := writeAtomic(s.fs, s.graphPath(id), data); err != nil {
		return Meta{}, false, err
	}
	m := Meta{
		ID:       id,
		Name:     name,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		Source:   source,
		Imported: time.Now().UTC().Truncate(time.Second),
		Bytes:    int64(len(data)),
		Format:   format,
	}
	if err := s.writeMeta(m); err != nil {
		return Meta{}, false, err
	}
	return m, true, nil
}

// writeMeta persists a metadata sidecar atomically.
func (s *Store) writeMeta(m Meta) error {
	mb, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(s.fs, s.metaPath(m.ID), append(mb, '\n'))
}

// ImportReader streams a graph from r — SNAP text, gzip, Matrix
// Market, or DPKG binary, auto-detected — into the store (stored in
// the compact v1 layout).
func (s *Store) ImportReader(r io.Reader, name string, opt DecodeOptions) (Meta, error) {
	return s.ImportReaderFormat(r, name, opt, 1)
}

// ImportReaderFormat is ImportReader with an explicit on-disk layout
// version (see PutFormat).
func (s *Store) ImportReaderFormat(r io.Reader, name string, opt DecodeOptions, format int) (Meta, error) {
	g, src, err := DecodeGraph(r, opt)
	if err != nil {
		return Meta{}, err
	}
	m, _, err := s.PutFormat(g, name, string(src), format)
	return m, err
}

// Load returns the stored graph. The decode is cached (graphs are
// immutable and ids content-addressed, so cache entries can never go
// stale), with existence re-checked on disk so a dataset deleted by
// another process stops resolving. DPKG v2 files are opened via mmap
// where supported — O(1) regardless of graph size, with the adjacency
// paged in lazily by the kernel — so loading a v2 dataset never costs
// a full-file decode.
func (s *Store) Load(id string) (*graph.Graph, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	if _, err := s.fs.Stat(s.graphPath(id)); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("dataset: loading %s: %w", id, err)
	}
	s.mu.Lock()
	if e, ok := s.cache[id]; ok {
		s.mu.Unlock()
		s.met.loads.With(loadRouteCache).Inc()
		return e.g, nil
	}
	s.mu.Unlock()
	g, mapped, route, err := s.openGraph(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if e, ok := s.cache[id]; ok {
		// Lost a decode race; keep the incumbent (the loser's mapping, if
		// any, is released by its finalizer once g drops out of scope).
		g = e.g
	} else {
		e := cacheEntry{g: g}
		if !mapped {
			e.bytes = graphHeapBytes(g)
			s.order = append(s.order, id)
			s.cacheBytes += e.bytes
		}
		s.cache[id] = e
		for s.cacheBytes > cacheBudget && len(s.order) > 1 {
			victim := s.order[0]
			s.order = s.order[1:]
			s.cacheBytes -= s.cache[victim].bytes
			delete(s.cache, victim)
			s.met.evictions.Inc()
		}
	}
	s.met.resident.Set(float64(s.cacheBytes))
	s.mu.Unlock()
	s.met.loads.With(route).Inc()
	return g, nil
}

// openGraph materializes one dataset from disk: v2 files go through
// OpenMapped (zero-copy mmap where supported, heap fallback
// otherwise), v1 files through the full verifying decode.
func (s *Store) openGraph(id string) (g *graph.Graph, mapped bool, route string, err error) {
	path := s.graphPath(id)
	version, err := s.sniffVersion(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, "", fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, false, "", fmt.Errorf("dataset %s: %w", id, err)
	}
	if version == codecVersion2 {
		g, mapped, err = OpenMapped(path)
		if err != nil {
			return nil, false, "", fmt.Errorf("dataset %s: %w", id, err)
		}
		route = loadRouteV2Heap
		if mapped {
			route = loadRouteMmap
		}
		return g, mapped, route, nil
	}
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, "", fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, false, "", fmt.Errorf("dataset: loading %s: %w", id, err)
	}
	g, err = Unmarshal(data)
	if err != nil {
		return nil, false, "", fmt.Errorf("dataset %s: %w", id, err)
	}
	return g, false, loadRouteV1, nil
}

// sniffVersion reads just enough of a graph file to identify its DPKG
// layout version.
func (s *Store) sniffVersion(path string) (int, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [5]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: file shorter than its magic", ErrTruncated)
	}
	return Version(hdr[:])
}

// FileInfo describes how a dataset sits on disk: its layout version,
// byte size, and whether Load would mmap it on this platform.
type FileInfo struct {
	// Format is the DPKG layout version of the graph file (1 or 2).
	Format int
	// Bytes is the graph file's current size.
	Bytes int64
	// Mmap reports whether Load would open the file zero-copy via mmap
	// on this build (v2 layout on a unix platform).
	Mmap bool
}

// FileInfo inspects the stored graph file of a dataset, sniffing the
// live bytes rather than trusting the metadata sidecar.
func (s *Store) FileInfo(id string) (FileInfo, error) {
	if !validID(id) {
		return FileInfo{}, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	path := s.graphPath(id)
	st, err := s.fs.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return FileInfo{}, fmt.Errorf("dataset: inspecting %s: %w", id, err)
	}
	version, err := s.sniffVersion(path)
	if err != nil {
		return FileInfo{}, fmt.Errorf("dataset %s: %w", id, err)
	}
	return FileInfo{
		Format: version,
		Bytes:  st.Size(),
		Mmap:   version == codecVersion2 && mmapSupported,
	}, nil
}

// Convert rewrites a stored dataset in the given DPKG layout version,
// in place and atomically. The id is content-addressed over the graph,
// not the file bytes, so it is unchanged; converting to the format the
// file already has is a no-op. The decoded graph is verified against
// its checksum before the old file is replaced.
func (s *Store) Convert(id string, format int) (Meta, error) {
	if format != 1 && format != 2 {
		return Meta{}, fmt.Errorf("dataset: unknown format version %d (want 1 or 2)", format)
	}
	if !validID(id) {
		return Meta{}, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	unlock, err := s.lock()
	if err != nil {
		return Meta{}, fmt.Errorf("dataset: locking store: %w", err)
	}
	defer unlock()
	m, err := s.readMeta(id)
	if err != nil {
		return Meta{}, err
	}
	path := s.graphPath(id)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return Meta{}, fmt.Errorf("dataset: loading %s: %w", id, err)
	}
	version, err := Version(data)
	if err != nil {
		return Meta{}, fmt.Errorf("dataset %s: %w", id, err)
	}
	if version == format {
		m.Format = version // normalize pre-format metadata on the way out
		return m, nil
	}
	g, err := Unmarshal(data)
	if err != nil {
		return Meta{}, fmt.Errorf("dataset %s: %w", id, err)
	}
	var out []byte
	if format == 2 {
		out = MarshalV2(g)
	} else {
		out = Marshal(g)
	}
	if err := writeAtomic(s.fs, path, out); err != nil {
		return Meta{}, err
	}
	m.Bytes = int64(len(out))
	m.Format = format
	if err := s.writeMeta(m); err != nil {
		return Meta{}, err
	}
	// Drop any cached decode: a mapped graph would now be backed by a
	// replaced file (the mapping itself stays valid — the old inode
	// lives until unmapped — but fresh loads should see the new layout).
	s.mu.Lock()
	s.evictLocked(id)
	s.mu.Unlock()
	return m, nil
}

// Meta returns the stored metadata of a dataset.
func (s *Store) Meta(id string) (Meta, error) {
	if !validID(id) {
		return Meta{}, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	return s.readMeta(id)
}

// Has reports whether the store holds the dataset.
func (s *Store) Has(id string) bool {
	if !validID(id) {
		return false
	}
	_, err := s.fs.Stat(s.graphPath(id))
	return err == nil
}

func (s *Store) readMeta(id string) (Meta, error) {
	b, err := s.fs.ReadFile(s.metaPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return Meta{}, fmt.Errorf("dataset: reading metadata of %s: %w", id, err)
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, fmt.Errorf("dataset: metadata of %s is corrupt: %w", id, err)
	}
	return m, nil
}

// List returns the metadata of every stored dataset, sorted by import
// time then id. The listing is read fresh from disk on every call, so
// imports and deletes by other processes are always visible.
func (s *Store) List() ([]Meta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: listing store: %w", err)
	}
	var out []Meta
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, metaExt) {
			continue
		}
		id := strings.TrimSuffix(name, metaExt)
		if !validID(id) {
			continue
		}
		m, err := s.readMeta(id)
		if err != nil {
			// Skip unreadable entries (a raced delete, or one damaged
			// sidecar) rather than failing the whole listing — every
			// healthy dataset stays visible.
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Imported.Equal(out[j].Imported) {
			return out[i].Imported.Before(out[j].Imported)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Delete removes a dataset's graph and metadata. Budgets already spent
// against its id remain in any ledger — deletion frees storage, it
// does not reset a privacy account.
func (s *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	unlock, err := s.lock()
	if err != nil {
		return fmt.Errorf("dataset: locking store: %w", err)
	}
	defer unlock()
	if _, err := s.fs.Stat(s.graphPath(id)); os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err := s.fs.Remove(s.graphPath(id)); err != nil {
		return fmt.Errorf("dataset: deleting %s: %w", id, err)
	}
	if err := s.fs.Remove(s.metaPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dataset: deleting metadata of %s: %w", id, err)
	}
	s.mu.Lock()
	s.evictLocked(id)
	s.mu.Unlock()
	return nil
}

// evictLocked drops one cache entry, refunding its heap budget. Mapped
// entries are not in order and carry zero bytes, so the loop and the
// refund are both no-ops for them; their mapping is released by the
// graph's finalizer once the last user drops it.
func (s *Store) evictLocked(id string) {
	e, ok := s.cache[id]
	if !ok {
		return
	}
	delete(s.cache, id)
	s.cacheBytes -= e.bytes
	s.met.evictions.Inc()
	s.met.resident.Set(float64(s.cacheBytes))
	for i, cid := range s.order {
		if cid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// ExportEdgeList writes the stored graph as SNAP edge-list text — the
// canonical form whose re-import reproduces the identical dataset id.
func (s *Store) ExportEdgeList(id string, w io.Writer) error {
	g, err := s.Load(id)
	if err != nil {
		return err
	}
	return g.WriteEdgeList(w)
}

// writeAtomic writes data to path via tmp file, fsync and rename, so
// readers only ever observe complete files.
func writeAtomic(fsys faultfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: closing %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("dataset: committing %s: %w", path, err)
	}
	return nil
}
