package dataset

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/faultfs"
	"dpkron/internal/fslock"
	"dpkron/internal/graph"
)

// ErrNotFound marks operations naming a dataset id the store does not
// hold. Servers map it to 404.
var ErrNotFound = errors.New("dataset: not found")

// Meta is the per-dataset metadata sidecar, persisted as
// <id>.json next to the binary graph.
type Meta struct {
	// ID is the content-addressed dataset id (accountant.DatasetID):
	// the same id the privacy-budget ledger charges, so budgets follow
	// the graph bytes, not the upload path.
	ID string `json:"id"`
	// Name is the operator-facing label given at import ("ca-grqc").
	Name string `json:"name,omitempty"`
	// Nodes and Edges describe the stored graph.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Source records what the graph was imported from ("snap",
	// "snap+gzip", "mtx", "dpkg", "generated", ...).
	Source string `json:"source,omitempty"`
	// Imported is the UTC time of first import.
	Imported time.Time `json:"imported"`
	// Bytes is the size of the binary graph file.
	Bytes int64 `json:"bytes"`
}

// Store is a persistent, content-addressed graph store rooted at a
// directory: each dataset is a binary DPKG graph file plus a JSON
// metadata sidecar, both written via tmp-file + atomic rename so a
// crash mid-import leaves no torn dataset. Mutations additionally
// serialize through an in-process mutex plus an advisory file lock
// (internal/fslock, the accountant-ledger pattern) and reload nothing —
// the store keeps no authoritative in-memory state — so separate
// processes sharing a directory (a `dpkron serve` and a concurrent
// `dpkron dataset import`) never corrupt it.
//
// Ids are content-addressed (accountant.DatasetID): a given id can
// only ever name one graph, which makes the read cache below always
// valid and makes re-importing identical bytes a cheap no-op.
//
// Cross-process safety assumes POSIX semantics: on non-unix builds
// fslock is a documented no-op and rename-over-existing may fail, so
// there a store directory should be used by a single process.
type Store struct {
	dir string
	fs  faultfs.FS

	mu    sync.Mutex
	cache map[string]*graph.Graph // id -> decoded graph (immutable)
	order []string                // cache eviction order, oldest first
}

// cacheSize bounds the decoded graphs kept hot; fit-by-id workloads
// hit the same few datasets repeatedly.
const cacheSize = 8

// Open returns a Store rooted at dir, creating the directory if
// needed.
func Open(dir string) (*Store, error) { return OpenFS(faultfs.OS, dir) }

// OpenFS is Open against an explicit filesystem (fault-injection
// tests).
func OpenFS(fsys faultfs.FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: opening store: %w", err)
	}
	return &Store{dir: dir, fs: fsys, cache: map[string]*graph.Graph{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

const (
	graphExt = ".dpkg"
	metaExt  = ".json"
)

// validID reports whether id is safe to splice into a filename: the
// "ds-" fingerprint shape with hex digits only, so a hostile id can
// never traverse out of the store directory.
func validID(id string) bool {
	if !strings.HasPrefix(id, "ds-") || len(id) != 3+16 {
		return false
	}
	for _, c := range id[3:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) graphPath(id string) string { return filepath.Join(s.dir, id+graphExt) }
func (s *Store) metaPath(id string) string  { return filepath.Join(s.dir, id+metaExt) }

// lock takes the store's cross-process mutation lock.
func (s *Store) lock() (unlock func(), err error) {
	return fslock.Lock(filepath.Join(s.dir, "store.lock"))
}

// Put imports an in-memory graph under its content fingerprint and
// returns the dataset's metadata plus whether it was newly created.
// Importing a graph that is already stored is a no-op returning the
// existing metadata (the id is content-addressed, so the bytes are
// guaranteed identical); a half-deleted dataset — metadata surviving a
// crash mid-Delete without its graph file, or vice versa — is
// re-imported in full, not mistaken for stored.
func (s *Store) Put(g *graph.Graph, name, source string) (Meta, bool, error) {
	id := accountant.DatasetID(g)
	unlock, err := s.lock()
	if err != nil {
		return Meta{}, false, fmt.Errorf("dataset: locking store: %w", err)
	}
	defer unlock()
	if m, err := s.readMeta(id); err == nil {
		if _, err := s.fs.Stat(s.graphPath(id)); err == nil {
			return m, false, nil
		}
	}
	data := Marshal(g)
	if err := writeAtomic(s.fs, s.graphPath(id), data); err != nil {
		return Meta{}, false, err
	}
	m := Meta{
		ID:       id,
		Name:     name,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		Source:   source,
		Imported: time.Now().UTC().Truncate(time.Second),
		Bytes:    int64(len(data)),
	}
	mb, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return Meta{}, false, err
	}
	if err := writeAtomic(s.fs, s.metaPath(id), append(mb, '\n')); err != nil {
		return Meta{}, false, err
	}
	return m, true, nil
}

// ImportReader streams a graph from r — SNAP text, gzip, Matrix
// Market, or DPKG binary, auto-detected — into the store.
func (s *Store) ImportReader(r io.Reader, name string, opt DecodeOptions) (Meta, error) {
	g, format, err := DecodeGraph(r, opt)
	if err != nil {
		return Meta{}, err
	}
	m, _, err := s.Put(g, name, string(format))
	return m, err
}

// Load returns the stored graph. The decode is cached (graphs are
// immutable and ids content-addressed, so cache entries can never go
// stale), with existence re-checked on disk so a dataset deleted by
// another process stops resolving.
func (s *Store) Load(id string) (*graph.Graph, error) {
	if !validID(id) {
		return nil, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	if _, err := s.fs.Stat(s.graphPath(id)); err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("dataset: loading %s: %w", id, err)
	}
	s.mu.Lock()
	if g, ok := s.cache[id]; ok {
		s.mu.Unlock()
		return g, nil
	}
	s.mu.Unlock()
	data, err := s.fs.ReadFile(s.graphPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, fmt.Errorf("dataset: loading %s: %w", id, err)
	}
	g, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", id, err)
	}
	s.mu.Lock()
	if _, ok := s.cache[id]; !ok {
		s.cache[id] = g
		s.order = append(s.order, id)
		if len(s.order) > cacheSize {
			delete(s.cache, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
	return g, nil
}

// Meta returns the stored metadata of a dataset.
func (s *Store) Meta(id string) (Meta, error) {
	if !validID(id) {
		return Meta{}, fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	return s.readMeta(id)
}

// Has reports whether the store holds the dataset.
func (s *Store) Has(id string) bool {
	if !validID(id) {
		return false
	}
	_, err := s.fs.Stat(s.graphPath(id))
	return err == nil
}

func (s *Store) readMeta(id string) (Meta, error) {
	b, err := s.fs.ReadFile(s.metaPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return Meta{}, fmt.Errorf("dataset: reading metadata of %s: %w", id, err)
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, fmt.Errorf("dataset: metadata of %s is corrupt: %w", id, err)
	}
	return m, nil
}

// List returns the metadata of every stored dataset, sorted by import
// time then id. The listing is read fresh from disk on every call, so
// imports and deletes by other processes are always visible.
func (s *Store) List() ([]Meta, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: listing store: %w", err)
	}
	var out []Meta
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, metaExt) {
			continue
		}
		id := strings.TrimSuffix(name, metaExt)
		if !validID(id) {
			continue
		}
		m, err := s.readMeta(id)
		if err != nil {
			// Skip unreadable entries (a raced delete, or one damaged
			// sidecar) rather than failing the whole listing — every
			// healthy dataset stays visible.
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Imported.Equal(out[j].Imported) {
			return out[i].Imported.Before(out[j].Imported)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Delete removes a dataset's graph and metadata. Budgets already spent
// against its id remain in any ledger — deletion frees storage, it
// does not reset a privacy account.
func (s *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("%w: malformed id %q", ErrNotFound, id)
	}
	unlock, err := s.lock()
	if err != nil {
		return fmt.Errorf("dataset: locking store: %w", err)
	}
	defer unlock()
	if _, err := s.fs.Stat(s.graphPath(id)); os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err := s.fs.Remove(s.graphPath(id)); err != nil {
		return fmt.Errorf("dataset: deleting %s: %w", id, err)
	}
	if err := s.fs.Remove(s.metaPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dataset: deleting metadata of %s: %w", id, err)
	}
	s.mu.Lock()
	delete(s.cache, id)
	for i, cid := range s.order {
		if cid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	return nil
}

// ExportEdgeList writes the stored graph as SNAP edge-list text — the
// canonical form whose re-import reproduces the identical dataset id.
func (s *Store) ExportEdgeList(id string, w io.Writer) error {
	g, err := s.Load(id)
	if err != nil {
		return err
	}
	return g.WriteEdgeList(w)
}

// writeAtomic writes data to path via tmp file, fsync and rename, so
// readers only ever observe complete files.
func writeAtomic(fsys faultfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: closing %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("dataset: committing %s: %w", path, err)
	}
	return nil
}
