package dataset

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"dpkron/internal/accountant"
	"dpkron/internal/extsort"
	"dpkron/internal/faultfs"
	"dpkron/internal/graph"
)

// sliceEdgeSource adapts an in-memory graph to the EdgeSource
// interface by spilling its packed edges through a throwaway sorter —
// the test stand-in for a streaming sampler.
type sliceEdgeSource struct {
	n    int
	keys []int64
}

func newSliceEdgeSource(tb testing.TB, g *graph.Graph) *sliceEdgeSource {
	tb.Helper()
	var keys []int64
	g.ForEachEdge(func(u, v int) { keys = append(keys, int64(u)<<32|int64(v)) })
	return &sliceEdgeSource{n: g.NumNodes(), keys: keys}
}

func (s *sliceEdgeSource) NumNodes() int { return s.n }

func (s *sliceEdgeSource) Edges() (*extsort.Iterator, error) {
	sorter, err := extsort.NewTemp(nil, 0)
	if err != nil {
		return nil, err
	}
	w := sorter.Writer()
	if err := w.AddSorted(s.keys); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	it, err := sorter.Merge()
	// The spill dir leaks until process exit on the error path only;
	// tests run in t.TempDir-adjacent temp space.
	_ = err
	return it, err
}

// TestPutStreamMatchesPut: the streaming ingest is a drop-in for
// PutFormat(v2) — same content-addressed id, same metadata, and the
// same file bytes, for every spill chunk size.
func TestPutStreamMatchesPut(t *testing.T) {
	for name, g := range testGraphs(t) {
		if g.NumNodes() == 0 {
			continue // DatasetID of the empty graph is fine, but Put covers it
		}
		wantID := accountant.DatasetID(g)
		wantBytes := MarshalV2(g)
		for _, chunk := range []int{7, extsort.DefaultChunk} {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			m, created, err := st.putStream(newSliceEdgeSource(t, g), "s", "streamed", chunk)
			if err != nil {
				t.Fatalf("%s (chunk %d): %v", name, chunk, err)
			}
			if !created {
				t.Fatalf("%s: first PutStream reported existing", name)
			}
			if m.ID != wantID {
				t.Fatalf("%s: streamed id %s, want %s", name, m.ID, wantID)
			}
			if m.Nodes != g.NumNodes() || m.Edges != g.NumEdges() || m.Format != 2 {
				t.Fatalf("%s: meta %+v does not describe the graph", name, m)
			}
			onDisk, err := os.ReadFile(st.graphPath(m.ID))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(onDisk, wantBytes) {
				t.Fatalf("%s (chunk %d): streamed v2 file differs from MarshalV2", name, chunk)
			}
			back, err := st.Load(m.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(back) {
				t.Fatalf("%s: loaded streamed graph differs", name)
			}
			// Re-streaming the identical graph is a no-op detected before
			// any file write (the id forms during pass 1).
			m2, created, err := st.putStream(newSliceEdgeSource(t, g), "s", "streamed", chunk)
			if err != nil {
				t.Fatal(err)
			}
			if created || m2.ID != m.ID {
				t.Fatalf("%s: re-stream was not an idempotent no-op", name)
			}
		}
	}
}

// TestPutStreamRejectsBadEdges: a source yielding out-of-range or
// misordered node pairs fails with an error, not a corrupt dataset.
func TestPutStreamRejectsBadEdges(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*sliceEdgeSource{
		"v-out-of-range": {n: 4, keys: []int64{int64(1)<<32 | 9}},
		"self-loop":      {n: 4, keys: []int64{int64(2)<<32 | 2}},
		"inverted":       {n: 4, keys: []int64{int64(3)<<32 | 1}},
	}
	for name, src := range cases {
		if _, _, err := st.PutStream(src, "bad", "test"); err == nil {
			t.Errorf("%s: PutStream accepted a hostile edge stream", name)
		}
	}
}

// TestPutStreamFaults: spill and commit failures during streaming
// ingest surface as errors and leave no torn dataset behind.
func TestPutStreamFaults(t *testing.T) {
	g := testGraphs(t)["path"]
	for fault, f := range map[string]faultfs.Fault{
		"spill-write":  {Op: faultfs.OpWrite, Path: ".run", Short: 4},
		"graph-rename": {Op: faultfs.OpRename, Path: graphExt},
		"graph-write":  {Op: faultfs.OpWrite, Path: graphExt + ".tmp", Short: 8},
		"merge-reopen": {Op: faultfs.OpOpen, Path: ".run", After: 2},
		"meta-sync":    {Op: faultfs.OpSync, Path: metaExt},
	} {
		inj := faultfs.NewInjector(faultfs.OS).Fail(f)
		st, err := OpenFS(inj, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = st.putStream(newSliceEdgeSource(t, g), "f", "test", 3)
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Errorf("%s: got %v, want ErrInjected", fault, err)
		}
		// Whatever failed, the store must not list a dataset whose graph
		// file is absent or torn.
		list, err := st.List()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range list {
			if _, err := st.Load(m.ID); err != nil {
				t.Errorf("%s: store lists %s but it does not load: %v", fault, m.ID, err)
			}
		}
	}
}

// TestStoreCacheBudget: heap-decoded graphs are evicted oldest-first
// past the byte budget, while the newest entry always survives.
func TestStoreCacheBudget(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 2; i <= 4; i++ {
		m, _, err := st.Put(graph.Complete(100*i), "", "test")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
	}
	for _, id := range ids {
		if _, err := st.Load(id); err != nil {
			t.Fatal(err)
		}
	}
	st.mu.Lock()
	var total int64
	for id, e := range st.cache {
		total += e.bytes
		if e.bytes <= 0 {
			t.Errorf("heap entry %s carries %d bytes", id, e.bytes)
		}
	}
	if total != st.cacheBytes {
		t.Errorf("cacheBytes %d != sum of entries %d", st.cacheBytes, total)
	}
	st.mu.Unlock()

	// Shrink the budget by loading under a tiny artificial one: evict by
	// hand through the same code path Delete uses, then confirm the
	// accounting drains to zero.
	for _, id := range ids {
		st.mu.Lock()
		st.evictLocked(id)
		st.mu.Unlock()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.cacheBytes != 0 || len(st.cache) != 0 || len(st.order) != 0 {
		t.Errorf("after evicting everything: bytes=%d cache=%d order=%d",
			st.cacheBytes, len(st.cache), len(st.order))
	}
}

// TestStoreMmapLoadAndCache: a v2 dataset loads via mmap on supported
// platforms, is cached outside the byte budget, and keeps serving an
// already-loaded graph after deletion (the mapping outlives the file).
func TestStoreMmapLoadAndCache(t *testing.T) {
	g := testGraphs(t)["skg-k10"]
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := st.PutFormat(g, "v2", "test", 2)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := st.FileInfo(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Format != 2 || fi.Bytes != m.Bytes {
		t.Fatalf("FileInfo %+v disagrees with meta %+v", fi, m)
	}
	loaded, err := st.Load(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(loaded) {
		t.Fatal("v2 load changed the graph")
	}
	st.mu.Lock()
	e := st.cache[m.ID]
	inOrder := false
	for _, id := range st.order {
		if id == m.ID {
			inOrder = true
		}
	}
	st.mu.Unlock()
	if fi.Mmap {
		if e.bytes != 0 || inOrder {
			t.Errorf("mapped graph charged to the heap budget (bytes=%d, inOrder=%v)", e.bytes, inOrder)
		}
	} else if e.bytes == 0 {
		t.Error("heap-decoded v2 graph not charged to the budget")
	}
	if err := st.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	// The held reference stays fully readable after deletion: on unix
	// the kernel keeps the unlinked inode alive under the mapping.
	deg := 0
	loaded.ForEachEdge(func(u, v int) { deg++ })
	if deg != g.NumEdges() {
		t.Fatalf("post-delete iteration saw %d edges, want %d", deg, g.NumEdges())
	}
}

// TestStoreConvert exercises both conversion directions against the
// same id and checks Load works after each rewrite.
func TestStoreConvert(t *testing.T) {
	g := testGraphs(t)["skg-balldrop"]
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := st.Put(g, "conv", "test")
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []int{2, 2, 1, 2, 1} { // includes no-op repeats
		cm, err := st.Convert(m.ID, format)
		if err != nil {
			t.Fatalf("convert to v%d: %v", format, err)
		}
		if cm.ID != m.ID {
			t.Fatalf("convert changed the id: %s -> %s", m.ID, cm.ID)
		}
		if cm.Format != format {
			t.Fatalf("convert to v%d reported format %d", format, cm.Format)
		}
		fi, err := st.FileInfo(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Format != format || fi.Bytes != cm.Bytes {
			t.Fatalf("after convert to v%d: FileInfo %+v vs meta %+v", format, fi, cm)
		}
		back, err := st.Load(m.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(back) {
			t.Fatalf("graph changed across conversion to v%d", format)
		}
	}
	if _, err := st.Convert(m.ID, 3); err == nil {
		t.Error("convert accepted an unknown format")
	}
	if _, err := st.Convert("ds-0000000000000000", 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("convert of a missing dataset: got %v, want ErrNotFound", err)
	}
}
