package dataset

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dpkron/internal/graph"
)

// ErrTooLarge marks input whose decompressed size exceeds
// DecodeOptions.MaxBytes. Servers map it to 413.
var ErrTooLarge = errors.New("dataset: input exceeds the size limit")

// Format identifies a source graph encoding the importers understand.
type Format string

const (
	// FormatSNAP is whitespace-separated edge-list text with '#'
	// comments — the format the paper's datasets ship in.
	FormatSNAP Format = "snap"
	// FormatMatrixMarket is the NIST coordinate format (%%MatrixMarket
	// banner, 1-based "i j [value]" entries).
	FormatMatrixMarket Format = "mtx"
	// FormatBinary is this package's DPKG binary CSR encoding.
	FormatBinary Format = "dpkg"
)

// DecodeOptions bounds what an import will accept.
type DecodeOptions struct {
	// MaxNodes rejects inputs implying more than this many nodes before
	// the O(n) graph arrays are allocated (0 = no bound). Servers use it
	// so a tiny hostile upload naming node id 2e9 cannot force a
	// multi-gigabyte allocation.
	MaxNodes int
	// MinNodes raises the node count (isolated trailing nodes).
	MinNodes int
	// MaxBytes bounds the decompressed input size (0 = no bound), so a
	// gzip bomb cannot expand past what an uncompressed upload of the
	// same cap could ship. Exceeding it fails with ErrTooLarge.
	MaxBytes int64
}

// DecodeGraph reads a graph from r, transparently gunzipping (by the
// 1f 8b magic) and auto-detecting the format: the DPKG binary codec,
// Matrix Market coordinate files (%%MatrixMarket banner), or SNAP
// edge-list text. It returns the graph and the detected source format
// ("snap", "mtx", "dpkg", with "+gzip" appended when compressed).
// Importers stream straight into a graph.Builder — no intermediate
// [][2]int edge slice is ever materialized.
func DecodeGraph(r io.Reader, opt DecodeOptions) (*graph.Graph, Format, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	gzipped, err := sniffGzip(br)
	if err != nil {
		return nil, "", err
	}
	src := br
	if gzipped {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, "", fmt.Errorf("dataset: opening gzip stream: %w", err)
		}
		defer gz.Close()
		var inner io.Reader = gz
		if opt.MaxBytes > 0 {
			inner = &limitReader{r: gz, limit: opt.MaxBytes, n: opt.MaxBytes}
		}
		src = bufio.NewReaderSize(inner, 1<<16)
	}
	format, g, err := decodeSniffed(src, opt)
	if gzipped {
		format += "+gzip"
	}
	return g, format, err
}

// limitReader errors — rather than silently truncating like
// io.LimitReader — once more than limit bytes have been read, so an
// over-limit stream can never parse as a valid smaller graph.
type limitReader struct {
	r        io.Reader
	limit, n int64
}

func (l *limitReader) Read(p []byte) (int, error) {
	k, err := l.r.Read(p)
	l.n -= int64(k)
	if l.n < 0 {
		return k, fmt.Errorf("%w: more than %d decompressed bytes", ErrTooLarge, l.limit)
	}
	return k, err
}

// sniffGzip reports whether the stream starts with the gzip magic,
// consuming nothing.
func sniffGzip(br *bufio.Reader) (bool, error) {
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return false, fmt.Errorf("dataset: sniffing input: %w", err)
	}
	return len(head) == 2 && head[0] == 0x1f && head[1] == 0x8b, nil
}

// decodeSniffed detects the (uncompressed) format by its leading bytes
// and parses accordingly.
func decodeSniffed(br *bufio.Reader, opt DecodeOptions) (Format, *graph.Graph, error) {
	head, err := br.Peek(len(magic))
	if err != nil && err != io.EOF {
		return "", nil, fmt.Errorf("dataset: sniffing input: %w", err)
	}
	if len(head) == len(magic) && [4]byte(head) == magic {
		// The cap is enforced inside the decoder, right after the node
		// header varint, so an over-cap file never allocates its arrays.
		g, err := DecodeBinaryLimit(br, opt.MaxNodes)
		return FormatBinary, g, err
	}
	if line, _ := br.Peek(len(mmBanner)); strings.HasPrefix(string(line), mmBanner) {
		g, err := decodeMatrixMarket(br, opt)
		return FormatMatrixMarket, g, err
	}
	g, err := decodeSNAP(br, opt)
	return FormatSNAP, g, err
}

// decodeSNAP streams edge-list text into a Builder through the shared
// graph-package parser, which enforces opt.MaxNodes before allocation.
func decodeSNAP(r io.Reader, opt DecodeOptions) (*graph.Graph, error) {
	return graph.ReadEdgeListLimit(r, opt.MinNodes, opt.MaxNodes)
}

const mmBanner = "%%MatrixMarket"

// maxEdgeHint caps how many edge slots a declared-but-unverified entry
// count may pre-allocate (8 MiB of packed pairs); real inputs beyond
// it just grow by append.
const maxEdgeHint = 1 << 20

// decodeMatrixMarket parses the coordinate Matrix Market format as an
// undirected simple graph: banner, '%' comments, a "rows cols nnz"
// size line, then 1-based "i j [value]" entries streamed directly into
// a Builder (values ignored; loops dropped; both symmetric and general
// symmetry accepted since the graph is undirected either way).
func decodeMatrixMarket(r *bufio.Reader, opt DecodeOptions) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: matrix market: missing banner")
	}
	banner := strings.Fields(sc.Text())
	// %%MatrixMarket matrix coordinate <field> <symmetry>
	if len(banner) < 3 || !strings.EqualFold(banner[1], "matrix") || !strings.EqualFold(banner[2], "coordinate") {
		return nil, fmt.Errorf("dataset: matrix market: unsupported header %q (want matrix coordinate)", sc.Text())
	}
	var b *graph.Builder
	var n, want, got int
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			// Size line: rows cols nnz.
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: matrix market line %d: want 'rows cols nnz', got %q", line, text)
			}
			rows, err1 := strconv.Atoi(fields[0])
			cols, err2 := strconv.Atoi(fields[1])
			nnz, err3 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
				return nil, fmt.Errorf("dataset: matrix market line %d: bad size line %q", line, text)
			}
			if rows != cols {
				return nil, fmt.Errorf("dataset: matrix market: %dx%d matrix is not square (adjacency required)", rows, cols)
			}
			if opt.MaxNodes > 0 && rows > opt.MaxNodes {
				return nil, fmt.Errorf("dataset: input declares %d nodes, exceeding the cap of %d", rows, opt.MaxNodes)
			}
			if rows > 1<<31-1 {
				return nil, fmt.Errorf("dataset: input declares %d nodes, exceeding the CSR limit", rows)
			}
			if int64(nnz) > int64(rows)*int64(rows) {
				return nil, fmt.Errorf("dataset: matrix market: %d entries impossible in a %dx%d matrix", nnz, rows, rows)
			}
			n = rows
			if opt.MinNodes > n {
				n = opt.MinNodes
			}
			// The declared nnz is attacker-controlled until the entries
			// are actually read, so it is only a capacity hint: clamp it
			// so a tiny upload declaring a huge count cannot force a
			// large up-front allocation. The got/want checks below still
			// hold the input to the declared count exactly.
			hint := nnz
			if hint > maxEdgeHint {
				hint = maxEdgeHint
			}
			b, want = graph.NewBuilderCap(n, hint), nnz
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: matrix market line %d: want 'i j', got %q", line, text)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || i < 1 || j < 1 || i > n || j > n {
			return nil, fmt.Errorf("dataset: matrix market line %d: entry %q out of range [1, %d]", line, text, n)
		}
		got++
		if got > want {
			return nil, fmt.Errorf("dataset: matrix market: more than the declared %d entries", want)
		}
		if i != j {
			b.AddEdge(i-1, j-1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading matrix market: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dataset: matrix market: missing size line")
	}
	if got != want {
		return nil, fmt.Errorf("dataset: matrix market: %w: %d of %d declared entries", ErrTruncated, got, want)
	}
	return b.Build(), nil
}
