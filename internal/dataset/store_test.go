package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dpkron/internal/accountant"
	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleGraph(t testing.TB, seed uint64) *graph.Graph {
	t.Helper()
	m, err := skg.NewModel(skg.Initiator{A: 0.95, B: 0.55, C: 0.3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	return m.SampleExact(randx.New(seed))
}

func TestStoreLifecycle(t *testing.T) {
	s := testStore(t)
	g := sampleGraph(t, 3)

	m, created, err := s.Put(g, "toy", "generated")
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first Put reported created = false")
	}
	if m.ID != accountant.DatasetID(g) {
		t.Errorf("meta id %s != content fingerprint %s", m.ID, accountant.DatasetID(g))
	}
	if m.Nodes != g.NumNodes() || m.Edges != g.NumEdges() || m.Name != "toy" || m.Source != "generated" {
		t.Errorf("meta %+v does not describe the graph", m)
	}
	if m.Bytes <= 0 || m.Imported.IsZero() {
		t.Errorf("meta missing size/time: %+v", m)
	}

	back, err := s.Load(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("stored graph differs from the original")
	}
	// Loading again hits the cache and still matches.
	again, err := s.Load(m.ID)
	if err != nil || !g.Equal(again) {
		t.Fatalf("cached load: %v", err)
	}
	if !s.Has(m.ID) {
		t.Error("Has(id) = false for stored dataset")
	}

	got, err := s.Meta(m.ID)
	if err != nil || got.ID != m.ID {
		t.Fatalf("Meta: %v, %+v", err, got)
	}

	list, err := s.List()
	if err != nil || len(list) != 1 || list[0].ID != m.ID {
		t.Fatalf("List: %v, %+v", err, list)
	}

	var sb strings.Builder
	if err := s.ExportEdgeList(m.ID, &sb); err != nil {
		t.Fatal(err)
	}
	rt, err := graph.ReadEdgeList(strings.NewReader(sb.String()), 0)
	if err != nil || !g.Equal(rt) {
		t.Fatalf("export round trip: %v", err)
	}

	if err := s.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(m.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("load after delete: %v, want ErrNotFound", err)
	}
	if err := s.Delete(m.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v, want ErrNotFound", err)
	}
	if list, _ := s.List(); len(list) != 0 {
		t.Errorf("list after delete: %+v", list)
	}
}

func TestStoreIdempotentImport(t *testing.T) {
	s := testStore(t)
	g := sampleGraph(t, 5)
	m1, _, err := s.Put(g, "first", "snap")
	if err != nil {
		t.Fatal(err)
	}
	// Re-importing identical content is a no-op: same id, the original
	// metadata (name, import time) is kept.
	m2, created, err := s.Put(g, "renamed", "mtx")
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("re-import reported created = true")
	}
	if m2 != m1 {
		t.Errorf("re-import changed metadata: %+v != %+v", m2, m1)
	}
	if list, _ := s.List(); len(list) != 1 {
		t.Errorf("re-import duplicated the dataset: %d entries", len(list))
	}
}

func TestStoreUnknownAndMalformedIDs(t *testing.T) {
	s := testStore(t)
	for _, id := range []string{
		"ds-0000000000000000", // well-formed but absent
		"../../etc/passwd",    // traversal attempt
		"ds-..%2f..%2fpasswd", // traversal attempt
		"ds-ABCDEF0123456789", // uppercase hex is not produced
		"ds-123",              // wrong length
		"mygraph",             // ledger-style free-form name
		"ds-zzzzzzzzzzzzzzzz", // non-hex
		"ds-0000000000000000/../x",
	} {
		if _, err := s.Load(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Load(%q): %v, want ErrNotFound", id, err)
		}
		if _, err := s.Meta(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Meta(%q): %v, want ErrNotFound", id, err)
		}
		if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete(%q): %v, want ErrNotFound", id, err)
		}
		if s.Has(id) {
			t.Errorf("Has(%q) = true", id)
		}
	}
}

func TestStoreRejectsCorruptFile(t *testing.T) {
	s := testStore(t)
	m, _, err := s.Put(sampleGraph(t, 7), "x", "generated")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the stored graph; the next (uncached) load must
	// surface the checksum failure, not a wrong graph.
	s2, err := Open(s.Dir()) // fresh handle: empty cache
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), m.ID+graphExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(m.ID); !errors.Is(err, ErrChecksum) {
		t.Errorf("load of corrupt file: %v, want ErrChecksum", err)
	}
	// Truncation is likewise typed.
	if err := os.WriteFile(path, data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(m.ID); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) {
		t.Errorf("load of truncated file: %v, want ErrTruncated/ErrChecksum", err)
	}
}

func TestStoreListSkipsCorruptSidecar(t *testing.T) {
	s := testStore(t)
	healthy, _, err := s.Put(sampleGraph(t, 7), "healthy", "generated")
	if err != nil {
		t.Fatal(err)
	}
	damaged, _, err := s.Put(sampleGraph(t, 8), "damaged", "generated")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), damaged.ID+metaExt), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// One damaged sidecar must not hide the healthy dataset.
	list, err := s.List()
	if err != nil {
		t.Fatalf("list with corrupt sidecar: %v", err)
	}
	if len(list) != 1 || list[0].ID != healthy.ID {
		t.Errorf("list = %v, want just %s", list, healthy.ID)
	}
}

// TestStoreConcurrentUse hammers one directory from many goroutines —
// imports, loads, lists, deletes — which the -race build checks for
// cache races and the flock bracket keeps structurally safe.
func TestStoreConcurrentUse(t *testing.T) {
	s := testStore(t)
	graphs := make([]*graph.Graph, 6)
	for i := range graphs {
		graphs[i] = sampleGraph(t, uint64(i+1))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, g := range graphs {
				m, _, err := s.Put(g, "g", "generated")
				if err != nil {
					t.Errorf("worker %d: put %d: %v", w, i, err)
					return
				}
				back, err := s.Load(m.ID)
				if err != nil {
					t.Errorf("worker %d: load %d: %v", w, i, err)
					return
				}
				if !g.Equal(back) {
					t.Errorf("worker %d: graph %d corrupted", w, i)
					return
				}
				if _, err := s.List(); err != nil {
					t.Errorf("worker %d: list: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	list, err := s.List()
	if err != nil || len(list) != len(graphs) {
		t.Fatalf("final list: %v, %d entries want %d", err, len(list), len(graphs))
	}
}

// TestStoreCrossHandle simulates two processes sharing one directory:
// a dataset imported through one handle is visible through the other
// without any shared memory.
func TestStoreCrossHandle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shared")
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := sampleGraph(t, 11)
	m, _, err := s1.Put(g, "shared", "generated")
	if err != nil {
		t.Fatal(err)
	}
	back, err := s2.Load(m.ID)
	if err != nil || !g.Equal(back) {
		t.Fatalf("second handle load: %v", err)
	}
	if err := s2.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	// The first handle must notice the deletion despite its warm cache.
	if _, err := s1.Load(m.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("first handle load after cross-process delete: %v, want ErrNotFound", err)
	}
}

func TestStoreImportReader(t *testing.T) {
	s := testStore(t)
	g := sampleGraph(t, 13)
	var text bytes.Buffer
	if err := g.WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	m, err := s.ImportReader(bytes.NewReader(text.Bytes()), "from-text", DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != string(FormatSNAP) {
		t.Errorf("source = %q, want snap", m.Source)
	}
	if m.ID != accountant.DatasetID(g) {
		t.Errorf("text import id %s != fingerprint %s", m.ID, accountant.DatasetID(g))
	}
	back, err := s.Load(m.ID)
	if err != nil || !g.Equal(back) {
		t.Fatalf("imported graph differs: %v", err)
	}
}

// TestStorePutHealsHalfDeletedDataset: a crash between Delete's two
// removes can leave a metadata sidecar without its graph file; the
// next import of the same bytes must rewrite both, not no-op on the
// stale metadata.
func TestStorePutHealsHalfDeletedDataset(t *testing.T) {
	s := testStore(t)
	g := sampleGraph(t, 17)
	m, _, err := s.Put(g, "half", "generated")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash artifact: graph gone, metadata orphaned.
	if err := os.Remove(filepath.Join(s.Dir(), m.ID+graphExt)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Dir()) // fresh handle: no warm cache
	if err != nil {
		t.Fatal(err)
	}
	m2, created, err := s2.Put(g, "half", "generated")
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("re-import over an orphaned sidecar reported created = false")
	}
	back, err := s2.Load(m2.ID)
	if err != nil || !g.Equal(back) {
		t.Fatalf("healed dataset does not load: %v", err)
	}
}
