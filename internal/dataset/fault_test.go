package dataset

import (
	"errors"
	"path/filepath"
	"testing"

	"dpkron/internal/faultfs"
)

// TestStorePutInjectedFaults fails each point of Put's two atomic
// writes (graph payload, then metadata sidecar) and asserts a failed
// import is reported and never half-visible: the id either resolves to
// the complete graph or to ErrNotFound, and a retry after the fault
// clears succeeds.
func TestStorePutInjectedFaults(t *testing.T) {
	faults := []struct {
		name  string
		fault faultfs.Fault
	}{
		{"graph-open", faultfs.Fault{Op: faultfs.OpOpen, Path: ".dpkg.tmp"}},
		{"graph-short-write", faultfs.Fault{Op: faultfs.OpWrite, Path: ".dpkg.tmp", Short: 12}},
		{"graph-sync", faultfs.Fault{Op: faultfs.OpSync, Path: ".dpkg.tmp"}},
		{"graph-rename", faultfs.Fault{Op: faultfs.OpRename, Path: ".dpkg.tmp"}},
		{"meta-short-write", faultfs.Fault{Op: faultfs.OpWrite, Path: ".json.tmp", Short: 5}},
		{"meta-rename", faultfs.Fault{Op: faultfs.OpRename, Path: ".json.tmp"}},
	}
	for _, tc := range faults {
		t.Run(tc.name, func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS)
			dir := filepath.Join(t.TempDir(), "store")
			s, err := OpenFS(inj, dir)
			if err != nil {
				t.Fatal(err)
			}
			g := sampleGraph(t, 7)
			inj.Fail(tc.fault)
			if _, _, err := s.Put(g, "toy", "generated"); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Put under %s fault: %v, want ErrInjected", tc.name, err)
			}
			// Retry with the fault cleared: the import completes and the
			// graph round-trips.
			m, _, err := s.Put(g, "toy", "generated")
			if err != nil {
				t.Fatalf("Put after %s fault cleared: %v", tc.name, err)
			}
			fresh, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fresh.Load(m.ID)
			if err != nil {
				t.Fatalf("Load after recovered import: %v", err)
			}
			if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
				t.Fatalf("recovered graph %d/%d, want %d/%d",
					got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
			}
		})
	}
}
