package dataset

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dpkron/internal/mmapfile"
)

// TestV2RoundTrip: every codec test graph survives the v2 layout, both
// through the verifying byte-slice decode and through OpenMapped.
func TestV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, g := range testGraphs(t) {
		data := MarshalV2(g)
		if v, err := Version(data); err != nil || v != 2 {
			t.Fatalf("%s: Version = %d, %v", name, v, err)
		}
		back, err := Unmarshal(data) // auto-dispatch by version
		if err != nil {
			t.Errorf("%s: v2 decode failed: %v", name, err)
			continue
		}
		if !g.Equal(back) {
			t.Errorf("%s: v2 round trip changed the graph", name)
		}
		path := filepath.Join(dir, name+".dpkg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mg, mapped, err := OpenMapped(path)
		if err != nil {
			t.Errorf("%s: OpenMapped failed: %v", name, err)
			continue
		}
		if mmapfile.Supported && len(data) > 0 && !mapped {
			t.Errorf("%s: expected a zero-copy mapping on this platform", name)
		}
		if !g.Equal(mg) {
			t.Errorf("%s: mapped graph differs from original", name)
		}
	}
}

// TestV2CrossVersion: the two layouts are pure re-encodings — decoding
// either yields the identical graph, and re-encoding back is
// deterministic byte for byte.
func TestV2CrossVersion(t *testing.T) {
	for name, g := range testGraphs(t) {
		v1, v2 := Marshal(g), MarshalV2(g)
		g1, err := Unmarshal(v1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := Unmarshal(v2)
		if err != nil {
			t.Fatal(err)
		}
		if !g1.Equal(g2) {
			t.Errorf("%s: v1 and v2 decodes differ", name)
		}
		if !bytes.Equal(MarshalV2(g1), v2) {
			t.Errorf("%s: v1 -> v2 transcode is not deterministic", name)
		}
		if !bytes.Equal(Marshal(g2), v1) {
			t.Errorf("%s: v2 -> v1 transcode is not deterministic", name)
		}
	}
}

// TestV2HostileInputs drives the v2 parser with damaged files: every
// mutation must fail with a typed error — never a panic, and via
// OpenMapped never a SIGBUS from trusting a forged header.
func TestV2HostileInputs(t *testing.T) {
	g := testGraphs(t)["skg-k10"]
	good := MarshalV2(g)
	dir := t.TempDir()

	// check runs a mutated file through both decode entries.
	check := func(t *testing.T, data []byte, want ...error) {
		t.Helper()
		_, err := Unmarshal(data)
		if err == nil {
			t.Fatal("hostile v2 input decoded successfully")
		}
		typed := false
		for _, w := range want {
			if errors.Is(err, w) {
				typed = true
			}
		}
		if !typed {
			t.Fatalf("Unmarshal: untyped error %v", err)
		}
		path := filepath.Join(dir, "hostile.dpkg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenMapped(path); err == nil {
			t.Fatal("hostile v2 input mapped successfully")
		}
	}

	t.Run("truncation", func(t *testing.T) {
		// Cut at every structural boundary plus a byte to either side.
		adjPos, _ := v2Layout(g.NumNodes(), g.NumEdges())
		cuts := []int{0, 3, 4, 5, 47, 48, 55, 63, 64, 65, int(adjPos) - 1, int(adjPos), len(good) - 33, len(good) - 1}
		for _, cut := range cuts {
			if cut < 0 || cut >= len(good) {
				continue
			}
			check(t, good[:cut], ErrTruncated, ErrChecksum, ErrBadMagic)
		}
	})

	t.Run("header-field-flips", func(t *testing.T) {
		// Any header byte flip trips the header's own checksum before the
		// forged field can drive slice arithmetic.
		for _, off := range []int{8, 16, 24, 32, 40} {
			bad := bytes.Clone(good)
			bad[off] ^= 0xff
			check(t, bad, ErrChecksum)
		}
	})

	t.Run("forged-header-checksum", func(t *testing.T) {
		// Re-sign a corrupted adjPos: now the header checksum passes and
		// the layout arithmetic itself must reject it.
		bad := bytes.Clone(good)
		binary.LittleEndian.PutUint64(bad[32:], uint64(len(bad))) // adj "starts" at EOF
		resignV2Body(bad)
		check(t, bad, ErrCorrupt)
	})

	t.Run("forged-dimensions", func(t *testing.T) {
		bad := bytes.Clone(good)
		binary.LittleEndian.PutUint64(bad[8:], 1<<40) // absurd node count
		resignV2Body(bad)
		check(t, bad, ErrCorrupt)
	})

	t.Run("off-spot-check", func(t *testing.T) {
		// Corrupt off[0] and off[n] behind a fully re-signed file: the
		// O(1) spot checks are all the mmap path has, so they must fire.
		for _, field := range []int{v2HeaderLen, v2HeaderLen + 4*g.NumNodes()} {
			bad := bytes.Clone(good)
			binary.LittleEndian.PutUint32(bad[field:], 0xdeadbeef)
			resignV2Body(bad)
			check(t, bad, ErrCorrupt)
		}
	})

	t.Run("body-flip", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[len(bad)/2] ^= 0x10
		if _, err := Unmarshal(bad); !errors.Is(err, ErrChecksum) {
			t.Fatalf("body flip: got %v, want ErrChecksum", err)
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		check(t, append(bytes.Clone(good), 0), ErrChecksum, ErrCorrupt)
	})
}

// resignV2 recomputes the header checksum field after a header
// mutation (an attacker can always do this; the layout checks must not
// rely on the header hash alone).
func resignV2(data []byte) {
	sum := sha256.Sum256(data[:48])
	copy(data[48:56], sum[:8])
}

// resignV2Body additionally recomputes the trailing whole-file
// checksum so byte-slice decodes reach the structural validation.
func resignV2Body(data []byte) {
	resignV2(data)
	sum := sha256.Sum256(data[:len(data)-checksumLen])
	copy(data[len(data)-checksumLen:], sum[:])
}
