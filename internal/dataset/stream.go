package dataset

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"dpkron/internal/extsort"
)

// EdgeSource is a re-iterable stream of a graph's edges for streaming
// ingest. Edges yields the packed upper-triangle keys u<<32|v (u < v),
// strictly ascending with no duplicates — the order extsort's
// merge-dedup naturally produces — and may be called more than once:
// PutStream makes two passes, one to size the CSR layout and one to
// write it. The interface is structural on purpose, so samplers can
// satisfy it without importing this package.
type EdgeSource interface {
	// NumNodes is the node count of the streamed graph.
	NumNodes() int
	// Edges returns a fresh iterator over the sorted unique edge keys.
	Edges() (*extsort.Iterator, error)
}

// PutStream imports a graph from an edge stream without ever holding
// its edge set in memory: peak residency is O(n) for the CSR offsets
// plus O(sort chunk) for an external re-sort of the reversed keys —
// not O(m). The graph lands directly in the v2 mmap layout, and the
// content-addressed id is computed on the fly during the first pass,
// so a re-import of an already-stored graph is detected before any
// file is written. Returns the metadata plus whether the dataset was
// newly created.
//
// The id is bit-identical to Put's: the hash consumes the same bytes
// accountant.DatasetID feeds it, in the same (sorted) edge order.
func (s *Store) PutStream(src EdgeSource, name, source string) (Meta, bool, error) {
	return s.putStream(src, name, source, extsort.DefaultChunk)
}

// putStream is PutStream with an explicit external-sort chunk size
// (tests shrink it to force multi-run spills).
func (s *Store) putStream(src EdgeSource, name, source string, chunk int) (Meta, bool, error) {
	n := src.NumNodes()
	if n < 0 || n >= 1<<31 {
		return Meta{}, false, fmt.Errorf("dataset: streaming %d nodes exceeds the node-id limit", n)
	}

	// The v2 adjacency lists every neighbor of every row in order, which
	// interleaves lower neighbors (from edges where this row is v) with
	// upper ones (where it is u). The natural key stream gives the upper
	// halves; an external re-sort of the reversed keys v<<32|u gives the
	// lower halves in exactly row-major order. Spill runs live beside
	// the store so they share its filesystem (and fault injection).
	spillDir, err := os.MkdirTemp(s.dir, "spill-")
	if err != nil {
		return Meta{}, false, fmt.Errorf("dataset: creating spill dir: %w", err)
	}
	sorter, err := extsort.New(s.fs, spillDir, chunk)
	if err != nil {
		os.RemoveAll(spillDir)
		return Meta{}, false, err
	}
	defer sorter.RemoveAll()

	// Pass 1: validate and count. Degrees become CSR offsets, the id
	// hash consumes each edge as accountant.DatasetID would, and every
	// reversed key is spilled for pass 2.
	h := sha256.New()
	var hbuf [16]byte
	binary.LittleEndian.PutUint64(hbuf[:8], uint64(n))
	h.Write(hbuf[:8])
	off := make([]int32, n+1)
	m := 0
	rev := sorter.Writer()
	it, err := src.Edges()
	if err != nil {
		rev.Close()
		return Meta{}, false, err
	}
	err = func() error {
		defer it.Close()
		for {
			key, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			u, v := int(uint64(key)>>32), int(uint64(key)&0xffffffff)
			if u < 0 || u >= v || v >= n {
				return fmt.Errorf("dataset: streamed edge (%d,%d) outside 0 <= u < v < %d", u, v, n)
			}
			if m >= v2MaxEdges {
				return fmt.Errorf("dataset: streamed graph exceeds the v2 limit of %d edges", v2MaxEdges)
			}
			binary.LittleEndian.PutUint64(hbuf[:8], uint64(u))
			binary.LittleEndian.PutUint64(hbuf[8:], uint64(v))
			h.Write(hbuf[:])
			off[u+1]++
			off[v+1]++
			m++
			if err := rev.Add(int64(v)<<32 | int64(u)); err != nil {
				return err
			}
		}
	}()
	if cerr := rev.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Meta{}, false, err
	}
	id := fmt.Sprintf("ds-%x", h.Sum(nil)[:8])

	unlock, err := s.lock()
	if err != nil {
		return Meta{}, false, fmt.Errorf("dataset: locking store: %w", err)
	}
	defer unlock()
	if meta, err := s.readMeta(id); err == nil {
		if _, err := s.fs.Stat(s.graphPath(id)); err == nil {
			return meta, false, nil
		}
	}

	for i := 0; i < n; i++ { // degree counts -> prefix sums
		off[i+1] += off[i]
	}

	// Pass 2: co-merge the natural and reversed key streams. Both are
	// ascending and disjoint (natural keys have high < low, reversed
	// high > low), and plain int64 order on the union is exactly
	// row-major CSR order — the low 32 bits of each key are the
	// neighbor.
	nat, err := src.Edges()
	if err != nil {
		return Meta{}, false, err
	}
	defer nat.Close()
	low, err := sorter.Merge()
	if err != nil {
		return Meta{}, false, err
	}
	defer low.Close()

	tmp := s.graphPath(id) + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return Meta{}, false, fmt.Errorf("dataset: writing %s: %w", tmp, err)
	}
	commit := false
	defer func() {
		if !commit {
			f.Close()
			s.fs.Remove(tmp)
		}
	}()
	if err := writeV2Stream(f, n, m, off, nat, low); err != nil {
		return Meta{}, false, fmt.Errorf("dataset: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		return Meta{}, false, fmt.Errorf("dataset: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return Meta{}, false, fmt.Errorf("dataset: closing %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, s.graphPath(id)); err != nil {
		return Meta{}, false, fmt.Errorf("dataset: committing %s: %w", s.graphPath(id), err)
	}
	commit = true

	_, fileSize := v2Layout(n, m)
	meta := Meta{
		ID:       id,
		Name:     name,
		Nodes:    n,
		Edges:    m,
		Source:   source,
		Imported: time.Now().UTC().Truncate(time.Second),
		Bytes:    fileSize,
		Format:   2,
	}
	if err := s.writeMeta(meta); err != nil {
		return Meta{}, false, err
	}
	return meta, true, nil
}

// writeV2Stream renders a complete v2 file — header, offsets, padding,
// co-merged adjacency, trailing checksum — onto w. nat and low are the
// ascending natural (u<<32|v) and reversed (v<<32|u) key streams.
func writeV2Stream(w io.Writer, n, m int, off []int32, nat, low *extsort.Iterator) error {
	h := sha256.New()
	bw := bufio.NewWriterSize(w, 1<<16)
	mw := io.MultiWriter(bw, h)
	if _, err := mw.Write(v2Header(n, m)); err != nil {
		return err
	}
	if err := writeInt32sLE(mw, off); err != nil {
		return err
	}
	adjPos, _ := v2Layout(n, m)
	if pad := adjPos - int64(v2HeaderLen) - 4*int64(n+1); pad > 0 {
		if _, err := mw.Write(make([]byte, pad)); err != nil {
			return err
		}
	}

	natKey, natOK, err := nat.Next()
	if err != nil {
		return err
	}
	lowKey, lowOK, err := low.Next()
	if err != nil {
		return err
	}
	var buf [4096]byte
	fill := 0
	flush := func() error {
		_, err := mw.Write(buf[:fill])
		fill = 0
		return err
	}
	emit := func(neighbor int64) error {
		if fill == len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(buf[fill:], uint32(uint64(neighbor)&0xffffffff))
		fill += 4
		return nil
	}
	wrote := 0
	for natOK || lowOK {
		var key int64
		if !lowOK || (natOK && natKey < lowKey) {
			key = natKey
			if natKey, natOK, err = nat.Next(); err != nil {
				return err
			}
		} else {
			key = lowKey
			if lowKey, lowOK, err = low.Next(); err != nil {
				return err
			}
		}
		if err := emit(key); err != nil {
			return err
		}
		wrote++
	}
	if wrote != 2*m {
		return fmt.Errorf("dataset: adjacency stream yielded %d entries, want %d (edge source changed between passes?)", wrote, 2*m)
	}
	if err := flush(); err != nil {
		return err
	}
	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return err
	}
	return bw.Flush()
}
