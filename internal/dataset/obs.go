package dataset

import "dpkron/internal/obs"

// storeMetrics is the dataset store's telemetry: loads labeled by the
// route the bytes took (cache hit, v1 heap decode, v2 mmap, v2 heap
// fallback), the resident bytes of heap-decoded graphs held hot, and
// budget/delete evictions. The zero value no-ops.
type storeMetrics struct {
	loads     *obs.CounterVec
	resident  *obs.Gauge
	evictions *obs.Counter
}

// Load route labels: the bounded set of ways a dataset reaches a
// caller.
const (
	loadRouteCache  = "cache"
	loadRouteV1     = "v1-decode"
	loadRouteMmap   = "v2-mmap"
	loadRouteV2Heap = "v2-heap"
)

// Instrument registers the store's metrics on reg. Call once, before
// serving traffic; a nil reg leaves the store uninstrumented.
func (s *Store) Instrument(reg *obs.Registry) {
	s.met = storeMetrics{
		loads:     reg.CounterVec("dpkron_dataset_loads_total", "Dataset loads, by route (cache, v1-decode, v2-mmap, v2-heap).", "route"),
		resident:  reg.Gauge("dpkron_dataset_cache_resident_bytes", "Heap bytes of decoded graphs held in the load cache (mmap entries cost zero)."),
		evictions: reg.Counter("dpkron_dataset_cache_evictions_total", "Cache entries evicted (budget pressure or dataset deletion)."),
	}
}
