package dataset

import (
	"testing"
)

// FuzzDatasetRoundTrip drives the binary codec with arbitrary bytes:
// anything that decodes must re-encode to a decodable, equal graph
// (decode∘encode is the identity on the codec's image), and bytes that
// do not decode must fail with an error — never a panic. The harness
// exercises both the checksum-gated Unmarshal and the raw payload
// parser, so mutated inputs cannot hide behind the checksum.
func FuzzDatasetRoundTrip(f *testing.F) {
	for _, g := range testGraphs(f) {
		f.Add(Marshal(g))
		f.Add(MarshalV2(g)) // the mmap layout shares the decode entry points
	}
	f.Add([]byte{})
	f.Add([]byte("DPKG"))
	f.Add([]byte("# Nodes: 4\n0 1\n"))
	f.Add([]byte{'D', 'P', 'K', 'G', 1, 3, 2, 1, 0, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The full decoder: checksum then parse.
		if g, err := Unmarshal(data); err == nil {
			// Note: encode(decode(data)) == data byte-for-byte would be
			// too strong (binary.Uvarint accepts padded varints); the
			// graph itself must survive the round trip exactly.
			re := Marshal(g)
			back, err := Unmarshal(re)
			if err != nil {
				t.Fatalf("re-encoded graph does not decode: %v", err)
			}
			if !g.Equal(back) {
				t.Fatal("round trip changed the graph")
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("decoded graph violates CSR invariants: %v", err)
			}
		}
		// The raw parser, reachable by checksum-valid mutations only:
		// fuzz it directly so its guards see hostile structure.
		if g, err := decodePayload(data); err == nil {
			back, err := Unmarshal(Marshal(g))
			if err != nil || !g.Equal(back) {
				t.Fatalf("payload-decoded graph does not round-trip: %v", err)
			}
		}
	})
}
