package dataset

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"unsafe"

	"dpkron/internal/graph"
	"dpkron/internal/mmapfile"
)

// Binary format ("DPKG", version 2) — the mmap layout. Where v1
// optimizes bytes (gap varints, ~1–2 bytes/edge), v2 optimizes opens:
// the CSR arrays are stored verbatim, fixed-width and aligned, so a
// loader can map the file and serve graph.Graph's slices directly out
// of the page cache — an O(1) open instead of an O(n+m) decode.
//
//	header   64 bytes:
//	  [0:4)   magic "DPKG"
//	  [4]     version byte 0x02 (parses as uvarint 2, so v1-only
//	          decoders fail with ErrBadVersion, not garbage)
//	  [5:8)   reserved (zero)
//	  [8:16)  n  uint64 LE — node count
//	  [16:24) m  uint64 LE — undirected edge count
//	  [24:32) offPos  uint64 LE — byte offset of the off section (64)
//	  [32:40) adjPos  uint64 LE — byte offset of the adj section,
//	          64-byte aligned
//	  [40:48) fileSize uint64 LE — total file length incl. checksum
//	  [48:56) first 8 bytes of SHA-256 over header[0:48)
//	  [56:64) reserved (zero)
//	off      (n+1) int32 LE — CSR row offsets, off[0] = 0, off[n] = 2m
//	padding  zeros to adjPos
//	adj      2m int32 LE — concatenated sorted adjacency
//	checksum SHA-256 over every preceding byte
//
// The trailing checksum matches v1's convention (last 32 bytes, over
// everything before), so Unmarshal verifies both formats identically.
// The mmap open path (OpenMapped) deliberately does NOT stream the
// whole file through SHA-256 — that would re-buy the O(n+m) cost the
// layout exists to avoid. It validates the header in O(1) instead
// (magic, version, the header's own checksum field, size and
// alignment arithmetic, off[0]/off[n] spot checks); full-file
// verification still runs on every byte-slice decode (imports,
// uploads, Verify) where the bytes are already resident.

const (
	codecVersion2 = 2
	v2HeaderLen   = 64
	v2Align       = 64
	// v2MaxEdges keeps 2m (and every off value) inside int32, the CSR
	// index type.
	v2MaxEdges = 1 << 30
)

// v2Layout computes the section offsets of a v2 file for n nodes and
// m edges.
func v2Layout(n, m int) (adjPos, fileSize int64) {
	offEnd := int64(v2HeaderLen) + 4*int64(n+1)
	adjPos = (offEnd + v2Align - 1) &^ (v2Align - 1)
	fileSize = adjPos + 8*int64(m) + checksumLen
	return adjPos, fileSize
}

// v2Header renders the 64-byte header, including its checksum field.
func v2Header(n, m int) []byte {
	adjPos, fileSize := v2Layout(n, m)
	h := make([]byte, v2HeaderLen)
	copy(h, magic[:])
	h[4] = codecVersion2
	binary.LittleEndian.PutUint64(h[8:], uint64(n))
	binary.LittleEndian.PutUint64(h[16:], uint64(m))
	binary.LittleEndian.PutUint64(h[24:], v2HeaderLen)
	binary.LittleEndian.PutUint64(h[32:], uint64(adjPos))
	binary.LittleEndian.PutUint64(h[40:], uint64(fileSize))
	sum := sha256.Sum256(h[:48])
	copy(h[48:56], sum[:8])
	return h
}

// parseV2Header validates a v2 header against the total file length
// and returns the declared dimensions. All checks are O(1).
func parseV2Header(data []byte, total int64) (n, m int, adjPos int64, err error) {
	if len(data) < v2HeaderLen {
		return 0, 0, 0, fmt.Errorf("%w: %d bytes of v2 header", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return 0, 0, 0, ErrBadMagic
	}
	if data[4] != codecVersion2 {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, data[4])
	}
	sum := sha256.Sum256(data[:48])
	if subtle.ConstantTimeCompare(sum[:8], data[48:56]) != 1 {
		return 0, 0, 0, fmt.Errorf("%w: v2 header checksum", ErrChecksum)
	}
	nn := binary.LittleEndian.Uint64(data[8:])
	mm := binary.LittleEndian.Uint64(data[16:])
	offPos := binary.LittleEndian.Uint64(data[24:])
	adjP := binary.LittleEndian.Uint64(data[32:])
	fileSize := binary.LittleEndian.Uint64(data[40:])
	if nn >= 1<<31 {
		return 0, 0, 0, fmt.Errorf("%w: %d nodes exceeds the node-id limit", ErrCorrupt, nn)
	}
	if mm >= v2MaxEdges || (nn > 0 && mm > nn*(nn-1)/2) || (nn == 0 && mm > 0) {
		return 0, 0, 0, fmt.Errorf("%w: %d edges on %d nodes", ErrCorrupt, mm, nn)
	}
	if offPos != v2HeaderLen {
		return 0, 0, 0, fmt.Errorf("%w: off section at %d, want %d", ErrCorrupt, offPos, v2HeaderLen)
	}
	wantAdj, wantSize := v2Layout(int(nn), int(mm))
	if int64(adjP) != wantAdj {
		return 0, 0, 0, fmt.Errorf("%w: misaligned adj section at %d, want %d", ErrCorrupt, adjP, wantAdj)
	}
	if int64(fileSize) != wantSize {
		return 0, 0, 0, fmt.Errorf("%w: declared size %d, layout implies %d", ErrCorrupt, fileSize, wantSize)
	}
	switch {
	case total < wantSize:
		return 0, 0, 0, fmt.Errorf("%w: %d of %d bytes", ErrTruncated, total, wantSize)
	case total > wantSize:
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, total-wantSize)
	}
	return int(nn), int(mm), wantAdj, nil
}

// v2SpotCheck verifies the O(1) structural anchors of the off section:
// the first offset is 0 and the last is 2m. data is the whole file.
func v2SpotCheck(data []byte, n, m int) error {
	off0 := binary.LittleEndian.Uint32(data[v2HeaderLen:])
	offN := binary.LittleEndian.Uint32(data[v2HeaderLen+4*n:])
	if off0 != 0 {
		return fmt.Errorf("%w: off[0] = %d, want 0", ErrCorrupt, off0)
	}
	if offN != uint32(2*m) {
		return fmt.Errorf("%w: off[n] = %d, want 2m = %d", ErrCorrupt, offN, 2*m)
	}
	return nil
}

// EncodeV2 writes g in the v2 mmap layout, streaming: rows are never
// gathered into one buffer, so the writer's memory is O(1) beyond the
// graph itself.
func EncodeV2(w io.Writer, g *graph.Graph) error {
	off, adj := g.CSR()
	n, m := g.NumNodes(), g.NumEdges()
	if m >= v2MaxEdges {
		return fmt.Errorf("dataset: %d edges exceeds the v2 limit of %d", m, v2MaxEdges)
	}
	if len(off) == 0 {
		off = []int32{0} // the zero Graph still writes a valid off[0]
	}
	h := sha256.New()
	bw := bufio.NewWriterSize(w, 1<<16)
	mw := io.MultiWriter(bw, h)
	if _, err := mw.Write(v2Header(n, m)); err != nil {
		return err
	}
	if err := writeInt32sLE(mw, off); err != nil {
		return err
	}
	adjPos, _ := v2Layout(n, m)
	pad := adjPos - int64(v2HeaderLen) - 4*int64(n+1)
	if pad > 0 {
		if _, err := mw.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	if err := writeInt32sLE(mw, adj); err != nil {
		return err
	}
	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return err
	}
	return bw.Flush()
}

// writeInt32sLE streams vals as little-endian int32s through a small
// fixed buffer.
func writeInt32sLE(w io.Writer, vals []int32) error {
	var buf [4096]byte
	for len(vals) > 0 {
		chunk := vals
		if len(chunk) > len(buf)/4 {
			chunk = chunk[:len(buf)/4]
		}
		for i, v := range chunk {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		if _, err := w.Write(buf[:4*len(chunk)]); err != nil {
			return err
		}
		vals = vals[len(chunk):]
	}
	return nil
}

// MarshalV2 encodes g in the v2 mmap layout.
func MarshalV2(g *graph.Graph) []byte {
	_, size := v2Layout(g.NumNodes(), g.NumEdges())
	var buf bytes.Buffer
	buf.Grow(int(size))
	if err := EncodeV2(&buf, g); err != nil {
		// bytes.Buffer writes cannot fail; the only error source is the
		// edge-count limit, which the int-typed NumEdges cannot reach on
		// a graph that was buildable in memory.
		panic(err)
	}
	return buf.Bytes()
}

// decodeV2Payload decodes the v2 sections onto the heap. payload is
// the file without its trailing checksum (already verified by
// UnmarshalLimit). The decoded arrays are fully validated — monotone
// offsets, sorted symmetric adjacency — so a forged checksum still
// cannot smuggle a structurally invalid graph past the typed errors.
func decodeV2Payload(payload []byte, maxNodes int) (*graph.Graph, error) {
	n, m, adjPos, err := parseV2Header(payload, int64(len(payload))+checksumLen)
	if err != nil {
		return nil, err
	}
	if maxNodes > 0 && n > maxNodes {
		return nil, fmt.Errorf("dataset: input has %d nodes, exceeding the cap of %d", n, maxNodes)
	}
	if err := v2SpotCheck(payload, n, m); err != nil {
		return nil, err
	}
	off := readInt32sLE(payload[v2HeaderLen:], n+1)
	adj := readInt32sLE(payload[adjPos:], 2*m)
	g := graph.FromCSR(off, adj)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// readInt32sLE copies count little-endian int32s from data onto the
// heap.
func readInt32sLE(data []byte, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out
}

// mmapSupported reports whether OpenMapped can serve graphs zero-copy
// on this build.
const mmapSupported = mmapfile.Supported

// hostLittleEndian reports whether int32 loads through unsafe match
// the file's little-endian layout, the precondition for serving CSR
// slices straight out of a mapping.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// OpenMapped opens a v2 graph file with O(1) validation, backing the
// returned graph's CSR arrays directly by an mmap region when the
// platform allows (unix, little-endian, 4-byte mapping alignment —
// all true in practice; anything else falls back to a fully verified
// heap decode, and mapped reports which happened). The mapping is
// released by a finalizer when the graph becomes unreachable, so
// cache eviction or store deletion while a fit still holds the graph
// is safe — the pages stay valid until the last reference drops.
//
// Only the header is checksummed on this path; see the format comment
// for the trade-off. The file must be a v2 file (ErrBadVersion
// otherwise); callers sniff the version first.
func OpenMapped(path string) (g *graph.Graph, mapped bool, err error) {
	mf, err := mmapfile.Open(path)
	if err != nil {
		return nil, false, err
	}
	data := mf.Bytes()
	n, m, adjPos, err := parseV2Header(data, int64(len(data)))
	if err != nil {
		mf.Close()
		return nil, false, err
	}
	if err := v2SpotCheck(data, n, m); err != nil {
		mf.Close()
		return nil, false, err
	}
	zeroCopy := mf.Mapped() && hostLittleEndian &&
		uintptr(unsafe.Pointer(&data[0]))%4 == 0
	if !zeroCopy {
		// Heap route (non-unix, exotic alignment, big-endian): decode a
		// private copy — with the full checksum verification a resident
		// read can afford — and drop the mapping.
		defer mf.Close()
		g, err := UnmarshalV2(data)
		if err != nil {
			return nil, false, err
		}
		return g, false, nil
	}
	off := unsafe.Slice((*int32)(unsafe.Pointer(&data[v2HeaderLen])), n+1)
	adj := unsafe.Slice((*int32)(unsafe.Pointer(&data[adjPos])), 2*m)
	g = graph.FromCSR(off, adj)
	runtime.SetFinalizer(g, func(*graph.Graph) { mf.Close() })
	return g, true, nil
}

// UnmarshalV2 decodes a v2 byte slice with full trailing-checksum
// verification and structural validation. Unmarshal dispatches here by
// version; it exists separately for callers that already know the
// format.
func UnmarshalV2(data []byte) (*graph.Graph, error) {
	return UnmarshalLimit(data, 0)
}

// Version sniffs the DPKG format version of an encoded graph: 1 or 2.
func Version(data []byte) (int, error) {
	if len(data) < 5 {
		return 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return 0, ErrBadMagic
	}
	v, k := binary.Uvarint(data[4:])
	if k <= 0 || v != codecVersion && v != codecVersion2 {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return int(v), nil
}
