package dataset

import (
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"

	"dpkron/internal/graph"
)

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDecodeGraphFormats(t *testing.T) {
	// One triangle plus a pendant, in every accepted source form.
	want := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	snap := "# toy\n0 1\n1 2\n0 2\n2 3\n"
	mtx := "%%MatrixMarket matrix coordinate pattern symmetric\n% toy\n4 4 4\n1 2\n2 3\n1 3\n3 4\n"
	bin := Marshal(want)

	for name, tc := range map[string]struct {
		data []byte
		want Format
	}{
		"snap":      {[]byte(snap), FormatSNAP},
		"snap+gzip": {gzipBytes(t, []byte(snap)), "snap+gzip"},
		"mtx":       {[]byte(mtx), FormatMatrixMarket},
		"mtx+gzip":  {gzipBytes(t, []byte(mtx)), "mtx+gzip"},
		"dpkg":      {bin, FormatBinary},
		"dpkg+gzip": {gzipBytes(t, bin), "dpkg+gzip"},
	} {
		g, format, err := DecodeGraph(bytes.NewReader(tc.data), DecodeOptions{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if format != tc.want {
			t.Errorf("%s: detected format %q, want %q", name, format, tc.want)
		}
		if !g.Equal(want) {
			t.Errorf("%s: decoded graph differs", name)
		}
	}
}

func TestDecodeGraphMatrixMarketErrors(t *testing.T) {
	for name, in := range map[string]string{
		"array-format":   "%%MatrixMarket matrix array real general\n2 2\n1\n0\n1\n1\n",
		"rectangular":    "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n",
		"bad-size-line":  "%%MatrixMarket matrix coordinate pattern general\nx y z\n",
		"entry-range":    "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n",
		"zero-based":     "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"missing-size":   "%%MatrixMarket matrix coordinate pattern general\n% only comments\n",
		"truncated":      "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n",
		"excess-entries": "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n",
		"impossible-nnz": "%%MatrixMarket matrix coordinate pattern general\n2 2 1000000000\n1 2\n",
	} {
		if _, _, err := DecodeGraph(strings.NewReader(in), DecodeOptions{}); err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
		}
	}
}

func TestDecodeGraphMatrixMarketValuesIgnored(t *testing.T) {
	// real/integer coordinate files carry a value column; the adjacency
	// import ignores it (and merges the symmetric duplicates).
	in := "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 2 0.5\n2 1 0.5\n2 3 1.0\n3 3 9\n"
	g, _, err := DecodeGraph(strings.NewReader(in), DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if !g.Equal(want) {
		t.Errorf("decoded %d edges on %d nodes, want 2 on 3", g.NumEdges(), g.NumNodes())
	}
}

func TestDecodeGraphMaxNodes(t *testing.T) {
	for name, in := range map[string]string{
		"snap-id":     "0 999999\n",
		"snap-header": "# Nodes: 999999\n0 1\n",
		"mtx":         "%%MatrixMarket matrix coordinate pattern general\n999999 999999 1\n1 2\n",
	} {
		if _, _, err := DecodeGraph(strings.NewReader(in), DecodeOptions{MaxNodes: 1000}); err == nil {
			t.Errorf("%s: decoded successfully, want node-cap error", name)
		}
		// The same input passes without the cap.
		if _, _, err := DecodeGraph(strings.NewReader(in), DecodeOptions{}); err != nil {
			t.Errorf("%s without cap: %v", name, err)
		}
	}
	// Binary inputs are also capped.
	big := graph.Path(5000)
	if _, _, err := DecodeGraph(bytes.NewReader(Marshal(big)), DecodeOptions{MaxNodes: 1000}); err == nil {
		t.Error("dpkg over cap decoded successfully")
	}
}

func TestDecodeGraphMaxBytes(t *testing.T) {
	// A megabyte of repeated edges gzips to a few KiB; with MaxBytes
	// below the decompressed size the bomb is a typed ErrTooLarge, not
	// a silently truncated (but valid-looking) smaller graph.
	bomb := gzipBytes(t, bytes.Repeat([]byte("0 1\n"), 1<<18))
	if _, _, err := DecodeGraph(bytes.NewReader(bomb), DecodeOptions{MaxBytes: 1 << 16}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("gzip bomb: got %v, want ErrTooLarge", err)
	}
	// The same stream passes once the cap accommodates it.
	if _, _, err := DecodeGraph(bytes.NewReader(bomb), DecodeOptions{MaxBytes: 1 << 23}); err != nil {
		t.Fatalf("in-cap gzip: %v", err)
	}
}

func TestDecodeGraphMatrixMarketHugeDeclaredNnz(t *testing.T) {
	// A tiny upload declaring two billion entries must fail on the
	// entry-count mismatch, not pre-allocate gigabytes for the
	// declared count (the hint is clamped to maxEdgeHint).
	in := "%%MatrixMarket matrix coordinate pattern general\n50000 50000 2000000000\n1 2\n"
	if _, _, err := DecodeGraph(strings.NewReader(in), DecodeOptions{}); err == nil {
		t.Error("decoded successfully, want truncation error")
	}
}

func TestDecodeGraphMinNodes(t *testing.T) {
	g, _, err := DecodeGraph(strings.NewReader("0 1\n"), DecodeOptions{MinNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Errorf("nodes = %d, want 10", g.NumNodes())
	}
}

func TestDecodeGraphBadGzip(t *testing.T) {
	// A gzip magic followed by garbage must error, not hang or panic.
	if _, _, err := DecodeGraph(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0x00}), DecodeOptions{}); err == nil {
		t.Error("garbage gzip decoded successfully")
	}
	// Empty input decodes as an empty SNAP graph, matching ReadEdgeList.
	g, format, err := DecodeGraph(bytes.NewReader(nil), DecodeOptions{})
	if err != nil || g.NumNodes() != 0 || format != FormatSNAP {
		t.Errorf("empty input: %v, %d nodes, format %q", err, g.NumNodes(), format)
	}
}
