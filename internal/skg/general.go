package skg

import (
	"fmt"
	"math"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

// GeneralModel is a stochastic Kronecker graph with an arbitrary
// symmetric N1×N1 initiator matrix, on N1^K nodes. The paper fixes
// N1 = 2 following the model-selection analysis of Leskovec et al.
// (§3.3: "having N1 > 2 does not accrue a significant advantage");
// this type exists to test that claim and to support the general model.
// The closed-form expected features generalize the 2×2 formulas: every
// term is a per-level aggregate over the initiator's rows and diagonal.
type GeneralModel struct {
	Theta [][]float64
	K     int
}

// NewGeneralModel validates the initiator (square, symmetric, entries in
// [0, 1], N1 >= 2) and the power K (N1^K must fit in an int).
func NewGeneralModel(theta [][]float64, k int) (GeneralModel, error) {
	n1 := len(theta)
	if n1 < 2 {
		return GeneralModel{}, fmt.Errorf("skg: initiator must be at least 2x2, got %d", n1)
	}
	for i, row := range theta {
		if len(row) != n1 {
			return GeneralModel{}, fmt.Errorf("skg: initiator row %d has %d entries, want %d", i, len(row), n1)
		}
		for j, v := range row {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return GeneralModel{}, fmt.Errorf("skg: initiator entry (%d,%d) = %v outside [0, 1]", i, j, v)
			}
			if math.Abs(v-theta[j][i]) > 1e-12 {
				return GeneralModel{}, fmt.Errorf("skg: initiator not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if k < 1 {
		return GeneralModel{}, fmt.Errorf("skg: K = %d must be >= 1", k)
	}
	nodes := 1.0
	for i := 0; i < k; i++ {
		nodes *= float64(n1)
		if nodes > 1<<31 {
			return GeneralModel{}, fmt.Errorf("skg: %d^%d nodes is too large", n1, k)
		}
	}
	return GeneralModel{Theta: theta, K: k}, nil
}

// N1 returns the initiator dimension.
func (m GeneralModel) N1() int { return len(m.Theta) }

// NumNodes returns N1^K.
func (m GeneralModel) NumNodes() int {
	n := 1
	for i := 0; i < m.K; i++ {
		n *= m.N1()
	}
	return n
}

// EdgeProb returns P_uv by decomposing u and v into base-N1 digits.
func (m GeneralModel) EdgeProb(u, v int) float64 {
	n1 := m.N1()
	p := 1.0
	for level := 0; level < m.K; level++ {
		p *= m.Theta[u%n1][v%n1]
		u /= n1
		v /= n1
	}
	return p
}

// ExpectedFeatures returns the closed-form expected counts of the four
// matching statistics over undirected realizations, generalizing
// Equation 1 to arbitrary symmetric initiators.
func (m GeneralModel) ExpectedFeatures() stats.Features {
	n1 := m.N1()
	k := float64(m.K)
	pk := func(x float64) float64 { return math.Pow(x, k) }

	// Per-level aggregates over rows i of Θ: r_i row sum, d_i diagonal,
	// s_i row sum of squares, plus whole-matrix sums.
	var sumAll, trace float64
	var rowSq, rowD, sumSq, diagSq float64
	var rowCu, rowS, sumCu, rowSqD, rowD2, dS, diag3 float64
	var triPaths float64
	for i := 0; i < n1; i++ {
		var r, s float64
		for j := 0; j < n1; j++ {
			v := m.Theta[i][j]
			r += v
			s += v * v
			sumSq += v * v
			sumCu += v * v * v
		}
		d := m.Theta[i][i]
		sumAll += r
		trace += d
		rowSq += r * r
		rowD += r * d
		diagSq += d * d
		rowCu += r * r * r
		rowS += r * s
		rowSqD += r * r * d
		rowD2 += r * d * d
		dS += d * s
		diag3 += d * d * d
	}
	for x := 0; x < n1; x++ {
		for y := 0; y < n1; y++ {
			for z := 0; z < n1; z++ {
				triPaths += m.Theta[x][y] * m.Theta[y][z] * m.Theta[z][x]
			}
		}
	}

	e := 0.5 * (pk(sumAll) - pk(trace))
	h := 0.5 * (pk(rowSq) - 2*pk(rowD) - pk(sumSq) + 2*pk(diagSq))
	delta := (pk(triPaths) - 3*pk(dS) + 2*pk(diag3)) / 6
	t := (pk(rowCu) - 3*pk(rowS) + 2*pk(sumCu) -
		3*pk(rowSqD) + 6*pk(rowD2) + 3*pk(dS) - 6*pk(diag3)) / 6
	return stats.Features{E: e, H: h, T: t, Delta: delta}
}

// ProbMatrix materializes P; guarded against large models.
func (m GeneralModel) ProbMatrix() [][]float64 {
	n := m.NumNodes()
	if n > 4096 {
		panic(fmt.Sprintf("skg: ProbMatrix on %d nodes is too large", n))
	}
	out := make([][]float64, n)
	for u := 0; u < n; u++ {
		out[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			out[u][v] = m.EdgeProb(u, v)
		}
	}
	return out
}

// SampleExact draws an undirected simple graph with independent edge
// coins, O(n²·K).
func (m GeneralModel) SampleExact(rng *randx.Rand) *graph.Graph {
	n := m.NumNodes()
	b := graph.NewBuilderCap(n, int(m.ExpectedFeatures().E*1.2)+16)
	for u := 1; u < n; u++ {
		for v := 0; v < u; v++ {
			if rng.Float64() < m.EdgeProb(u, v) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// SampleBallDrop draws approximately the expected number of edges via
// quadrant descent over the N1×N1 initiator.
func (m GeneralModel) SampleBallDrop(rng *randx.Rand) *graph.Graph {
	n := m.NumNodes()
	n1 := m.N1()
	target := int(math.Round(m.ExpectedFeatures().E))
	maxPairs := n * (n - 1) / 2
	if target > maxPairs {
		target = maxPairs
	}
	var sum float64
	for i := 0; i < n1; i++ {
		for j := 0; j < n1; j++ {
			sum += m.Theta[i][j]
		}
	}
	if sum == 0 || target <= 0 {
		return graph.NewBuilder(n).Build()
	}
	// Flattened cumulative distribution over initiator cells.
	cum := make([]float64, n1*n1+1)
	for i := 0; i < n1; i++ {
		for j := 0; j < n1; j++ {
			idx := i*n1 + j
			cum[idx+1] = cum[idx] + m.Theta[i][j]/sum
		}
	}
	seen := make(map[int64]struct{}, 2*target)
	b := graph.NewBuilderCap(n, target)
	placed := 0
	for attempts := 0; placed < target && attempts < 200*target+1000; attempts++ {
		u, v := 0, 0
		for level := 0; level < m.K; level++ {
			r := rng.Float64()
			// Linear scan is fine: N1 is tiny.
			cell := 0
			for cell < n1*n1-1 && cum[cell+1] <= r {
				cell++
			}
			u = u*n1 + cell/n1
			v = v*n1 + cell%n1
		}
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		key := int64(v)<<32 | int64(u)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		placed++
	}
	return b.Build()
}
