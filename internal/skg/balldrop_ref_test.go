package skg

import (
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/parallel"
	"dpkron/internal/randx"
)

// sampleBallDropNRef is the historical map-based ball dropper, kept
// verbatim as the oracle for the documented contract that the map-free
// sort-and-dedup rewrite (dropUnique) consumes the per-shard random
// streams identically — same drops, same rejections, same top-up — and
// therefore produces bit-identical graphs for every seed.
func (m Model) sampleBallDropNRef(rng *randx.Rand, target, workers int) *graph.Graph {
	n := m.NumNodes()
	maxPairs := n * (n - 1) / 2
	if target > maxPairs {
		target = maxPairs
	}
	sum := m.Init.EdgeSum()
	if sum == 0 || target <= 0 {
		return graph.Empty(n)
	}
	pa := m.Init.A / sum
	pb := m.Init.B / sum

	shards := parallel.DefaultShards
	if shards > target {
		shards = target
	}
	rngs := parallel.Streams(rng, shards+1)
	quota := func(s int) int {
		q := target / shards
		if s < target%shards {
			q++
		}
		return q
	}
	parts := make([][]int64, shards)
	parallel.Run(parallel.Normalize(workers), shards, func(s int) {
		r := rngs[s]
		q := quota(s)
		local := make(map[int64]struct{}, 2*q)
		keys := make([]int64, 0, q)
		for attempts := 0; len(keys) < q && attempts < 200*q+1000; attempts++ {
			u, v := m.dropPair(r, pa, pb)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := int64(u)<<32 | int64(v)
			if _, dup := local[key]; dup {
				continue
			}
			local[key] = struct{}{}
			keys = append(keys, key)
		}
		parts[s] = keys
	})

	seen := make(map[int64]struct{}, 2*target)
	b := graph.NewBuilder(n)
	placed := 0
	for _, keys := range parts {
		for _, key := range keys {
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			b.AddEdge(int(key>>32), int(key&0xffffffff))
			placed++
		}
	}
	top := rngs[shards]
	for attempts := 0; placed < target && attempts < 200*target+1000; attempts++ {
		u, v := m.dropPair(top, pa, pb)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		placed++
	}
	return b.Build()
}

// TestSampleBallDropMatchesMapReference pins the map-free rewrite to
// the historical map-based generator across sparse, dense,
// target-saturating, and degenerate regimes, several seeds, and worker
// counts. The subtle property under test is RNG-consumption
// equivalence: a duplicate inside one of dropUnique's rounds must
// merely end the round early (the next round's membership filter
// rejects it), so acceptance lands on exactly the drops the one-lookup-
// per-attempt reference accepted.
func TestSampleBallDropMatchesMapReference(t *testing.T) {
	type tc struct {
		init    Initiator
		k       int
		targets []int
	}
	cases := []tc{
		// Sparse paper-like regime.
		{Initiator{A: 0.99, B: 0.45, C: 0.25}, 11, []int{1, 63, 64, 65, 2000, 8000}},
		// Dense small graphs: heavy re-drop and cap pressure.
		{Initiator{A: 0.9, B: 0.7, C: 0.6}, 3, []int{5, 14, 28, 100}},
		{Initiator{A: 0.9, B: 0.7, C: 0.6}, 5, []int{200, 496, 1000}},
		// Skewed initiator: many self-loop rejections.
		{Initiator{A: 1, B: 0.05, C: 0.9}, 6, []int{100, 500}},
	}
	for _, c := range cases {
		m := mustModel(t, c.init.A, c.init.B, c.init.C, c.k)
		for _, target := range c.targets {
			for seed := uint64(1); seed <= 3; seed++ {
				want := m.sampleBallDropNRef(randx.New(seed), target, 1)
				for _, workers := range []int{1, 4} {
					got := m.SampleBallDropNWorkers(randx.New(seed), target, workers)
					if !got.Equal(want) {
						t.Fatalf("init=%v k=%d target=%d seed=%d workers=%d: graph differs from map-based reference",
							c.init, c.k, target, seed, workers)
					}
				}
			}
		}
	}
}
