package skg

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"dpkron/internal/extsort"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
)

// EdgeStream is a sampled graph held as spill files instead of memory:
// the bulk of the edge set lives in a consolidated external-sort run,
// plus a small in-memory top-up slice for ball-drop collision
// replacement. It satisfies dataset.EdgeSource structurally (the
// interface is matched by shape, not import), so a stream can be fed
// straight into Store.PutStream without either package knowing the
// other.
//
// Edges may be called repeatedly — each call re-reads the run — which
// is what lets the store make its two encoding passes over one sample.
type EdgeStream struct {
	n     int
	run   *extsort.Run
	extra []int64
}

// NumNodes is the node count of the sampled graph.
func (es *EdgeStream) NumNodes() int { return es.n }

// NumEdges is the exact edge count of the sampled graph (the top-up
// keys are disjoint from the run by construction).
func (es *EdgeStream) NumEdges() int64 { return es.run.Count() + int64(len(es.extra)) }

// Edges returns a fresh ascending iterator over the packed edge keys.
func (es *EdgeStream) Edges() (*extsort.Iterator, error) { return es.run.IterWith(es.extra) }

// Close releases the stream's probe handle on the run file. The run
// file itself belongs to the sorter the stream was sampled into; it is
// deleted with the sorter's directory.
func (es *EdgeStream) Close() error { return es.run.Close() }

// StreamCtx is SampleCtx with the sampled edge set spilled into sorter
// instead of materialized: the exact sampler for K <= 13, ball
// dropping otherwise. For a given seed the streamed edge set is
// bit-identical to the graph SampleCtx builds — every random stream,
// drop order, and top-up decision is replayed exactly; only the
// storage of accepted keys differs.
func (m Model) StreamCtx(run *pipeline.Run, rng *randx.Rand, sorter *extsort.Sorter) (*EdgeStream, error) {
	if m.K <= 13 {
		return m.StreamExactCtx(run, rng, sorter)
	}
	return m.StreamBallDropCtx(run, rng, sorter)
}

// StreamBallDropCtx is StreamBallDropNCtx at the model's expected edge
// count (the SampleBallDropCtx target).
func (m Model) StreamBallDropCtx(run *pipeline.Run, rng *randx.Rand, sorter *extsort.Sorter) (*EdgeStream, error) {
	target := int(math.Round(m.ExpectedFeatures().E))
	return m.StreamBallDropNCtx(run, rng, target, sorter)
}

// StreamExactCtx is SampleExactCtx streaming into sorter: each pair
// block spills its accepted keys as it goes (the per-writer chunk
// bounds the block's residency), and the blocks' runs consolidate into
// one sorted edge set. Pair blocks, random streams, and coin flips are
// identical to SampleExactCtx, so the streamed edge set matches its
// graph bit for bit.
func (m Model) StreamExactCtx(run *pipeline.Run, rng *randx.Rand, sorter *extsort.Sorter) (*EdgeStream, error) {
	done := run.Stage("sample-exact")
	n := m.NumNodes()
	tbl := m.powTables()
	mask := 1<<m.K - 1
	blocks := parallel.PairBlocks(n, parallel.DefaultShards)
	rngs := parallel.Streams(rng, len(blocks))
	spillErrs := make([]error, len(blocks))
	err := parallel.RunCtx(run.Context(), run.Workers(), len(blocks), func(s int) {
		r := rngs[s]
		w := sorter.Writer()
		defer w.Close()
		for u := blocks[s].Lo; u < blocks[s].Hi; u++ {
			for v := 0; v < u; v++ {
				nc := bits.OnesCount64(uint64(u & v))
				na := m.K - bits.OnesCount64(uint64((u|v)&mask))
				p := tbl.a[na] * tbl.b[m.K-na-nc] * tbl.c[nc]
				if r.Float64() < p {
					if err := w.Add(int64(v)<<32 | int64(u)); err != nil {
						spillErrs[s] = err
						return
					}
				}
			}
		}
		spillErrs[s] = w.Close()
	})
	if err != nil {
		return nil, err
	}
	for _, serr := range spillErrs {
		if serr != nil {
			return nil, serr
		}
	}
	edges, err := sorter.Consolidate()
	if err != nil {
		return nil, err
	}
	done()
	return &EdgeStream{n: n, run: edges}, nil
}

// StreamBallDropNCtx is SampleBallDropNCtx streaming into sorter: each
// shard's sorted accepted keys are spilled as a run the moment the
// shard finishes (peak residency is one shard quota per in-flight
// worker, not the whole target), the cross-shard dedup happens in the
// consolidation merge, and the top-up's exclude set is probed by
// binary search over the consolidated run file instead of a heap
// slice. Shard count, stream derivations, drop order, and top-up
// semantics replay SampleBallDropNCtx exactly, so for a given seed the
// streamed edge set is identical to its graph for every worker count
// and spill chunk size.
func (m Model) StreamBallDropNCtx(run *pipeline.Run, rng *randx.Rand, target int, sorter *extsort.Sorter) (*EdgeStream, error) {
	done := run.Stage("sample-ball-drop")
	n := m.NumNodes()
	maxPairs := n * (n - 1) / 2
	if target > maxPairs {
		target = maxPairs
	}
	sum := m.Init.EdgeSum()
	if sum == 0 || target <= 0 {
		if err := run.Err(); err != nil {
			return nil, err
		}
		empty, err := sorter.Consolidate()
		if err != nil {
			return nil, err
		}
		done()
		return &EdgeStream{n: n, run: empty}, nil
	}
	pa := m.Init.A / sum
	pb := m.Init.B / sum

	shards := parallel.DefaultShards
	if shards > target {
		shards = target
	}
	ctx := run.Context()
	rngs := parallel.Streams(rng, shards+1) // last stream is the top-up
	quota := func(s int) int {
		q := target / shards
		if s < target%shards {
			q++
		}
		return q
	}
	spillErrs := make([]error, shards)
	if err := parallel.RunCtx(ctx, run.Workers(), shards, func(s int) {
		q := quota(s)
		keys := m.dropUnique(ctx, rngs[s], pa, pb, q, 200*q+1000, nil)
		w := sorter.Writer()
		defer w.Close()
		if err := w.AddSorted(keys); err != nil {
			spillErrs[s] = err
			return
		}
		spillErrs[s] = w.Close()
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, serr := range spillErrs {
		if serr != nil {
			return nil, serr
		}
	}

	// Consolidation is the concat-sort-dedup of the in-memory sampler:
	// merging the shards' sorted runs with duplicate suppression yields
	// the same unique set, counted on the way through. Then top up the
	// edges lost to cross-shard collisions from the dedicated final
	// stream, excluding everything already placed — membership now a
	// binary search over the run file.
	edges, err := sorter.Consolidate()
	if err != nil {
		return nil, err
	}
	placed := int(edges.Count())
	var extra []int64
	if placed < target {
		extra, err = m.dropUniqueFn(ctx, rngs[shards], pa, pb, target-placed, 200*target+1000, edges.Contains)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	done()
	return &EdgeStream{n: n, run: edges, extra: extra}, nil
}

// dropUniqueFn is dropUnique with the exclude set abstracted to a
// membership probe, so the streaming top-up can exclude against an
// on-disk run. A probe error aborts the draw immediately (the caller
// discards the partial state along with the rng).
func (m Model) dropUniqueFn(ctx context.Context, r *randx.Rand, pa, pb float64, need, maxAttempts int, excluded func(int64) (bool, error)) ([]int64, error) {
	accepted := make([]int64, 0, need)
	var cand, scratch []int64
	attempts := 0
	for len(accepted) < need && attempts < maxAttempts {
		if ctx != nil && ctx.Err() != nil {
			return accepted, nil
		}
		want := need - len(accepted)
		cand = cand[:0]
		for len(cand) < want && attempts < maxAttempts {
			u, v := m.dropPair(r, pa, pb)
			attempts++
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := int64(u)<<32 | int64(v)
			if _, dup := slices.BinarySearch(accepted, key); dup {
				continue
			}
			if excluded != nil {
				dup, err := excluded(key)
				if err != nil {
					return nil, fmt.Errorf("skg: probing exclude set: %w", err)
				}
				if dup {
					continue
				}
			}
			cand = append(cand, key)
		}
		scratch = parallel.SortInt64(1, cand, scratch)
		cand = slices.Compact(cand)
		accepted = parallel.MergeSortedInt64(accepted, cand)
	}
	return accepted, nil
}
