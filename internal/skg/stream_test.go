package skg

import (
	"slices"
	"testing"

	"dpkron/internal/extsort"
	"dpkron/internal/faultfs"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
)

// packedEdges collects a graph's edges as sorted packed keys, the
// stream currency.
func packedKeys(t *testing.T, es *EdgeStream) []int64 {
	t.Helper()
	it, err := es.Edges()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []int64
	for {
		k, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

// TestStreamBallDropMatchesSample checks the core streaming contract:
// for a fixed seed the spilled edge set is bit-identical to the
// in-memory sampler's graph, across spill chunk sizes and worker
// counts.
func TestStreamBallDropMatchesSample(t *testing.T) {
	m, err := NewModel(Initiator{A: 0.9, B: 0.6, C: 0.3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	const target = 2000 // dense enough to force cross-shard collisions and a top-up
	want := m.SampleBallDropNWorkers(randx.New(7), target, 4)
	var wantKeys []int64
	want.ForEachEdge(func(u, v int) { wantKeys = append(wantKeys, int64(u)<<32|int64(v)) })
	if len(wantKeys) != target {
		t.Fatalf("reference sampled %d edges, want %d", len(wantKeys), target)
	}
	for _, chunk := range []int{64, 1 << 20} {
		for _, workers := range []int{1, 4} {
			sorter, err := extsort.New(faultfs.OS, t.TempDir(), chunk)
			if err != nil {
				t.Fatal(err)
			}
			es, err := m.StreamBallDropNCtx(pipeline.New(nil, workers, nil), randx.New(7), target, sorter)
			if err != nil {
				t.Fatal(err)
			}
			got := packedKeys(t, es)
			if es.NumEdges() != int64(len(got)) {
				t.Fatalf("NumEdges = %d but stream yielded %d keys", es.NumEdges(), len(got))
			}
			if !slices.Equal(got, wantKeys) {
				t.Fatalf("chunk %d, workers %d: streamed edge set diverges from in-memory sample (%d vs %d edges)",
					chunk, workers, len(got), len(wantKeys))
			}
			es.Close()
			sorter.RemoveAll()
		}
	}
}

// TestStreamExactMatchesSample does the same for the exact sampler.
func TestStreamExactMatchesSample(t *testing.T) {
	m, err := NewModel(Initiator{A: 0.99, B: 0.55, C: 0.35}, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SampleExactWorkers(randx.New(42), 4)
	var wantKeys []int64
	want.ForEachEdge(func(u, v int) { wantKeys = append(wantKeys, int64(u)<<32|int64(v)) })
	for _, chunk := range []int{32, 1 << 20} {
		sorter, err := extsort.New(faultfs.OS, t.TempDir(), chunk)
		if err != nil {
			t.Fatal(err)
		}
		es, err := m.StreamExactCtx(pipeline.New(nil, 3, nil), randx.New(42), sorter)
		if err != nil {
			t.Fatal(err)
		}
		if got := packedKeys(t, es); !slices.Equal(got, wantKeys) {
			t.Fatalf("chunk %d: streamed exact edge set diverges (%d vs %d edges)", chunk, len(got), len(wantKeys))
		}
		es.Close()
		sorter.RemoveAll()
	}
}

// TestStreamCtxDispatch checks the K threshold routing matches
// SampleCtx: small K streams the exact sampler, large K ball-drops.
func TestStreamCtxDispatch(t *testing.T) {
	for _, k := range []int{6, 14} {
		m, err := NewModel(Initiator{A: 0.8, B: 0.5, C: 0.3}, k)
		if err != nil {
			t.Fatal(err)
		}
		want := m.SampleWorkers(randx.New(3), 2)
		var wantKeys []int64
		want.ForEachEdge(func(u, v int) { wantKeys = append(wantKeys, int64(u)<<32|int64(v)) })
		sorter, err := extsort.New(faultfs.OS, t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		es, err := m.StreamCtx(pipeline.New(nil, 2, nil), randx.New(3), sorter)
		if err != nil {
			t.Fatal(err)
		}
		if es.NumNodes() != m.NumNodes() {
			t.Fatalf("K=%d: NumNodes = %d, want %d", k, es.NumNodes(), m.NumNodes())
		}
		if got := packedKeys(t, es); !slices.Equal(got, wantKeys) {
			t.Fatalf("K=%d: StreamCtx edge set diverges from SampleCtx (%d vs %d edges)", k, len(got), len(wantKeys))
		}
		es.Close()
		sorter.RemoveAll()
	}
}

// TestStreamFaults proves spill failures surface as errors, not as a
// truncated sample.
func TestStreamFaults(t *testing.T) {
	m, err := NewModel(Initiator{A: 0.9, B: 0.6, C: 0.3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInjector(faultfs.OS).Fail(faultfs.Fault{Op: faultfs.OpWrite, Path: ".run", Short: 4})
	sorter, err := extsort.New(inj, t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sorter.RemoveAll()
	if _, err := m.StreamBallDropNCtx(pipeline.New(nil, 2, nil), randx.New(7), 500, sorter); err == nil {
		t.Fatal("streaming sample with torn spill writes succeeded")
	}
}
