package skg

import (
	"math"
	"testing"
	"testing/quick"

	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

// bruteExpectedGeneral mirrors bruteExpected for GeneralModel.
func bruteExpectedGeneral(m GeneralModel) stats.Features {
	P := m.ProbMatrix()
	n := len(P)
	var e float64
	for u := 0; u < n; u++ {
		for v := 0; v < u; v++ {
			e += P[u][v]
		}
	}
	var h, t float64
	for i := 0; i < n; i++ {
		var p1, p2, p3 float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			x := P[i][j]
			p1 += x
			p2 += x * x
			p3 += x * x * x
		}
		h += (p1*p1 - p2) / 2
		t += (p1*p1*p1 - 3*p1*p2 + 2*p3) / 6
	}
	var d float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for l := j + 1; l < n; l++ {
				d += P[i][j] * P[i][l] * P[j][l]
			}
		}
	}
	return stats.Features{E: e, H: h, T: t, Delta: d}
}

func TestGeneralMatchesBinaryModel(t *testing.T) {
	// A 2×2 GeneralModel must agree exactly with the specialized Model.
	init := Initiator{A: 0.9, B: 0.45, C: 0.3}
	gm, err := NewGeneralModel(init.Dense(), 5)
	if err != nil {
		t.Fatal(err)
	}
	bm := Model{Init: init, K: 5}
	if gm.NumNodes() != bm.NumNodes() {
		t.Fatal("node counts differ")
	}
	gf, bf := gm.ExpectedFeatures(), bm.ExpectedFeatures()
	for _, p := range [][2]float64{{gf.E, bf.E}, {gf.H, bf.H}, {gf.T, bf.T}, {gf.Delta, bf.Delta}} {
		if math.Abs(p[0]-p[1]) > 1e-9*(1+math.Abs(p[1])) {
			t.Fatalf("expected features differ: general %+v vs binary %+v", gf, bf)
		}
	}
	// Edge probabilities: note the digit orders differ (GeneralModel
	// consumes least-significant digits first; the binary model uses
	// bit masks, which is order-invariant for symmetric per-level
	// products), so compare via brute expectations instead of per-pair.
	for u := 0; u < gm.NumNodes(); u += 3 {
		for v := 0; v < gm.NumNodes(); v += 7 {
			if math.Abs(gm.EdgeProb(u, v)-bm.EdgeProb(u, v)) > 1e-12 {
				t.Fatalf("EdgeProb mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestGeneralExpectedFeaturesVsBrute3x3(t *testing.T) {
	cases := [][][]float64{
		{
			{0.9, 0.5, 0.2},
			{0.5, 0.6, 0.3},
			{0.2, 0.3, 0.4},
		},
		{
			{1.0, 0.4, 0.1},
			{0.4, 0.0, 0.7},
			{0.1, 0.7, 0.9},
		},
	}
	for ci, theta := range cases {
		for _, k := range []int{2, 3} {
			m, err := NewGeneralModel(theta, k)
			if err != nil {
				t.Fatal(err)
			}
			got := m.ExpectedFeatures()
			want := bruteExpectedGeneral(m)
			check := func(name string, g, w float64) {
				if math.Abs(g-w) > 1e-8*(1+math.Abs(w))+1e-9 {
					t.Errorf("case %d k=%d %s: closed form %v vs brute %v", ci, k, name, g, w)
				}
			}
			check("E", got.E, want.E)
			check("H", got.H, want.H)
			check("T", got.T, want.T)
			check("Delta", got.Delta, want.Delta)
		}
	}
}

func TestGeneralQuickExpectedVsBrute(t *testing.T) {
	f := func(raw [6]uint16, kr uint8) bool {
		// Random symmetric 3×3 from 6 free entries.
		v := func(i int) float64 { return float64(raw[i]) / 65535 }
		theta := [][]float64{
			{v(0), v(1), v(2)},
			{v(1), v(3), v(4)},
			{v(2), v(4), v(5)},
		}
		k := 2 + int(kr)%2 // 2..3
		m, err := NewGeneralModel(theta, k)
		if err != nil {
			return false
		}
		got := m.ExpectedFeatures()
		want := bruteExpectedGeneral(m)
		close := func(g, w float64) bool { return math.Abs(g-w) <= 1e-8*(1+math.Abs(w))+1e-9 }
		return close(got.E, want.E) && close(got.H, want.H) &&
			close(got.T, want.T) && close(got.Delta, want.Delta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGeneralValidation(t *testing.T) {
	bad := [][][]float64{
		{{0.5}},                            // 1×1
		{{0.5, 0.2}, {0.2, 1.5}},           // entry > 1
		{{0.5, 0.2}, {0.3, 0.5}},           // asymmetric
		{{0.5, 0.2, 0.1}, {0.2, 0.5, 0.1}}, // non-square
		{{math.NaN(), 0.2}, {0.2, 0.5}},    // NaN
	}
	for i, theta := range bad {
		if _, err := NewGeneralModel(theta, 3); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	ok := [][]float64{{0.5, 0.2}, {0.2, 0.5}}
	if _, err := NewGeneralModel(ok, 0); err == nil {
		t.Error("accepted K = 0")
	}
	if _, err := NewGeneralModel(ok, 40); err == nil {
		t.Error("accepted overflowing K")
	}
}

func TestGeneralSampleExactMatchesExpectation(t *testing.T) {
	theta := [][]float64{
		{0.9, 0.5, 0.2},
		{0.5, 0.6, 0.3},
		{0.2, 0.3, 0.4},
	}
	m, err := NewGeneralModel(theta, 5) // 243 nodes
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(8)
	const trials = 40
	var sumE, sumH float64
	for i := 0; i < trials; i++ {
		g := m.SampleExact(rng)
		f := stats.FeaturesOf(g)
		sumE += f.E
		sumH += f.H
	}
	want := m.ExpectedFeatures()
	if rel := math.Abs(sumE/trials-want.E) / want.E; rel > 0.05 {
		t.Errorf("mean edges %v vs expected %v", sumE/trials, want.E)
	}
	if rel := math.Abs(sumH/trials-want.H) / want.H; rel > 0.10 {
		t.Errorf("mean hairpins %v vs expected %v", sumH/trials, want.H)
	}
}

func TestGeneralSampleBallDropEdgeCount(t *testing.T) {
	theta := [][]float64{
		{0.99, 0.5, 0.2},
		{0.5, 0.4, 0.3},
		{0.2, 0.3, 0.6},
	}
	m, err := NewGeneralModel(theta, 6) // 729 nodes
	if err != nil {
		t.Fatal(err)
	}
	g := m.SampleBallDrop(randx.New(9))
	want := int(math.Round(m.ExpectedFeatures().E))
	if g.NumEdges() != want {
		t.Fatalf("ball drop edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralN1AndNodes(t *testing.T) {
	theta := [][]float64{
		{0.9, 0.5, 0.2},
		{0.5, 0.6, 0.3},
		{0.2, 0.3, 0.4},
	}
	m, err := NewGeneralModel(theta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N1() != 3 || m.NumNodes() != 81 {
		t.Fatalf("N1 = %d, nodes = %d", m.N1(), m.NumNodes())
	}
}
