// Package skg implements the stochastic Kronecker graph (SKG) model of
// Leskovec et al. with a 2×2 initiator matrix, exactly as used by the
// paper: per-edge probabilities from Kronecker powers, the Gleich–Owen
// closed-form expected counts for the four matching features (edges,
// hairpins, tripins, triangles), an exact O(n²·k) sampler, and a fast
// ball-dropping sampler for large graphs.
//
// Following Section 3.2 of the paper, a realized graph is undirected and
// simple: the directed realization is symmetrized by keeping the lower
// triangle, so the undirected edge {u, v} (u ≠ v) is present
// independently with probability P_uv where P = Θ^[k].
package skg

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"dpkron/internal/graph"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

// Initiator is the symmetric 2×2 SKG initiator matrix
//
//	Θ = [ A  B ]
//	    [ B  C ]
//
// with entries in [0, 1]. The paper follows the convention A ≥ C
// (Section 3.4); Canonical restores it without changing the model.
type Initiator struct {
	A, B, C float64
}

// Validate reports whether all entries lie in [0, 1].
func (in Initiator) Validate() error {
	for _, v := range []float64{in.A, in.B, in.C} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("skg: initiator entry %v outside [0, 1]", v)
		}
	}
	return nil
}

// Canonical returns the initiator with A and C swapped if needed so that
// A >= C. Swapping corresponds to relabelling the two initiator nodes
// and defines the same distribution on (unlabelled) graphs.
func (in Initiator) Canonical() Initiator {
	if in.A < in.C {
		in.A, in.C = in.C, in.A
	}
	return in
}

// EdgeSum returns a + 2b + c, the total initiator mass.
func (in Initiator) EdgeSum() float64 { return in.A + 2*in.B + in.C }

// String formats the initiator like the paper's tables.
func (in Initiator) String() string {
	return fmt.Sprintf("[%.4f %.4f; %.4f %.4f]", in.A, in.B, in.B, in.C)
}

// Dense returns the 2×2 matrix as a dense slice.
func (in Initiator) Dense() [][]float64 {
	return [][]float64{{in.A, in.B}, {in.B, in.C}}
}

// Model is an SKG on 2^K nodes defined by Θ^[K].
type Model struct {
	Init Initiator
	K    int
}

// NewModel validates the parameters and returns the model. K must be in
// [1, 30] (node ids are ints; 2^30 nodes is far beyond what the
// estimators are meant for).
func NewModel(init Initiator, k int) (Model, error) {
	if err := init.Validate(); err != nil {
		return Model{}, err
	}
	if k < 1 || k > 30 {
		return Model{}, fmt.Errorf("skg: K = %d outside [1, 30]", k)
	}
	return Model{Init: init, K: k}, nil
}

// NumNodes returns 2^K.
func (m Model) NumNodes() int { return 1 << m.K }

// QuadrantCounts decomposes the pair (u, v) into the per-level initiator
// cells it traverses: na cells (0,0), nb cells (0,1)/(1,0) and nc cells
// (1,1), with na+nb+nc = K.
func (m Model) QuadrantCounts(u, v int) (na, nb, nc int) {
	nc = bits.OnesCount64(uint64(u & v))
	na = m.K - bits.OnesCount64(uint64((u|v)&(1<<m.K-1)))
	nb = m.K - na - nc
	return na, nb, nc
}

// EdgeProb returns P_uv = Θ^[K]_{uv} = A^na · B^nb · C^nc.
func (m Model) EdgeProb(u, v int) float64 {
	na, nb, nc := m.QuadrantCounts(u, v)
	return math.Pow(m.Init.A, float64(na)) *
		math.Pow(m.Init.B, float64(nb)) *
		math.Pow(m.Init.C, float64(nc))
}

// ProbMatrix materializes the full n×n probability matrix P = Θ^[K].
// It panics for K > 12 (16M entries) to guard against accidental use on
// large models; it exists for tests, spectra and brute-force validation.
func (m Model) ProbMatrix() [][]float64 {
	if m.K > 12 {
		panic(fmt.Sprintf("skg: ProbMatrix on K=%d is too large", m.K))
	}
	n := m.NumNodes()
	tbl := m.powTables()
	out := make([][]float64, n)
	for u := 0; u < n; u++ {
		row := make([]float64, n)
		for v := 0; v < n; v++ {
			na, nb, nc := m.QuadrantCounts(u, v)
			row[v] = tbl.a[na] * tbl.b[nb] * tbl.c[nc]
		}
		out[u] = row
	}
	return out
}

// powTable caches integer powers of the initiator entries up to K.
type powTable struct{ a, b, c []float64 }

func (m Model) powTables() powTable {
	pow := func(x float64) []float64 {
		t := make([]float64, m.K+1)
		t[0] = 1
		for i := 1; i <= m.K; i++ {
			t[i] = t[i-1] * x
		}
		return t
	}
	return powTable{a: pow(m.Init.A), b: pow(m.Init.B), c: pow(m.Init.C)}
}

// ExpectedFeatures returns the Gleich–Owen closed-form expectations of
// the four matching statistics over undirected realizations of the
// model (Equation 1 of the paper).
//
// Note on E[T] (tripins): the paper's displayed equation appears to
// carry a typesetting/transcription error in two coefficients (5 and 4
// where the derivation gives 3 and 6; the variants coincide exactly when
// a = c, which the paper's symmetric examples satisfy). This
// implementation uses the form derived from elementary symmetric
// polynomials over the rows of P, which package tests validate against
// direct summation over the explicit probability matrix.
func (m Model) ExpectedFeatures() stats.Features {
	a, b, c := m.Init.A, m.Init.B, m.Init.C
	k := float64(m.K)
	pk := func(x float64) float64 { return math.Pow(x, k) }

	// Per-level aggregates. Rows of Θ are (a+b) and (b+c); the diagonal
	// cells are a and c.
	s1sq := (a+b)*(a+b) + (b+c)*(b+c)             // Σ rowsum²
	s1d := a*(a+b) + c*(b+c)                      // Σ rowsum·diag
	sumP2 := a*a + 2*b*b + c*c                    // Σ cell²
	diag2 := a*a + c*c                            // Σ diag²
	s1cu := (a+b)*(a+b)*(a+b) + (b+c)*(b+c)*(b+c) // Σ rowsum³
	s1s2 := (a+b)*(a*a+b*b) + (b+c)*(b*b+c*c)     // Σ rowsum·rowsq
	sumP3 := a*a*a + 2*b*b*b + c*c*c              // Σ cell³
	s1sqd := a*(a+b)*(a+b) + c*(b+c)*(b+c)        // Σ rowsum²·diag
	s1d2 := a*a*(a+b) + c*c*(b+c)                 // Σ rowsum·diag²
	ds2 := a*(a*a+b*b) + c*(b*b+c*c)              // Σ diag·rowsq
	diag3 := a*a*a + c*c*c                        // Σ diag³
	triPaths := a*a*a + 3*b*b*(a+c) + c*c*c       // Σ closed 3-walks over cells

	e := 0.5 * (pk(a+2*b+c) - pk(a+c))
	h := 0.5 * (pk(s1sq) - 2*pk(s1d) - pk(sumP2) + 2*pk(diag2))
	delta := (pk(triPaths) - 3*pk(ds2) + 2*pk(diag3)) / 6
	t := (pk(s1cu) - 3*pk(s1s2) + 2*pk(sumP3) -
		3*pk(s1sqd) + 6*pk(s1d2) + 3*pk(ds2) - 6*pk(diag3)) / 6

	return stats.Features{E: e, H: h, T: t, Delta: delta}
}

// SampleExact draws an undirected simple graph from the model by
// flipping an independent coin for every node pair {u, v}, u > v, with
// bias P_uv. It costs O(n²·K) time and is exact; prefer SampleBallDrop
// beyond K ≈ 13. It runs on all cores (equivalent to
// SampleExactWorkers with workers = 0).
func (m Model) SampleExact(rng *randx.Rand) *graph.Graph {
	return m.SampleExactWorkers(rng, 0)
}

// SampleExactWorkers is SampleExact sharded over row blocks of the
// lower triangle on up to workers goroutines (<= 0 selects
// runtime.GOMAXPROCS(0)). The pair loop is split into a fixed number of
// pair-balanced row blocks, each driven by its own random stream
// derived serially from rng, so for a given seed the sampled edge set
// is identical for every worker count.
func (m Model) SampleExactWorkers(rng *randx.Rand, workers int) *graph.Graph {
	g, _ := m.SampleExactCtx(pipeline.New(nil, workers, nil), rng)
	return g
}

// SampleExactCtx is SampleExact under a pipeline Run: the worker budget
// comes from run, the pair-block fan-out checks the context between
// shards, and a "sample-exact" stage event pair is emitted. A run that
// is never cancelled samples the exact graph SampleExactWorkers
// produces for the same seed; a cancelled run returns run.Err().
func (m Model) SampleExactCtx(run *pipeline.Run, rng *randx.Rand) (*graph.Graph, error) {
	done := run.Stage("sample-exact")
	n := m.NumNodes()
	tbl := m.powTables()
	mask := 1<<m.K - 1
	blocks := parallel.PairBlocks(n, parallel.DefaultShards)
	rngs := parallel.Streams(rng, len(blocks))
	parts := make([]*graph.Builder, len(blocks))
	// Pre-size each shard's pair slice to its expected edge yield (plus
	// slack) so the inner loop appends without regrowth.
	density := 2 * m.ExpectedFeatures().E / (float64(n) * float64(n-1))
	pairsBelow := func(u int) float64 { return float64(u) * float64(u-1) / 2 }
	err := parallel.RunCtx(run.Context(), run.Workers(), len(blocks), func(s int) {
		r := rngs[s]
		hint := int(density*(pairsBelow(blocks[s].Hi)-pairsBelow(blocks[s].Lo))*1.2) + 16
		b := graph.NewBuilderCap(n, hint)
		for u := blocks[s].Lo; u < blocks[s].Hi; u++ {
			for v := 0; v < u; v++ {
				nc := bits.OnesCount64(uint64(u & v))
				na := m.K - bits.OnesCount64(uint64((u|v)&mask))
				p := tbl.a[na] * tbl.b[m.K-na-nc] * tbl.c[nc]
				if r.Float64() < p {
					b.AddEdge(u, v)
				}
			}
		}
		parts[s] = b
	})
	if err != nil {
		return nil, err
	}
	pending := 0
	for _, p := range parts {
		pending += p.NumPending()
	}
	merged := graph.NewBuilderCap(n, pending)
	for _, p := range parts {
		merged.Absorb(p)
	}
	g := merged.BuildWorkers(run.Workers())
	done()
	return g, nil
}

// SampleBallDrop draws an undirected simple graph with approximately the
// model's expected edge count using Kronecker ball dropping (the
// standard fast generator, as in SNAP's krongen): each drop descends K
// levels choosing an initiator quadrant with probability proportional to
// its entry; self-loops and duplicate pairs are re-dropped. The
// per-pair inclusion probabilities are proportional to P_uv, so the
// realized graph approximates the SKG distribution conditioned on its
// edge count; the paper's experiments depend only on this regime.
func (m Model) SampleBallDrop(rng *randx.Rand) *graph.Graph {
	return m.SampleBallDropWorkers(rng, 0)
}

// SampleBallDropN is SampleBallDrop with an explicit target edge count.
// It runs on all cores (equivalent to SampleBallDropNWorkers with
// workers = 0).
func (m Model) SampleBallDropN(rng *randx.Rand, target int) *graph.Graph {
	return m.SampleBallDropNWorkers(rng, target, 0)
}

// dropPair performs one ball drop: a K-level descent choosing an
// initiator quadrant per level with probability proportional to its
// entry (pa and pb are the normalized A and B entries). It consumes
// exactly K draws from r.
func (m Model) dropPair(r *randx.Rand, pa, pb float64) (u, v int) {
	for level := 0; level < m.K; level++ {
		x, y := 1, 1
		switch rv := r.Float64(); {
		case rv < pa:
			x, y = 0, 0
		case rv < pa+pb:
			x, y = 0, 1
		case rv < pa+2*pb:
			x, y = 1, 0
		}
		u = u<<1 | x
		v = v<<1 | y
	}
	return u, v
}

// dropUnique draws ball drops from r until it has accepted `need` keys
// distinct from each other and from the sorted `exclude` set, or until
// maxAttempts drops have been made, and returns the accepted keys as a
// sorted slice. Duplicate elimination is map-free: candidates are
// gathered in rounds sized to the remaining need, each round is sorted
// and deduplicated (parallel.SortInt64 on the packed keys) and merged
// into the sorted accepted set, and per-drop membership tests are
// binary searches against that set.
//
// The rounds replay the historical one-map-lookup-per-drop generator
// exactly: every drop consumes K draws from r; self-loops and keys
// already accepted (or excluded) are rejected by the same rules; a
// candidate that duplicates an earlier candidate of its own round
// merely ends the round early, after which the next round's membership
// filter rejects it — so acceptance reaches `need` at precisely the
// drop where the serial generator accepted its last key. The accepted
// key set and the final state of r are therefore identical to the
// map-based implementation for every seed.
func (m Model) dropUnique(ctx context.Context, r *randx.Rand, pa, pb float64, need, maxAttempts int, exclude []int64) []int64 {
	var fn func(int64) (bool, error)
	if exclude != nil {
		fn = func(key int64) (bool, error) {
			_, dup := slices.BinarySearch(exclude, key)
			return dup, nil
		}
	}
	// The error path is unreachable with a slice-backed probe.
	accepted, _ := m.dropUniqueFn(ctx, r, pa, pb, need, maxAttempts, fn)
	return accepted
}

// SampleBallDropNWorkers shards ball dropping over per-shard edge
// quotas on up to workers goroutines (<= 0 selects
// runtime.GOMAXPROCS(0)). The target is split across a fixed number of
// shards, each dropping its quota with a private random stream and
// shard-local sort-and-dedup duplicate elimination (dropUnique); the
// shards' sorted keys are then merged with a global radix-sort dedup
// pass, and a final serial top-up stream replaces the few edges lost
// to cross-shard collisions. The shard count, every stream derivation,
// the per-stream drop order, and the top-up semantics depend only on
// the model and target, so for a given seed the sampled graph is
// identical for every worker count — and identical to what the
// historical map-based dedup produced.
func (m Model) SampleBallDropNWorkers(rng *randx.Rand, target, workers int) *graph.Graph {
	g, _ := m.SampleBallDropNCtx(pipeline.New(nil, workers, nil), rng, target)
	return g
}

// SampleBallDropNCtx is SampleBallDropN under a pipeline Run: the
// worker budget comes from run, the per-shard quota fan-out and the
// dedup sort check the context between shards, the serial top-up checks
// it between rounds, and a "sample-ball-drop" stage event pair is
// emitted. A run that is never cancelled samples the exact graph
// SampleBallDropNWorkers produces for the same seed; a cancelled run
// returns run.Err().
func (m Model) SampleBallDropNCtx(run *pipeline.Run, rng *randx.Rand, target int) (*graph.Graph, error) {
	done := run.Stage("sample-ball-drop")
	n := m.NumNodes()
	maxPairs := n * (n - 1) / 2
	if target > maxPairs {
		target = maxPairs
	}
	sum := m.Init.EdgeSum()
	if sum == 0 || target <= 0 {
		if err := run.Err(); err != nil {
			return nil, err
		}
		done()
		return graph.Empty(n), nil
	}
	pa := m.Init.A / sum
	pb := m.Init.B / sum

	shards := parallel.DefaultShards
	if shards > target {
		shards = target
	}
	ctx := run.Context()
	rngs := parallel.Streams(rng, shards+1) // last stream is the top-up
	quota := func(s int) int {
		q := target / shards
		if s < target%shards {
			q++
		}
		return q
	}
	parts := make([][]int64, shards)
	if err := parallel.RunCtx(ctx, run.Workers(), shards, func(s int) {
		// Cap total attempts: dense targets on tiny graphs may need many
		// re-drops; 200·quota + 1000 is far beyond what the sparse
		// regimes of the paper require but keeps the routine total.
		q := quota(s)
		parts[s] = m.dropUnique(ctx, rngs[s], pa, pb, q, 200*q+1000, nil)
	}); err != nil {
		return nil, err
	}
	// dropUnique returns early (with a partial shard) when it observes
	// cancellation mid-shard, which RunCtx cannot see; re-checking here
	// rejects any such partial fan-out.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Concatenate the per-shard keys, radix-sort, and deduplicate: the
	// result is the same edge set the historical shard-ordered map merge
	// placed. Then top up the edges lost to cross-shard collisions from
	// the dedicated final stream, excluding everything already placed.
	total := 0
	for _, keys := range parts {
		total += len(keys)
	}
	all := make([]int64, 0, total)
	for _, keys := range parts {
		all = append(all, keys...)
	}
	if _, err := parallel.SortInt64Ctx(ctx, run.Workers(), all, nil); err != nil {
		return nil, err
	}
	uniq := slices.Compact(all)
	if len(uniq) < target {
		extra := m.dropUnique(ctx, rngs[shards], pa, pb, target-len(uniq), 200*target+1000, uniq)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		uniq = parallel.MergeSortedInt64(uniq, extra)
	}
	b := graph.NewBuilderCap(n, len(uniq))
	b.AddPackedEdges(uniq)
	g := b.BuildWorkers(run.Workers())
	done()
	return g, nil
}

// Sample draws a graph using the exact sampler for K <= 13 and ball
// dropping otherwise. This matches how the experiment harness treats
// "original" graphs (exact) versus bulk synthetic realizations (fast).
func (m Model) Sample(rng *randx.Rand) *graph.Graph {
	return m.SampleWorkers(rng, 0)
}

// SampleWorkers is Sample with an explicit worker count (<= 0 selects
// runtime.GOMAXPROCS(0)); the sampled graph is identical for every
// worker count.
func (m Model) SampleWorkers(rng *randx.Rand, workers int) *graph.Graph {
	g, _ := m.SampleCtx(pipeline.New(nil, workers, nil), rng)
	return g
}

// SampleCtx is Sample under a pipeline Run (see SampleExactCtx and
// SampleBallDropNCtx for the cancellation contract).
func (m Model) SampleCtx(run *pipeline.Run, rng *randx.Rand) (*graph.Graph, error) {
	if m.K <= 13 {
		return m.SampleExactCtx(run, rng)
	}
	return m.SampleBallDropCtx(run, rng)
}

// SampleBallDropWorkers is SampleBallDrop with an explicit worker count.
func (m Model) SampleBallDropWorkers(rng *randx.Rand, workers int) *graph.Graph {
	g, _ := m.SampleBallDropCtx(pipeline.New(nil, workers, nil), rng)
	return g
}

// SampleBallDropCtx is SampleBallDrop under a pipeline Run (see
// SampleBallDropNCtx for the cancellation contract).
func (m Model) SampleBallDropCtx(run *pipeline.Run, rng *randx.Rand) (*graph.Graph, error) {
	target := int(math.Round(m.ExpectedFeatures().E))
	return m.SampleBallDropNCtx(run, rng, target)
}

// KroneckerPower returns the dense k-th Kronecker power of a dense
// matrix; it is exponential in k and intended for tests (Definition 3.3).
func KroneckerPower(m [][]float64, k int) [][]float64 {
	out := [][]float64{{1}}
	for i := 0; i < k; i++ {
		out = kroneckerProduct(out, m)
	}
	return out
}

func kroneckerProduct(a, b [][]float64) [][]float64 {
	ra, rb := len(a), len(b)
	ca, cb := 0, 0
	if ra > 0 {
		ca = len(a[0])
	}
	if rb > 0 {
		cb = len(b[0])
	}
	out := make([][]float64, ra*rb)
	for i := range out {
		out[i] = make([]float64, ca*cb)
	}
	for i := 0; i < ra; i++ {
		for j := 0; j < ca; j++ {
			for p := 0; p < rb; p++ {
				for q := 0; q < cb; q++ {
					out[i*rb+p][j*cb+q] = a[i][j] * b[p][q]
				}
			}
		}
	}
	return out
}
