package skg

import (
	"math"
	"testing"
	"testing/quick"

	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

// --- brute-force expectations computed directly from the explicit P ---

// bruteExpected computes E[E], E[H], E[T], E[Delta] by direct summation
// over the probability matrix: the oracle for the closed forms.
func bruteExpected(m Model) stats.Features {
	P := m.ProbMatrix()
	n := len(P)
	var e float64
	for u := 0; u < n; u++ {
		for v := 0; v < u; v++ {
			e += P[u][v]
		}
	}
	// Hairpins and tripins: elementary symmetric sums over each row's
	// off-diagonal entries.
	var h, t float64
	for i := 0; i < n; i++ {
		var p1, p2, p3 float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			x := P[i][j]
			p1 += x
			p2 += x * x
			p3 += x * x * x
		}
		h += (p1*p1 - p2) / 2
		t += (p1*p1*p1 - 3*p1*p2 + 2*p3) / 6
	}
	// Triangles: sum over unordered triples.
	var d float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for l := j + 1; l < n; l++ {
				d += P[i][j] * P[i][l] * P[j][l]
			}
		}
	}
	return stats.Features{E: e, H: h, T: t, Delta: d}
}

func mustModel(t *testing.T, a, b, c float64, k int) Model {
	t.Helper()
	m, err := NewModel(Initiator{A: a, B: b, C: c}, k)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// relClose compares with a relative tolerance plus a small absolute
// floor: the closed forms subtract k-th powers of O(1) quantities, so
// results that are tiny relative to the summands carry ~1e-14 of
// unavoidable cancellation noise in both the closed form and the oracle.
func relClose(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)+1e-9
}

func TestExpectedFeaturesVsBrute(t *testing.T) {
	cases := []struct {
		a, b, c float64
		k       int
	}{
		{0.99, 0.45, 0.25, 2},
		{0.99, 0.45, 0.25, 3},
		{0.99, 0.45, 0.25, 4},
		{1.0, 0.4674, 0.2790, 3}, // paper's CA-GrQc KronMom estimate
		{1.0, 0.63, 0.0, 4},      // paper's AS20 estimate (b > 0, c = 0)
		{0.7, 0.2, 0.6, 3},       // a != c, b > 0: distinguishes the E[T] variants
		{0.5, 0.5, 0.5, 4},
		{0.3, 0.1, 0.9, 5},
		{1.0, 1.0, 1.0, 3},
		{0.0, 0.5, 1.0, 3},
	}
	for _, cse := range cases {
		m := mustModel(t, cse.a, cse.b, cse.c, cse.k)
		got := m.ExpectedFeatures()
		want := bruteExpected(m)
		if !relClose(got.E, want.E, 1e-9) {
			t.Errorf("%v k=%d: E = %v, brute %v", m.Init, m.K, got.E, want.E)
		}
		if !relClose(got.H, want.H, 1e-9) {
			t.Errorf("%v k=%d: H = %v, brute %v", m.Init, m.K, got.H, want.H)
		}
		if !relClose(got.T, want.T, 1e-9) {
			t.Errorf("%v k=%d: T = %v, brute %v", m.Init, m.K, got.T, want.T)
		}
		if !relClose(got.Delta, want.Delta, 1e-9) {
			t.Errorf("%v k=%d: Delta = %v, brute %v", m.Init, m.K, got.Delta, want.Delta)
		}
	}
}

func TestQuickExpectedFeaturesVsBrute(t *testing.T) {
	f := func(ar, br, cr uint16, kr uint8) bool {
		a := float64(ar) / 65535
		b := float64(br) / 65535
		c := float64(cr) / 65535
		k := 2 + int(kr)%3 // k in {2,3,4}
		m, err := NewModel(Initiator{A: a, B: b, C: c}, k)
		if err != nil {
			return false
		}
		got := m.ExpectedFeatures()
		want := bruteExpected(m)
		return relClose(got.E, want.E, 1e-8) && relClose(got.H, want.H, 1e-8) &&
			relClose(got.T, want.T, 1e-8) && relClose(got.Delta, want.Delta, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEdgeProbMatchesKroneckerPower(t *testing.T) {
	m := mustModel(t, 0.9, 0.5, 0.2, 4)
	P := KroneckerPower(m.Init.Dense(), m.K)
	n := m.NumNodes()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if math.Abs(m.EdgeProb(u, v)-P[u][v]) > 1e-12 {
				t.Fatalf("EdgeProb(%d,%d) = %v, kron power %v", u, v, m.EdgeProb(u, v), P[u][v])
			}
		}
	}
}

func TestProbMatrixMatchesEdgeProb(t *testing.T) {
	m := mustModel(t, 0.8, 0.3, 0.6, 5)
	P := m.ProbMatrix()
	for u := 0; u < m.NumNodes(); u += 7 {
		for v := 0; v < m.NumNodes(); v += 5 {
			if math.Abs(P[u][v]-m.EdgeProb(u, v)) > 1e-15 {
				t.Fatalf("mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestQuadrantCountsSum(t *testing.T) {
	m := mustModel(t, 0.5, 0.5, 0.5, 7)
	for u := 0; u < m.NumNodes(); u += 11 {
		for v := 0; v < m.NumNodes(); v += 13 {
			na, nb, nc := m.QuadrantCounts(u, v)
			if na+nb+nc != m.K || na < 0 || nb < 0 || nc < 0 {
				t.Fatalf("QuadrantCounts(%d,%d) = %d,%d,%d", u, v, na, nb, nc)
			}
		}
	}
}

func TestQuadrantCountsKnown(t *testing.T) {
	m := mustModel(t, 0.5, 0.5, 0.5, 3)
	// u = 0b101, v = 0b001: levels (1,0),(0,0),(1,1) -> na=1, nb=1, nc=1.
	na, nb, nc := m.QuadrantCounts(0b101, 0b001)
	if na != 1 || nb != 1 || nc != 1 {
		t.Fatalf("QuadrantCounts = %d,%d,%d, want 1,1,1", na, nb, nc)
	}
}

func TestSampleExactMatchesExpectations(t *testing.T) {
	m := mustModel(t, 0.99, 0.45, 0.25, 8)
	rng := randx.New(42)
	const trials = 60
	var sumE, sumH, sumD float64
	for i := 0; i < trials; i++ {
		g := m.SampleExact(rng)
		f := stats.FeaturesOf(g)
		sumE += f.E
		sumH += f.H
		sumD += f.Delta
	}
	want := m.ExpectedFeatures()
	if got := sumE / trials; !relClose(got, want.E, 0.05) {
		t.Errorf("mean edges %v vs expected %v", got, want.E)
	}
	if got := sumH / trials; !relClose(got, want.H, 0.10) {
		t.Errorf("mean hairpins %v vs expected %v", got, want.H)
	}
	if got := sumD / trials; !relClose(got, want.Delta, 0.25) {
		t.Errorf("mean triangles %v vs expected %v", got, want.Delta)
	}
}

func TestSampleExactIsValidSimpleGraph(t *testing.T) {
	m := mustModel(t, 0.9, 0.6, 0.3, 7)
	g := m.SampleExact(randx.New(7))
	if g.NumNodes() != 128 {
		t.Fatalf("nodes = %d, want 128", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleBallDropEdgeCount(t *testing.T) {
	m := mustModel(t, 0.99, 0.55, 0.35, 10)
	g := m.SampleBallDrop(randx.New(9))
	want := int(math.Round(m.ExpectedFeatures().E))
	if g.NumEdges() != want {
		t.Fatalf("ball drop edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleBallDropStatisticsTrackExact(t *testing.T) {
	// The two samplers should produce graphs with similar wedge and
	// triangle counts on average (ball dropping approximates the SKG).
	m := mustModel(t, 0.99, 0.5, 0.2, 9)
	rngA, rngB := randx.New(3), randx.New(4)
	const trials = 20
	var hExact, hDrop, dExact, dDrop float64
	for i := 0; i < trials; i++ {
		fe := stats.FeaturesOf(m.SampleExact(rngA))
		fd := stats.FeaturesOf(m.SampleBallDrop(rngB))
		hExact += fe.H
		hDrop += fd.H
		dExact += fe.Delta
		dDrop += fd.Delta
	}
	if !relClose(hDrop, hExact, 0.15) {
		t.Errorf("mean hairpins: drop %v vs exact %v", hDrop/trials, hExact/trials)
	}
	if !relClose(dDrop, dExact, 0.45) {
		t.Errorf("mean triangles: drop %v vs exact %v", dDrop/trials, dExact/trials)
	}
}

func TestSampleBallDropZeroMass(t *testing.T) {
	m := mustModel(t, 0, 0, 0, 5)
	g := m.SampleBallDrop(randx.New(1))
	if g.NumEdges() != 0 {
		t.Fatalf("zero-mass initiator produced %d edges", g.NumEdges())
	}
}

func TestSampleDispatch(t *testing.T) {
	m := mustModel(t, 0.9, 0.4, 0.2, 6)
	g := m.Sample(randx.New(2))
	if g.NumNodes() != 64 {
		t.Fatal("Sample produced wrong node count")
	}
}

func TestCanonical(t *testing.T) {
	in := Initiator{A: 0.2, B: 0.5, C: 0.9}
	canon := in.Canonical()
	if canon.A != 0.9 || canon.C != 0.2 || canon.B != 0.5 {
		t.Fatalf("Canonical = %+v", canon)
	}
	already := Initiator{A: 0.9, B: 0.5, C: 0.2}
	if already.Canonical() != already {
		t.Fatal("Canonical changed an already-canonical initiator")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(Initiator{A: 1.2, B: 0, C: 0}, 3); err == nil {
		t.Error("accepted entry > 1")
	}
	if _, err := NewModel(Initiator{A: 0.5, B: -0.1, C: 0}, 3); err == nil {
		t.Error("accepted negative entry")
	}
	if _, err := NewModel(Initiator{A: 0.5, B: 0.1, C: 0.2}, 0); err == nil {
		t.Error("accepted K = 0")
	}
	if _, err := NewModel(Initiator{A: 0.5, B: 0.1, C: 0.2}, 31); err == nil {
		t.Error("accepted K = 31")
	}
	if _, err := NewModel(Initiator{A: math.NaN(), B: 0.1, C: 0.2}, 3); err == nil {
		t.Error("accepted NaN entry")
	}
}

func TestKroneckerPowerDims(t *testing.T) {
	P := KroneckerPower([][]float64{{1, 2}, {3, 4}}, 3)
	if len(P) != 8 || len(P[0]) != 8 {
		t.Fatalf("Kronecker power dims = %dx%d", len(P), len(P[0]))
	}
	// Entry (0,0) of the cube is 1; entry (7,7) is 4³ = 64.
	if P[0][0] != 1 || P[7][7] != 64 {
		t.Fatalf("corner entries = %v, %v", P[0][0], P[7][7])
	}
}

func TestExpectedEdgesMonotoneInK(t *testing.T) {
	prev := 0.0
	for k := 2; k <= 10; k++ {
		m := mustModel(t, 0.99, 0.45, 0.25, k)
		e := m.ExpectedFeatures().E
		if e <= prev {
			t.Fatalf("expected edges not increasing at k=%d: %v <= %v", k, e, prev)
		}
		prev = e
	}
}

func TestExpectedFeaturesNonNegative(t *testing.T) {
	f := func(ar, br, cr uint16, kr uint8) bool {
		m, err := NewModel(Initiator{
			A: float64(ar) / 65535, B: float64(br) / 65535, C: float64(cr) / 65535,
		}, 2+int(kr)%9)
		if err != nil {
			return false
		}
		ef := m.ExpectedFeatures()
		const eps = -1e-6
		return ef.E >= eps && ef.H >= eps && ef.T >= eps && ef.Delta >= eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
