package skg

import (
	"testing"

	"dpkron/internal/randx"
)

// The parallel samplers must be deterministic in the seed and invariant
// in the worker count: the sharded design attaches random streams to
// fixed work units, so any number of goroutines reproduces the same
// graph. These tests are the module's contract for that property and
// are meant to run under -race.

func TestSampleExactWorkerInvariant(t *testing.T) {
	m := mustModel(t, 0.99, 0.45, 0.25, 10)
	base := m.SampleExactWorkers(randx.New(42), 1)
	if base.NumEdges() == 0 {
		t.Fatal("degenerate sample")
	}
	for _, workers := range []int{2, 4, 8} {
		g := m.SampleExactWorkers(randx.New(42), workers)
		if !g.Equal(base) {
			t.Fatalf("workers=%d: sampled edge set differs from workers=1", workers)
		}
	}
	// And the default entry point agrees too.
	if !m.SampleExact(randx.New(42)).Equal(base) {
		t.Fatal("SampleExact differs from SampleExactWorkers")
	}
}

func TestSampleExactWorkerInvariantTinyAndAsymmetric(t *testing.T) {
	// Edge cases: fewer rows than shards, and an asymmetric initiator.
	for _, k := range []int{1, 2, 3, 7} {
		m := mustModel(t, 0.9, 0.3, 0.6, k)
		base := m.SampleExactWorkers(randx.New(9), 1)
		for _, workers := range []int{4, 8} {
			if !m.SampleExactWorkers(randx.New(9), workers).Equal(base) {
				t.Fatalf("k=%d workers=%d: edge set differs", k, workers)
			}
		}
	}
}

func TestSampleBallDropWorkerInvariant(t *testing.T) {
	m := mustModel(t, 0.99, 0.55, 0.35, 11)
	base := m.SampleBallDropWorkers(randx.New(7), 1)
	for _, workers := range []int{2, 4, 8} {
		g := m.SampleBallDropWorkers(randx.New(7), workers)
		if !g.Equal(base) {
			t.Fatalf("workers=%d: ball-drop edge set differs from workers=1", workers)
		}
	}
	if !m.SampleBallDrop(randx.New(7)).Equal(base) {
		t.Fatal("SampleBallDrop differs from SampleBallDropWorkers")
	}
}

func TestSampleBallDropNWorkersHitsTarget(t *testing.T) {
	m := mustModel(t, 0.99, 0.5, 0.2, 10)
	for _, target := range []int{1, 10, 500, 2000} {
		for _, workers := range []int{1, 4, 8} {
			g := m.SampleBallDropNWorkers(randx.New(3), target, workers)
			if g.NumEdges() != target {
				t.Fatalf("target=%d workers=%d: placed %d edges", target, workers, g.NumEdges())
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSampleWorkersDispatchInvariant(t *testing.T) {
	// Below and above the K=13 exact/ball-drop dispatch threshold.
	for _, k := range []int{12, 14} {
		m := mustModel(t, 0.99, 0.45, 0.25, k)
		base := m.SampleWorkers(randx.New(5), 1)
		if !m.SampleWorkers(randx.New(5), 8).Equal(base) {
			t.Fatalf("k=%d: SampleWorkers not worker-invariant", k)
		}
	}
}
