package release

import "dpkron/internal/obs"

// cacheMetrics is the release cache's telemetry. Hits and misses are
// counted on Get — the serving path — so the ratio is the fraction of
// distinct-question fits answered at zero budget. Corrupt counts
// validation-failed entries evicted for transparent recompute: a
// nonzero rate means disk-level damage, not a privacy event (a
// damaged release is never served). The zero value no-ops.
type cacheMetrics struct {
	hits    *obs.Counter
	misses  *obs.Counter
	corrupt *obs.Counter
	puts    *obs.Counter
}

// Instrument registers the cache's metrics on reg. Call once, before
// serving traffic; a nil reg leaves the cache uninstrumented.
func (c *Cache) Instrument(reg *obs.Registry) {
	c.met = cacheMetrics{
		hits:    reg.Counter("dpkron_release_cache_hits_total", "Fit questions answered from the release cache (zero budget, zero compute)."),
		misses:  reg.Counter("dpkron_release_cache_misses_total", "Release cache lookups that found no valid entry."),
		corrupt: reg.Counter("dpkron_release_cache_corrupt_total", "Cache entries that failed validation and were evicted for recompute."),
		puts:    reg.Counter("dpkron_release_cache_puts_total", "Releases stored into the cache."),
	}
}
