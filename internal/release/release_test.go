package release

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpkron/internal/core"
)

// testKey returns a Key built the way the server builds one: the
// planned (data-independent) charge schedule supplies policy and
// mechanism config.
func testKey(t *testing.T) Key {
	t.Helper()
	return KeyFor("ds-0123456789abcdef", 0.5, 0.01, 10, 9, core.PlannedReceipt(0.5, 0.01))
}

type testPayload struct {
	Initiator []float64 `json:"initiator"`
	Note      string    `json:"note,omitempty"`
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := testPayload{Initiator: []float64{0.99, 0.55, 0.35}}
	e, err := c.Put(key, want)
	if err != nil {
		t.Fatal(err)
	}
	if e.Fingerprint != key.Fingerprint() || !validID(e.Fingerprint) {
		t.Fatalf("entry fingerprint %q", e.Fingerprint)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	var back testPayload
	if err := json.Unmarshal(got.Payload, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("payload round trip = %+v, want %+v", back, want)
	}

	// A second handle on the same directory (another process) sees the
	// entry, fully re-validated from disk.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("fresh handle missed a persisted entry")
	}

	// Info and List agree; List strips payloads.
	info, err := c.Info(e.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if string(info.Payload) != string(got.Payload) {
		t.Fatal("Info payload differs from Get payload")
	}
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Fingerprint != e.Fingerprint || list[0].Payload != nil {
		t.Fatalf("List = %+v", list)
	}

	// Delete removes it everywhere — including from the other handle's
	// LRU, via the stat-before-serve re-check.
	if err := c.Delete(e.Fingerprint); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("deleted entry served")
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("deleted entry served from a stale LRU")
	}
	if err := c.Delete(e.Fingerprint); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
}

func TestCachePutOverwrites(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	if _, err := c.Put(key, testPayload{Note: "first"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(key, testPayload{Note: "second"}); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after overwrite")
	}
	var p testPayload
	if err := json.Unmarshal(e.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.Note != "second" {
		t.Fatalf("payload note = %q, want the overwrite", p.Note)
	}
}

// TestKeyEveryComponentChangesFingerprint is the negative-key property
// test: fits differing in any single key component must never share a
// cache entry. It is table-driven over the Key struct's fields via
// reflection, so adding a field to Key without extending both the
// fingerprint and this table turns into a test failure instead of a
// silent cache collision.
func TestKeyEveryComponentChangesFingerprint(t *testing.T) {
	base := testKey(t)
	mutations := map[string]Key{
		"DatasetID":  func(k Key) Key { k.DatasetID = "ds-fedcba9876543210"; return k }(base),
		"Eps":        func(k Key) Key { k.Eps = 0.50000000000000011; return k }(base),
		"Delta":      func(k Key) Key { k.Delta = 0.02; return k }(base),
		"K":          func(k Key) Key { k.K = 11; return k }(base),
		"Seed":       func(k Key) Key { k.Seed = 10; return k }(base),
		"Policy":     func(k Key) Key { k.Policy = "parallel"; return k }(base),
		"Mechanisms": func(k Key) Key { k.Mechanisms = k.Mechanisms + ";extra"; return k }(base),
	}
	rt := reflect.TypeOf(Key{})
	for i := 0; i < rt.NumField(); i++ {
		if _, ok := mutations[rt.Field(i).Name]; !ok {
			t.Errorf("Key field %s has no mutation case: extend Fingerprint and this table", rt.Field(i).Name)
		}
	}
	if len(mutations) != rt.NumField() {
		t.Errorf("mutation table has %d cases for %d Key fields", len(mutations), rt.NumField())
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for field, mutated := range mutations {
		fp := mutated.Fingerprint()
		if !validID(fp) {
			t.Errorf("%s: fingerprint %q is malformed", field, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutating %s collides with %s (fingerprint %s)", field, prev, fp)
			continue
		}
		seen[fp] = field
	}
}

// TestKeyForDistinguishesMechanismConfig: two budgets with the same
// totals but different planned schedules (different ε split or β)
// must key differently even before any explicit field is varied.
func TestKeyForDistinguishesMechanismConfig(t *testing.T) {
	a := KeyFor("ds-0123456789abcdef", 0.5, 0.01, 10, 9, core.PlannedReceipt(0.5, 0.01))
	b := KeyFor("ds-0123456789abcdef", 0.5, 0.02, 10, 9, core.PlannedReceipt(0.5, 0.02))
	if a.Mechanisms == b.Mechanisms {
		t.Fatal("different δ produced identical mechanism config strings")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different planned schedules share a fingerprint")
	}
}

// corruptions are the hostile on-disk states a cache must detect and
// refuse to serve: each mutilates a valid persisted entry in place.
var corruptions = map[string]func(t *testing.T, path string){
	"truncated": func(t *testing.T, path string) {
		data := readEntryFile(t, path)
		writeEntryFile(t, path, data[:len(data)/2])
	},
	"payload-bit-flip": func(t *testing.T, path string) {
		data := readEntryFile(t, path)
		i := strings.Index(string(data), `"payload"`)
		if i < 0 {
			t.Fatal("no payload field in entry file")
		}
		// Flip a digit inside the payload region without breaking JSON.
		j := strings.IndexAny(string(data[i:]), "0123456789")
		if j < 0 {
			t.Fatal("no digit to flip in payload")
		}
		data[i+j] = '0' + ('9' - data[i+j])
		writeEntryFile(t, path, data)
	},
	"key-field-swap": func(t *testing.T, path string) {
		// Rewrite the key's seed: the checksum still matches the payload,
		// but the key no longer fingerprints to the filename — serving it
		// would answer the wrong question.
		var e map[string]any
		if err := json.Unmarshal(readEntryFile(t, path), &e); err != nil {
			t.Fatal(err)
		}
		key := e["key"].(map[string]any)
		key["seed"] = key["seed"].(float64) + 1
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		writeEntryFile(t, path, data)
	},
	"garbage": func(t *testing.T, path string) {
		writeEntryFile(t, path, []byte("not json at all"))
	},
	"empty": func(t *testing.T, path string) {
		writeEntryFile(t, path, nil)
	},
}

func readEntryFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeEntryFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCacheHostileEntries: every corruption is detected, reported as a
// miss (never served, never an error), and the damaged file evicted so
// the slot is clean for the recompute's Put.
func TestCacheHostileEntries(t *testing.T) {
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(t)
			e, err := c.Put(key, testPayload{Initiator: []float64{1, 2, 3}})
			if err != nil {
				t.Fatal(err)
			}
			path := c.entryPath(e.Fingerprint)
			corrupt(t, path)
			// A fresh handle (no LRU copy) must detect the damage.
			fresh, err := Open(c.Dir())
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(key); ok {
				t.Fatal("corrupt entry served")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not evicted")
			}
			// The slot is reusable: a recompute stores and serves again.
			if _, err := fresh.Put(key, testPayload{Initiator: []float64{1, 2, 3}}); err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(key); !ok {
				t.Fatal("recomputed entry missed")
			}
		})
	}
}

// TestCacheInfoReportsCorruption: Info surfaces ErrCorrupt (without
// evicting) so operators can inspect before `cache rm`.
func TestCacheInfoReportsCorruption(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := c.Put(testKey(t), testPayload{Note: "x"})
	if err != nil {
		t.Fatal(err)
	}
	writeEntryFile(t, c.entryPath(e.Fingerprint), []byte("{"))
	fresh, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Info(e.Fingerprint); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Info on corrupt entry = %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(c.entryPath(e.Fingerprint)); err != nil {
		t.Fatal("Info evicted the entry; it should only inspect")
	}
	// List skips it instead of failing.
	list, err := fresh.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("List served %d corrupt entries", len(list))
	}
}

// TestCachePathTraversalRejected: hostile ids never touch the
// filesystem outside the cache directory, matching the dataset
// store's guard.
func TestCachePathTraversalRejected(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"../../../etc/passwd",
		"rel-../../etc/passwd",
		"rel-0123456789ABCDEF", // uppercase hex is not canonical
		"rel-0123",
		"ds-0123456789abcdef",
		"",
		"rel-0123456789abcde/",
	} {
		if _, err := c.Info(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Info(%q) = %v, want ErrNotFound", id, err)
		}
		if err := c.Delete(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete(%q) = %v, want ErrNotFound", id, err)
		}
	}
}

// TestCacheLRUBound: the in-memory layer stays bounded while every
// entry remains servable from disk.
func TestCacheLRUBound(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testKey(t)
	keys := make([]Key, lruSize+8)
	for i := range keys {
		k := base
		k.Seed = uint64(i + 1)
		keys[i] = k
		if _, err := c.Put(k, testPayload{Note: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	held, ordered := len(c.lru), len(c.order)
	c.mu.Unlock()
	if held != lruSize || ordered != lruSize {
		t.Fatalf("LRU holds %d/%d entries, want %d", held, ordered, lruSize)
	}
	for _, k := range keys {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("seed %d evicted from disk by LRU pressure", k.Seed)
		}
	}
}
