package release

import (
	"errors"
	"path/filepath"
	"testing"

	"dpkron/internal/faultfs"
)

// TestCachePutInjectedFaults drives Put through every fault point of
// its tmp + fsync + rename path. The invariant: a failed Put reports
// the error and leaves no entry — neither a hit in this process nor a
// readable file for a fresh cache — and the cache keeps working once
// the fault clears.
func TestCachePutInjectedFaults(t *testing.T) {
	faults := []faultfs.Fault{
		{Op: faultfs.OpOpen, Path: ".json.tmp"},
		{Op: faultfs.OpWrite, Path: ".json.tmp", Short: 9},
		{Op: faultfs.OpSync, Path: ".json.tmp"},
		{Op: faultfs.OpRename, Path: ".json.tmp"},
	}
	for _, fault := range faults {
		t.Run(string(fault.Op), func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS)
			dir := filepath.Join(t.TempDir(), "cache")
			c, err := OpenFS(inj, dir)
			if err != nil {
				t.Fatal(err)
			}
			key := testKey(t)
			inj.Fail(fault)
			if _, err := c.Put(key, testPayload{Initiator: []float64{0.9, 0.6, 0.6, 0.2}}); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Put under %s fault: %v, want ErrInjected", fault.Op, err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatalf("failed Put left a hit in the same process")
			}
			fresh, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(key); ok {
				t.Fatalf("failed Put under %s fault reached disk", fault.Op)
			}
			if _, err := c.Put(key, testPayload{Initiator: []float64{0.9, 0.6, 0.6, 0.2}}); err != nil {
				t.Fatalf("Put after fault cleared: %v", err)
			}
			if _, ok := fresh.Get(key); !ok {
				t.Fatal("entry not visible after the fault cleared")
			}
		})
	}
}

// TestCacheTornEntryCountsAsMiss: a short write that does land (the
// crash-mid-Put artifact a rename would have hidden, simulated by
// renaming the torn tmp into place) must read as a miss, not a served
// half-release.
func TestCacheTornEntryCountsAsMiss(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	dir := filepath.Join(t.TempDir(), "cache")
	c, err := OpenFS(inj, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	// Torn write, then let the rename go through anyway: the entry file
	// now holds half an entry.
	inj.Fail(faultfs.Fault{Op: faultfs.OpWrite, Path: ".json.tmp", Short: 40})
	if _, err := c.Put(key, testPayload{Initiator: []float64{0.9, 0.6, 0.6, 0.2}}); err == nil {
		t.Fatal("torn Put reported success")
	}
	if err := faultfs.OS.Rename(c.entryPath(key.Fingerprint())+".tmp", c.entryPath(key.Fingerprint())); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(key); ok {
		t.Fatal("torn entry served as a hit")
	}
}
