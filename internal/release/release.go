// Package release is a persistent, content-addressed cache of
// privatized fit results. Under differential privacy, post-processing
// is free: once a release has been produced for a given (dataset,
// ε, δ, composition policy, mechanism config, seed) question, serving
// the stored answer again consumes zero additional budget and zero
// compute. The cache therefore turns the server's scaling story from
// "one fit per request" into "one fit per distinct question".
//
// Correctness is a privacy property here. A spurious miss double-
// debits a budget that should have been charged once; a wrong hit
// returns the answer to a different question. Both failure modes are
// pinned by tests: every component of Key feeds the fingerprint (a
// table-driven property test fails when a field is added without
// extending it), and persisted entries carry a payload checksum plus
// their own fingerprint, so a corrupt, truncated or bit-flipped file
// is detected, evicted and transparently recomputed instead of served.
//
// Persistence follows the ledger/dataset-store discipline: one JSON
// file per entry under the cache directory, written via tmp file +
// fsync + atomic rename, with mutations serialized through an
// in-process mutex plus an advisory file lock (internal/fslock) so
// separate processes can share a directory. A bounded in-memory LRU
// fronts the disk for the hot ids.
package release

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/faultfs"
	"dpkron/internal/fslock"
)

// ErrNotFound marks operations naming a release the cache does not
// hold. Servers map it to 404.
var ErrNotFound = errors.New("release: not found")

// ErrCorrupt marks a persisted entry that failed validation — torn
// JSON, a fingerprint that does not match its key or filename, or a
// payload whose checksum disagrees. Get treats it as a miss (after
// evicting the damaged file); Info surfaces it.
var ErrCorrupt = errors.New("release: corrupt entry")

// Key identifies one distinct private-fit question. Two fits share a
// cache entry exactly when every field matches; the negative-key
// property test in release_test.go enforces that each field feeds
// Fingerprint, so adding a field here without extending Fingerprint
// (and the test's mutation table) is a test failure, not a silent
// cache collision.
type Key struct {
	// DatasetID is the graph's content fingerprint
	// (accountant.DatasetID) — the bytes being fitted, independent of
	// how they arrived or which ledger account pays.
	DatasetID string `json:"dataset_id"`
	// Eps and Delta are the requested privacy budget.
	Eps   float64 `json:"eps"`
	Delta float64 `json:"delta"`
	// K is the resolved Kronecker power (callers canonicalize an
	// inferred power before building the key, so "k: 0" and the
	// explicit equivalent share an entry).
	K int `json:"k"`
	// Seed drives all estimator randomness.
	Seed uint64 `json:"seed"`
	// Policy is the composition policy name ("sequential").
	Policy string `json:"policy"`
	// Mechanisms is the canonical serialization of the planned charge
	// schedule (query, mechanism, sensitivity/β, per-charge ε/δ), so a
	// change to the mechanism configuration — even at identical total
	// budget — never reuses an old release.
	Mechanisms string `json:"mechanisms"`
}

// KeyFor builds the Key for a private fit of the identified dataset,
// deriving Policy and Mechanisms from the planned charge schedule
// (core.PlannedReceipt — data-independent, so the key exists before
// the fit runs).
func KeyFor(datasetID string, eps, delta float64, k int, seed uint64, planned accountant.Receipt) Key {
	parts := make([]string, 0, len(planned.Charges))
	for _, c := range planned.Charges {
		parts = append(parts, fmt.Sprintf("%s|%s|s=%.17g|b=%.17g|e=%.17g|d=%.17g",
			c.Query, c.Mechanism, c.Sensitivity, c.Beta, c.Eps, c.Delta))
	}
	return Key{
		DatasetID:  datasetID,
		Eps:        eps,
		Delta:      delta,
		K:          k,
		Seed:       seed,
		Policy:     planned.Policy,
		Mechanisms: strings.Join(parts, ";"),
	}
}

// Fingerprint returns the key's content-addressed id: "rel-" plus the
// first 16 hex digits of a SHA-256 over the canonical field
// serialization — the same shape (and collision budget) as the
// dataset store's "ds-" ids. Every Key field must be hashed here; the
// property test fails otherwise. Floats are serialized at %.17g, the
// round-trip precision the fingerprint tests pin everywhere else.
func (k Key) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "dpkron-release-v1\n")
	fmt.Fprintf(h, "dataset=%s\n", k.DatasetID)
	fmt.Fprintf(h, "eps=%.17g\ndelta=%.17g\n", k.Eps, k.Delta)
	fmt.Fprintf(h, "k=%d\nseed=%d\n", k.K, k.Seed)
	fmt.Fprintf(h, "policy=%s\nmechanisms=%s\n", k.Policy, k.Mechanisms)
	return fmt.Sprintf("rel-%x", h.Sum(nil)[:8])
}

// Entry is one cached release: the key it answers, the released
// payload (opaque JSON — the server stores its fit result shape), and
// the integrity metadata that lets a loaded file prove it is the
// entry that was stored.
type Entry struct {
	// Fingerprint is Key.Fingerprint(), duplicated so a loaded file
	// can be cross-checked against both its filename and its key.
	Fingerprint string `json:"fingerprint"`
	Key         Key    `json:"key"`
	// Stored is the UTC time the release was cached.
	Stored time.Time `json:"stored"`
	// Checksum is the hex SHA-256 of the payload bytes.
	Checksum string `json:"checksum"`
	// Bytes is the payload length.
	Bytes int `json:"bytes"`
	// Payload is the released result, exactly as stored. List strips
	// it; Get and Info include it.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Cache is a release cache rooted at a directory, one JSON file per
// entry named by its fingerprint, with a bounded in-memory LRU in
// front. All methods are safe for concurrent use.
type Cache struct {
	dir string
	fs  faultfs.FS
	// met carries the telemetry collectors installed by Instrument;
	// the zero value no-ops.
	met cacheMetrics

	mu    sync.Mutex
	lru   map[string]*Entry // fingerprint -> validated entry (immutable)
	order []string          // LRU order, least recently used first
}

// lruSize bounds the entries kept hot in memory. Entries are small
// (a fit result is ~1 KiB) so this is generous for the hit path while
// still bounding a long-running server.
const lruSize = 128

// Open returns a Cache rooted at dir, creating the directory if
// needed.
func Open(dir string) (*Cache, error) { return OpenFS(faultfs.OS, dir) }

// OpenFS is Open against an explicit filesystem (fault-injection
// tests).
func OpenFS(fsys faultfs.FS, dir string) (*Cache, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("release: opening cache: %w", err)
	}
	return &Cache{dir: dir, fs: fsys, lru: map[string]*Entry{}}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

const entryExt = ".json"

// validID reports whether id is safe to splice into a filename: the
// "rel-" fingerprint shape with hex digits only, so a hostile id can
// never traverse out of the cache directory (the dataset store's
// guard, with this package's prefix).
func validID(id string) bool {
	if !strings.HasPrefix(id, "rel-") || len(id) != 4+16 {
		return false
	}
	for _, c := range id[4:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (c *Cache) entryPath(fp string) string { return filepath.Join(c.dir, fp+entryExt) }

// lock takes the cache's cross-process mutation lock.
func (c *Cache) lock() (unlock func(), err error) {
	return fslock.Lock(filepath.Join(c.dir, "cache.lock"))
}

// Put stores payload (marshalled as compact JSON) as the release for
// key, overwriting any previous entry, and returns the stored entry.
func (c *Cache) Put(key Key, payload any) (*Entry, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("release: encoding payload: %w", err)
	}
	fp := key.Fingerprint()
	e := &Entry{
		Fingerprint: fp,
		Key:         key,
		Stored:      time.Now().UTC().Truncate(time.Second),
		Checksum:    fmt.Sprintf("%x", sha256.Sum256(raw)),
		Bytes:       len(raw),
		Payload:     raw,
	}
	// Compact marshal (not indented): Payload is a RawMessage and must
	// round-trip byte-identically for the checksum to keep meaning
	// anything; indentation would rewrite its whitespace on encode.
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("release: encoding entry: %w", err)
	}
	unlock, err := c.lock()
	if err != nil {
		return nil, fmt.Errorf("release: locking cache: %w", err)
	}
	defer unlock()
	if err := writeAtomic(c.fs, c.entryPath(fp), append(data, '\n')); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.remember(fp, e)
	c.mu.Unlock()
	c.met.puts.Inc()
	return e, nil
}

// Get returns the release stored for key, or ok = false on a miss. A
// persisted entry that fails validation (truncated, bit-flipped, or
// swapped under a wrong name) counts as a miss: the damaged file is
// evicted so the caller transparently recomputes instead of serving
// it or failing.
func (c *Cache) Get(key Key) (*Entry, bool) {
	fp := key.Fingerprint()
	c.mu.Lock()
	if e, ok := c.lru[fp]; ok {
		c.touch(fp)
		c.mu.Unlock()
		// Re-check existence so an entry removed by another process (or
		// `dpkron cache rm`) stops resolving, mirroring the dataset
		// store's stat-before-serve.
		if _, err := c.fs.Stat(c.entryPath(fp)); err == nil {
			c.met.hits.Inc()
			return e, true
		}
		c.mu.Lock()
		c.forget(fp)
		c.mu.Unlock()
		c.met.misses.Inc()
		return nil, false
	}
	c.mu.Unlock()
	e, err := c.loadEntry(fp)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			c.met.corrupt.Inc()
			c.evict(fp)
		}
		c.met.misses.Inc()
		return nil, false
	}
	c.mu.Lock()
	c.remember(fp, e)
	c.mu.Unlock()
	c.met.hits.Inc()
	return e, true
}

// Info returns the entry stored under a fingerprint, payload
// included. Unknown and malformed ids return ErrNotFound; a damaged
// entry returns ErrCorrupt without evicting it, so an operator can
// inspect before removing.
func (c *Cache) Info(fp string) (*Entry, error) {
	if !validID(fp) {
		return nil, fmt.Errorf("%w: malformed id %q", ErrNotFound, fp)
	}
	return c.loadEntry(fp)
}

// List returns every stored release's metadata (payloads stripped),
// sorted by store time then fingerprint. The listing reads fresh from
// disk, so entries added or removed by other processes are visible;
// damaged entries are skipped rather than failing the listing.
func (c *Cache) List() ([]Entry, error) {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("release: listing cache: %w", err)
	}
	var out []Entry
	for _, de := range dirents {
		name := de.Name()
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		fp := strings.TrimSuffix(name, entryExt)
		if !validID(fp) {
			continue
		}
		e, err := c.loadEntry(fp)
		if err != nil {
			continue
		}
		meta := *e
		meta.Payload = nil
		out = append(out, meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Stored.Equal(out[j].Stored) {
			return out[i].Stored.Before(out[j].Stored)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out, nil
}

// Delete removes a stored release. Budgets already spent producing it
// remain spent in any ledger — removal frees storage and forces the
// next identical fit to recompute (with a fresh debit).
func (c *Cache) Delete(fp string) error {
	if !validID(fp) {
		return fmt.Errorf("%w: malformed id %q", ErrNotFound, fp)
	}
	unlock, err := c.lock()
	if err != nil {
		return fmt.Errorf("release: locking cache: %w", err)
	}
	defer unlock()
	if _, err := c.fs.Stat(c.entryPath(fp)); os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, fp)
	}
	if err := c.fs.Remove(c.entryPath(fp)); err != nil {
		return fmt.Errorf("release: deleting %s: %w", fp, err)
	}
	c.mu.Lock()
	c.forget(fp)
	c.mu.Unlock()
	return nil
}

// loadEntry reads and fully validates one entry file: parse, filename
// vs stored fingerprint vs recomputed key fingerprint, and payload
// checksum. Every mismatch is ErrCorrupt — a file that cannot prove
// it is the release it claims to be is never served.
func (c *Cache) loadEntry(fp string) (*Entry, error) {
	data, err := c.fs.ReadFile(c.entryPath(fp))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, fp)
		}
		return nil, fmt.Errorf("release: reading %s: %w", fp, err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, fp, err)
	}
	if e.Fingerprint != fp {
		return nil, fmt.Errorf("%w: %s: entry claims fingerprint %s", ErrCorrupt, fp, e.Fingerprint)
	}
	if got := e.Key.Fingerprint(); got != fp {
		return nil, fmt.Errorf("%w: %s: key fingerprints to %s", ErrCorrupt, fp, got)
	}
	if len(e.Payload) == 0 {
		return nil, fmt.Errorf("%w: %s: empty payload", ErrCorrupt, fp)
	}
	if sum := fmt.Sprintf("%x", sha256.Sum256(e.Payload)); sum != e.Checksum {
		return nil, fmt.Errorf("%w: %s: payload checksum %s, recorded %s", ErrCorrupt, fp, sum, e.Checksum)
	}
	return &e, nil
}

// evict removes a damaged entry file and its LRU slot, best-effort.
func (c *Cache) evict(fp string) {
	if unlock, err := c.lock(); err == nil {
		_ = c.fs.Remove(c.entryPath(fp))
		unlock()
	}
	c.mu.Lock()
	c.forget(fp)
	c.mu.Unlock()
}

// remember inserts (or refreshes) an LRU entry; callers hold c.mu.
func (c *Cache) remember(fp string, e *Entry) {
	if _, ok := c.lru[fp]; ok {
		c.lru[fp] = e
		c.touch(fp)
		return
	}
	c.lru[fp] = e
	c.order = append(c.order, fp)
	if len(c.order) > lruSize {
		delete(c.lru, c.order[0])
		c.order = c.order[1:]
	}
}

// touch moves fp to the most-recently-used end; callers hold c.mu.
func (c *Cache) touch(fp string) {
	for i, id := range c.order {
		if id == fp {
			c.order = append(append(c.order[:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// forget drops fp from the LRU; callers hold c.mu.
func (c *Cache) forget(fp string) {
	delete(c.lru, fp)
	for i, id := range c.order {
		if id == fp {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// writeAtomic writes data to path via tmp file, fsync and rename, so
// readers only ever observe complete files (the dataset store's
// pattern).
func writeAtomic(fsys faultfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("release: writing %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("release: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("release: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("release: closing %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("release: committing %s: %w", path, err)
	}
	return nil
}
