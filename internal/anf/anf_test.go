package anf

import (
	"math"
	"math/rand/v2"
	"testing"

	"dpkron/internal/graph"
	"dpkron/internal/randx"
	"dpkron/internal/stats"
)

func randomGraph(n int, p float64, seed uint64) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, seed+13))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestHopPlotCloseToExact(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := randomGraph(200, 0.03, seed)
		exact := stats.HopPlot(g)
		approx := HopPlot(g, Options{Trials: 128, Rng: randx.New(seed)})
		// Compare the final reachable-pair counts within 15%.
		e := float64(exact[len(exact)-1])
		a := approx[len(approx)-1]
		if rel := math.Abs(a-e) / e; rel > 0.15 {
			t.Errorf("seed %d: final count approx %.0f vs exact %.0f (rel %.3f)", seed, a, e, rel)
		}
		// Compare a mid hop too.
		mid := len(exact) / 2
		if mid < len(approx) {
			e, a := float64(exact[mid]), approx[mid]
			if rel := math.Abs(a-e) / e; rel > 0.25 {
				t.Errorf("seed %d: hop %d approx %.0f vs exact %.0f (rel %.3f)", seed, mid, a, e, rel)
			}
		}
	}
}

func TestHopPlotMonotone(t *testing.T) {
	g := randomGraph(100, 0.05, 7)
	hop := HopPlot(g, Options{Trials: 32, Rng: randx.New(7)})
	for i := 1; i < len(hop); i++ {
		if hop[i] < hop[i-1] {
			t.Fatalf("hop plot not monotone at %d: %v", i, hop)
		}
	}
}

func TestHopPlotEmptyAndSingleton(t *testing.T) {
	if got := HopPlot(graph.Empty(0), Options{Rng: randx.New(1)}); got != nil {
		t.Fatalf("empty graph hop plot = %v, want nil", got)
	}
	// Five isolated nodes: the series must converge immediately (no
	// growth past hop 0). FM sketches overestimate tiny cardinalities
	// (the phi correction is asymptotic), so only the shape is checked.
	hop := HopPlot(graph.Empty(5), Options{Trials: 64, Rng: randx.New(1)})
	if len(hop) != 1 || hop[0] <= 0 {
		t.Fatalf("isolated nodes hop plot = %v, want single positive entry", hop)
	}
}

func TestHopPlotDeterministicGivenSeed(t *testing.T) {
	g := randomGraph(60, 0.08, 3)
	a := HopPlot(g, Options{Trials: 16, Rng: randx.New(42)})
	b := HopPlot(g, Options{Trials: 16, Rng: randx.New(42)})
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic values")
		}
	}
}

func TestEffectiveDiameterInterpolation(t *testing.T) {
	hop := []float64{4, 10, 14, 16}
	d := EffectiveDiameter(hop, 0.9)
	if math.Abs(d-2.2) > 1e-9 {
		t.Fatalf("EffectiveDiameter = %v, want 2.2", d)
	}
}

func TestRequiresRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Rng")
		}
	}()
	HopPlot(graph.Empty(3), Options{})
}
