package anf

import (
	"testing"

	"dpkron/internal/randx"
)

func TestHopPlotWorkerInvariant(t *testing.T) {
	g := randomGraph(300, 0.03, 11)
	base := HopPlot(g, Options{Trials: 32, Rng: randx.New(9), Workers: 1})
	if len(base) < 2 {
		t.Fatal("degenerate hop plot")
	}
	for _, workers := range []int{2, 4, 8} {
		got := HopPlot(g, Options{Trials: 32, Rng: randx.New(9), Workers: workers})
		if len(got) != len(base) {
			t.Fatalf("workers=%d: length %d != %d", workers, len(got), len(base))
		}
		for h := range got {
			if got[h] != base[h] {
				t.Fatalf("workers=%d: hop %d estimate %v != %v (must be bit-identical)",
					workers, h, got[h], base[h])
			}
		}
	}
}
