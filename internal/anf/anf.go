// Package anf implements the Approximate Neighbourhood Function of
// Palmer, Gibbons and Faloutsos (KDD'02): a Flajolet–Martin sketch per
// node is propagated along edges so that after h rounds the sketch of v
// estimates |{u : dist(u, v) <= h}|. Summing over v yields the hop plot
// of the paper's Figure panels (a) in O(R·(n+m)·diameter) time, which is
// what makes the expected-over-100-realizations experiments tractable.
package anf

import (
	"context"
	"math"

	"dpkron/internal/graph"
	"dpkron/internal/parallel"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
)

// phi is the Flajolet–Martin bias correction constant.
const phi = 0.77351

// Options configures the sketch estimator.
type Options struct {
	// Trials is the number R of parallel bitmasks per node; the standard
	// error decreases like 1/sqrt(R). Default 32.
	Trials int
	// MaxHops caps the number of propagation rounds. Default 64.
	MaxHops int
	// Rng supplies randomness; required.
	Rng *randx.Rand
	// Workers bounds the goroutines used for bitmask propagation and
	// estimation; <= 0 selects runtime.GOMAXPROCS(0). The estimate is
	// identical for every worker count: sketch initialization consumes
	// the Rng serially, propagation writes disjoint node blocks, and
	// the cardinality sum reduces fixed shards in order. HopPlotCtx
	// ignores this field: the pipeline Run's budget is authoritative.
	Workers int
}

func (o *Options) fill() {
	if o.Trials <= 0 {
		o.Trials = 32
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 64
	}
}

// HopPlot estimates the cumulative hop plot of g: element h approximates
// the number of ordered pairs (u, v), including u = v, within distance h.
// The returned slice stops when the estimate stops growing (within one
// part in 1e6) or at MaxHops.
func HopPlot(g *graph.Graph, opts Options) []float64 {
	hop, _ := HopPlotCtx(pipeline.New(nil, opts.Workers, nil), g, opts)
	return hop
}

// HopPlotCtx is HopPlot under a pipeline Run: the worker budget comes
// from run (Options.Workers is ignored), the context is checked once
// per propagation round and between the blocks of each round, and an
// "anf" stage event pair is emitted. A run that is never cancelled
// estimates the exact HopPlot series for the same Rng; a cancelled run
// returns run.Err().
func HopPlotCtx(run *pipeline.Run, g *graph.Graph, opts Options) ([]float64, error) {
	opts.fill()
	if opts.Rng == nil {
		panic("anf: Options.Rng is required")
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, run.Err()
	}
	done := run.Stage("anf")
	R := opts.Trials
	ctx, workers := run.Context(), run.Workers()
	cur := make([]uint64, n*R)
	next := make([]uint64, n*R)
	for v := 0; v < n; v++ {
		for t := 0; t < R; t++ {
			cur[v*R+t] = 1 << geometricBit(opts.Rng)
		}
	}
	first, err := estimateTotalCtx(ctx, cur, n, R, workers)
	if err != nil {
		return nil, err
	}
	est := []float64{first}
	for h := 1; h <= opts.MaxHops; h++ {
		// Each round reads cur and writes disjoint node blocks of next,
		// so the propagation shards freely across the pool.
		if err := parallel.ForBlocksCtx(ctx, workers, n, func(_, lo, hi int) {
			copy(next[lo*R:hi*R], cur[lo*R:hi*R])
			for v := lo; v < hi; v++ {
				row := next[v*R : v*R+R]
				for _, w := range g.Neighbors(v) {
					nb := cur[int(w)*R : int(w)*R+R]
					for t := 0; t < R; t++ {
						row[t] |= nb[t]
					}
				}
			}
		}); err != nil {
			return nil, err
		}
		cur, next = next, cur
		total, err := estimateTotalCtx(ctx, cur, n, R, workers)
		if err != nil {
			return nil, err
		}
		est = append(est, total)
		if total <= est[len(est)-2]*(1+1e-6) {
			// Converged: drop the flat tail entry and stop.
			est = est[:len(est)-1]
			break
		}
	}
	done()
	return est, nil
}

// geometricBit samples a bit index with P(i) = 2^-(i+1), capped at 62.
func geometricBit(r *randx.Rand) int {
	i := 0
	for r.Float64() < 0.5 && i < 62 {
		i++
	}
	return i
}

// estimateTotalCtx sums the per-node FM cardinality estimates with a
// fixed-shard ordered reduction, so the floating-point total is
// identical for every worker count.
func estimateTotalCtx(ctx context.Context, masks []uint64, n, R, workers int) (float64, error) {
	return parallel.SumFloat64Ctx(ctx, workers, n, func(lo, hi int) float64 {
		var total float64
		for v := lo; v < hi; v++ {
			var sum float64
			for t := 0; t < R; t++ {
				sum += float64(lowestZeroBit(masks[v*R+t]))
			}
			total += math.Pow(2, sum/float64(R)) / phi
		}
		return total
	})
}

// lowestZeroBit returns the index of the least significant zero bit.
func lowestZeroBit(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<i) == 0 {
			return i
		}
	}
	return 64
}

// EffectiveDiameter returns the interpolated hop count at which the
// estimated hop plot reaches the given fraction of its final value.
func EffectiveDiameter(hop []float64, fraction float64) float64 {
	if len(hop) == 0 {
		return 0
	}
	target := fraction * hop[len(hop)-1]
	for h, v := range hop {
		if v >= target {
			if h == 0 {
				return 0
			}
			prev := hop[h-1]
			if v == prev {
				return float64(h)
			}
			return float64(h-1) + (target-prev)/(v-prev)
		}
	}
	return float64(len(hop) - 1)
}
