package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedJournal builds a real three-record journal to derive the
// seed corpus from.
func fuzzSeedJournal(f *testing.F) []byte {
	f.Helper()
	dir, err := os.MkdirTemp("", "journal-fuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "jobs.journal")
	j, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range []Record{
		admissionRecord("job-1"),
		{Job: "job-1", State: StateDebited},
		{Job: "job-1", State: StateDone},
	} {
		if err := j.Append(rec, true); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzDecode holds the decoder to its contract on arbitrary input: it
// never panics, a non-nil error is always ErrCorrupt-typed interior
// damage, validLen stays within bounds, and — the property recovery
// depends on — the declared valid prefix re-decodes to exactly the
// same records with no error and no leftover.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add(valid)
	// Torn tail: a crash mid-append chops the final frame.
	f.Add(valid[:len(valid)-9])
	f.Add(valid[:len(valid)/2])
	// Bit flip in an interior record.
	flipped := append([]byte(nil), valid...)
	flipped[len(magic)+6] ^= 0x10
	f.Add(flipped)
	// Duplicated transition: replay the last frame twice (breaks the
	// sequence monotonicity check).
	f.Add(append(append([]byte(nil), valid...), valid[len(valid)-40:]...))
	// Header variants.
	f.Add([]byte{})
	f.Add([]byte("DPK"))
	f.Add([]byte("DPKJ\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, validLen, err := Decode(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of [0, %d]", validLen, len(data))
		}
		if err != nil {
			return
		}
		var lastSeq uint64
		for _, rec := range records {
			if rec.Seq <= lastSeq {
				t.Fatalf("accepted non-increasing sequence %d after %d", rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
		}
		// Idempotence on the valid prefix: what Decode blessed must
		// re-decode identically, fully consumed — this is the prefix the
		// journal truncates to and appends after.
		again, againLen, err2 := Decode(data[:validLen])
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-decode: %v", err2)
		}
		if againLen != validLen {
			t.Fatalf("valid prefix re-decoded to length %d, want %d", againLen, validLen)
		}
		if len(again) != len(records) {
			t.Fatalf("valid prefix re-decoded to %d records, want %d", len(again), len(records))
		}
	})
}
