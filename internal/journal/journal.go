// Package journal is the durable write-ahead log of job state
// transitions that makes the serving tier crash-safe. The privacy
// ledger (internal/accountant) made budget persistent and
// irreplaceable; the jobs that spend it, however, lived in one
// process's memory — a crash between the admission-time debit and the
// release-cache write lost both the fit and the (ε, δ) it charged,
// the worst failure mode a DP service can have, since budget cannot
// be refunded once noise may have been drawn.
//
// The journal closes that window. Every job append-logs its
// transitions — admitted (with the full request payload, dataset id,
// planned receipt and release key), debited, running, and a terminal
// done/failed/cancelled — so a restarted server can Replay the log,
// Reduce it to per-job state, and resume any admitted-but-unfinished
// job: the persisted planned receipt plus the ledger's idempotent
// spend token prove the charge, the recorded seed re-executes the fit
// deterministically, and the paid-for release lands in the release
// cache exactly once. The serving invariant the journal exists to
// keep: every debit is eventually matched by a served release or an
// explicit journaled failure — never silence.
//
// On-disk format ("DPKJ"): a 5-byte header (magic + version) followed
// by self-delimiting frames, each a uvarint payload length, the
// record's compact JSON, and the first 8 bytes of the payload's
// SHA-256. Appends are single writes; state-bearing transitions
// (admission, terminal) are fsynced, intermediate ones ride the next
// sync. Recovery distinguishes a torn tail — an incomplete final
// frame, the signature of a crash mid-append, silently truncated away
// — from interior corruption — a checksum or structural failure with
// complete bytes on both sides, which is damage, reported as a typed
// ErrCorrupt and never repaired silently. Compaction rewrites the
// retained suffix through the tmp + fsync + atomic-rename discipline
// every other store in the module uses, and a sidecar flock
// (internal/fslock) makes the journal single-owner across processes.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dpkron/internal/accountant"
	"dpkron/internal/faultfs"
	"dpkron/internal/fslock"
	"dpkron/internal/release"
)

// Typed errors. ErrCorrupt marks interior damage Open refuses to
// repair silently; ErrLocked marks a journal owned by another live
// process.
var (
	ErrCorrupt = errors.New("journal: corrupt record")
	ErrLocked  = errors.New("journal: already locked by another process")
)

// States a job transitions through. Admitted carries the payload; a
// terminal state (done, failed, cancelled) closes the job.
const (
	StateAdmitted  = "admitted"
	StateDebited   = "debited"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether state closes a job.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Record is one journaled transition. Admission records carry the
// replay payload (the request exactly as submitted, the ledger
// dataset, the planned receipt that proves the eventual charge, and
// the release-cache key); terminal records carry the outcome.
type Record struct {
	// Seq is the record's position in the log, 1-based and strictly
	// increasing within one journal file.
	Seq uint64 `json:"seq"`
	// Job is the job id the transition belongs to.
	Job string `json:"job"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Time is the wall-clock time the record was appended.
	Time time.Time `json:"time"`

	// Kind is the job kind ("fit/private", "generate", ...); admission
	// records only.
	Kind string `json:"kind,omitempty"`
	// Request is the submitted request body (server FitRequest or
	// GenerateRequest JSON); admission records only.
	Request json.RawMessage `json:"request,omitempty"`
	// Dataset is the ledger account the job charges; admission records
	// of ledger-enforced private fits only.
	Dataset string `json:"dataset,omitempty"`
	// Planned is the data-independent receipt the admission debit
	// charged (core.PlannedReceipt); proves the charge on replay.
	Planned *accountant.Receipt `json:"planned,omitempty"`
	// Token is the idempotent ledger spend token the debit was (or
	// will be) issued under. Unique per admission — job ids restart
	// with the process, so the id alone could collide with a receipt
	// from an earlier instance and silently skip a legitimate debit.
	Token string `json:"token,omitempty"`
	// ReleaseKey is the release-cache key of the question, so a
	// resumed fit lands its release under the identical fingerprint.
	ReleaseKey *release.Key `json:"release_key,omitempty"`
	// RequestID and TraceID tie the admission to the HTTP request that
	// caused it (the X-Request-ID and W3C trace id the middleware
	// assigned), so a crash-resumed job's trace links back to the
	// originating request; admission records only.
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`

	// Error is the failure or cancellation reason; terminal records.
	Error string `json:"error,omitempty"`
	// Result is the job's result payload, retained when it fits
	// MaxResultBytes so GET /v1/jobs/{id} answers across restarts;
	// terminal done records.
	Result json.RawMessage `json:"result,omitempty"`
}

// MaxResultBytes bounds the result payload a terminal record retains:
// fit results are ~1 KiB and always kept; a multi-megabyte generate
// edge list is elided (the job replays as done, result dropped).
const MaxResultBytes = 1 << 20

// maxRecordBytes bounds a single frame on decode, so a corrupt length
// varint cannot force a multi-gigabyte allocation. Admission records
// embed the request body, which the server caps at 64 MiB; one frame
// beyond 80 MiB is corruption, not data.
const maxRecordBytes = 80 << 20

var magic = []byte{'D', 'P', 'K', 'J', 1}

// Journal is an open, exclusively owned job journal. All methods are
// safe for concurrent use.
type Journal struct {
	path   string
	fsys   faultfs.FS
	unlock func()
	// met carries the telemetry collectors installed by Instrument;
	// the zero value no-ops.
	met journalMetrics

	mu      sync.Mutex
	f       faultfs.File
	seq     uint64
	size    int64 // committed length of the file
	records []Record
	closed  bool
}

// Open loads (or creates) the journal at path, recovering a torn tail
// left by a crash mid-append, and takes exclusive cross-process
// ownership of it via a sidecar flock held until Close. Interior
// corruption — a damaged record with complete records after it — is
// ErrCorrupt: the journal holds budget-bearing history, so damage is
// surfaced to the operator, never silently dropped.
func Open(path string) (*Journal, error) { return OpenFS(faultfs.OS, path) }

// OpenFS is Open against an explicit filesystem (fault-injection
// tests).
func OpenFS(fsys faultfs.FS, path string) (*Journal, error) {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	unlock, err := fslock.LockNB(path + ".lock")
	if err != nil {
		if errors.Is(err, fslock.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrLocked, path)
		}
		return nil, fmt.Errorf("journal: locking %s: %w", path, err)
	}
	j := &Journal{path: path, fsys: fsys, unlock: unlock}
	if err := j.load(); err != nil {
		unlock()
		return nil, err
	}
	return j, nil
}

// load reads and validates the journal, truncating a torn tail, and
// leaves the file open for appends.
func (j *Journal) load() error {
	data, err := j.fsys.ReadFile(j.path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: reading %s: %w", j.path, err)
	}
	fresh := os.IsNotExist(err) || len(data) == 0
	var valid int64
	if fresh {
		j.records, j.seq = nil, 0
	} else {
		records, validLen, err := Decode(data)
		if err != nil {
			return err
		}
		j.records = records
		if n := len(records); n > 0 {
			j.seq = records[n-1].Seq
		}
		valid = validLen
		if valid < int64(len(data)) {
			// Torn tail: an incomplete final frame is exactly what a crash
			// mid-append leaves. Drop it so the next append starts on a
			// frame boundary.
			if err := j.fsys.Truncate(j.path, valid); err != nil {
				return fmt.Errorf("journal: recovering torn tail of %s: %w", j.path, err)
			}
		}
		if valid == 0 {
			// The crash tore the header itself: nothing valid survives,
			// so rebuild from scratch, magic included.
			fresh = true
		}
	}
	f, err := j.fsys.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening %s for append: %w", j.path, err)
	}
	if fresh {
		if _, err := f.Write(magic); err != nil {
			f.Close()
			return fmt.Errorf("journal: writing header of %s: %w", j.path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: syncing header of %s: %w", j.path, err)
		}
		valid = int64(len(magic))
	}
	j.f = f
	j.size = valid
	return nil
}

// Decode parses journal bytes into records plus the byte length of the
// valid prefix. A torn tail (an incomplete final frame) is not an
// error: the records before it are returned and validLen stops at the
// last complete frame, so callers can truncate. Interior corruption —
// a bad checksum, malformed JSON, a non-increasing sequence number, or
// an oversized frame with complete data beyond it — is ErrCorrupt.
// Decode never panics on hostile input (fuzzed).
func Decode(data []byte) (records []Record, validLen int64, err error) {
	if len(data) < len(magic) {
		if isPrefix(data, magic) {
			return nil, 0, nil // torn header
		}
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if string(data[:len(magic)]) != string(magic) {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := int64(len(magic))
	rest := data[off:]
	var lastSeq uint64
	for len(rest) > 0 {
		n, ln := binary.Uvarint(rest)
		if ln <= 0 {
			if len(rest) < binary.MaxVarintLen64 {
				return records, off, nil // torn length varint
			}
			return records, off, fmt.Errorf("%w: invalid frame length at offset %d", ErrCorrupt, off)
		}
		if n > maxRecordBytes {
			return records, off, fmt.Errorf("%w: frame of %d bytes at offset %d exceeds the %d-byte cap", ErrCorrupt, n, off, maxRecordBytes)
		}
		frame := int64(ln) + int64(n) + 8
		if int64(len(rest)) < frame {
			return records, off, nil // torn payload or checksum
		}
		payload := rest[ln : int64(ln)+int64(n)]
		sum := sha256.Sum256(payload)
		if string(rest[int64(ln)+int64(n):frame]) != string(sum[:8]) {
			return records, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, off, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrCorrupt, off, err)
		}
		if rec.Seq <= lastSeq {
			return records, off, fmt.Errorf("%w: sequence %d at offset %d does not advance past %d", ErrCorrupt, rec.Seq, off, lastSeq)
		}
		lastSeq = rec.Seq
		records = append(records, rec)
		off += frame
		rest = rest[frame:]
	}
	return records, off, nil
}

func isPrefix(data, of []byte) bool {
	if len(data) > len(of) {
		return false
	}
	return string(data) == string(of[:len(data)])
}

// Path returns the journal file location.
func (j *Journal) Path() string { return j.path }

// Records returns a copy of every record currently in the journal, in
// append order.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// Append logs one transition, assigning Seq and Time. With sync, the
// record is fsynced before Append returns — required for records
// whose loss would break the debit invariant (admission before the
// ledger debit, terminal states before history eviction); transitions
// recoverable by re-execution (debited, running) may ride a later
// sync. A failed append leaves at worst a torn tail, which the next
// Open truncates; the in-memory journal never records a transition
// the file might not hold.
func (j *Journal) Append(rec Record, sync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	rec.Seq = j.seq + 1
	rec.Time = j.fsys.Now().UTC().Truncate(time.Microsecond)
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding record: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	frame := make([]byte, 0, ln+len(payload)+8)
	frame = append(frame, lenBuf[:ln]...)
	frame = append(frame, payload...)
	frame = append(frame, sum[:8]...)
	if _, err := j.f.Write(frame); err != nil {
		// The write may have torn: reopen at the last committed size so
		// this process's future appends do not build on a torn tail the
		// way a crashed process's next Open would have to recover.
		j.reopenLocked()
		return fmt.Errorf("journal: appending to %s: %w", j.path, err)
	}
	if sync {
		start := time.Now()
		if err := j.f.Sync(); err != nil {
			j.reopenLocked()
			return fmt.Errorf("journal: syncing %s: %w", j.path, err)
		}
		j.met.observeFsync(start)
	}
	j.seq = rec.Seq
	j.size += int64(len(frame))
	j.records = append(j.records, rec)
	j.met.appends.With(rec.State).Inc()
	return nil
}

// Sync flushes any unsynced appends.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", j.path, err)
	}
	return nil
}

// reopenLocked truncates the file back to the last committed frame
// boundary and reopens it for append, after a failed write. Best
// effort: if recovery itself fails the journal stays pointed at the
// old handle and the next Open re-runs torn-tail recovery from disk.
func (j *Journal) reopenLocked() {
	j.f.Close()
	_ = j.fsys.Truncate(j.path, j.size)
	if f, err := j.fsys.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644); err == nil {
		j.f = f
	}
}

// Compact atomically rewrites the journal keeping only records whose
// job id passes keep, renumbering sequences. Used at startup to drop
// jobs beyond the history bound: the journal is the source of truth
// for -max-history, so eviction happens here, not only in memory.
func (j *Journal) Compact(keep func(job string) bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	var kept []Record
	data := make([]byte, 0, len(magic))
	data = append(data, magic...)
	var seq uint64
	for _, rec := range j.records {
		if !keep(rec.Job) {
			continue
		}
		seq++
		rec.Seq = seq
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("journal: encoding record: %w", err)
		}
		var lenBuf [binary.MaxVarintLen64]byte
		ln := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
		sum := sha256.Sum256(payload)
		data = append(data, lenBuf[:ln]...)
		data = append(data, payload...)
		data = append(data, sum[:8]...)
		kept = append(kept, rec)
	}
	// tmp + fsync + atomic rename: a crash mid-compaction leaves either
	// the old journal or the new, never a mix.
	tmp := j.path + ".tmp"
	f, err := j.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compacting %s: %w", j.path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("journal: compacting %s: %w", j.path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: syncing compacted %s: %w", j.path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: closing compacted %s: %w", j.path, err)
	}
	if err := j.fsys.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: committing compacted %s: %w", j.path, err)
	}
	j.f.Close()
	nf, err := j.fsys.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		j.closed = true
		return fmt.Errorf("journal: reopening compacted %s: %w", j.path, err)
	}
	j.f = nf
	j.records = kept
	j.seq = seq
	j.size = int64(len(data))
	return nil
}

// Close syncs, releases the cross-process lock, and closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.unlock()
	if syncErr != nil {
		return fmt.Errorf("journal: syncing %s on close: %w", j.path, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("journal: closing %s: %w", j.path, closeErr)
	}
	return nil
}

// JobState is the folded state of one job after Replay: its latest
// admission payload plus the furthest transition reached.
type JobState struct {
	Job   string
	Kind  string
	State string
	// Admitted is the admission record (payload, dataset, planned
	// receipt, release key); nil when the journal holds transitions
	// for a job whose admission was compacted away or lost.
	Admitted *Record
	// Debited reports whether a debited transition was journaled: the
	// ledger charge provably landed and must not be repeated.
	Debited bool
	// Error and Result are the terminal outcome, when terminal.
	Error  string
	Result json.RawMessage
}

// Terminal reports whether the job reached a terminal state.
func (s *JobState) Terminal() bool { return Terminal(s.State) }

// Reduce folds records into per-job states, in order of first
// appearance. The fold is tolerant by design — duplicated transitions
// are idempotent, a transition arriving after a terminal state is
// ignored (a DELETE confirmed cancelled to a client must not be
// overwritten by a late done), and unknown states are skipped — so a
// journal written by a newer version, or bearing the duplicates a
// crash-retry can produce, still reduces to usable state instead of
// failing recovery.
func Reduce(records []Record) []*JobState {
	index := map[string]*JobState{}
	var order []*JobState
	for i := range records {
		rec := &records[i]
		s := index[rec.Job]
		if s == nil {
			s = &JobState{Job: rec.Job}
			index[rec.Job] = s
			order = append(order, s)
		}
		switch rec.State {
		case StateAdmitted:
			if s.Admitted == nil {
				s.Admitted = rec
				s.Kind = rec.Kind
			}
			if s.State == "" {
				s.State = StateAdmitted
			}
		case StateDebited:
			s.Debited = true
			if !s.Terminal() {
				s.State = StateDebited
			}
		case StateRunning:
			if !s.Terminal() {
				s.State = StateRunning
			}
		case StateDone, StateFailed, StateCancelled:
			if !s.Terminal() {
				s.State = rec.State
				s.Error = rec.Error
				s.Result = rec.Result
			}
		}
	}
	return order
}
