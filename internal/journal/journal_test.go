package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dpkron/internal/core"
	"dpkron/internal/faultfs"
	"dpkron/internal/release"
)

func admissionRecord(job string) Record {
	planned := core.PlannedReceipt(1.0, 1e-6)
	key := release.KeyFor("ds-0011223344556677", 1.0, 1e-6, 10, 42, planned)
	return Record{
		Job:        job,
		State:      StateAdmitted,
		Kind:       "fit/private",
		Request:    json.RawMessage(`{"method":"private","eps":1,"delta":1e-6,"k":10,"seed":42,"dataset_id":"ds-0011223344556677"}`),
		Dataset:    "ds-0011223344556677",
		Planned:    &planned,
		ReleaseKey: &key,
	}
}

// appendLifecycle journals a full admitted→…→done lifecycle for job.
func appendLifecycle(t *testing.T, j *Journal, job string) {
	t.Helper()
	for _, rec := range []Record{
		admissionRecord(job),
		{Job: job, State: StateDebited},
		{Job: job, State: StateRunning},
		{Job: job, State: StateDone, Result: json.RawMessage(`{"theta":[[0.9,0.6],[0.6,0.2]]}`)},
	} {
		sync := rec.State == StateAdmitted || Terminal(rec.State)
		if err := j.Append(rec, sync); err != nil {
			t.Fatalf("Append(%s/%s): %v", job, rec.State, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, j, "job-1")
	appendLifecycle(t, j, "job-2")
	before := j.Records()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	after := j2.Records()
	if len(after) != len(before) {
		t.Fatalf("reopen lost records: %d != %d", len(after), len(before))
	}
	for i := range before {
		b, _ := json.Marshal(before[i])
		a, _ := json.Marshal(after[i])
		if string(a) != string(b) {
			t.Fatalf("record %d changed across reopen:\n  before %s\n  after  %s", i, b, a)
		}
	}
	states := Reduce(after)
	if len(states) != 2 {
		t.Fatalf("Reduce: %d jobs, want 2", len(states))
	}
	for _, s := range states {
		if s.State != StateDone || !s.Debited || s.Admitted == nil {
			t.Fatalf("job %s reduced to %+v", s.Job, s)
		}
		if s.Admitted.Planned == nil || s.Admitted.ReleaseKey == nil {
			t.Fatalf("job %s admission lost its payload", s.Job)
		}
	}
}

// TestTornTailRecoveryEveryPoint truncates the journal at every byte
// length and re-opens: each prefix must recover to some record prefix
// of the original — never an error, never a fabricated record — and
// leave a journal that accepts appends again.
func TestTornTailRecoveryEveryPoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, j, "job-1")
	full := j.Records()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tj, err := Open(torn)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		got := tj.Records()
		if len(got) > len(full) {
			t.Fatalf("cut=%d: recovered %d records from a prefix of %d", cut, len(got), len(full))
		}
		for i := range got {
			g, _ := json.Marshal(got[i])
			w, _ := json.Marshal(full[i])
			if string(g) != string(w) {
				t.Fatalf("cut=%d: record %d differs: %s != %s", cut, i, g, w)
			}
		}
		// The recovered journal must be writable: the crashed append is
		// gone and the next one starts cleanly on a frame boundary.
		if err := tj.Append(Record{Job: "job-9", State: StateAdmitted, Kind: "fit/private"}, true); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := tj.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		rj, err := Open(torn)
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if n := len(rj.Records()); n != len(got)+1 {
			t.Fatalf("cut=%d: post-recovery append lost: %d records, want %d", cut, n, len(got)+1)
		}
		rj.Close()
		os.Remove(torn)
		os.Remove(torn + ".lock")
	}
}

// TestInteriorCorruption flips one byte inside a non-final record:
// complete data follows the damage, so this is corruption, not a torn
// tail, and Open must refuse with ErrCorrupt rather than silently
// dropping budget-bearing history.
func TestInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, j, "job-1")
	appendLifecycle(t, j, "job-2")
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the first record's payload (well before the
	// final frame).
	data[len(magic)+4] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on interior damage: %v, want ErrCorrupt", err)
	}
}

func TestOpenLockedByLiveOwner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// flock is per-process on unix, so a same-process double-open cannot
	// observe contention portably; what must hold everywhere is that the
	// lock is released on Close and a reopen succeeds (covered above) —
	// here we at least exercise the ErrLocked mapping path compiling. On
	// unix the cross-process case is proven in internal/fslock.
	_ = ErrLocked
}

func TestReduceTolerance(t *testing.T) {
	adm := admissionRecord("job-1")
	recs := []Record{
		adm,
		adm, // duplicated admission: idempotent
		{Job: "job-1", State: StateDebited},
		{Job: "job-1", State: StateDebited}, // duplicated transition
		{Job: "job-1", State: StateCancelled, Error: "cancelled by client"},
		{Job: "job-1", State: StateDone, Result: json.RawMessage(`{}`)}, // after terminal: ignored
		{Job: "job-1", State: "warp-speed"},                             // unknown state: skipped
		{Job: "job-2", State: StateRunning},                             // no admission record
	}
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	states := Reduce(recs)
	if len(states) != 2 {
		t.Fatalf("Reduce: %d jobs, want 2", len(states))
	}
	s1 := states[0]
	if s1.Job != "job-1" || s1.State != StateCancelled || s1.Error != "cancelled by client" {
		t.Fatalf("job-1 reduced to %+v", s1)
	}
	if !s1.Debited || s1.Admitted == nil {
		t.Fatalf("job-1 lost debit/admission: %+v", s1)
	}
	if s1.Result != nil {
		t.Fatalf("job-1 took a result after terminal cancellation")
	}
	s2 := states[1]
	if s2.Job != "job-2" || s2.State != StateRunning || s2.Admitted != nil {
		t.Fatalf("job-2 reduced to %+v", s2)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range []string{"job-1", "job-2", "job-3"} {
		appendLifecycle(t, j, job)
	}
	if err := j.Compact(func(job string) bool { return job != "job-1" }); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction continue the renumbered sequence.
	if err := j.Append(Record{Job: "job-4", State: StateAdmitted, Kind: "fit/private"}, true); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer j2.Close()
	states := Reduce(j2.Records())
	var jobs []string
	for _, s := range states {
		jobs = append(jobs, s.Job)
	}
	want := []string{"job-2", "job-3", "job-4"}
	if len(jobs) != len(want) {
		t.Fatalf("jobs after compact: %v, want %v", jobs, want)
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Fatalf("jobs after compact: %v, want %v", jobs, want)
		}
	}
}

// TestAppendShortWriteRecovery injects a torn write (only half the
// frame reaches the file) and asserts the journal's self-recovery: the
// failed append reports its error, the torn bytes are truncated away,
// and both the next in-process append and a full reopen see a clean
// log with no trace of the torn frame.
func TestAppendShortWriteRecovery(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, j, "job-1")

	inj.Fail(faultfs.Fault{Op: faultfs.OpWrite, Path: "jobs.journal", Short: 7, Err: faultfs.ErrInjected})
	if err := j.Append(admissionRecord("job-2"), true); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn append: %v, want ErrInjected", err)
	}

	// The journal recovered in-process: the next append lands cleanly.
	if err := j.Append(admissionRecord("job-3"), true); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	states := Reduce(j.Records())
	if len(states) != 2 || states[0].Job != "job-1" || states[1].Job != "job-3" {
		t.Fatalf("in-memory state after recovery: %+v", states)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer j2.Close()
	states = Reduce(j2.Records())
	if len(states) != 2 || states[0].Job != "job-1" || states[1].Job != "job-3" {
		t.Fatalf("on-disk state after recovery: %+v", states)
	}
}

// TestAppendSyncFault: a failed fsync on a sync-required record must
// surface as an error (the caller cannot claim durability), and the
// journal must stay usable.
func TestAppendSyncFault(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	inj.Fail(faultfs.Fault{Op: faultfs.OpSync, Path: "jobs.journal", Err: faultfs.ErrInjected})
	if err := j.Append(admissionRecord("job-1"), true); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append with failing fsync: %v, want ErrInjected", err)
	}
	if err := j.Append(admissionRecord("job-2"), true); err != nil {
		t.Fatalf("append after fsync fault: %v", err)
	}
}

// TestCompactRenameFault: a failed rename mid-compaction must leave
// the original journal intact — crash-consistent compaction means old
// or new, never a mix and never loss.
func TestCompactRenameFault(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	appendLifecycle(t, j, "job-1")
	appendLifecycle(t, j, "job-2")
	inj.Fail(faultfs.Fault{Op: faultfs.OpRename, Path: "jobs.journal", Err: faultfs.ErrInjected})
	if err := j.Compact(func(job string) bool { return job == "job-2" }); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("compact with failing rename: %v, want ErrInjected", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after failed compact: %v", err)
	}
	defer j2.Close()
	states := Reduce(j2.Records())
	if len(states) != 2 {
		t.Fatalf("failed compaction lost records: %d jobs, want 2", len(states))
	}
}

func TestAppendTimeFromInjectedClock(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	pinned := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	inj.SetNow(func() time.Time { return pinned })
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Job: "job-1", State: StateAdmitted}, true); err != nil {
		t.Fatal(err)
	}
	if got := j.Records()[0].Time; !got.Equal(pinned) {
		t.Fatalf("record time %v, want pinned %v", got, pinned)
	}
}
