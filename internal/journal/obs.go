package journal

import (
	"time"

	"dpkron/internal/obs"
)

// journalMetrics is the WAL's telemetry: appends by state and the
// fsync latency distribution — the synchronous disk wait every
// admission and terminal record puts on the serving path. The zero
// value no-ops.
type journalMetrics struct {
	appends *obs.CounterVec
	fsync   *obs.Histogram
}

// Instrument registers the journal's metrics on reg. Call once,
// before serving traffic; a nil reg leaves the journal
// uninstrumented. State labels come from the fixed State* set.
func (j *Journal) Instrument(reg *obs.Registry) {
	j.met = journalMetrics{
		appends: reg.CounterVec("dpkron_journal_appends_total", "Journal records appended, by job state.", "state"),
		fsync:   reg.Histogram("dpkron_journal_fsync_seconds", "Latency of journal fsyncs (admission and terminal records).", obs.FsyncBuckets),
	}
}

// observeFsync times one fsync; callers wrap j.f.Sync().
func (m journalMetrics) observeFsync(start time.Time) {
	m.fsync.Observe(time.Since(start).Seconds())
}
