// Package kronmom implements KronMom, the Gleich–Owen moment-based
// estimator of stochastic Kronecker graph parameters (Section 3.4 of the
// paper): choose the initiator (a, b, c), 0 <= c <= a <= 1, 0 <= b <= 1,
// whose closed-form expected feature counts best match the observed
// (or differentially private) feature counts under a configurable
// distance/normalization objective (Equation 2).
//
// This is both the non-private baseline ("KronMom" in Table 1) and the
// final step of the paper's private Algorithm 1, which feeds it noisy
// features.
package kronmom

import (
	"fmt"
	"math"

	"dpkron/internal/graph"
	"dpkron/internal/optimize"
	"dpkron/internal/pipeline"
	"dpkron/internal/randx"
	"dpkron/internal/skg"
	"dpkron/internal/stats"
)

// Dist selects the distance function of Equation 2.
type Dist int

const (
	// DistSq is (x − y)².
	DistSq Dist = iota
	// DistAbs is |x − y|.
	DistAbs
)

// String names the distance function as in Gleich–Owen.
func (d Dist) String() string {
	switch d {
	case DistSq:
		return "DistSq"
	case DistAbs:
		return "DistAbs"
	}
	return fmt.Sprintf("Dist(%d)", int(d))
}

// Norm selects the normalization of Equation 2; F is the observed count
// and E the model's expected count.
type Norm int

const (
	// NormF2 divides by F² (with DistSq, the Gleich–Owen recommended,
	// most robust combination).
	NormF2 Norm = iota
	// NormF divides by F.
	NormF
	// NormE divides by the expected count.
	NormE
	// NormE2 divides by the squared expected count.
	NormE2
)

// String names the normalization as in Gleich–Owen.
func (n Norm) String() string {
	switch n {
	case NormF2:
		return "NormF2"
	case NormF:
		return "NormF"
	case NormE:
		return "NormE"
	case NormE2:
		return "NormE2"
	}
	return fmt.Sprintf("Norm(%d)", int(n))
}

// FeatureSet selects which of the four features participate in the
// objective. The paper sums "over three of four of the features" in one
// variant; the default uses all four.
type FeatureSet struct {
	E, H, T, Delta bool
}

// AllFeatures matches edges, hairpins, tripins and triangles.
func AllFeatures() FeatureSet { return FeatureSet{E: true, H: true, T: true, Delta: true} }

// Count returns the number of selected features.
func (fs FeatureSet) Count() int {
	n := 0
	for _, b := range []bool{fs.E, fs.H, fs.T, fs.Delta} {
		if b {
			n++
		}
	}
	return n
}

// Objective is the Equation 2 configuration.
type Objective struct {
	Dist     Dist
	Norm     Norm
	Features FeatureSet
}

// DefaultObjective is DistSq/NormF² over all four features, the
// combination Gleich and Owen found robust and the paper adopts.
func DefaultObjective() Objective {
	return Objective{Dist: DistSq, Norm: NormF2, Features: AllFeatures()}
}

// Eval computes the Equation 2 objective for a candidate initiator
// against observed features at Kronecker power k. Non-finite or
// degenerate normalizations are floored to keep noisy (possibly zero or
// negative) private features well defined.
func (o Objective) Eval(obs stats.Features, k int, init skg.Initiator) float64 {
	m := skg.Model{Init: init, K: k}
	exp := m.ExpectedFeatures()
	total := 0.0
	add := func(f, e float64) {
		var dist float64
		switch o.Dist {
		case DistAbs:
			dist = math.Abs(f - e)
		default:
			dist = (f - e) * (f - e)
		}
		var norm float64
		switch o.Norm {
		case NormF:
			norm = math.Abs(f)
		case NormE:
			norm = math.Abs(e)
		case NormE2:
			norm = e * e
		default:
			norm = f * f
		}
		if norm < 1e-12 {
			norm = 1e-12
		}
		total += dist / norm
	}
	if o.Features.E {
		add(obs.E, exp.E)
	}
	if o.Features.H {
		add(obs.H, exp.H)
	}
	if o.Features.T {
		add(obs.T, exp.T)
	}
	if o.Features.Delta {
		add(obs.Delta, exp.Delta)
	}
	return total
}

// Options configures estimation.
type Options struct {
	// Objective defaults to DefaultObjective(). A zero FeatureSet is
	// replaced by AllFeatures().
	Objective Objective
	// RandomStarts is the number of random Nelder–Mead restarts on top
	// of the grid-seeded one (default 8).
	RandomStarts int
	// GridPoints per axis for the seeding grid search (default 9).
	GridPoints int
	// MaxIter per Nelder–Mead run (default 600).
	MaxIter int
	// Rng supplies restart randomness; required.
	Rng *randx.Rand
	// Workers bounds the goroutines used for the multistart descents and
	// the feature counting in FitGraph; <= 0 selects
	// runtime.GOMAXPROCS(0). The fitted initiator is identical for every
	// worker count. The Ctx variants ignore this field: the pipeline
	// Run's budget is authoritative.
	Workers int
}

func (o *Options) fill() error {
	if o.Objective.Features.Count() == 0 {
		o.Objective.Features = AllFeatures()
	}
	if o.RandomStarts == 0 {
		o.RandomStarts = 8
	}
	if o.GridPoints == 0 {
		o.GridPoints = 9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 600
	}
	if o.Rng == nil {
		return fmt.Errorf("kronmom: Options.Rng is required")
	}
	return nil
}

// Estimate is a fitted initiator with diagnostics.
type Estimate struct {
	Init      skg.Initiator
	K         int
	Objective float64 // objective value at the optimum
	Evals     int     // objective evaluations spent
}

// Fit estimates the initiator whose expected features match obs at
// Kronecker power k. The returned initiator is canonical (A >= C).
func Fit(obs stats.Features, k int, opts Options) (Estimate, error) {
	return FitCtx(pipeline.New(nil, opts.Workers, nil), obs, k, opts)
}

// FitCtx is Fit under a pipeline Run: the worker budget comes from run
// (opts.Workers is ignored), a "kronmom" stage event pair is emitted,
// and cancellation aborts the multistart descent with run.Err(). A run
// that is never cancelled fits the exact estimate Fit produces for the
// same options.
func FitCtx(run *pipeline.Run, obs stats.Features, k int, opts Options) (Estimate, error) {
	if err := opts.fill(); err != nil {
		return Estimate{}, err
	}
	if k < 1 || k > 30 {
		return Estimate{}, fmt.Errorf("kronmom: k = %d outside [1, 30]", k)
	}
	done := run.Stage("kronmom")
	f := func(x []float64) float64 {
		return opts.Objective.Eval(obs, k, skg.Initiator{A: x[0], B: x[1], C: x[2]})
	}
	lo := []float64{0, 0, 0}
	hi := []float64{1, 1, 1}
	res, err := optimize.MultiStartCtx(run.Context(), f, lo, hi, opts.RandomStarts, opts.GridPoints, opts.Rng,
		optimize.NelderMeadOptions{MaxIter: opts.MaxIter, Step: 0.08}, run.Workers())
	if err != nil {
		return Estimate{}, err
	}
	init := skg.Initiator{A: res.X[0], B: res.X[1], C: res.X[2]}.Canonical()
	done()
	return Estimate{Init: init, K: k, Objective: res.F, Evals: res.Evals}, nil
}

// FitGraph computes the exact features of g and fits an initiator with
// k = ceil(log2(NumNodes)) unless k > 0 is given. This is the
// non-private KronMom baseline of Table 1.
func FitGraph(g *graph.Graph, k int, opts Options) (Estimate, error) {
	return FitGraphCtx(pipeline.New(nil, opts.Workers, nil), g, k, opts)
}

// FitGraphCtx is FitGraph under a pipeline Run: the feature counting
// and the moment fit share run's context and worker budget, and each
// emits its own stage events.
func FitGraphCtx(run *pipeline.Run, g *graph.Graph, k int, opts Options) (Estimate, error) {
	if k <= 0 {
		k = KForNodes(g.NumNodes())
	}
	feats, err := stats.FeaturesOfCtx(run, g)
	if err != nil {
		return Estimate{}, err
	}
	return FitCtx(run, feats, k, opts)
}

// KForNodes returns the smallest k with 2^k >= n (minimum 1).
func KForNodes(n int) int {
	k := 1
	for 1<<k < n {
		k++
	}
	return k
}
