package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestGolden pins the exact exposition bytes for a representative
// registry: a labeled counter, an unlabeled gauge, and a labeled
// histogram, families sorted by name and series by label values.
func TestGolden(t *testing.T) {
	r := NewRegistry()
	req := r.CounterVec("test_requests_total", "Total requests.", "route", "code")
	req.With("/v1/fit", "200").Add(3)
	req.With("/v1/fit", "429").Inc()
	g := r.Gauge("test_queue_depth", "Jobs queued.")
	g.Set(2.5)
	g.Add(-0.5)
	h := r.HistogramVec("test_latency_seconds", "Request latency.", []float64{0.1, 1, 10}, "route")
	for _, v := range []float64{0.25, 0.5, 5, 50} {
		h.With("/v1/fit").Observe(v)
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden.prom")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// Prometheus text format grammar (abridged to what this renderer
// emits): comment lines and sample lines.
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)$`)
)

// TestGrammar renders a registry exercising every metric kind plus
// label escaping and validates the output line-by-line against the
// text format grammar, with the structural invariants a scraper
// relies on: HELP/TYPE exactly once per family and before its
// samples, cumulative monotone buckets, _count equal to the +Inf
// bucket.
func TestGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("g_total", "A counter.").Add(7)
	r.Gauge("g_gauge", "A gauge.").Set(-3.25)
	r.CounterVec("g_labeled_total", `Tricky label values.`, "path", "why").
		With(`quote " backslash \ newline`+"\n", "ok").Inc()
	hv := r.HistogramVec("g_seconds", "A histogram.", nil, "stage")
	hv.With("init").Observe(0.003)
	hv.With("features").Observe(2)
	hv.With("features").Observe(120) // past the largest DefBucket

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("exposition must end in a newline")
	}

	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	samples := map[string]float64{} // full sample line key -> value
	var lastInf map[string]float64 = map[string]float64{}
	var lastCum float64
	var curHistSeries string
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: HELP fails grammar: %q", i+1, line)
			}
			name := strings.Fields(line)[2]
			if helpSeen[name] {
				t.Errorf("duplicate HELP for %s", name)
			}
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: TYPE fails grammar: %q", i+1, line)
			}
			if _, dup := typeSeen[m[1]]; dup {
				t.Errorf("duplicate TYPE for %s", m[1])
			}
			typeSeen[m[1]] = m[2]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: sample fails grammar: %q", i+1, line)
			}
			name, labels, valStr := m[1], m[2], m[3]
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suf); b != name && typeSeen[b] == "histogram" {
					base = b
				}
			}
			if typeSeen[base] == "" {
				t.Errorf("sample %s before (or without) its TYPE line", name)
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil && valStr != "NaN" && !strings.Contains(valStr, "Inf") {
				t.Errorf("line %d: unparseable value %q", i+1, valStr)
			}
			samples[name+labels] = v
			// Cumulative-bucket check: within one histogram series the
			// renderer emits buckets in ascending le order; values must
			// be monotone and the +Inf bucket must equal _count.
			if strings.HasSuffix(name, "_bucket") && typeSeen[base] == "histogram" {
				series := base + stripLE(labels)
				if series != curHistSeries {
					curHistSeries = series
					lastCum = 0
				}
				if v < lastCum {
					t.Errorf("histogram %s buckets not cumulative: %v after %v", series, v, lastCum)
				}
				lastCum = v
				if strings.Contains(labels, `le="+Inf"`) {
					lastInf[series] = v
				}
			}
			if strings.HasSuffix(name, "_count") && typeSeen[base] == "histogram" {
				series := base + labels
				if inf, ok := lastInf[series]; !ok || inf != v {
					t.Errorf("histogram %s: _count %v != +Inf bucket %v", series, v, lastInf[series])
				}
			}
		}
	}
	// Every family carries both metadata lines.
	for name := range typeSeen {
		if !helpSeen[name] {
			t.Errorf("family %s has TYPE but no HELP", name)
		}
	}
	if len(samples) == 0 {
		t.Fatal("no samples rendered")
	}
}

// stripLE drops the trailing le label a _bucket line carries, leaving
// the series identity shared with _sum/_count.
func stripLE(labels string) string {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return labels
	}
	prefix := strings.TrimSuffix(labels[:i], ",")
	if prefix == "{" {
		return ""
	}
	return prefix + "}"
}

// TestNilRegistryNoOp: the zero-cost library path — a nil registry
// hands out nil collectors, every method no-ops, rendering is empty.
func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x", "")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("x_seconds", "", nil)
	h.Observe(1)
	if h.Count() != 0 {
		t.Errorf("nil histogram count = %d", h.Count())
	}
	r.CounterVec("xv_total", "", "l").With("a").Inc()
	r.GaugeVec("xv", "", "l").With("a").Set(1)
	r.HistogramVec("xv_seconds", "", nil, "l").With("a").Observe(1)
	var buf bytes.Buffer
	if n, err := r.WriteTo(&buf); n != 0 || err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteTo = (%d, %v), %d bytes", n, err, buf.Len())
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Errorf("nil handler status %d", rec.Code)
	}
}

// TestRegistryIdempotentAndPanics: re-registering the same family
// returns the same series; a kind mismatch is a programming error.
func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h")
	b := r.Counter("same_total", "h")
	if a != b {
		t.Error("re-registered counter is a different instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registered counter does not share state")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "h")
}

// TestHistogramBucketing pins observations to the right buckets,
// including the exact-boundary (le is inclusive) and overflow cases.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hb_seconds", "h", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hb_seconds_bucket{le="1"} 2`,
		`hb_seconds_bucket{le="2"} 4`,
		`hb_seconds_bucket{le="+Inf"} 5`,
		`hb_seconds_sum 8`,
		`hb_seconds_count 5`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

// TestConcurrentUse hammers one registry from many goroutines while
// rendering concurrently; meaningful under -race, and the final
// counts must be exact (no lost updates).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "h")
	cv := r.CounterVec("ccv_total", "h", "who")
	g := r.Gauge("cg", "h")
	h := r.Histogram("ch_seconds", "h", []float64{0.5})
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := strconv.Itoa(w % 4)
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(who).Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.25)
				if i%100 == 0 {
					var buf bytes.Buffer
					if _, err := r.WriteTo(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %v, want 0", g.Value())
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	var total uint64
	for w := 0; w < 4; w++ {
		total += cv.With(strconv.Itoa(w)).Value()
	}
	if total != workers*iters {
		t.Errorf("vec total = %d, want %d", total, workers*iters)
	}
}

// TestGaugeSpecials: gauges render NaN and infinities in the spelling
// the format requires.
func TestGaugeSpecials(t *testing.T) {
	r := NewRegistry()
	r.Gauge("gs_inf", "h").Set(math.Inf(1))
	r.Gauge("gs_nan", "h").Set(math.NaN())
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gs_inf +Inf\n") {
		t.Errorf("missing +Inf rendering:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "gs_nan NaN\n") {
		t.Errorf("missing NaN rendering:\n%s", buf.String())
	}
}

// TestLoggerConstruction: formats and levels resolve, bad values are
// flag-time errors, and levels gate emission.
func TestLoggerConstruction(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", "v")
	if strings.Contains(buf.String(), "dropped") {
		t.Error("info leaked through warn level")
	}
	if !strings.Contains(buf.String(), `"msg":"kept"`) || !strings.Contains(buf.String(), `"k":"v"`) {
		t.Errorf("json record malformed: %s", buf.String())
	}
	buf.Reset()
	lg, err = NewLogger(&buf, "text", "")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "n", 3)
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("text record malformed: %s", buf.String())
	}
	if _, err := NewLogger(&buf, "xml", ""); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&buf, "", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	NopLogger().Info("nowhere")
}

// TestNewRequestID: ids are 16 hex chars and distinct.
func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("id lengths %d, %d", len(a), len(b))
	}
	if a == b {
		t.Error("consecutive ids collide")
	}
	if _, err := strconv.ParseUint(a, 16, 64); err != nil {
		t.Errorf("id %q not hex", a)
	}
}
