package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a structured logger writing one record per line
// to w. format selects the handler: "text" (logfmt-style, default) or
// "json"; level gates emission: "debug", "info" (default), "warn",
// "error". Unknown values are errors so a typo in -log-format fails
// at flag time, not silently at runtime.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// NopLogger returns a logger that discards everything — the
// nil-object for optional logging, so instrumented code logs
// unconditionally instead of nil-checking at every site.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler reports every level disabled, so slog short-circuits
// before formatting records.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NewRequestID returns a fresh 16-hex-character correlation id for a
// request or job. Ids come from crypto/rand — never from a seeded
// source — so telemetry cannot perturb fixed-seed outputs.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform's entropy source is
		// broken; ids degrade to a constant rather than taking the
		// serving path down.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
