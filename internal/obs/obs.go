// Package obs is the serving tier's dependency-free telemetry core:
// counters, gauges and fixed-bucket histograms collected in a Registry
// and rendered in the Prometheus text exposition format (version
// 0.0.4), plus a structured logger built on log/slog with
// per-request/per-job correlation ids.
//
// Everything is lock-free on the hot path — counters are single
// atomic adds, gauges store float64 bits in a uint64, histograms are
// one binary search plus two atomic adds — and every constructor and
// method is nil-safe: a nil *Registry hands out nil collectors whose
// methods no-op, so library callers that never configure telemetry
// pay nothing (one nil check) on instrumented paths. Telemetry never
// draws randomness from any seeded source (request ids come from
// crypto/rand), so instrumenting a fixed-seed pipeline cannot perturb
// its outputs.
//
// Cardinality discipline is the caller's job: label values must come
// from small bounded sets (routes, reasons, stages, dataset ids an
// operator configured) — never from unbounded client input.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram upper bounds, in
// seconds: half a millisecond through one minute, covering a cache
// hit and a k=20 fit in the same histogram.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// FsyncBuckets are histogram bounds matched to fsync latency: tens of
// microseconds on a fast SSD through the hundreds of milliseconds a
// saturated disk can take.
var FsyncBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 1,
}

// metricKind is a family's Prometheus TYPE.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid no-op registry: every
// constructor returns a nil collector whose methods do nothing.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any // joined label values -> *Counter | *Gauge | *Histogram
}

// labelSep joins label values into series keys; it cannot appear in a
// valid UTF-8 label value produced by this codebase's bounded sets.
const labelSep = "\x1f"

// lookup returns the family registered under name, creating it on
// first use. Re-registering with a different type or label set is a
// programming error and panics, matching prometheus/client_golang.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  map[string]any{},
	}
	r.fams[name] = f
	return f
}

// child returns the series stored under key, creating it with mk on
// first use.
func (f *family) child(key string, mk func() any) any {
	f.mu.RLock()
	c, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[key]; ok {
		return c
	}
	c = mk()
	f.series[key] = c
	return c
}

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (negative deltas subtract).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets.
// Nil-safe.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindCounter, nil, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindGauge, nil, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram. Buckets
// are cumulative upper bounds and must be sorted ascending; nil
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.lookup(name, help, kindHistogram, nil, buckets)
	return f.child("", func() any { return newHistogram(buckets) }).(*Histogram)
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ fam *family }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ fam *family }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ fam *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.lookup(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.lookup(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family (nil buckets
// selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.lookup(name, help, kindHistogram, labels, buckets)}
}

func seriesKey(fam *family, values []string) string {
	if len(values) != len(fam.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d (%v)", fam.name, len(values), len(fam.labels), fam.labels))
	}
	return strings.Join(values, labelSep)
}

// With returns the counter for the given label values, creating it on
// first use. Nil-safe (returns a nil Counter).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := seriesKey(v.fam, values)
	return v.fam.child(key, func() any { return &Counter{} }).(*Counter)
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := seriesKey(v.fam, values)
	return v.fam.child(key, func() any { return &Gauge{} }).(*Gauge)
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := seriesKey(v.fam, values)
	buckets := v.fam.buckets
	return v.fam.child(key, func() any { return newHistogram(buckets) }).(*Histogram)
}

// WriteTo renders every registered family in the Prometheus text
// exposition format (0.0.4): families sorted by name, series sorted
// by label values, histograms as cumulative _bucket/_sum/_count.
// Rendering takes a point-in-time read of each atomic; it never
// blocks writers.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (f *family) render(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()
	if len(series) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, labelSep)
		}
		switch m := series[i].(type) {
		case *Counter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, values, "", 0)
			fmt.Fprintf(b, " %d\n", m.Value())
		case *Gauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, values, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Value()))
			b.WriteByte('\n')
		case *Histogram:
			// A scrape racing Observe may see count updated before sum
			// (or a bucket before count); each number is individually
			// consistent, which is all the format promises.
			var cum uint64
			for bi, bound := range m.bounds {
				cum += m.counts[bi].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, values, "le", bound)
				fmt.Fprintf(b, " %d\n", cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, values, "le", math.Inf(1))
			fmt.Fprintf(b, " %d\n", cum)
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, values, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(m.sum.Load())))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, values, "", 0)
			fmt.Fprintf(b, " %d\n", m.count.Load())
		}
	}
}

// writeLabels renders {k="v",...}, appending an le label when leName
// is non-empty. No braces are emitted for an unlabeled series.
func writeLabels(b *strings.Builder, names, values []string, leName string, le float64) {
	if len(names) == 0 && leName == "" {
		return
	}
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are
// legal in help).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at GET /metrics. A nil registry serves
// an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
