// Package degseq implements Hay, Li, Miklau and Jensen's (ICDM'09)
// differentially private approximation of a graph's sorted degree
// sequence, which the paper uses in steps 1–3 of Algorithm 1.
//
// The sorted degree sequence dS has L1 global sensitivity 2 under edge
// neighbourhood (toggling one edge moves two degrees by one each, and
// sorting cannot increase L1 distance), so dS + Lap(2/ε)^n is
// (ε, 0)-DP. The constrained-inference post-processing step projects
// the noisy vector back onto the cone of non-decreasing sequences in L2,
// computed by the pool-adjacent-violators algorithm (PAVA); being
// post-processing, it costs no additional privacy while substantially
// reducing error.
package degseq

import (
	"sort"

	"dpkron/internal/accountant"
	"dpkron/internal/dp"
	"dpkron/internal/graph"
	"dpkron/internal/randx"
)

// GlobalSensitivity is the L1 global sensitivity of the sorted degree
// sequence under single-edge neighbourhood.
const GlobalSensitivity = 2.0

// Sorted returns the degree sequence of g sorted ascending, as floats
// ready for noise addition.
func Sorted(g *graph.Graph) []float64 {
	d := g.Degrees()
	sort.Ints(d)
	out := make([]float64, len(d))
	for i, x := range d {
		out[i] = float64(x)
	}
	return out
}

// Query is the name under which the release is charged to accountants.
const Query = "degseq/sorted-degree-sequence"

// Private returns an (ε, 0)-differentially private estimate of the
// sorted degree sequence of g: Laplace noise with scale 2/ε followed by
// isotonic (PAVA) post-processing. The result is non-decreasing but not
// necessarily integral or non-negative; downstream feature formulas
// accept real values (Fact 4.6 of the paper).
func Private(g *graph.Graph, eps float64, rng *randx.Rand) []float64 {
	out, _ := PrivateAcc(nil, g, eps, rng) // nil accountant never refuses
	return out
}

// PrivateAcc is Private drawing through the accountant's vector
// Laplace mechanism: the (ε, 0) charge is recorded on acc (nil records
// nothing) before any noise is drawn, and a refused charge — the
// accountant's budget limit would be exceeded — returns the error with
// no noise consumed from rng. For fixed seeds the released sequence is
// bit-identical to Private.
func PrivateAcc(acc *accountant.Accountant, g *graph.Graph, eps float64, rng *randx.Rand) ([]float64, error) {
	mech := accountant.LaplaceVec{Sens: GlobalSensitivity, Eps: eps}
	if err := acc.Charge(Query, mech); err != nil {
		return nil, err
	}
	return Isotonic(mech.Apply(Sorted(g), rng)), nil
}

// PrivateRaw is Private without the post-processing step; it exists so
// experiments can quantify how much error constrained inference removes.
func PrivateRaw(g *graph.Graph, eps float64, rng *randx.Rand) []float64 {
	return dp.LaplaceVec(Sorted(g), GlobalSensitivity, eps, rng)
}

// Isotonic returns the L2 projection of x onto non-decreasing sequences
// using the pool-adjacent-violators algorithm in O(n). The input is not
// modified.
func Isotonic(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// Stack of blocks, each carrying (sum, count). Blocks are merged
	// while the previous block's mean exceeds the new block's mean.
	sums := make([]float64, 0, n)
	counts := make([]int, 0, n)
	for _, v := range x {
		s, c := v, 1
		for len(sums) > 0 && sums[len(sums)-1]*float64(c) >= s*float64(counts[len(counts)-1]) {
			// prev.mean >= cur.mean  <=>  prevSum*curCount >= curSum*prevCount
			s += sums[len(sums)-1]
			c += counts[len(counts)-1]
			sums = sums[:len(sums)-1]
			counts = counts[:len(counts)-1]
		}
		sums = append(sums, s)
		counts = append(counts, c)
	}
	i := 0
	for b := range sums {
		mean := sums[b] / float64(counts[b])
		for j := 0; j < counts[b]; j++ {
			out[i] = mean
			i++
		}
	}
	return out
}
